examples/anomaly_tour.ml: Fmt Hermes_core Hermes_harness Hermes_history List String

examples/anomaly_tour.mli:

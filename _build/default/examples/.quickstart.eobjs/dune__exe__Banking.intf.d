examples/banking.mli:

examples/crash_recovery.ml: Array Command Fmt Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Hermes_store Logs Logs_fmt Option Rng Site Sys

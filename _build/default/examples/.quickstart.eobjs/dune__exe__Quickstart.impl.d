examples/quickstart.ml: Array Command Fmt Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Hermes_store Option Rng Site

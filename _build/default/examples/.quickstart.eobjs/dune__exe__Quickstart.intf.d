examples/quickstart.mli:

examples/travel.mli:

(* The anomaly tour: replays the paper's histories H1, H2, H3 and the
   §5.3 overtaking race through the real protocol stack, printing each
   recorded history in the paper's notation and showing which
   certification step catches which anomaly.

   Run with:  dune exec examples/anomaly_tour.exe *)

module Scenario = Hermes_harness.Scenario
module Config = Hermes_core.Config
module History = Hermes_history.History
module Committed = Hermes_history.Committed
module Report = Hermes_history.Report

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let show_run (r : Scenario.run) =
  List.iter (fun (l, o) -> Fmt.pr "  %s: %a@." l Scenario.pp_outcome_opt o) r.Scenario.outcomes;
  List.iter (fun (l, ok) -> Fmt.pr "  %s (local): %s@." l (if ok then "committed" else "failed")) r.Scenario.locals;
  Fmt.pr "  history (committed projection, reads annotated with their source):@.    %a@."
    History.pp_with_from
    (Committed.extended r.Scenario.history);
  Fmt.pr "  %a@." Report.pp r.Scenario.report

let tour title blurb runs =
  hr ();
  Fmt.pr "%s@." title;
  hr ();
  Fmt.pr "%s@.@." blurb;
  List.iter
    (fun (name, run) ->
      Fmt.pr "[%s]@." name;
      show_run run;
      Fmt.pr "@.")
    runs

let () =
  let commit_only = { Config.naive with Config.commit_certification = true } in
  tour "H1 -- global view distortion (paper S3, S4)"
    "T1 reads X^a and updates Y^a, Z^b. Its prepared subtransaction at site a is\n\
     unilaterally aborted right after the global commit record; T2, waiting on the\n\
     locks, deletes Y^a and updates X^a, then commits. T1's resubmission now sees\n\
     T2's world: it reads X^a from T2 and its decomposition has lost the Y^a\n\
     update. The basic prepare certification (alive-interval intersection) refuses\n\
     T2 instead."
    [
      ("naive agent", Scenario.h1 ~certifier:Config.naive ());
      ("full certifier", Scenario.h1 ~certifier:Config.full ());
    ];
  tour "H1 under 'commit certification only' -- a liveness lesson"
    "With only the commit certification enabled, T1 and T2 deadlock through the\n\
     resubmitted locks: T1's recovery waits for T2's locks, T2's commit waits for\n\
     T1's smaller serial number. The run is cut off by the time cap with both\n\
     transactions stuck -- the Correctness Invariant enforced at prepare time is\n\
     what keeps recovery live."
    [ ("commit cert only", Scenario.h1 ~certifier:commit_only ()) ];
  tour "H2 -- local view distortion via a direct conflict (paper S5.1)"
    "T1's subtransaction at a recovers slowly; T3 reads Z^b from T1 and commits at\n\
     a first, so local commits at a and b are in opposite orders. The local\n\
     transaction L4 then reads Q^a from T3 but Y^a from T_0 -- a view no serial\n\
     history allows. Commit certification delays T3's local commit behind T1's\n\
     smaller serial number."
    [
      ("naive agent", Scenario.h2 ~certifier:Config.naive ());
      ("commit cert only", Scenario.h2 ~certifier:commit_only ());
      ("full certifier", Scenario.h2 ~certifier:Config.full ());
    ];
  tour "H3 -- local view distortion via INDIRECT conflicts (paper S5.1)"
    "T5 and T6 touch disjoint items -- no direct conflict, so no prepare-order\n\
     argument applies. Local transactions L7 and L8 connect them: L8 sees\n\
     T5-but-not-T6, L7 sees T6-but-not-T5. Only the globally unique serial-number\n\
     order aligns the commit orders at both sites."
    [
      ("naive agent", Scenario.h3 ~certifier:Config.naive ());
      ("commit cert only", Scenario.h3 ~certifier:commit_only ());
      ("full certifier", Scenario.h3 ~certifier:Config.full ());
    ];
  hr ();
  Fmt.pr "S5.3 -- COMMIT overtakes PREPARE@.";
  hr ();
  Fmt.pr
    "Two non-conflicting transactions; with network jitter, Tk's COMMIT can reach\n\
     site b before Tj's PREPARE. Without the prepare-certification extension the\n\
     late PREPARE is accepted and the commit orders cross; with it, the PREPARE\n\
     behind a bigger committed serial number is refused.@.@.";
  let hunt certifier =
    let rec go seed =
      if seed > 2_000 then None
      else
        let r = Scenario.overtake ~certifier ~jitter:8_000 ~seed () in
        if r.Scenario.overtaken then Some (seed, r) else go (seed + 1)
    in
    go 1
  in
  (match hunt { Config.full with Config.certification_extension = false } with
  | Some (seed, r) ->
      Fmt.pr "[no extension, seed %d]@." seed;
      show_run r.Scenario.o_run;
      Fmt.pr "@.[full certifier, same seed]@.";
      let f = Scenario.overtake ~certifier:Config.full ~jitter:8_000 ~seed () in
      show_run f.Scenario.o_run;
      Fmt.pr "  extension refusals: %d@." f.Scenario.extension_refusals
  | None -> Fmt.pr "no race found in 2000 seeds -- increase jitter@.");
  Fmt.pr "@.End of tour.@."

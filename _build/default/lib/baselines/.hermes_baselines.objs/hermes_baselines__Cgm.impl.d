lib/baselines/cgm.ml: Command Commit_graph Fmt Hashtbl Hermes_core Hermes_kernel Hermes_ltm Hermes_net Hermes_sim List Site Time

lib/baselines/cgm.mli: Hermes_core Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Rng

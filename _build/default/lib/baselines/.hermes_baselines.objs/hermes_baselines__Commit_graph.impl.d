lib/baselines/commit_graph.ml: Fmt Hermes_graph Hermes_kernel Int List Site

lib/baselines/commit_graph.mli: Fmt Hermes_graph Hermes_kernel Site

(* The commit graph of the Commit Graph Method (Breitbart, Silberschatz &
   Thompson, SIGMOD 1990), as described in the paper's §6 comparison: an
   undirected bipartite graph whose nodes are global transactions and
   Participating Sites; an edge connects transaction T and site S iff T's
   global subtransaction at S is in the prepared state. A loop signals a
   potential conflict among global and local transactions — at *site*
   granularity, which is exactly the coarseness the paper's
   restrictiveness comparison targets. *)

open Hermes_kernel

type node = Txn_node of int | Site_node of Site.t

module G = Hermes_graph.Ugraph.Make (struct
  type t = node

  let compare a b =
    match (a, b) with
    | Txn_node x, Txn_node y -> Int.compare x y
    | Site_node x, Site_node y -> Site.compare x y
    | Txn_node _, Site_node _ -> -1
    | Site_node _, Txn_node _ -> 1

  let pp ppf = function
    | Txn_node gid -> Fmt.pf ppf "T%d" gid
    | Site_node s -> Site.pp ppf s
end)

type t = { mutable graph : G.t }

let create () = { graph = G.empty }

let edges_of ~gid ~sites = List.map (fun s -> (Txn_node gid, Site_node s)) sites

let would_loop t ~gid ~sites = G.adding_edges_creates_cycle t.graph (edges_of ~gid ~sites)

let enter t ~gid ~sites =
  List.iter (fun (u, v) -> t.graph <- G.add_edge t.graph u v) (edges_of ~gid ~sites)

let leave t ~gid = t.graph <- G.remove_vertex t.graph (Txn_node gid)

let in_graph t ~gid = List.exists (function Txn_node g -> g = gid | Site_node _ -> false) (G.vertices t.graph)
let pp ppf t = G.pp ppf t.graph

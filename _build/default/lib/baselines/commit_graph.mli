(** The CGM commit graph (Breitbart, Silberschatz & Thompson, SIGMOD 1990;
    paper §6): an undirected bipartite graph of global transactions and
    Participating Sites; an edge means "T's subtransaction is in the
    prepared state at S"; a loop signals a potential conflict — at site
    granularity. *)

open Hermes_kernel

type node = Txn_node of int | Site_node of Site.t

module G : Hermes_graph.Ugraph.S with type vertex = node

type t

val create : unit -> t

val would_loop : t -> gid:int -> sites:Site.t list -> bool
(** Would adding T's (transaction, site) edges close a loop? *)

val enter : t -> gid:int -> sites:Site.t list -> unit
val leave : t -> gid:int -> unit
val in_graph : t -> gid:int -> bool
val pp : t Fmt.t

lib/core/agent.ml: Agent_log Alive_table Config Fmt Hashtbl Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Interval List Logs Option Site Sn Time Txn

lib/core/agent.mli: Agent_log Alive_table Config Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Site

lib/core/agent_log.ml: Command Hashtbl Hermes_kernel Hermes_net Int Item List Sn

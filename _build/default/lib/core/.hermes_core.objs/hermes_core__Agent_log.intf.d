lib/core/agent_log.mli: Command Hermes_kernel Hermes_net Item Sn

lib/core/alive_table.ml: Fmt Hashtbl Hermes_kernel Interval List Sn Stdlib Time

lib/core/alive_table.mli: Fmt Hermes_kernel Interval Sn Time

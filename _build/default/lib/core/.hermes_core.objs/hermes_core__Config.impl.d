lib/core/config.ml: Fmt

lib/core/config.mli: Fmt

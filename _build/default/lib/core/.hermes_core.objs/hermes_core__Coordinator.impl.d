lib/core/coordinator.ml: Command Config Fmt Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim List Logs Option Program Site Sn Time Txn

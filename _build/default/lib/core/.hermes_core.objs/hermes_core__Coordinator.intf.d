lib/core/coordinator.mli: Config Fmt Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Program Site Sn

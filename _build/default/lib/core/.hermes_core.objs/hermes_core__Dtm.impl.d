lib/core/dtm.ml: Agent Array Clock Config Coordinator Fmt Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Hermes_store Program Rng Site Sn

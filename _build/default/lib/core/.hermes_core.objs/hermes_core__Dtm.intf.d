lib/core/dtm.mli: Agent Clock Config Coordinator Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim Hermes_store Program Rng Site

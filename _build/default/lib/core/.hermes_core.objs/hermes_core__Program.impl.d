lib/core/program.ml: Command Fmt Hermes_kernel List Site

lib/core/program.mli: Command Fmt Hermes_kernel Site

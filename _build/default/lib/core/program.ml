(* A global transaction program: the DML commands the application issues
   through the Coordinator, each step routed to one participating site.
   The Coordinator submits steps strictly in order, command by command
   (paper §2), and at most one global subtransaction runs per site.

   Programs are static — the "application-specific computation" the paper
   keeps at the coordinating site is folded into command parameters — so a
   resubmitted subtransaction replays exactly the same commands. *)

open Hermes_kernel

type t = { steps : (Site.t * Command.t) list }

let make steps =
  if steps = [] then invalid_arg "Program.make: empty program";
  { steps }

let steps t = t.steps

(* Participating sites, in first-use order. *)
let sites t =
  List.fold_left
    (fun acc (s, _) -> if List.exists (Site.equal s) acc then acc else s :: acc)
    [] t.steps
  |> List.rev

let commands_at t site =
  List.filter_map (fun (s, c) -> if Site.equal s site then Some c else None) t.steps

let length t = List.length t.steps

let is_read_only t = List.for_all (fun (_, c) -> Command.is_read_only c) t.steps

let pp ppf t =
  let pp_step ppf (s, c) = Fmt.pf ppf "%a:%a" Site.pp s Command.pp c in
  Fmt.pf ppf "@[<hov>[%a]@]" Fmt.(list ~sep:semi pp_step) t.steps

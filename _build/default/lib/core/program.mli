(** Global transaction programs: the DML commands the application issues
    through the Coordinator, each step routed to one participating site
    and submitted strictly in order (paper §2). Programs are static, so a
    resubmitted subtransaction replays exactly the original commands. *)

open Hermes_kernel

type t

val make : (Site.t * Command.t) list -> t
(** Raises [Invalid_argument] on an empty step list. *)

val steps : t -> (Site.t * Command.t) list

val sites : t -> Site.t list
(** Participating sites, in first-use order; the first is the
    coordinating site. *)

val commands_at : t -> Site.t -> Command.t list
val length : t -> int
val is_read_only : t -> bool
val pp : t Fmt.t

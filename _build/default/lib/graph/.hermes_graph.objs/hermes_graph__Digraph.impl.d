lib/graph/digraph.ml: Fmt List Map Option Queue Set

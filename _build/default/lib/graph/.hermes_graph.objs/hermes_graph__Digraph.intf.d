lib/graph/digraph.mli: Fmt

lib/graph/ugraph.ml: Digraph Fmt Hashtbl List Map Set

lib/graph/ugraph.mli: Digraph Fmt

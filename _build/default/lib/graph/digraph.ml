(* A generic directed graph, functorized over the vertex type.

   Used for serialization graphs SG(H), commit order graphs CG(H) and
   wait-for graphs. Dense graphs are fine: the algorithms are linear in
   vertices + edges (Tarjan SCC), and cycle extraction returns an actual
   cycle for diagnostics. *)

module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module type S = sig
  type vertex
  type t

  val empty : t
  val add_vertex : t -> vertex -> t
  val add_edge : t -> vertex -> vertex -> t
  val mem_vertex : t -> vertex -> bool
  val mem_edge : t -> vertex -> vertex -> bool
  val vertices : t -> vertex list
  val successors : t -> vertex -> vertex list
  val edges : t -> (vertex * vertex) list
  val n_vertices : t -> int
  val n_edges : t -> int
  val is_acyclic : t -> bool
  val find_cycle : t -> vertex list option
  val topological_sort : t -> vertex list option
  val sccs : t -> vertex list list
  val reachable : t -> vertex -> vertex -> bool
  val pp : t Fmt.t
end

module Make (V : VERTEX) : S with type vertex = V.t = struct
  type vertex = V.t

  module VMap = Map.Make (V)
  module VSet = Set.Make (V)

  type t = { succ : VSet.t VMap.t }

  let empty = { succ = VMap.empty }

  let add_vertex g v = if VMap.mem v g.succ then g else { succ = VMap.add v VSet.empty g.succ }

  let add_edge g u v =
    let g = add_vertex (add_vertex g u) v in
    { succ = VMap.add u (VSet.add v (VMap.find u g.succ)) g.succ }

  let mem_vertex g v = VMap.mem v g.succ
  let mem_edge g u v = match VMap.find_opt u g.succ with Some s -> VSet.mem v s | None -> false
  let vertices g = VMap.fold (fun v _ acc -> v :: acc) g.succ [] |> List.rev
  let successors g v = match VMap.find_opt v g.succ with Some s -> VSet.elements s | None -> []

  let edges g =
    VMap.fold (fun u s acc -> VSet.fold (fun v acc -> (u, v) :: acc) s acc) g.succ [] |> List.rev

  let n_vertices g = VMap.cardinal g.succ
  let n_edges g = VMap.fold (fun _ s acc -> acc + VSet.cardinal s) g.succ 0

  (* DFS with three colours; on finding a back edge, reconstructs the cycle
     from the grey path. *)
  let find_cycle g =
    (* Colours: 0 = white, 1 = grey (on the DFS path), 2 = black. *)
    let col = ref VMap.empty in
    let get v = match VMap.find_opt v !col with Some c -> c | None -> 0 in
    let set v c = col := VMap.add v c !col in
    let cycle = ref None in
    let rec dfs path v =
      if !cycle = None then begin
        set v 1;
        let path = v :: path in
        List.iter
          (fun w ->
            if !cycle = None then
              match get w with
              | 0 -> dfs path w
              | 1 ->
                  (* Back edge v -> w: the cycle is w ... v. *)
                  let rec take acc = function
                    | [] -> acc
                    | x :: rest -> if V.compare x w = 0 then x :: acc else take (x :: acc) rest
                  in
                  cycle := Some (take [] path)
              | _ -> ())
          (successors g v);
        set v 2
      end
    in
    List.iter (fun v -> if get v = 0 && !cycle = None then dfs [] v) (vertices g);
    !cycle

  let is_acyclic g = find_cycle g = None

  (* Kahn's algorithm; [None] if the graph is cyclic. *)
  let topological_sort g =
    let indeg =
      VMap.fold
        (fun _ s acc -> VSet.fold (fun v acc -> VMap.add v (1 + Option.value ~default:0 (VMap.find_opt v acc)) acc) s acc)
        g.succ
        (VMap.map (fun _ -> 0) g.succ)
    in
    let q = Queue.create () in
    VMap.iter (fun v d -> if d = 0 then Queue.add v q) indeg;
    let indeg = ref indeg in
    let out = ref [] in
    let n = ref 0 in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      incr n;
      out := v :: !out;
      List.iter
        (fun w ->
          let d = VMap.find w !indeg - 1 in
          indeg := VMap.add w d !indeg;
          if d = 0 then Queue.add w q)
        (successors g v)
    done;
    if !n = n_vertices g then Some (List.rev !out) else None

  (* Tarjan's strongly connected components, returned in topological
     order of the component DAG. *)
  let sccs g =
    let index = ref 0 in
    let idx = ref VMap.empty in
    let low = ref VMap.empty in
    let on_stack = ref VSet.empty in
    let stack = ref [] in
    let out = ref [] in
    let rec strong v =
      idx := VMap.add v !index !idx;
      low := VMap.add v !index !low;
      incr index;
      stack := v :: !stack;
      on_stack := VSet.add v !on_stack;
      List.iter
        (fun w ->
          if not (VMap.mem w !idx) then begin
            strong w;
            low := VMap.add v (min (VMap.find v !low) (VMap.find w !low)) !low
          end
          else if VSet.mem w !on_stack then
            low := VMap.add v (min (VMap.find v !low) (VMap.find w !idx)) !low)
        (successors g v);
      if VMap.find v !low = VMap.find v !idx then begin
        let rec pop acc =
          match !stack with
          | [] -> acc
          | w :: rest ->
              stack := rest;
              on_stack := VSet.remove w !on_stack;
              if V.compare w v = 0 then w :: acc else pop (w :: acc)
        in
        out := pop [] :: !out
      end
    in
    List.iter (fun v -> if not (VMap.mem v !idx) then strong v) (vertices g);
    (* Tarjan completes sink components first; the accumulated prepends
       therefore already read in topological order of the condensation. *)
    !out

  let reachable g src dst =
    let seen = ref VSet.empty in
    let rec go v =
      if V.compare v dst = 0 then true
      else if VSet.mem v !seen then false
      else begin
        seen := VSet.add v !seen;
        List.exists go (successors g v)
      end
    in
    go src

  let pp ppf g =
    let pp_edge ppf (u, v) = Fmt.pf ppf "%a->%a" V.pp u V.pp v in
    Fmt.pf ppf "@[<hov>{%a}@]" Fmt.(list ~sep:comma pp_edge) (edges g)
end

(** Generic directed graphs: serialization graphs SG(H), commit order graphs
    CG(H) and wait-for graphs are all instances. *)

module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module type S = sig
  type vertex
  type t

  val empty : t
  val add_vertex : t -> vertex -> t
  val add_edge : t -> vertex -> vertex -> t
  (** Adds both endpoints as vertices if absent. Self-edges are allowed and
      count as cycles. *)

  val mem_vertex : t -> vertex -> bool
  val mem_edge : t -> vertex -> vertex -> bool
  val vertices : t -> vertex list
  val successors : t -> vertex -> vertex list
  val edges : t -> (vertex * vertex) list
  val n_vertices : t -> int
  val n_edges : t -> int

  val is_acyclic : t -> bool

  val find_cycle : t -> vertex list option
  (** An actual cycle [v1; ...; vk] with edges v1->v2->...->vk->v1, if any. *)

  val topological_sort : t -> vertex list option
  (** Kahn's algorithm; [None] iff the graph is cyclic. *)

  val sccs : t -> vertex list list
  (** Tarjan's strongly connected components, in topological order of the
      component DAG. *)

  val reachable : t -> vertex -> vertex -> bool
  val pp : t Fmt.t
end

module Make (V : VERTEX) : S with type vertex = V.t

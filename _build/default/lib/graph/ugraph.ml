(* A generic undirected graph with incremental cycle ("loop") detection.

   This is the shape of the Commit Graph of Breitbart, Silberschatz &
   Thompson (SIGMOD 1990), the CGM baseline the paper compares against: a
   bipartite graph of transaction nodes and site nodes where an edge means
   "global subtransaction of T prepared at site S", and a loop signals a
   potential conflict. The CGM scheduler needs to ask "would adding this
   batch of edges close a loop?", so we expose [would_connect] alongside
   plain edge insertion, backed by a union-find over the current edge
   set. Edges are also removable (when a transaction finishes), which
   union-find does not support, so removal rebuilds the structure — fine at
   the scale of in-flight transactions. *)

module type VERTEX = Digraph.VERTEX

module type S = sig
  type vertex
  type t

  val empty : t
  val add_vertex : t -> vertex -> t
  val add_edge : t -> vertex -> vertex -> t
  val remove_edge : t -> vertex -> vertex -> t
  val remove_vertex : t -> vertex -> t
  val mem_edge : t -> vertex -> vertex -> bool
  val vertices : t -> vertex list
  val neighbours : t -> vertex -> vertex list
  val connected : t -> vertex -> vertex -> bool
  val adding_edges_creates_cycle : t -> (vertex * vertex) list -> bool
  val has_cycle : t -> bool
  val pp : t Fmt.t
end

module Make (V : VERTEX) : S with type vertex = V.t = struct
  type vertex = V.t

  module VMap = Map.Make (V)
  module VSet = Set.Make (V)

  type t = { adj : VSet.t VMap.t }

  let empty = { adj = VMap.empty }
  let add_vertex g v = if VMap.mem v g.adj then g else { adj = VMap.add v VSet.empty g.adj }

  let add_edge g u v =
    let g = add_vertex (add_vertex g u) v in
    {
      adj =
        g.adj
        |> VMap.add u (VSet.add v (VMap.find u g.adj))
        |> fun m -> VMap.add v (VSet.add u (VMap.find v m)) m;
    }

  let remove_edge g u v =
    let del a b m = match VMap.find_opt a m with Some s -> VMap.add a (VSet.remove b s) m | None -> m in
    { adj = del u v (del v u g.adj) }

  let remove_vertex g v =
    match VMap.find_opt v g.adj with
    | None -> g
    | Some nbrs ->
        let adj = VSet.fold (fun u m -> VMap.add u (VSet.remove v (VMap.find u m)) m) nbrs g.adj in
        { adj = VMap.remove v adj }

  let mem_edge g u v = match VMap.find_opt u g.adj with Some s -> VSet.mem v s | None -> false
  let vertices g = VMap.fold (fun v _ acc -> v :: acc) g.adj [] |> List.rev
  let neighbours g v = match VMap.find_opt v g.adj with Some s -> VSet.elements s | None -> []

  let connected g u v =
    let seen = ref VSet.empty in
    let rec go x =
      if V.compare x v = 0 then true
      else if VSet.mem x !seen then false
      else begin
        seen := VSet.add x !seen;
        List.exists go (neighbours g x)
      end
    in
    VMap.mem u g.adj && go u

  (* Union-find over the existing edges, then simulate adding the batch:
     an edge inside one component (or a duplicate within the batch joining
     already-united vertices) closes a loop. *)
  let adding_edges_creates_cycle g new_edges =
    let parent = Hashtbl.create 64 in
    let ids = ref VMap.empty in
    let next = ref 0 in
    let id v =
      match VMap.find_opt v !ids with
      | Some i -> i
      | None ->
          let i = !next in
          incr next;
          ids := VMap.add v i !ids;
          Hashtbl.replace parent i i;
          i
    in
    let rec find i = if Hashtbl.find parent i = i then i else find (Hashtbl.find parent i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri = rj then false
      else begin
        Hashtbl.replace parent ri rj;
        true
      end
    in
    VMap.iter
      (fun u nbrs ->
        VSet.iter (fun v -> if V.compare u v < 0 then ignore (union (id u) (id v))) nbrs)
      g.adj;
    List.exists (fun (u, v) -> not (union (id u) (id v))) new_edges

  let has_cycle g =
    (* A forest has |E| = |V| - #components; count and compare. *)
    let n_edges = VMap.fold (fun _ s acc -> acc + VSet.cardinal s) g.adj 0 / 2 in
    let seen = ref VSet.empty in
    let comps = ref 0 in
    let rec go v =
      if not (VSet.mem v !seen) then begin
        seen := VSet.add v !seen;
        List.iter go (neighbours g v)
      end
    in
    List.iter
      (fun v ->
        if not (VSet.mem v !seen) then begin
          incr comps;
          go v
        end)
      (vertices g);
    n_edges > VMap.cardinal g.adj - !comps

  let pp ppf g =
    let es =
      VMap.fold
        (fun u nbrs acc -> VSet.fold (fun v acc -> if V.compare u v <= 0 then (u, v) :: acc else acc) nbrs acc)
        g.adj []
    in
    let pp_edge ppf (u, v) = Fmt.pf ppf "%a--%a" V.pp u V.pp v in
    Fmt.pf ppf "@[<hov>{%a}@]" Fmt.(list ~sep:comma pp_edge) (List.rev es)
end

(** Generic undirected graphs with incremental loop detection — the shape of
    the CGM commit graph (bipartite transaction/site nodes; a loop signals a
    potential conflict, paper §6). *)

module type VERTEX = Digraph.VERTEX

module type S = sig
  type vertex
  type t

  val empty : t
  val add_vertex : t -> vertex -> t
  val add_edge : t -> vertex -> vertex -> t
  val remove_edge : t -> vertex -> vertex -> t
  val remove_vertex : t -> vertex -> t
  val mem_edge : t -> vertex -> vertex -> bool
  val vertices : t -> vertex list
  val neighbours : t -> vertex -> vertex list
  val connected : t -> vertex -> vertex -> bool

  val adding_edges_creates_cycle : t -> (vertex * vertex) list -> bool
  (** Would inserting all of [new_edges] (in addition to the current edges)
      close a loop? Parallel edges within the batch count as loops. *)

  val has_cycle : t -> bool
  val pp : t Fmt.t
end

module Make (V : VERTEX) : S with type vertex = V.t

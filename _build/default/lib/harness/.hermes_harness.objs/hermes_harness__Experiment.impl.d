lib/harness/experiment.ml: Clock Fmt Hermes_baselines Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_workload List Scenario String Table_fmt

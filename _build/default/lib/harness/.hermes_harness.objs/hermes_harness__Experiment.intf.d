lib/harness/experiment.mli: Table_fmt

lib/harness/scenario.ml: Array Command Fmt Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim List Option Rng Site Sn Time Txn

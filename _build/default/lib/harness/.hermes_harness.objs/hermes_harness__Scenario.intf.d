lib/harness/scenario.mli: Fmt Hermes_core Hermes_history

lib/harness/table_fmt.ml: Array Buffer Fmt List String

lib/harness/table_fmt.mli:

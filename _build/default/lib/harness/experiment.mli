(** The experiment suite: the paper has no quantitative evaluation, so
    each experiment operationalizes one of its qualitative claims as a
    measured table (mapping in DESIGN.md §3, commentary in
    EXPERIMENTS.md). *)

module T := Table_fmt

val e1_global_view_distortion : unit -> T.t
(** H1 across certifier variants (paper §3/§4). *)

val e2_local_view_distortion : unit -> T.t
(** H2: direct-conflict local view distortion (§5.1). *)

val e3_indirect_distortion : unit -> T.t
(** H3: indirect-conflict local view distortion (§5.1). *)

val e4_overtaking : ?seeds:int -> unit -> T.t
(** The §5.3 race vs network jitter; extension on/off. *)

val e5_restrictiveness : ?seeds:int -> unit -> T.t
(** Failure-free abort rates and throughput: 2CM vs ticket vs CGM (§6). *)

val e6_failure_sweep : ?seeds:int -> unit -> T.t
(** Unilateral-abort sweep with per-step ablations. *)

val e7_clock_drift : ?seeds:int -> unit -> T.t
(** §5.2: drift causes only unnecessary aborts. *)

val e8_commit_retry : ?seeds:int -> unit -> T.t
(** Appendix C: commit-certification retry behaviour vs jitter. *)

val e9_multi_interval : ?seeds:int -> unit -> T.t
(** The §4.2 "several intervals might be stored" suggestion vs the
    store-only-the-last baseline — a reproduction finding: they are
    provably (and measurably) equivalent, because the candidate's interval
    always ends at the checking moment. *)

val e10_heterogeneity : ?seeds:int -> unit -> T.t
(** Heterogeneous LDBSs (different speeds, deadlock policies, clocks and
    failure behaviours, including site crashes) under one decentralized
    certifier. *)

val e11_crash_recovery : ?seeds:int -> unit -> T.t
(** Full site crashes with Agent-log recovery: in-doubt subtransactions
    rebuilt by resubmission, decisions retransmitted, duplicates answered
    idempotently. *)

val e12_deadlock_policies : ?seeds:int -> unit -> T.t
(** Timeout vs detection vs wait-die vs wound-wait local deadlock
    resolution under a hot-key workload; the certifier must stay correct
    over all of them. *)

val all : ?quick:bool -> unit -> T.t list

(* Plain-text result tables for the experiment harness. *)

type t = { title : string; headers : string list; rows : string list list; notes : string list }

let make ~title ~headers ?(notes = []) rows = { title; headers; rows; notes }

let f1 x = Fmt.str "%.1f" x
let f2 x = Fmt.str "%.2f" x
let pct x = Fmt.str "%.1f%%" (100.0 *. x)
let i = string_of_int
let b x = if x then "yes" else "no"

let widths t =
  let all = t.headers :: t.rows in
  let n = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let w = Array.make n 0 in
  List.iter (List.iteri (fun j cell -> w.(j) <- max w.(j) (String.length cell))) all;
  w

let hline w =
  let parts = Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w) in
  "+" ^ String.concat "+" parts ^ "+"

let render_row w row =
  let cells =
    List.mapi
      (fun j cell ->
        let pad = w.(j) - String.length cell in
        " " ^ cell ^ String.make (pad + 1) ' ')
      row
  in
  (* Rows narrower than the header get trailing empty cells. *)
  let missing = Array.length w - List.length row in
  let extra = List.init (max 0 missing) (fun k -> String.make (w.(List.length row + k) + 2) ' ') in
  "|" ^ String.concat "|" (cells @ extra) ^ "|"

let to_string t =
  let w = widths t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Fmt.str "\n== %s ==\n" t.title);
  Buffer.add_string buf (hline w ^ "\n");
  Buffer.add_string buf (render_row w t.headers ^ "\n");
  Buffer.add_string buf (hline w ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row w row ^ "\n")) t.rows;
  Buffer.add_string buf (hline w ^ "\n");
  List.iter (fun note -> Buffer.add_string buf ("  " ^ note ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (to_string t)

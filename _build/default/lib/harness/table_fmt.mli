(** Plain-text result tables for the experiment harness. *)

type t = { title : string; headers : string list; rows : string list list; notes : string list }

val make : title:string -> headers:string list -> ?notes:string list -> string list list -> t

(** Cell formatting helpers. *)

val f1 : float -> string
val f2 : float -> string
val pct : float -> string
val i : int -> string
val b : bool -> string

val to_string : t -> string
val print : t -> unit

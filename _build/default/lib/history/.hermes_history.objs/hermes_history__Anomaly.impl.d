lib/history/anomaly.ml: Commit_order_graph Fmt Hashtbl Hermes_kernel History Item List Op Option Replay Site Stdlib Txn

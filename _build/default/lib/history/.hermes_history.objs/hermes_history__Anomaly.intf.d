lib/history/anomaly.mli: Fmt Hermes_kernel History Item Op Site Txn

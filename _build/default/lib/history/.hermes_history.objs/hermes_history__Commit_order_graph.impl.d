lib/history/commit_order_graph.ml: Array Hashtbl Hermes_graph Hermes_kernel History List Op Option Queue Site Txn

lib/history/commit_order_graph.mli: Hermes_graph Hermes_kernel History Txn

lib/history/committed.ml: Hashtbl Hermes_kernel History Op Option Site Txn

lib/history/committed.mli: Hermes_kernel History Txn

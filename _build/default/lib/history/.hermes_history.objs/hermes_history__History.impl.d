lib/history/history.ml: Array Fmt Hashtbl Hermes_kernel Int List Op Site Time Txn

lib/history/history.mli: Fmt Hermes_kernel Op Site Time Txn

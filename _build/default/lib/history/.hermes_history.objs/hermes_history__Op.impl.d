lib/history/op.ml: Fmt Hermes_kernel Item Site Sn Stdlib Txn

lib/history/op.mli: Fmt Hermes_kernel Item Site Sn Txn

lib/history/projection.ml: Hermes_kernel History Op Site Txn

lib/history/projection.mli: Hermes_kernel History Site Txn

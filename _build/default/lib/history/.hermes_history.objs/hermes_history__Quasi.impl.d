lib/history/quasi.ml: Fmt Hermes_kernel List Serialization_graph Txn

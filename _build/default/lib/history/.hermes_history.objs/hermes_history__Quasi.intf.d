lib/history/quasi.mli: Fmt Hermes_kernel History Txn

lib/history/replay.ml: Fmt Hashtbl Hermes_kernel History Item List Op Option Txn

lib/history/replay.mli: Fmt Hermes_kernel History Item Txn

lib/history/report.ml: Anomaly Commit_order_graph Committed Fmt Hermes_kernel History List Quasi Rigorous Serialization_graph Site Txn Values View

lib/history/report.mli: Anomaly Fmt Hermes_kernel History Quasi Rigorous Site Txn Values View

lib/history/rigorous.ml: Array Fmt Hermes_kernel History List Op Projection Site

lib/history/rigorous.mli: Fmt Hermes_kernel History Op Site

lib/history/serial_format.ml: Buffer Fmt Fun Hermes_kernel History Item List Op Site Sn String Time Txn

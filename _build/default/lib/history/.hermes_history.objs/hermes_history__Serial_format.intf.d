lib/history/serial_format.mli: History Op

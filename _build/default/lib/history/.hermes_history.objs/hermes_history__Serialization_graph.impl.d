lib/history/serialization_graph.ml: Array Hashtbl Hermes_graph Hermes_kernel History Item List Op Txn

lib/history/serialization_graph.mli: Hermes_graph Hermes_kernel History Txn

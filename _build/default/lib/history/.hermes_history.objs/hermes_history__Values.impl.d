lib/history/values.ml: Fmt Hashtbl Hermes_kernel History Item List Op Option Stdlib Txn

lib/history/values.mli: Fmt Hermes_kernel History Item Op Txn

lib/history/view.ml: Fmt Hermes_kernel History Item List Replay Seq Serialization_graph Stdlib Txn

lib/history/view.mli: Fmt Hermes_kernel History Item Txn

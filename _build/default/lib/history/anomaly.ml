(* Detectors for the paper's two anomaly classes.

   Global view distortion (§4): a resubmitted local subtransaction T^i_kj
   (j > 0) gets another view — reads the same item from a different
   transaction — or, in the worst case, another decomposition than the
   original T^i_k0. Detected by comparing, per (transaction, site), the
   footprints and reads-from of all incarnations.

   Local view distortion (§5): local transactions get non-serializable
   views because local commits of global transactions occur in opposite
   orders at different sites. Possible only if the commit order graph of
   the committed projection is cyclic, so the detector reports CG cycles;
   an exact view-serializability refutation is available for small
   histories through {!View}. *)

open Hermes_kernel

type global_distortion = {
  txn : Txn.t;
  site : Site.t;
  inc_base : int;  (* the original incarnation compared against *)
  inc_other : int;  (* the diverging resubmission *)
  reason : [ `Different_view of Item.t | `Different_decomposition ];
}

let pp_global ppf d =
  let reason ppf = function
    | `Different_view item -> Fmt.pf ppf "reads %a from a different transaction" Item.pp item
    | `Different_decomposition -> Fmt.string ppf "has a different decomposition"
  in
  Fmt.pf ppf "global view distortion: %a at site %a, incarnation %d %a than incarnation %d" Txn.pp d.txn
    Site.pp d.site d.inc_other reason d.reason d.inc_base

(* The footprint of an incarnation: its DML operations in order, reads
   annotated with the logical transaction they read from. *)
type step = { kind : Op.kind; item : Item.t; from : Txn.t option }

let footprints h =
  let outcome = Replay.run h in
  let reads_tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Replay.logical_read) -> Hashtbl.replace reads_tbl (r.l_reader, r.l_item, r.l_occurrence) r.l_from)
    (Replay.logical_reads outcome);
  let foot : (Txn.Incarnation.t, step list ref) Hashtbl.t = Hashtbl.create 16 in
  let occ = Hashtbl.create 64 in
  History.iteri
    (fun _ op ->
      match op with
      | Op.Dml { kind; inc; item; _ } ->
          let steps =
            match Hashtbl.find_opt foot inc with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace foot inc r;
                r
          in
          let from =
            match kind with
            | Op.Write -> None
            | Op.Read ->
                let o = Option.value ~default:0 (Hashtbl.find_opt occ (inc, item)) in
                Hashtbl.replace occ (inc, item) (o + 1);
                Option.join (Hashtbl.find_opt reads_tbl (inc, item, o))
          in
          steps := { kind; item; from } :: !steps
      | _ -> ())
    h;
  Hashtbl.fold (fun inc steps acc -> (inc, List.rev !steps) :: acc) foot []

(* Compare all resubmissions against the first incarnation present.

   A resubmission that was itself unilaterally aborted partway replayed
   only a *prefix* of the subtransaction's commands; that is not a
   distortion as long as the prefix's decomposition and views agree with
   the original. A *committed* incarnation, by contrast, replayed
   everything and must agree exactly. *)
let global_view_distortions h =
  let foots = footprints h in
  let lookup txn site inc =
    List.find_map
      (fun ((i : Txn.Incarnation.t), steps) ->
        if Txn.equal i.txn txn && Site.equal i.site site && i.inc = inc then Some steps else None)
      foots
  in
  let out = ref [] in
  List.iter
    (fun txn ->
      if Txn.is_global txn then
        List.iter
          (fun site ->
            match History.incarnations_at h txn ~site with
            | [] | [ _ ] -> ()
            | base :: rest -> (
                match lookup txn site base with
                | None -> ()
                | Some base_steps ->
                    List.iter
                      (fun k ->
                        let steps = Option.value ~default:[] (lookup txn site k) in
                        let committed =
                          History.locally_committed h (Txn.Incarnation.make ~txn ~site ~inc:k)
                        in
                        let shapes l = List.map (fun s -> (s.kind, s.item)) l in
                        let is_prefix l1 l2 =
                          (* l1 a prefix of l2 *)
                          let rec go = function
                            | [], _ -> true
                            | _, [] -> false
                            | x :: xs, y :: ys -> Stdlib.( = ) x y && go (xs, ys)
                          in
                          go (l1, l2)
                        in
                        let shape_ok =
                          if committed then shapes steps = shapes base_steps
                          else is_prefix (shapes steps) (shapes base_steps)
                        in
                        if not shape_ok then
                          out :=
                            { txn; site; inc_base = base; inc_other = k; reason = `Different_decomposition }
                            :: !out
                        else
                          (* Views must agree on the common (prefix) length. *)
                          List.iteri
                            (fun i (s : step) ->
                              let b = List.nth base_steps i in
                              if s.kind = Op.Read && not (Stdlib.( = ) s.from b.from) then
                                out :=
                                  { txn; site; inc_base = base; inc_other = k; reason = `Different_view s.item }
                                  :: !out)
                            steps)
                      rest))
          (History.sites_of_txn h txn))
    (History.txns h);
  List.rev !out

(* Local view distortion is *possible* only if CG(C(H)) is cyclic
   (paper §5.1); the cycle is the diagnostic. *)
let commit_order_cycle h = Commit_order_graph.find_cycle h

let has_global_view_distortion h = global_view_distortions h <> []

(** Detectors for the paper's anomaly classes: global view distortion
    (a resubmitted incarnation gets a different view or decomposition, §4)
    and local view distortion (detected through commit-order-graph cycles,
    §5). Run these on the extended committed projection. *)

open Hermes_kernel

type global_distortion = {
  txn : Txn.t;
  site : Site.t;
  inc_base : int;
  inc_other : int;
  reason : [ `Different_view of Item.t | `Different_decomposition ];
}

val pp_global : global_distortion Fmt.t

type step = { kind : Op.kind; item : Item.t; from : Txn.t option }

val footprints : History.t -> (Txn.Incarnation.t * step list) list
(** Per incarnation: its DML operations in order, reads annotated with the
    logical transaction read from. *)

val global_view_distortions : History.t -> global_distortion list
val has_global_view_distortion : History.t -> bool

val commit_order_cycle : History.t -> Txn.t list option
(** A cycle in CG(H), if any — the paper's necessary condition for local
    view distortion. *)

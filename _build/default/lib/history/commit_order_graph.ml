(* The commit order graph CG(H) of paper §5.1: nodes are transactions with
   at least one local commit; there is an arc T_k -> T_i iff some local
   commit of T_k precedes some local commit of T_i at the *same site*
   (the paper writes C^x_kj <_H C^x_ig for some x — under rigorousness the
   order of local commits at one site is the unique local serialization
   order of conflicting transactions there). Local view distortion is
   possible only if CG(C(H)) is cyclic; if it is acyclic, a topological
   order is a global view serialization order.

   CG is the union of one *total order per site*, so materializing its
   O(n^2) arcs is both wasteful and, for histories with many local
   transactions, prohibitive. Acyclicity, cycle extraction and topological
   sorting are instead done directly on the per-site commit sequences by
   greedy emission: a transaction can be emitted when it is at the
   unemitted head of every site sequence it appears in; a stall with
   transactions remaining proves a cycle, which is extracted by following
   blocked heads. [build] still materializes the graph for small-history
   diagnostics. *)

open Hermes_kernel

module G = Hermes_graph.Digraph.Make (struct
  type t = Txn.t

  let compare = Txn.compare
  let pp = Txn.pp
end)

(* Per-site commit sequences, in history order (first committer first).
   A transaction commits at most once per site in any run the simulator
   produces; hand-built histories are deduplicated defensively (first
   commit wins — later duplicates add no new ordering constraints given
   the transitive per-site total order). *)
let commit_sequences h =
  let per_site : (Site.t, Txn.t list ref) Hashtbl.t = Hashtbl.create 8 in
  History.iteri
    (fun _ op ->
      match op with
      | Op.Local_commit inc -> (
          let s = inc.Txn.Incarnation.site in
          match Hashtbl.find_opt per_site s with
          | Some l -> l := inc.txn :: !l
          | None -> Hashtbl.add per_site s (ref [ inc.txn ]))
      | _ -> ())
    h;
  Hashtbl.fold
    (fun _ l acc ->
      let seen = Hashtbl.create 8 in
      let dedup =
        List.filter
          (fun x ->
            if Hashtbl.mem seen x then false
            else begin
              Hashtbl.add seen x ();
              true
            end)
          (List.rev !l)
      in
      Array.of_list dedup :: acc)
    per_site []

(* Greedy emission over the site sequences. Returns either a topological
   order of CG(H) or a cycle. *)
let emit h =
  let seqs = Array.of_list (commit_sequences h) in
  let n_seqs = Array.length seqs in
  let heads = Array.make n_seqs 0 in
  (* How many sequences each transaction appears in, and in how many it is
     currently at the (unemitted) head. *)
  let appears : (Txn.t, int) Hashtbl.t = Hashtbl.create 64 in
  let at_head : (Txn.t, int) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl x d = Hashtbl.replace tbl x (d + Option.value ~default:0 (Hashtbl.find_opt tbl x)) in
  Array.iter (fun seq -> Array.iter (fun x -> bump appears x 1) seq) seqs;
  let total = Hashtbl.length appears in
  let ready = Queue.create () in
  let check_ready x = if Hashtbl.find at_head x = Hashtbl.find appears x then Queue.add x ready in
  Array.iter
    (fun seq ->
      if Array.length seq > 0 then begin
        bump at_head seq.(0) 1;
        check_ready seq.(0)
      end)
    seqs;
  let emitted : (Txn.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let advance i =
    (* Move past emitted transactions; a new head may become ready. *)
    let seq = seqs.(i) in
    while heads.(i) < Array.length seq && Hashtbl.mem emitted seq.(heads.(i)) do
      heads.(i) <- heads.(i) + 1;
      if heads.(i) < Array.length seq then begin
        let x = seq.(heads.(i)) in
        bump at_head x 1;
        check_ready x
      end
    done
  in
  while not (Queue.is_empty ready) do
    let x = Queue.pop ready in
    if not (Hashtbl.mem emitted x) then begin
      Hashtbl.add emitted x ();
      order := x :: !order;
      for i = 0 to n_seqs - 1 do
        advance i
      done
    end
  done;
  if Hashtbl.length emitted = total then Ok (List.rev !order)
  else begin
    (* Stalled: every unemitted head waits for the unemitted head of some
       other sequence. Follow "waits for the head of a sequence where I am
       not at the head" until a transaction repeats — that is a CG cycle
       (h before x at that site means arc h -> x; the walk follows arcs
       backwards, so reverse it before returning). *)
    let head_of i = seqs.(i).(heads.(i)) in
    let contains_unemitted i x =
      let seq = seqs.(i) in
      let rec go j = j < Array.length seq && (Txn.equal seq.(j) x || go (j + 1)) in
      go heads.(i)
    in
    let blocker x =
      (* A sequence still containing x whose unemitted head is not x: that
         head must commit before x can. *)
      let rec find i =
        if i >= n_seqs then assert false (* a stalled txn is blocked somewhere *)
        else if
          heads.(i) < Array.length seqs.(i)
          && (not (Txn.equal (head_of i) x))
          && contains_unemitted i x
        then head_of i
        else find (i + 1)
      in
      find 0
    in
    (* Start from any unemitted head. *)
    let start =
      let rec find i =
        if i >= n_seqs then assert false
        else if heads.(i) < Array.length seqs.(i) then head_of i
        else find (i + 1)
      in
      find 0
    in
    let seen = Hashtbl.create 16 in
    (* The walk visits v0, v1 = blocker(v0), ... with edges v_{i+1} -> v_i,
       so [path] (newest first) is already in forward-edge order; when the
       blocker of the newest element is an already-seen vk, the cycle is
       the path segment down to vk, in that same order. *)
    let rec walk path x =
      if Hashtbl.mem seen x then begin
        let rec take acc = function
          | [] -> acc
          | y :: rest -> if Txn.equal y x then List.rev (y :: acc) else take (y :: acc) rest
        in
        take [] path
      end
      else begin
        Hashtbl.add seen x ();
        walk (x :: path) (blocker x)
      end
    in
    Error (walk [] start)
  end

let find_cycle h = match emit h with Ok _ -> None | Error cycle -> Some cycle
let is_acyclic h = find_cycle h = None

(* A global view serialization order, when CG is acyclic (paper §5.1). *)
let serialization_order h = match emit h with Ok order -> Some order | Error _ -> None

(* Materialized graph, for small-history diagnostics and tests. *)
let build h =
  let g = ref G.empty in
  List.iter
    (fun seq ->
      let rec arcs = function
        | [] -> ()
        | x :: rest ->
            List.iter (fun y -> if not (Txn.equal x y) then g := G.add_edge !g x y) rest;
            arcs rest
      in
      let l = Array.to_list seq in
      List.iter (fun x -> g := G.add_vertex !g x) l;
      arcs l)
    (commit_sequences h);
  !g

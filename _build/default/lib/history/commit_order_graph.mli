(** The commit order graph CG(H) (paper §5.1): arc T_k -> T_i iff a local
    commit of T_k precedes one of T_i at some common site. Local view
    distortion is possible only if CG(C(H)) is cyclic; when acyclic, a
    topological order is a global view serialization order. *)

open Hermes_kernel

module G : Hermes_graph.Digraph.S with type vertex = Txn.t

val build : History.t -> G.t
val is_acyclic : History.t -> bool
val find_cycle : History.t -> Txn.t list option
val serialization_order : History.t -> Txn.t list option

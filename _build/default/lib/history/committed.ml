(* The extended committed projection C(H) of the paper (§3).

   Besides the operations of globally committed *complete* transactions and
   of committed local transactions — as in Bernstein/Hadzilacos/Goodman —
   the paper's C(H) also includes *all unilaterally aborted local
   subtransactions that belong to globally committed complete
   transactions*. It is this extension that makes the resubmission
   anomalies visible: in H1, the aborted incarnation T^a_10 stays in C(H1)
   and exposes the two different views T_1 obtained.

   Computed in two linear passes (histories from long simulations contain
   hundreds of thousands of operations, so the per-transaction helpers of
   {!History} would be quadratic here). *)

open Hermes_kernel

module Inc_key = struct
  type t = Txn.t * Site.t * int
end

(* One linear pass collecting: which transactions have a global commit,
   which incarnations locally committed, and the maximal incarnation index
   per (transaction, site). *)
let index h =
  let globally_committed : (Txn.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let committed_inc : (Inc_key.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let max_inc : (Txn.t * Site.t, int) Hashtbl.t = Hashtbl.create 64 in
  History.iteri
    (fun _ op ->
      (match Op.incarnation op with
      | Some inc ->
          let key = (inc.Txn.Incarnation.txn, inc.site) in
          let prev = Option.value ~default:(-1) (Hashtbl.find_opt max_inc key) in
          if inc.inc > prev then Hashtbl.replace max_inc key inc.inc
      | None -> ());
      match op with
      | Op.Global_commit txn -> Hashtbl.replace globally_committed txn ()
      | Op.Local_commit inc ->
          Hashtbl.replace committed_inc (inc.Txn.Incarnation.txn, inc.site, inc.inc) ();
          if Txn.is_local inc.txn then Hashtbl.replace globally_committed inc.txn ()
      | _ -> ())
    h;
  (globally_committed, committed_inc, max_inc)

let keep_set h =
  let globally_committed, committed_inc, max_inc = index h in
  let keep : (Txn.t, unit) Hashtbl.t = Hashtbl.create 64 in
  (* A transaction is kept iff globally committed and complete: its final
     incarnation locally committed at every site it operated at. Collect
     the incomplete ones in one sweep of the (txn, site) index. *)
  let incomplete : (Txn.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (t, site) m -> if not (Hashtbl.mem committed_inc (t, site, m)) then Hashtbl.replace incomplete t ())
    max_inc;
  Hashtbl.iter
    (fun txn () -> if not (Hashtbl.mem incomplete txn) then Hashtbl.replace keep txn ())
    globally_committed;
  keep

let keep_txn h x = Hashtbl.mem (keep_set h) x

(* The extended committed projection: every operation (including operations
   and aborts of unilaterally aborted incarnations) of every kept
   transaction. *)
let extended h =
  let keep = keep_set h in
  History.filter (fun op -> Hashtbl.mem keep (Op.txn op)) h

(* The classical committed projection: as [extended], but operations of
   aborted incarnations are dropped (only what eventually committed
   remains). Under this projection the H1 anomaly is invisible — which is
   precisely the paper's argument for extending it. *)
let classical h =
  let c = extended h in
  let aborted : (Inc_key.t, unit) Hashtbl.t = Hashtbl.create 16 in
  History.iteri
    (fun _ op ->
      match op with
      | Op.Local_abort inc -> Hashtbl.replace aborted (inc.Txn.Incarnation.txn, inc.site, inc.inc) ()
      | _ -> ())
    c;
  History.filter
    (fun op ->
      match Op.incarnation op with
      | Some inc -> not (Hashtbl.mem aborted (inc.Txn.Incarnation.txn, inc.site, inc.inc))
      | None -> true)
    c

(** The committed projection C(H), in the paper's extended sense (§3):
    operations of globally committed complete transactions and committed
    local transactions, *including* their unilaterally aborted local
    subtransactions. The extension is what makes resubmission anomalies
    (global/local view distortion) formally visible. *)

open Hermes_kernel

val keep_txn : History.t -> Txn.t -> bool
val extended : History.t -> History.t

val classical : History.t -> History.t
(** The Bernstein/Hadzilacos/Goodman projection: aborted incarnations'
    operations dropped. Under it the H1 anomaly is invisible — the paper's
    motivation for the extension. *)

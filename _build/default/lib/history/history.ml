(* Linear histories: a total order of operations (paper §3, the shuffle of
   the transaction histories). The simulator produces one by tracing; tests
   also build them literally, e.g. the paper's H1, H2, H3. *)

open Hermes_kernel

type event = { op : Op.t; at : Time.t }

type t = { ops : Op.t array }

let of_ops ops = { ops = Array.of_list ops }

let of_events events =
  let events = List.stable_sort (fun a b -> Time.compare a.at b.at) events in
  { ops = Array.of_list (List.map (fun e -> e.op) events) }

let ops t = Array.to_list t.ops
let length t = Array.length t.ops
let get t i = t.ops.(i)
let append a b = { ops = Array.append a.ops b.ops }
let concat ts = { ops = Array.concat (List.map (fun t -> t.ops) ts) }
let filter f t = { ops = Array.of_list (List.filter f (ops t)) }

let fold f init t = Array.fold_left f init t.ops
let iteri f t = Array.iteri f t.ops
let exists f t = Array.exists f t.ops

(* Transactions in order of first appearance. *)
let txns t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun op ->
      let x = Op.txn op in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        acc := x :: !acc
      end)
    t.ops;
  List.rev !acc

let global_txns t = List.filter Txn.is_global (txns t)
let local_txns t = List.filter Txn.is_local (txns t)

let ops_of_txn t x = List.filter (fun op -> Txn.equal (Op.txn op) x) (ops t)

let sites_of_txn t x =
  List.fold_left
    (fun acc op ->
      if Txn.equal (Op.txn op) x then match Op.site op with Some s -> Site.Set.add s acc | None -> acc
      else acc)
    Site.Set.empty (ops t)
  |> Site.Set.elements

(* Incarnation indices of [x] at [site], ascending. *)
let incarnations_at t x ~site =
  List.fold_left
    (fun acc op ->
      match Op.incarnation op with
      | Some inc when Txn.equal inc.Txn.Incarnation.txn x && Site.equal inc.site site ->
          if List.mem inc.inc acc then acc else inc.inc :: acc
      | _ -> acc)
    [] (ops t)
  |> List.sort Int.compare

let final_incarnation_at t x ~site =
  match List.rev (incarnations_at t x ~site) with
  | [] -> None
  | k :: _ -> Some (Txn.Incarnation.make ~txn:x ~site ~inc:k)

let is_globally_committed t x =
  match x with
  | Txn.Global _ -> exists (fun op -> match op with Op.Global_commit y -> Txn.equal x y | _ -> false) t
  | Txn.Local _ ->
      exists
        (fun op -> match op with Op.Local_commit inc -> Txn.equal inc.Txn.Incarnation.txn x | _ -> false)
        t

let locally_committed t inc =
  exists (fun op -> match op with Op.Local_commit j -> Txn.Incarnation.equal inc j | _ -> false) t

(* A transaction is committed *and complete* (paper §3) when it is globally
   committed and its final incarnation has locally committed at every site
   it operated at. Local transactions are complete iff committed. *)
let is_complete t x =
  is_globally_committed t x
  && List.for_all
       (fun site ->
         match final_incarnation_at t x ~site with
         | None -> true
         | Some inc -> locally_committed t inc)
       (sites_of_txn t x)

let pp ppf t = Fmt.pf ppf "@[<hov>%a@]" Fmt.(list ~sep:sp Op.pp) (ops t)
let pp_with_from ppf t = Fmt.pf ppf "@[<hov>%a@]" Fmt.(list ~sep:sp Op.pp_with_from) (ops t)
let show t = Fmt.str "%a" pp t

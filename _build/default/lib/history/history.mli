(** Linear histories: a total order of operations (paper §3). *)

open Hermes_kernel

type event = { op : Op.t; at : Time.t }

type t

val of_ops : Op.t list -> t
val of_events : event list -> t
(** Stable-sorts by time, so simultaneous events keep trace order. *)

val ops : t -> Op.t list
val length : t -> int
val get : t -> int -> Op.t
val append : t -> t -> t
val concat : t list -> t
val filter : (Op.t -> bool) -> t -> t
val fold : ('a -> Op.t -> 'a) -> 'a -> t -> 'a
val iteri : (int -> Op.t -> unit) -> t -> unit
val exists : (Op.t -> bool) -> t -> bool

val txns : t -> Txn.t list
(** In order of first appearance. *)

val global_txns : t -> Txn.t list
val local_txns : t -> Txn.t list
val ops_of_txn : t -> Txn.t -> Op.t list
val sites_of_txn : t -> Txn.t -> Site.t list

val incarnations_at : t -> Txn.t -> site:Site.t -> int list
(** Incarnation indices of the transaction's subtransaction at [site],
    ascending. *)

val final_incarnation_at : t -> Txn.t -> site:Site.t -> Txn.Incarnation.t option

val is_globally_committed : t -> Txn.t -> bool
(** Global transactions: has a [Global_commit]. Local transactions: has a
    [Local_commit]. *)

val locally_committed : t -> Txn.Incarnation.t -> bool

val is_complete : t -> Txn.t -> bool
(** Committed *and complete* (paper §3): globally committed, and the final
    incarnation locally committed at every involved site. *)

val pp : t Fmt.t
val pp_with_from : t Fmt.t
val show : t -> string

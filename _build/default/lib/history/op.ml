(* Operations of a history, following the paper's §3 model.

   A history contains, at the leaf level, the elementary Read and Write
   operations the LTM produced from the DML commands (indexed by logical
   transaction, resubmission/incarnation and site: R_ik[X^s]); above them,
   local Commit and Abort operations of incarnations (C^s_ik, A^s_ik),
   Prepare operations (P^s_i — the 2PCA recorded the decision to send
   READY), and the global Commit/Abort (C_i, A_i — the Coordinator recorded
   its decision in stable storage).

   Reads carry the incarnation the value was read from ([None] = the
   hypothetical initializing transaction T_0), recorded by the simulator or
   computed by the replay semantics; this is what view equivalence is
   judged on. *)

open Hermes_kernel

type kind = Read | Write

let equal_kind a b = match (a, b) with Read, Read | Write, Write -> true | (Read | Write), _ -> false
let compare_kind a b = match (a, b) with Read, Read | Write, Write -> 0 | Read, Write -> -1 | Write, Read -> 1

type t =
  | Dml of {
      kind : kind;
      inc : Txn.Incarnation.t;
      item : Item.t;
      from : Txn.Incarnation.t option;  (* reads: the incarnation read from *)
      value : int option;  (* the value observed (reads) or installed (writes); None for
                              hand-built histories and deletes *)
    }
  | Local_commit of Txn.Incarnation.t
  | Local_abort of Txn.Incarnation.t
  | Prepare of { txn : Txn.t; site : Site.t; sn : Sn.t option }
  | Global_commit of Txn.t
  | Global_abort of Txn.t

let read ?value ~inc ~item ~from () = Dml { kind = Read; inc; item; from; value }
let write ?value ~inc ~item () = Dml { kind = Write; inc; item; from = None; value }

let txn = function
  | Dml { inc; _ } | Local_commit inc | Local_abort inc -> inc.Txn.Incarnation.txn
  | Prepare { txn; _ } | Global_commit txn | Global_abort txn -> txn

let site = function
  | Dml { inc; _ } | Local_commit inc | Local_abort inc -> Some inc.Txn.Incarnation.site
  | Prepare { site; _ } -> Some site
  | Global_commit _ | Global_abort _ -> None

let incarnation = function
  | Dml { inc; _ } | Local_commit inc | Local_abort inc -> Some inc
  | Prepare _ | Global_commit _ | Global_abort _ -> None

let item = function Dml { item; _ } -> Some item | _ -> None

let is_dml = function Dml _ -> true | _ -> false
let is_read = function Dml { kind = Read; _ } -> true | _ -> false
let is_write = function Dml { kind = Write; _ } -> true | _ -> false

let is_termination_of op ~inc:i =
  match op with
  | Local_commit j | Local_abort j -> Txn.Incarnation.equal i j
  | Dml _ | Prepare _ | Global_commit _ | Global_abort _ -> false

(* Two DML operations conflict iff they touch the same item, belong to
   different *logical* transactions, and at least one writes. Operations of
   two incarnations of the same global transaction never conflict — they
   are the same transaction from the global point of view (§3). *)
let conflicts a b =
  match (a, b) with
  | Dml da, Dml db ->
      Item.equal da.item db.item
      && (not (Txn.equal da.inc.Txn.Incarnation.txn db.inc.Txn.Incarnation.txn))
      && (da.kind = Write || db.kind = Write)
  | _ -> false

(* Conflict at the LTM level: incarnations are independent transactions to
   the local scheduler, so conflicts are between distinct incarnations.
   Used by the rigorousness checker. *)
let conflicts_ltm a b =
  match (a, b) with
  | Dml da, Dml db ->
      Item.equal da.item db.item
      && (not (Txn.Incarnation.equal da.inc db.inc))
      && (da.kind = Write || db.kind = Write)
  | _ -> false

let pp_inc_suffix ppf (inc : Txn.Incarnation.t) =
  match inc.txn with
  | Txn.Global i -> Fmt.pf ppf "%d.%d" i inc.inc
  | Txn.Local _ -> Txn.pp ppf inc.txn

let pp ppf = function
  | Dml { kind; inc; item; _ } ->
      let k = match kind with Read -> "R" | Write -> "W" in
      Fmt.pf ppf "%s_%a[%a]" k pp_inc_suffix inc Item.pp item
  | Local_commit inc -> Fmt.pf ppf "C^%s_%a" (Site.name inc.site) pp_inc_suffix inc
  | Local_abort inc -> Fmt.pf ppf "A^%s_%a" (Site.name inc.site) pp_inc_suffix inc
  | Prepare { txn; site; _ } -> Fmt.pf ppf "P^%s_%a" (Site.name site) Txn.pp txn
  | Global_commit txn -> Fmt.pf ppf "C_%a" Txn.pp txn
  | Global_abort txn -> Fmt.pf ppf "A_%a" Txn.pp txn

let pp_with_from ppf op =
  match op with
  | Dml { kind = Read; from; _ } ->
      let pp_from ppf = function
        | None -> Fmt.string ppf "T0"
        | Some (w : Txn.Incarnation.t) -> Txn.Incarnation.pp ppf w
      in
      Fmt.pf ppf "%a<-%a" pp op pp_from from
  | _ -> pp ppf op

let show t = Fmt.str "%a" pp t

(* Operations are built from ints, strings and plain variants, so
   structural equality and ordering are sound. *)
let equal (a : t) (b : t) = Stdlib.( = ) a b
let compare (a : t) (b : t) = Stdlib.compare a b

(** Operations of a history (paper §3): elementary reads/writes indexed by
    (transaction, incarnation, site), local commits/aborts of incarnations,
    Prepare operations, and global commit/abort. Reads carry the
    incarnation they read from ([None] = the initializing transaction
    T_0). *)

open Hermes_kernel

type kind = Read | Write

val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int

type t =
  | Dml of {
      kind : kind;
      inc : Txn.Incarnation.t;
      item : Item.t;
      from : Txn.Incarnation.t option;  (** reads: the incarnation read from *)
      value : int option;
          (** the value observed (reads) or installed (writes); [None] for
              hand-built histories and deletes *)
    }
  | Local_commit of Txn.Incarnation.t
  | Local_abort of Txn.Incarnation.t
  | Prepare of { txn : Txn.t; site : Site.t; sn : Sn.t option }
  | Global_commit of Txn.t
  | Global_abort of Txn.t

val read : ?value:int -> inc:Txn.Incarnation.t -> item:Item.t -> from:Txn.Incarnation.t option -> unit -> t
val write : ?value:int -> inc:Txn.Incarnation.t -> item:Item.t -> unit -> t

val txn : t -> Txn.t
val site : t -> Site.t option
(** [None] for global commit/abort, which happen at the coordinator. *)

val incarnation : t -> Txn.Incarnation.t option
val item : t -> Item.t option
val is_dml : t -> bool
val is_read : t -> bool
val is_write : t -> bool
val is_termination_of : t -> inc:Txn.Incarnation.t -> bool

val conflicts : t -> t -> bool
(** Conflict between *logical* transactions: same item, different logical
    transactions, at least one write. Incarnations of the same global
    transaction never conflict. *)

val conflicts_ltm : t -> t -> bool
(** Conflict as the LTM sees it: between distinct incarnations (each
    incarnation is an independent local transaction). Used by the
    rigorousness checker. *)

val pp : t Fmt.t
(** Paper-style notation: [R_1.0[Xa]], [P^a_T1], [C^a_1.1], [C_T1]. *)

val pp_with_from : t Fmt.t
(** Like {!pp} but reads also show their reads-from source. *)

val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

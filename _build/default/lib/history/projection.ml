(* Projections of a history (paper §3): the local history H(i) is the
   projection of H onto the operations of the i-th site. Global
   commit/abort operations occur at no site and are dropped. *)

open Hermes_kernel

let site h s = History.filter (fun op -> match Op.site op with Some s' -> Site.equal s s' | None -> false) h

let txn h x = History.filter (fun op -> Txn.equal (Op.txn op) x) h

let dml h = History.filter Op.is_dml h

(* The projection the LTM actually schedules: elementary operations and
   local terminations at one site (no Prepare — prepares live in the 2PCA,
   above the local interface). *)
let ltm h s =
  History.filter
    (fun op ->
      match op with
      | Op.Dml { inc; _ } | Op.Local_commit inc | Op.Local_abort inc -> Site.equal inc.Txn.Incarnation.site s
      | Op.Prepare _ | Op.Global_commit _ | Op.Global_abort _ -> false)
    h

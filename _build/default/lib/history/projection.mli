(** Projections of a history (paper §3). *)

open Hermes_kernel

val site : History.t -> Site.t -> History.t
(** H(s): operations of site [s] (global commit/abort dropped). *)

val txn : History.t -> Txn.t -> History.t
val dml : History.t -> History.t

val ltm : History.t -> Site.t -> History.t
(** What the local scheduler saw: elementary operations plus local
    terminations at [s] (Prepare operations live above the local
    interface). *)

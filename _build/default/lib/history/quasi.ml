(* Quasi serializability — the weaker correctness criterion of Du &
   Elmagarmid ("Quasi Serializability: a Correctness Criterion for Global
   Concurrency Control in InterBase", VLDB 1989), which the paper cites as
   [11] for the indirect-conflict problem and implicitly argues against by
   insisting on full view serializability.

   A history is quasi serializable iff it is (conflict-)equivalent to a
   *quasi-serial* history: one where the global transactions execute
   serially (local transactions may interleave freely as long as each
   local history stays serializable). Operationally: there must exist a
   total order of the global transactions consistent with every
   conflict-induced dependency between them — including dependencies
   transmitted through chains of local transactions.

   Deciding it is simple on the serialization graph: G_i must-precede G_j
   iff SG(H) has any path from G_i to G_j, and a quasi-serial equivalent
   also needs every local transaction placeable entirely before or after
   each global block it conflicts with. So quasi serializability holds iff
   no strongly connected component of SG(C(H)) that contains a global
   transaction has size >= 2. (A cycle among locals only is impossible
   here: locals conflict only within their site, and the rigorous local
   schedulers keep each site's projection acyclic; note that a
   global-local 2-cycle *can* arise through the extended committed
   projection's aborted incarnations — the H1 mechanism — and it does
   refute QSR.)

   The point of having it here: histories like H2/H3 show the *gap*
   between QSR and the paper's criterion — and some naive-agent histories
   are QSR yet still give local transactions impossible views, which is
   exactly why the paper demands view serializability instead. *)

open Hermes_kernel

type verdict =
  | Quasi_serializable of Txn.t list  (* a witness order of the global transactions *)
  | Not_quasi_serializable of Txn.t list  (* a non-trivial SCC containing a global transaction *)

let pp_verdict ppf = function
  | Quasi_serializable order ->
      Fmt.pf ppf "quasi serializable (globals as %a)" Fmt.(list ~sep:sp Txn.pp) order
  | Not_quasi_serializable scc ->
      Fmt.pf ppf "NOT quasi serializable (entangled globals: %a)" Fmt.(list ~sep:comma Txn.pp) scc

let check h =
  let g = Serialization_graph.build h in
  let sccs = Serialization_graph.G.sccs g in
  let bad =
    List.find_opt (fun scc -> List.length scc >= 2 && List.exists Txn.is_global scc) sccs
  in
  match bad with
  | Some scc -> Not_quasi_serializable scc
  | None ->
      (* SCCs come out in topological order of the component DAG; the
         globals in that order witness a quasi-serial equivalent. *)
      Quasi_serializable (List.concat_map (List.filter Txn.is_global) sccs)

let is_quasi_serializable h =
  match check h with Quasi_serializable _ -> true | Not_quasi_serializable _ -> false

(** Quasi serializability (Du & Elmagarmid, VLDB 1989 — the paper's [11]):
    equivalence to a history where global transactions run serially.
    Decided via the SCCs of the serialization graph: no component may hold
    two global transactions. Included to exhibit the gap between QSR and
    the paper's view-serializability criterion. *)

open Hermes_kernel

type verdict =
  | Quasi_serializable of Txn.t list  (** witness order of the globals *)
  | Not_quasi_serializable of Txn.t list  (** a non-trivial SCC containing a global *)

val pp_verdict : verdict Fmt.t
val check : History.t -> verdict
val is_quasi_serializable : History.t -> bool

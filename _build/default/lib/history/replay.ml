(* Replay semantics: execute a linear history against an abstract store
   that tracks, per item, which incarnation last (physically) wrote it.

   Writes are in-place (as in the simulated LDBSs); a local abort restores
   the before images of everything its incarnation wrote (the RR
   assumption); a local commit makes the incarnation's writes permanent.
   A read observes the current physical writer of the item — under a
   rigorous scheduler that is always a committed (or own) write, but the
   replay does not assume rigorousness, so it can also characterize what a
   broken schedule "really did".

   The outcome — the reads-from relation and the final writer of every
   item — is exactly the data on which view equivalence is defined (§3,
   following Bernstein/Hadzilacos/Goodman, with only committed writes as
   final writes). *)

open Hermes_kernel

type read = {
  reader : Txn.Incarnation.t;
  item : Item.t;
  occurrence : int;  (* 0-based count of this incarnation's reads of this item *)
  from : Txn.Incarnation.t option;  (* None = initializing transaction T_0 *)
}

type outcome = {
  reads : read list;  (* in history order *)
  final : Txn.Incarnation.t option Item.Map.t;  (* physical writer after the last event *)
  uncommitted : Txn.Incarnation.t list;  (* incarnations that wrote but never terminated *)
}

(* Per-incarnation undo log entry: the writer the item had before this
   incarnation's first overwrite is what an abort must restore. Recording
   every write and restoring in reverse order is equivalent. *)
type undo = (Item.t * Txn.Incarnation.t option) list

let run h =
  let state : (Item.t, Txn.Incarnation.t option) Hashtbl.t = Hashtbl.create 64 in
  let undos : (Txn.Incarnation.t, undo ref) Hashtbl.t = Hashtbl.create 16 in
  let occurrences : (Txn.Incarnation.t * Item.t, int) Hashtbl.t = Hashtbl.create 64 in
  let reads = ref [] in
  let writer item = match Hashtbl.find_opt state item with Some w -> w | None -> None in
  let undo_of inc =
    match Hashtbl.find_opt undos inc with
    | Some u -> u
    | None ->
        let u = ref [] in
        Hashtbl.replace undos inc u;
        u
  in
  History.iteri
    (fun _ op ->
      match op with
      | Op.Dml { kind = Read; inc; item; _ } ->
          let occ = Option.value ~default:0 (Hashtbl.find_opt occurrences (inc, item)) in
          Hashtbl.replace occurrences (inc, item) (occ + 1);
          reads := { reader = inc; item; occurrence = occ; from = writer item } :: !reads
      | Op.Dml { kind = Write; inc; item; _ } ->
          let u = undo_of inc in
          u := (item, writer item) :: !u;
          Hashtbl.replace state item (Some inc)
      | Op.Local_abort inc -> (
          match Hashtbl.find_opt undos inc with
          | None -> ()
          | Some u ->
              List.iter (fun (item, before) -> Hashtbl.replace state item before) !u;
              Hashtbl.remove undos inc)
      | Op.Local_commit inc -> Hashtbl.remove undos inc
      | Op.Prepare _ | Op.Global_commit _ | Op.Global_abort _ -> ())
    h;
  let final = Hashtbl.fold Item.Map.add state Item.Map.empty in
  let uncommitted = Hashtbl.fold (fun inc _ acc -> inc :: acc) undos [] in
  { reads = List.rev !reads; final; uncommitted }

(* The logical (transaction-level) view of an outcome: the paper judges
   reads-from between *transactions* (T^a_11 reads X^a "from T_2"), not
   incarnations, and final writes likewise. *)
type logical_read = {
  l_reader : Txn.Incarnation.t;  (* reader stays incarnation-level: each incarnation has its own view *)
  l_item : Item.t;
  l_occurrence : int;
  l_from : Txn.t option;
}

let logical_reads outcome =
  List.map
    (fun r ->
      {
        l_reader = r.reader;
        l_item = r.item;
        l_occurrence = r.occurrence;
        l_from = Option.map (fun (w : Txn.Incarnation.t) -> w.txn) r.from;
      })
    outcome.reads

let logical_final outcome = Item.Map.map (Option.map (fun (w : Txn.Incarnation.t) -> w.txn)) outcome.final

let pp_read ppf r =
  let pp_from ppf = function None -> Fmt.string ppf "T0" | Some w -> Txn.Incarnation.pp ppf w in
  Fmt.pf ppf "%a reads %a#%d from %a" Txn.Incarnation.pp r.reader Item.pp r.item r.occurrence pp_from r.from

(** Replay semantics: execute a linear history against an abstract store
    tracking per-item physical writers, with in-place writes, undo on local
    abort (RR) and promotion on local commit. The outcome (reads-from +
    final writers) is the data view equivalence is defined on. *)

open Hermes_kernel

type read = {
  reader : Txn.Incarnation.t;
  item : Item.t;
  occurrence : int;  (** 0-based count of this incarnation's reads of this item *)
  from : Txn.Incarnation.t option;  (** [None] = initializing transaction T_0 *)
}

type outcome = {
  reads : read list;  (** in history order *)
  final : Txn.Incarnation.t option Item.Map.t;
  uncommitted : Txn.Incarnation.t list;  (** wrote but never terminated *)
}

val run : History.t -> outcome

type logical_read = {
  l_reader : Txn.Incarnation.t;
  l_item : Item.t;
  l_occurrence : int;
  l_from : Txn.t option;
}

val logical_reads : outcome -> logical_read list
(** Reads-from at the transaction level — the granularity the paper judges
    views at (T^a_11 reads X^a "from T_2"). *)

val logical_final : outcome -> Txn.t option Item.Map.t

val pp_read : read Fmt.t

(* Rigorousness checker (the SRS assumption; Breitbart, Georgakopoulos,
   Rusinkiewicz & Silberschatz, IEEE TSE 1991).

   A history is rigorous iff it is strict and no item is written while a
   transaction that read it is still active; equivalently, for every pair
   of conflicting operations o1 in T, o2 in S (T <> S, o1 before o2), T
   terminates (commits or aborts) between o1 and o2. Conflicts are judged
   at the LTM level: each incarnation is an independent local transaction.

   The checker is the independent witness the whole reproduction leans on:
   the Certifier's soundness argument (the Conflict Detection Basis, §4.1)
   assumes local rigorousness, and property tests run this checker over
   the histories our S2PL scheduler actually produced. *)

open Hermes_kernel

type violation = { first : Op.t; first_index : int; second : Op.t; second_index : int }

let pp_violation ppf v =
  Fmt.pf ppf "%a (#%d) conflicts with later %a (#%d) without intervening termination" Op.pp v.first
    v.first_index Op.pp v.second v.second_index

(* All rigorousness violations in (what should be) a single-site history.
   O(n^2) over DML operations — histories under test are bounded. *)
let violations h =
  let ops = Array.of_list (History.ops h) in
  let n = Array.length ops in
  let terminated_between i j inc =
    let rec go k = k < j && (Op.is_termination_of ops.(k) ~inc || go (k + 1)) in
    go (i + 1)
  in
  let out = ref [] in
  for i = 0 to n - 1 do
    match ops.(i) with
    | Op.Dml { inc; _ } ->
        for j = i + 1 to n - 1 do
          if Op.conflicts_ltm ops.(i) ops.(j) && not (terminated_between i j inc) then
            out := { first = ops.(i); first_index = i; second = ops.(j); second_index = j } :: !out
        done
    | _ -> ()
  done;
  List.rev !out

let is_rigorous h = violations h = []

(* Check every site projection of a global history. *)
let check_all_sites h =
  let sites =
    History.fold
      (fun acc op -> match Op.site op with Some s -> Site.Set.add s acc | None -> acc)
      Site.Set.empty h
  in
  Site.Set.fold (fun s acc -> (s, violations (Projection.ltm h s)) :: acc) sites []
  |> List.rev

let all_sites_rigorous h = List.for_all (fun (_, vs) -> vs = []) (check_all_sites h)

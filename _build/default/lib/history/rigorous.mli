(** Rigorousness checker (the SRS assumption): a history is rigorous iff
    for every pair of conflicting operations of distinct (LTM-level)
    transactions, the first transaction terminates before the second
    operation. This is the independent witness for the Certifier's
    Conflict Detection Basis (§4.1). *)

open Hermes_kernel

type violation = { first : Op.t; first_index : int; second : Op.t; second_index : int }

val pp_violation : violation Fmt.t

val violations : History.t -> violation list
(** Violations in a single-site (LTM-level) history. *)

val is_rigorous : History.t -> bool

val check_all_sites : History.t -> (Site.t * violation list) list
(** Check the LTM projection of every site appearing in the history. *)

val all_sites_rigorous : History.t -> bool

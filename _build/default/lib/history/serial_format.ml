(* A line-oriented interchange format for histories.

   The simulator can dump a recorded history to a file and the verifier
   can re-read and analyze it offline (`hermes run --dump` /
   `hermes verify`) — the checkers need nothing but the history, so traces
   can be archived, diffed and re-verified independently of the run.

   One operation per line:

     R  <txn> <inc> <site> <table> <key> <from> [<value>]
     W  <txn> <inc> <site> <table> <key> [<value>]
     LC <txn> <inc> <site>          local commit
     LA <txn> <inc> <site>          local abort
     P  <txn> <site> <sn>           prepare (sn = <ts>.<site>.<seq> or -)
     GC <txn>                       global commit
     GA <txn>                       global abort

   where <txn> is G<n> for global transactions or L<site>:<n> for local
   ones, and <from> is "T0" (the initializing transaction), "-" (a write),
   or <txn>.<inc>@<site> for the writing incarnation. The optional
   trailing <value> ("-" when unknown) is the value observed by a read or
   installed by a write. Lines starting with '#' and blank lines are
   ignored. *)

open Hermes_kernel

let print_txn = function
  | Txn.Global n -> Fmt.str "G%d" n
  | Txn.Local { site; n } -> Fmt.str "L%d:%d" (Site.to_int site) n

let print_from = function
  | None -> "T0"
  | Some (i : Txn.Incarnation.t) ->
      Fmt.str "%s.%d@%d" (print_txn i.Txn.Incarnation.txn) i.inc (Site.to_int i.site)

let print_value = function None -> "-" | Some v -> string_of_int v

let print_op op =
  let inc_parts (i : Txn.Incarnation.t) = (print_txn i.txn, i.inc, Site.to_int i.site) in
  match op with
  | Op.Dml { kind = Op.Read; inc; item; from; value } ->
      let txn, k, s = inc_parts inc in
      Fmt.str "R %s %d %d %s %d %s %s" txn k s (Item.table item) (Item.key item) (print_from from)
        (print_value value)
  | Op.Dml { kind = Op.Write; inc; item; value; _ } ->
      let txn, k, s = inc_parts inc in
      Fmt.str "W %s %d %d %s %d %s" txn k s (Item.table item) (Item.key item) (print_value value)
  | Op.Local_commit inc ->
      let txn, k, s = inc_parts inc in
      Fmt.str "LC %s %d %d" txn k s
  | Op.Local_abort inc ->
      let txn, k, s = inc_parts inc in
      Fmt.str "LA %s %d %d" txn k s
  | Op.Prepare { txn; site; sn } ->
      let sn_str =
        match sn with
        | None -> "-"
        | Some sn -> Fmt.str "%d.%d.%d" (Time.to_int (Sn.ts sn)) (Site.to_int (Sn.site sn)) sn.Sn.seq
      in
      Fmt.str "P %s %d %s" (print_txn txn) (Site.to_int site) sn_str
  | Op.Global_commit txn -> Fmt.str "GC %s" (print_txn txn)
  | Op.Global_abort txn -> Fmt.str "GA %s" (print_txn txn)

let to_string h =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# hermes history v1\n";
  List.iter
    (fun op ->
      Buffer.add_string buf (print_op op);
      Buffer.add_char buf '\n')
    (History.ops h);
  Buffer.contents buf

let to_file h path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string h))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let fail line fmt = Fmt.kstr (fun s -> raise (Parse_error (line, s))) fmt

let parse_txn line s =
  match s.[0] with
  | 'G' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n -> Txn.global n
      | None -> fail line "bad global transaction %S" s)
  | 'L' -> (
      match String.split_on_char ':' (String.sub s 1 (String.length s - 1)) with
      | [ site; n ] -> (
          match (int_of_string_opt site, int_of_string_opt n) with
          | Some site, Some n -> Txn.local ~site:(Site.of_int site) ~n
          | _ -> fail line "bad local transaction %S" s)
      | _ -> fail line "bad local transaction %S" s)
  | _ -> fail line "bad transaction %S" s
  | exception Invalid_argument _ -> fail line "empty transaction field"

let parse_int line s =
  match int_of_string_opt s with Some n -> n | None -> fail line "bad integer %S" s

let parse_inc line ~txn ~inc ~site =
  Txn.Incarnation.make ~txn:(parse_txn line txn) ~site:(Site.of_int (parse_int line site))
    ~inc:(parse_int line inc)

let parse_from line s =
  if s = "T0" then None
  else
    (* <txn>.<inc>@<site> *)
    match String.index_opt s '@' with
    | None -> fail line "bad reads-from %S" s
    | Some at -> (
        let before = String.sub s 0 at in
        let site = String.sub s (at + 1) (String.length s - at - 1) in
        match String.rindex_opt before '.' with
        | None -> fail line "bad reads-from %S" s
        | Some dot ->
            let txn = String.sub before 0 dot in
            let inc = String.sub before (dot + 1) (String.length before - dot - 1) in
            Some (parse_inc line ~txn ~inc ~site))

let parse_sn line s =
  if s = "-" then None
  else
    match String.split_on_char '.' s with
    | [ ts; site; seq ] ->
        Some
          (Sn.make
             ~ts:(Time.of_int (parse_int line ts))
             ~site:(Site.of_int (parse_int line site))
             ~seq:(parse_int line seq))
    | _ -> fail line "bad serial number %S" s

let parse_line lineno s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (fun x -> x <> "") with
  | [] -> None
  | tag :: _ when String.length tag > 0 && tag.[0] = '#' -> None
  | "R" :: txn :: inc :: site :: table :: key :: from :: rest ->
      let i = parse_inc lineno ~txn ~inc ~site in
      let value =
        match rest with
        | [] | [ "-" ] -> None
        | [ v ] -> Some (parse_int lineno v)
        | _ -> fail lineno "trailing junk on read record"
      in
      Some
        (Op.read ?value ~inc:i
           ~item:(Item.make ~site:i.Txn.Incarnation.site ~table ~key:(parse_int lineno key))
           ~from:(parse_from lineno from) ())
  | "W" :: txn :: inc :: site :: table :: key :: rest ->
      let i = parse_inc lineno ~txn ~inc ~site in
      let value =
        match rest with
        | [] | [ "-" ] -> None
        | [ v ] -> Some (parse_int lineno v)
        | _ -> fail lineno "trailing junk on write record"
      in
      Some
        (Op.write ?value ~inc:i
           ~item:(Item.make ~site:i.Txn.Incarnation.site ~table ~key:(parse_int lineno key))
           ())
  | [ "LC"; txn; inc; site ] -> Some (Op.Local_commit (parse_inc lineno ~txn ~inc ~site))
  | [ "LA"; txn; inc; site ] -> Some (Op.Local_abort (parse_inc lineno ~txn ~inc ~site))
  | [ "P"; txn; site; sn ] ->
      Some
        (Op.Prepare
           {
             txn = parse_txn lineno txn;
             site = Site.of_int (parse_int lineno site);
             sn = parse_sn lineno sn;
           })
  | [ "GC"; txn ] -> Some (Op.Global_commit (parse_txn lineno txn))
  | [ "GA"; txn ] -> Some (Op.Global_abort (parse_txn lineno txn))
  | tag :: _ -> fail lineno "unrecognized record %S" tag

let of_string s =
  let ops = ref [] in
  List.iteri
    (fun i line -> match parse_line (i + 1) line with Some op -> ops := op :: !ops | None -> ())
    (String.split_on_char '\n' s);
  History.of_ops (List.rev !ops)

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

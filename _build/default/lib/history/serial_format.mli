(** A line-oriented interchange format for histories: dump a recorded
    trace, archive it, re-verify it offline. See the implementation header
    for the grammar. *)

exception Parse_error of int * string
(** Line number and message. *)

val print_op : Op.t -> string
val to_string : History.t -> string
val to_file : History.t -> string -> unit

val of_string : string -> History.t
(** Raises {!Parse_error}. Comment ('#') and blank lines are ignored. *)

val of_file : string -> History.t

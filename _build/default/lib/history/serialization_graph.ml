(* The serialization graph SG(H) over logical transactions: an edge
   T -> S for each pair of conflicting elementary operations with T's
   operation first. Note the paper's point (§3): with resubmissions,
   SG(C(H)) may be cyclic while H is still view serializable, so acyclicity
   here is evidence, not the correctness criterion. *)

open Hermes_kernel

module G = Hermes_graph.Digraph.Make (struct
  type t = Txn.t

  let compare = Txn.compare
  let pp = Txn.pp
end)

(* Only operations on the same item can conflict, so group by item first:
   O(sum over items of ops-on-item^2) instead of O(|H|^2). *)
let build h =
  let by_item : (Item.t, Op.t list ref) Hashtbl.t = Hashtbl.create 64 in
  History.iteri
    (fun _ op ->
      match Op.item op with
      | Some item -> (
          match Hashtbl.find_opt by_item item with
          | Some l -> l := op :: !l
          | None -> Hashtbl.add by_item item (ref [ op ]))
      | None -> ())
    h;
  let g = ref G.empty in
  List.iter (fun x -> g := G.add_vertex !g x) (History.txns h);
  Hashtbl.iter
    (fun _ l ->
      let ops = Array.of_list (List.rev !l) in
      let n = Array.length ops in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Op.conflicts ops.(i) ops.(j) then g := G.add_edge !g (Op.txn ops.(i)) (Op.txn ops.(j))
        done
      done)
    by_item;
  !g

let is_acyclic h = G.is_acyclic (build h)
let find_cycle h = G.find_cycle (build h)

(** The serialization graph SG(H) over logical transactions. With
    resubmissions, SG(C(H)) may be cyclic while H is still view
    serializable (paper §3), so acyclicity is sufficient evidence of
    conflict serializability, not the correctness criterion. *)

open Hermes_kernel

module G : Hermes_graph.Digraph.S with type vertex = Txn.t

val build : History.t -> G.t
val is_acyclic : History.t -> bool
val find_cycle : History.t -> Txn.t list option

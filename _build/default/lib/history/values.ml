(* Value-level cross-checking of a recorded trace.

   The simulator annotates every elementary operation with the value it
   observed (reads) or installed (writes). Re-running the replay semantics
   over the *values* then cross-checks the whole pipeline end to end: a
   read must have observed exactly the value last physically written to
   its item (undone on aborts, like the store itself), and its recorded
   reads-from incarnation must match the physical writer. Any violation
   means the trace and the execution disagree — a simulator bug, a
   corrupted dump, or a hand-built history that tells an impossible story.

   Hand-built histories usually carry no values ([None]); absent values
   are never violations. *)

open Hermes_kernel

type mismatch = {
  read : Op.t;
  index : int;  (* position in the history *)
  expected_from : Txn.Incarnation.t option;
  expected_value : int option;
}

let pp_mismatch ppf m =
  let pp_from ppf = function None -> Fmt.string ppf "T0" | Some w -> Txn.Incarnation.pp ppf w in
  Fmt.pf ppf "#%d %a: expected value %a from %a" m.index Op.pp_with_from m.read
    Fmt.(option ~none:(any "?") int)
    m.expected_value pp_from m.expected_from

(* Physical state per item: (writer, value). A [None] value means unknown
   (e.g. a delete, or an unannotated write): subsequent reads of it are
   not checkable for value, only for writer. *)
type cell = { writer : Txn.Incarnation.t option; value : int option }

let check h =
  let state : (Item.t, cell) Hashtbl.t = Hashtbl.create 64 in
  let undos : (Txn.Incarnation.t, (Item.t * cell) list ref) Hashtbl.t = Hashtbl.create 16 in
  let cell item = Option.value ~default:{ writer = None; value = None } (Hashtbl.find_opt state item) in
  let violations = ref [] in
  History.iteri
    (fun index op ->
      match op with
      | Op.Dml { kind = Op.Read; item; from; value; _ } ->
          (* Only annotated reads are checkable: a hand-built history's
             [from = None] means "unspecified", not "T_0"; recorded traces
             always carry values, and there [from] is authoritative. *)
          if value <> None then begin
            let c = cell item in
            let from_ok = Stdlib.( = ) from c.writer in
            let value_ok =
              match (value, c.value) with Some v, Some v' -> v = v' | None, _ | _, None -> true
            in
            if not (from_ok && value_ok) then
              violations :=
                { read = op; index; expected_from = c.writer; expected_value = c.value } :: !violations
          end
      | Op.Dml { kind = Op.Write; inc; item; value; _ } ->
          let u =
            match Hashtbl.find_opt undos inc with
            | Some u -> u
            | None ->
                let u = ref [] in
                Hashtbl.replace undos inc u;
                u
          in
          u := (item, cell item) :: !u;
          Hashtbl.replace state item { writer = Some inc; value }
      | Op.Local_abort inc -> (
          match Hashtbl.find_opt undos inc with
          | None -> ()
          | Some u ->
              List.iter (fun (item, before) -> Hashtbl.replace state item before) !u;
              Hashtbl.remove undos inc)
      | Op.Local_commit inc -> Hashtbl.remove undos inc
      | Op.Prepare _ | Op.Global_commit _ | Op.Global_abort _ -> ())
    h;
  List.rev !violations

let consistent h = check h = []

(* The final physical value of every item whose last write carried one —
   for comparing a trace against a database snapshot. *)
let final_values h =
  let state : (Item.t, cell) Hashtbl.t = Hashtbl.create 64 in
  let undos : (Txn.Incarnation.t, (Item.t * cell) list ref) Hashtbl.t = Hashtbl.create 16 in
  let cell item = Option.value ~default:{ writer = None; value = None } (Hashtbl.find_opt state item) in
  History.iteri
    (fun _ op ->
      match op with
      | Op.Dml { kind = Op.Write; inc; item; value; _ } ->
          let u =
            match Hashtbl.find_opt undos inc with
            | Some u -> u
            | None ->
                let u = ref [] in
                Hashtbl.replace undos inc u;
                u
          in
          u := (item, cell item) :: !u;
          Hashtbl.replace state item { writer = Some inc; value }
      | Op.Local_abort inc -> (
          match Hashtbl.find_opt undos inc with
          | None -> ()
          | Some u ->
              List.iter (fun (item, before) -> Hashtbl.replace state item before) !u;
              Hashtbl.remove undos inc)
      | Op.Local_commit inc -> Hashtbl.remove undos inc
      | _ -> ())
    h;
  Hashtbl.fold (fun item c acc -> match c.value with Some v -> (item, v) :: acc | None -> acc) state []
  |> List.sort (fun (i1, _) (i2, _) -> Item.compare i1 i2)

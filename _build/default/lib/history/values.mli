(** Value-level cross-checking of recorded traces: every read must have
    observed the value its item physically held (writes applied in place,
    undone on aborts) and the recorded reads-from writer must match. Any
    mismatch means trace and execution disagree. Absent ([None]) values —
    hand-built histories, deletes — are never violations. *)

open Hermes_kernel

type mismatch = {
  read : Op.t;
  index : int;
  expected_from : Txn.Incarnation.t option;
  expected_value : int option;
}

val pp_mismatch : mismatch Fmt.t

val check : History.t -> mismatch list
val consistent : History.t -> bool

val final_values : History.t -> (Item.t * int) list
(** The final physical value of every item whose last write carried one —
    compare against a database snapshot. *)

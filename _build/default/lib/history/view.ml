(* View equivalence and view serializability (paper §3, in the spirit of
   Bernstein/Hadzilacos/Goodman, adapted to incarnations).

   Two histories over the same transactions are view equivalent iff every
   read observes the same (transaction-level) writer and the final writes
   are by the same transactions. The serial yardstick for a history with
   resubmissions places each transaction's complete history H(T_k) —
   including its unilaterally aborted incarnations, which the extended
   committed projection retains — as one contiguous block; the replay
   semantics then resolves what every incarnation would have read.

   Deciding view serializability is NP-complete in general; scenario-size
   histories (the paper's H1–H3 have 3–4 transactions) are decided exactly
   by permutation search, and larger histories fall back to the paper's
   own sufficient criterion (see {!Report}). *)

open Hermes_kernel

let serial_of_order h order =
  History.concat (List.map (fun x -> History.of_ops (History.ops_of_txn h x)) order)

(* Canonical view data: logical reads sorted by reader/item/occurrence and
   transaction-level final writes. Everything inside is ints, strings and
   plain variants, so structural equality is sound. *)
type view_data = {
  reads : (Txn.Incarnation.t * Item.t * int * Txn.t option) list;
  final : (Item.t * Txn.t option) list;
}

let view_data h =
  let outcome = Replay.run h in
  let reads =
    Replay.logical_reads outcome
    |> List.map (fun (r : Replay.logical_read) -> (r.l_reader, r.l_item, r.l_occurrence, r.l_from))
    |> List.sort Stdlib.compare
  in
  let final = Item.Map.bindings (Replay.logical_final outcome) in
  { reads; final }

let view_equivalent h1 h2 = Stdlib.( = ) (view_data h1) (view_data h2)

type decision =
  | Serializable of Txn.t list  (* a witness serial order *)
  | Not_serializable
  | Too_large  (* beyond the permutation-search limit *)

let equal_decision a b = Stdlib.( = ) a b

let pp_decision ppf = function
  | Serializable order -> Fmt.pf ppf "view serializable as %a" Fmt.(list ~sep:sp Txn.pp) order
  | Not_serializable -> Fmt.string ppf "NOT view serializable"
  | Too_large -> Fmt.string ppf "undecided (too many transactions for exact search)"

(* Enumerate permutations lazily, stopping at the first witness. *)
let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: rest as l -> (x :: l) :: List.map (fun r -> y :: r) (insertions x rest)

let rec permutations = function
  | [] -> Seq.return []
  | x :: rest -> Seq.concat_map (fun p -> List.to_seq (insertions x p)) (permutations rest)

let view_serializable ?(limit = 8) h =
  let txns = History.txns h in
  if txns = [] then Serializable []
  else if List.length txns > limit then Too_large
  else begin
    let target = view_data h in
    let witness =
      Seq.find (fun order -> Stdlib.( = ) (view_data (serial_of_order h order)) target) (permutations txns)
    in
    match witness with Some order -> Serializable order | None -> Not_serializable
  end

let conflict_serializable h = Serialization_graph.is_acyclic h

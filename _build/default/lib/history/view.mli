(** View equivalence and view serializability — the paper's ultimate
    correctness criterion for C(H) (§3). Exact decisions by permutation
    search for scenario-size histories. *)

open Hermes_kernel

val serial_of_order : History.t -> Txn.t list -> History.t
(** The serial history placing each transaction's complete history
    (including aborted incarnations) as one contiguous block, in the given
    order. *)

type view_data = {
  reads : (Txn.Incarnation.t * Item.t * int * Txn.t option) list;
  final : (Item.t * Txn.t option) list;
}

val view_data : History.t -> view_data
val view_equivalent : History.t -> History.t -> bool

type decision =
  | Serializable of Txn.t list
  | Not_serializable
  | Too_large

val equal_decision : decision -> decision -> bool
val pp_decision : decision Fmt.t

val view_serializable : ?limit:int -> History.t -> decision
(** Exact decision when the history has at most [limit] (default 8)
    transactions; [Too_large] otherwise. *)

val conflict_serializable : History.t -> bool
(** SG(H) acyclicity. *)

lib/kernel/clock.pp.ml: Fmt Time

lib/kernel/clock.pp.mli: Fmt Time

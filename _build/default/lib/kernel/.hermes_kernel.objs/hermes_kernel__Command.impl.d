lib/kernel/command.pp.ml: Fmt Ppx_deriving_runtime

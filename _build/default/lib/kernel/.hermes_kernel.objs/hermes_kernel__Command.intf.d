lib/kernel/command.pp.mli: Fmt

lib/kernel/interval.pp.ml: Fmt Ppx_deriving_runtime Time

lib/kernel/interval.pp.mli: Fmt Time

lib/kernel/item.pp.ml: Fmt Map Ppx_deriving_runtime Set Site

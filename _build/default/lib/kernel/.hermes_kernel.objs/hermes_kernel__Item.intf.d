lib/kernel/item.pp.mli: Fmt Map Set Site

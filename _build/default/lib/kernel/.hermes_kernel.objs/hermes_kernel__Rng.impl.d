lib/kernel/rng.pp.ml: Array Hashtbl Random

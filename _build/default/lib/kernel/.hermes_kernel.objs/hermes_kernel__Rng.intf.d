lib/kernel/rng.pp.mli:

lib/kernel/site.pp.ml: Char Fmt Int Map Ppx_deriving_runtime Set String

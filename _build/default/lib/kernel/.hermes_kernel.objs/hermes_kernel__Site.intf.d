lib/kernel/site.pp.mli: Fmt Map Set

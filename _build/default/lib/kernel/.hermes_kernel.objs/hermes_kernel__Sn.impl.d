lib/kernel/sn.pp.ml: Fmt Ppx_deriving_runtime Site Time

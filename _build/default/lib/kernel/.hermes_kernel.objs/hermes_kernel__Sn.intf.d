lib/kernel/sn.pp.mli: Fmt Site Time

lib/kernel/time.pp.ml: Fmt Ppx_deriving_runtime Stdlib

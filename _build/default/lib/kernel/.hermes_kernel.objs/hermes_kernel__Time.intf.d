lib/kernel/time.pp.mli: Fmt

lib/kernel/txn.pp.ml: Fmt Map Ppx_deriving_runtime Set Site

lib/kernel/txn.pp.mli: Fmt Map Set Site

(* Drifting site clocks (paper §5.2).

   Serial numbers are generated from "real time site clocks, expanded with
   the unique site identifier". The paper stresses that the amount of drift
   among the clocks has no influence on the *correctness* of the Certifier;
   it can only cause unnecessary aborts. To reproduce this claim we model a
   site clock as an affine function of virtual real time: a constant offset
   plus a rate skew in parts per million. *)

type t = { offset : int; skew_ppm : int }

let perfect = { offset = 0; skew_ppm = 0 }
let make ?(offset = 0) ?(skew_ppm = 0) () = { offset; skew_ppm }

let read t ~real =
  let r = Time.to_int real in
  let skewed = r + (r / 1_000_000 * t.skew_ppm) + (r mod 1_000_000 * t.skew_ppm / 1_000_000) in
  Time.of_int (max 0 (skewed + t.offset))

let pp ppf t = Fmt.pf ppf "clock(offset=%d, skew=%dppm)" t.offset t.skew_ppm

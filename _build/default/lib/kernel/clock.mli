(** Drifting site clocks (paper §5.2). Serial numbers come from site clocks;
    drift cannot break correctness, only cause unnecessary aborts. A clock
    is an affine function of virtual real time: constant offset plus a rate
    skew in parts per million. *)

type t

val perfect : t
val make : ?offset:int -> ?skew_ppm:int -> unit -> t

val read : t -> real:Time.t -> Time.t
(** The site-local time corresponding to virtual real time [real]; clamped
    at zero. Monotone in [real] for |skew_ppm| < 1_000_000. *)

val pp : t Fmt.t

(* The DML command language visible at the local interface (LI).

   The paper assumes each LDBS offers high-level data manipulation commands
   (it uses SQL) which the LTM decomposes into elementary Read/Write
   operations by a deterministic, state-dependent decomposition function
   D(O, S) (the DDF assumption, §2). This module defines a small such
   language over integer-keyed, integer-valued rows. It is expressive
   enough to reproduce the paper's phenomena: [Update]/[Delete] of an
   existing row decompose into R;W of that row, of a missing row into
   nothing — which is exactly how a resubmitted subtransaction can obtain a
   *different decomposition* than its original (history H1: T2 deletes Y^a,
   so resubmitted T11 decomposes to a lone read).

   Commands are pure descriptions; execution lives in the LTM. The update
   forms are arithmetic (v := v + delta, or v := const) so that the
   application-specific computation stays at the coordinating site and
   resubmitted commands are textually identical to the originals, as the
   2PCA method requires. *)

type t =
  | Select of { table : string; keys : int list }  (* read the listed rows (missing keys read nothing) *)
  | Select_range of { table : string; lo : int; hi : int }  (* read every existing row with lo <= key <= hi *)
  | Update_range of { table : string; lo : int; hi : int; delta : int }  (* v := v + delta for every existing row in range *)
  | Update of { table : string; key : int; delta : int }  (* v := v + delta if the row exists *)
  | Assign of { table : string; key : int; value : int }  (* v := value if the row exists *)
  | Insert of { table : string; key : int; value : int }  (* create or overwrite the row *)
  | Delete of { table : string; key : int }  (* remove the row if it exists *)
[@@deriving eq, ord]

type result =
  | Rows of (int * int) list  (* (key, value) pairs returned by a select *)
  | Count of int  (* rows affected by an update/insert/delete *)
[@@deriving eq, ord]

let table = function
  | Select { table; _ }
  | Select_range { table; _ }
  | Update_range { table; _ }
  | Update { table; _ }
  | Assign { table; _ }
  | Insert { table; _ }
  | Delete { table; _ } -> table

let is_read_only = function
  | Select _ | Select_range _ -> true
  | Update _ | Update_range _ | Assign _ | Insert _ | Delete _ -> false

let pp ppf = function
  | Select { table; keys } -> Fmt.pf ppf "SELECT %s[%a]" table Fmt.(list ~sep:comma int) keys
  | Select_range { table; lo; hi } -> Fmt.pf ppf "SELECT %s[%d..%d]" table lo hi
  | Update_range { table; lo; hi; delta } -> Fmt.pf ppf "UPDATE %s[%d..%d] += %d" table lo hi delta
  | Update { table; key; delta } -> Fmt.pf ppf "UPDATE %s[%d] += %d" table key delta
  | Assign { table; key; value } -> Fmt.pf ppf "UPDATE %s[%d] := %d" table key value
  | Insert { table; key; value } -> Fmt.pf ppf "INSERT %s[%d] = %d" table key value
  | Delete { table; key } -> Fmt.pf ppf "DELETE %s[%d]" table key

let show t = Fmt.str "%a" pp t

let pp_result ppf = function
  | Rows rows ->
      let pp_row ppf (k, v) = Fmt.pf ppf "%d=%d" k v in
      Fmt.pf ppf "rows(%a)" Fmt.(list ~sep:comma pp_row) rows
  | Count n -> Fmt.pf ppf "count(%d)" n

let show_result r = Fmt.str "%a" pp_result r

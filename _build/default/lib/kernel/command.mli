(** The DML command language at the local interface.

    A small, deterministic stand-in for the SQL subset the paper assumes:
    the LTM decomposes each command into elementary reads/writes via a
    deterministic, state-dependent decomposition function (DDF, §2).
    Updates and deletes of missing rows decompose into nothing, which is
    how a resubmitted subtransaction can legitimately obtain a different
    decomposition than its original incarnation — the phenomenon behind
    global view distortion (history H1). *)

type t =
  | Select of { table : string; keys : int list }
  | Select_range of { table : string; lo : int; hi : int }
  | Update_range of { table : string; lo : int; hi : int; delta : int }
  | Update of { table : string; key : int; delta : int }
  | Assign of { table : string; key : int; value : int }
  | Insert of { table : string; key : int; value : int }
  | Delete of { table : string; key : int }

type result =
  | Rows of (int * int) list
  | Count of int

val table : t -> string
val is_read_only : t -> bool

val pp : t Fmt.t
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val pp_result : result Fmt.t
val show_result : result -> string
val equal_result : result -> result -> bool
val compare_result : result -> result -> int

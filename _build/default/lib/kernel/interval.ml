(* Closed time intervals [lo, hi], the "alive time intervals" of §4.2.

   An interval records a span during which a local subtransaction is known
   to have been alive (all DML commands executed, neither committed nor
   aborted). The certifier's soundness rests on the Alive Time Intersection
   Rule: if two alive intervals intersect, the subtransactions were alive
   simultaneously, and under rigorousness simultaneously-alive
   subtransactions cannot conflict. *)

type t = { lo : Time.t; hi : Time.t } [@@deriving eq, ord]

let make ~lo ~hi =
  if Time.(hi < lo) then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let point t = { lo = t; hi = t }
let lo t = t.lo
let hi t = t.hi
let extend_to t ~hi = if Time.(hi < t.lo) then invalid_arg "Interval.extend_to" else { t with hi }

let intersects a b = Time.(a.lo <= b.hi) && Time.(b.lo <= a.hi)

let intersection a b =
  if intersects a b then Some { lo = Time.max a.lo b.lo; hi = Time.min a.hi b.hi } else None

let contains t x = Time.(t.lo <= x) && Time.(x <= t.hi)
let length t = Time.diff t.hi t.lo

let pp ppf t = Fmt.pf ppf "[%a, %a]" Time.pp t.lo Time.pp t.hi
let show t = Fmt.str "%a" pp t

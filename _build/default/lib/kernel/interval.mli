(** Closed time intervals [lo, hi] — the "alive time intervals" of paper
    §4.2. The prepare certification accepts a subtransaction only if its
    alive interval intersects the stored alive interval of every prepared
    subtransaction at the site (Alive Time Intersection Rule). *)

type t = private { lo : Time.t; hi : Time.t }

val make : lo:Time.t -> hi:Time.t -> t
(** Raises [Invalid_argument] if [hi < lo]. *)

val point : Time.t -> t
(** The degenerate interval [t, t]. *)

val lo : t -> Time.t
val hi : t -> Time.t

val extend_to : t -> hi:Time.t -> t
(** [extend_to i ~hi] moves the upper end of [i] to [hi] (used by the
    periodic alive check: "update the end of the alive time interval"). *)

val intersects : t -> t -> bool
(** Closed-interval intersection: [intersects a b] iff they share a point. *)

val intersection : t -> t -> t option
val contains : t -> Time.t -> bool
val length : t -> int

val pp : t Fmt.t
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(* Data items.

   An item is a concrete table row at a site, as in the paper ("the data
   items X^a, Y^a, etc. are assumed to be single concrete table rows at
   site a"). Items are the granularity of elementary Read/Write operations,
   of locking, and of the DLU bound-data registry. *)

type t = { site : Site.t; table : string; key : int } [@@deriving eq, ord]

let make ~site ~table ~key = { site; table; key }
let site t = t.site
let table t = t.table
let key t = t.key

(* Paper-style item names: table "X" key 0 at site a prints as "Xa"; other
   keys as "X3a". *)
let pp ppf { site; table; key } =
  if key = 0 then Fmt.pf ppf "%s%s" table (Site.name site) else Fmt.pf ppf "%s%d%s" table key (Site.name site)

let show t = Fmt.str "%a" pp t

module T = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (T)
module Set = Set.Make (T)

(** Data items: single concrete table rows at a site (paper §3). Items are
    the granularity of elementary reads/writes, locking and the DLU
    bound-data registry. *)

type t = private { site : Site.t; table : string; key : int }

val make : site:Site.t -> table:string -> key:int -> t
val site : t -> Site.t
val table : t -> string
val key : t -> int

val pp : t Fmt.t
(** Paper-style: table ["X"] key 0 at site a prints as [Xa]. *)

val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(* Deterministic randomness.

   Every run of the simulator is reproducible from a single integer seed.
   Components derive independent sub-streams with [split], so adding a
   random draw in one component does not perturb the stream seen by
   another — a property the experiment sweeps rely on. *)

type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x2cA; 0x1992 |]

let split t ~label =
  let h = Hashtbl.hash label in
  Random.State.make [| Random.State.bits t; h; Random.State.bits t |]

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + Random.State.int t (hi - lo + 1)

let float t ~bound = Random.State.float t bound
let bool t ~p = Random.State.float t 1.0 < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(Random.State.int t (Array.length arr))

(* Exponentially distributed integer delay with the given mean, truncated
   below at 1 tick. Used for think times and failure inter-arrival times. *)
let exponential t ~mean =
  if mean <= 0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = Random.State.float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  max 1 (int_of_float (-.float_of_int mean *. log u))

(* Uniform integer delay in [lo, hi]. *)
let uniform_delay t ~lo ~hi = int_in t ~lo ~hi

let shuffle t arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(** Deterministic randomness: every simulation is reproducible from one
    seed, and components draw from independent sub-streams obtained with
    [split]. *)

type t

val create : seed:int -> t

val split : t -> label:string -> t
(** An independent sub-stream keyed by [label]. Advances [t]. *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi], inclusive. *)

val float : t -> bound:float -> float
val bool : t -> p:float -> bool
val choice : t -> 'a array -> 'a

val exponential : t -> mean:int -> int
(** Exponentially distributed integer with the given mean, at least 1. *)

val uniform_delay : t -> lo:int -> hi:int -> int

val shuffle : t -> 'a array -> 'a array
(** A shuffled copy; the input is not modified. *)

(* Site identifiers.

   A site hosts one LDBS/LTM pair and one 2PC Agent. Sites are created in
   sequence by the simulation setup; the integer is also used to break ties
   in serial numbers, as the paper suggests ("real time site clocks,
   expanded with the unique site identifier"). *)

type t = int [@@deriving eq, ord]

let of_int i =
  if i < 0 then invalid_arg "Site.of_int: negative site id";
  i

let to_int t = t

(* Sites print as 'a', 'b', ... for the first 26, matching the paper's
   notation (X^a, C^b_10, ...); beyond that, "s27", "s28", ... *)
let name t = if t < 26 then String.make 1 (Char.chr (Char.code 'a' + t)) else "s" ^ string_of_int t

let pp ppf t = Fmt.string ppf (name t)
let show = name

module Map = Map.Make (Int)
module Set = Set.Make (Int)

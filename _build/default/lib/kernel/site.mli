(** Site identifiers.

    A site hosts one LDBS/LTM pair and one 2PC Agent. The integer identity
    doubles as the tie-breaker in serial numbers (paper §5.2: "real time site
    clocks, expanded with the unique site identifier"). *)

type t = private int

val of_int : int -> t
(** [of_int i] is the site with id [i]. Raises [Invalid_argument] if
    [i < 0]. *)

val to_int : t -> int

val name : t -> string
(** Paper-style site name: sites 0..25 print as ["a"].."z"], matching the
    paper's [X^a] notation; later sites print as ["s27"], ... *)

val pp : t Fmt.t
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(* Serial numbers (paper §5.2).

   A globally unique serial number is drawn from a totally ordered set when
   the application submits the global Commit; it rides on the PREPARE
   messages, and each Certifier releases local commits in SN order. The
   paper recommends "real time site clocks, expanded with the unique site
   identifier": drift between site clocks cannot break correctness, only
   cause unnecessary aborts. The [seq] component makes numbers issued by
   one coordinator within the same tick unique. *)

type t = { ts : Time.t; site : Site.t; seq : int } [@@deriving eq, ord]

let make ~ts ~site ~seq =
  if seq < 0 then invalid_arg "Sn.make: negative seq";
  { ts; site; seq }

let ts t = t.ts
let site t = t.site

let pp ppf { ts; site; seq } = Fmt.pf ppf "%d.%s.%d" (Time.to_int ts) (Site.name site) seq
let show t = Fmt.str "%a" pp t

let ( < ) a b = compare a b < 0
let ( > ) a b = compare a b > 0

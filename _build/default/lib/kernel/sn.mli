(** Serial numbers (paper §5.2): globally unique, totally ordered values
    assigned by the coordinator at global-commit time and enforced by the
    commit certification. Built from a (possibly drifting) site clock
    reading, the coordinator's site id and a per-tick sequence number;
    ordering is lexicographic, so clock drift can reorder SNs relative to
    real time (causing only unnecessary aborts, §5.2) but never produces
    duplicates. *)

type t = private { ts : Time.t; site : Site.t; seq : int }

val make : ts:Time.t -> site:Site.t -> seq:int -> t
val ts : t -> Time.t
val site : t -> Site.t

val pp : t Fmt.t
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( > ) : t -> t -> bool

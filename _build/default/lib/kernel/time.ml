(* Virtual time.

   One tick is morally a microsecond. Integer time keeps the simulation
   exactly deterministic (no float rounding) and totally ordered. *)

type t = int [@@deriving eq, ord]

let zero = 0
let of_int i = i
let to_int t = t
let add = ( + )
let diff = ( - )
let max = Stdlib.max
let min = Stdlib.min
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b

let millisecond = 1_000
let second = 1_000_000

let pp ppf t =
  if t >= second && t mod millisecond = 0 then Fmt.pf ppf "%d.%03ds" (t / second) (t mod second / millisecond)
  else if t >= millisecond && t mod millisecond = 0 then Fmt.pf ppf "%dms" (t / millisecond)
  else Fmt.pf ppf "%dus" t

let show t = Fmt.str "%a" pp t

(** Virtual time, in integer ticks (1 tick = 1 µs).

    Integer time keeps the simulation deterministic and totally ordered. *)

type t = private int

val zero : t
val of_int : int -> t
val to_int : t -> int
val add : t -> int -> t
val diff : t -> t -> int
val max : t -> t -> t
val min : t -> t -> t

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val millisecond : int
(** Ticks per millisecond. *)

val second : int
(** Ticks per second. *)

val pp : t Fmt.t
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(* Transaction identities.

   A *global* transaction T_i is coordinated by the DTM and has
   subtransactions at one or more sites; the k-th resubmission of its
   subtransaction at site s is the *incarnation* (i, s, k) — a fresh
   transaction from the LTM's point of view, but the same logical
   transaction globally (paper §3). A *local* transaction L is submitted
   directly to one LTM and is invisible to the DTM. *)

type t =
  | Global of int
  | Local of { site : Site.t; n : int }
[@@deriving eq, ord]

let global i =
  if i < 0 then invalid_arg "Txn.global: negative id";
  Global i

let local ~site ~n =
  if n < 0 then invalid_arg "Txn.local: negative id";
  Local { site; n }

let is_global = function Global _ -> true | Local _ -> false
let is_local = function Local _ -> true | Global _ -> false

let pp ppf = function
  | Global i -> Fmt.pf ppf "T%d" i
  | Local { site; n } -> Fmt.pf ppf "L%d%s" n (Site.name site)

let show t = Fmt.str "%a" pp t

module T = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (T)
module Set = Set.Make (T)

(* A subtransaction incarnation: global transaction [txn]'s [inc]-th local
   subtransaction at [site] ([inc] = 0 is the original submission, higher
   values are resubmissions after unilateral aborts). Local transactions
   always have [inc] = 0. *)
type txn = t [@@deriving eq, ord]

module Incarnation = struct
  type t = { txn : txn; site : Site.t; inc : int } [@@deriving eq, ord]

  let make ~txn ~site ~inc =
    if inc < 0 then invalid_arg "Incarnation.make: negative incarnation";
    (match txn with
    | Local l when not (Site.equal l.site site) -> invalid_arg "Incarnation.make: local txn at foreign site"
    | Local _ when inc <> 0 -> invalid_arg "Incarnation.make: local txns are never resubmitted"
    | Local _ | Global _ -> ());
    { txn; site; inc }

  let pp ppf { txn; site; inc } =
    match txn with
    | Global i -> Fmt.pf ppf "T%s%d%d" (Site.name site) i inc
    | Local _ -> pp ppf txn

  let show t = Fmt.str "%a" pp t
end

(** Transaction identities: global transactions (DTM-coordinated, spanning
    sites) and local transactions (submitted directly to one LTM, invisible
    to the DTM). *)

type t =
  | Global of int
  | Local of { site : Site.t; n : int }

val global : int -> t
val local : site:Site.t -> n:int -> t
val is_global : t -> bool
val is_local : t -> bool

val pp : t Fmt.t
(** Paper-style: [T1] for global, [L4a] for local transaction 4 at site a. *)

val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(** A subtransaction incarnation (paper §3): the [inc]-th local
    subtransaction of [txn] at [site]; [inc] = 0 is the original submission,
    [inc] > 0 are resubmissions after unilateral aborts. Each incarnation is
    an independent transaction to the LTM but the same logical transaction
    globally. *)
module Incarnation : sig
  type txn := t
  type t = private { txn : txn; site : Site.t; inc : int }

  val make : txn:txn -> site:Site.t -> inc:int -> t
  (** Raises [Invalid_argument] for negative incarnations, or for local
      transactions with [inc <> 0] or at a foreign site. *)

  val pp : t Fmt.t
  val show : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
end

lib/ltm/bound.ml: Hashtbl Hermes_kernel Item List Option

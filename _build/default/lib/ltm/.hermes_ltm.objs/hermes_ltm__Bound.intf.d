lib/ltm/bound.mli: Hermes_kernel Item

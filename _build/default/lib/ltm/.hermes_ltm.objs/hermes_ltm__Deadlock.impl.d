lib/ltm/deadlock.ml: Fmt Hermes_graph Int List Lock

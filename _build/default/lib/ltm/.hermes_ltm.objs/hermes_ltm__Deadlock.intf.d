lib/ltm/deadlock.mli: Hermes_graph Lock

lib/ltm/decompose.ml: Command Hermes_history Hermes_kernel Hermes_store Int List Lock Op

lib/ltm/decompose.mli: Command Hermes_history Hermes_kernel Hermes_store Lock

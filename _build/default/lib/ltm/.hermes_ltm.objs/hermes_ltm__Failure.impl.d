lib/ltm/failure.ml: Hashtbl Hermes_kernel Hermes_sim List Ltm Option Rng Time Txn

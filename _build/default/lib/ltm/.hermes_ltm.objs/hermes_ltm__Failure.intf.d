lib/ltm/failure.mli: Hermes_kernel Hermes_sim Ltm

lib/ltm/lock.ml: Fmt Hashtbl List

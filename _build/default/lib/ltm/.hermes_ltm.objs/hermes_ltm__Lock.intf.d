lib/ltm/lock.mli: Fmt

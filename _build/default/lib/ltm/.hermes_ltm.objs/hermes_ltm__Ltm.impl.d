lib/ltm/ltm.ml: Bound Command Database Deadlock Decompose Fmt Hashtbl Hermes_history Hermes_kernel Hermes_sim Hermes_store Int Item List Lock Logs Ltm_config Row Site Time Trace Txn Undo

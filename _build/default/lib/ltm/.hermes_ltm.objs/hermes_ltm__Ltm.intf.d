lib/ltm/ltm.mli: Bound Command Fmt Hermes_kernel Hermes_sim Hermes_store Item Ltm_config Site Time Trace Txn

lib/ltm/ltm_config.ml:

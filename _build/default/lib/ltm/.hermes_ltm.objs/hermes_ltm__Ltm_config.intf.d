lib/ltm/ltm_config.mli:

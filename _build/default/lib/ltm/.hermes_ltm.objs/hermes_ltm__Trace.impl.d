lib/ltm/trace.ml: Hermes_history History List

lib/ltm/trace.mli: Hermes_history Hermes_kernel History Op Time

(* The bound-data registry — the DLU assumption's enforcement point.

   While a global subtransaction is in the prepared state, the data it
   accessed are *bound* (paper §2). DLU: "if a data item belongs to bound
   data of a global transaction, no local transaction may update it,
   albeit it may read it." The 2PC Agent binds a subtransaction's
   footprint when it sends READY and unbinds at the local commit/rollback;
   the LTM consults the registry when a local transaction asks for an
   exclusive lock.

   Items can be bound by several subtransactions at once (two prepared
   subtransactions may both have *read* the same item), so the registry
   reference-counts per item. *)

open Hermes_kernel

type t = { table : (string * int, int) Hashtbl.t; mutable denials : int }

let create () = { table = Hashtbl.create 64; denials = 0 }

let key (item : Item.t) = (Item.table item, Item.key item)

let bind t items =
  List.iter
    (fun item ->
      let k = key item in
      Hashtbl.replace t.table k (1 + Option.value ~default:0 (Hashtbl.find_opt t.table k)))
    items

let unbind t items =
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt t.table k with
      | Some n when n > 1 -> Hashtbl.replace t.table k (n - 1)
      | Some _ -> Hashtbl.remove t.table k
      | None -> ())
    items

let is_bound t ~table ~key:k = Hashtbl.mem t.table (table, k)

let note_denial t = t.denials <- t.denials + 1
let denials t = t.denials
let n_bound t = Hashtbl.length t.table

(** The bound-data registry enforcing DLU (paper §2): items accessed by a
    prepared global subtransaction may not be updated by local
    transactions (reads are allowed). Reference-counted, since several
    prepared subtransactions may have read the same item. *)

open Hermes_kernel

type t

val create : unit -> t
val bind : t -> Item.t list -> unit
val unbind : t -> Item.t list -> unit
val is_bound : t -> table:string -> key:int -> bool
val note_denial : t -> unit
val denials : t -> int
val n_bound : t -> int

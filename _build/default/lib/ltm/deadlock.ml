(* Wait-for-graph deadlock detection over a lock table.

   The wait-for graph has an edge waiter -> holder for every queued
   request and every holder whose lock conflicts with it. Queue-order
   waits (a compatible request stuck behind an incompatible one in FIFO
   order) are not edges, so detection is incomplete by design; the LTM's
   lock-wait timeout is the backstop, exactly as the paper assumes
   timeout-based resolution for 2CM (§6). *)

module G = Hermes_graph.Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

let wait_for_graph locks =
  List.fold_left
    (fun g (key, waiter, mode) ->
      List.fold_left (fun g holder -> G.add_edge g waiter holder) g
        (Lock.blockers locks key ~owner:waiter ~mode))
    G.empty (Lock.waiting locks)

(* Would [waiter]'s (not yet queued) request for [key]/[mode] close a
   wait-for cycle through [waiter]? True iff some blocking holder can
   already reach [waiter] in the current graph. *)
let would_deadlock locks ~waiter ~key ~mode =
  let blockers = Lock.blockers locks key ~owner:waiter ~mode in
  blockers <> []
  &&
  let g = wait_for_graph locks in
  List.exists (fun holder -> G.mem_vertex g holder && G.reachable g holder waiter) blockers

(** Wait-for-graph deadlock detection (incomplete by design — queue-order
    waits are not edges; the lock-wait timeout is the backstop). *)

module G : Hermes_graph.Digraph.S with type vertex = int

val wait_for_graph : Lock.t -> G.t

val would_deadlock : Lock.t -> waiter:int -> key:Lock.key -> mode:Lock.mode -> bool
(** Would queueing this request close a wait-for cycle through [waiter]? *)

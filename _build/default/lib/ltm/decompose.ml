(* The deterministic decomposition function D(O, S) — the DDF assumption.

   Given a DML command and the current concrete database state, produce
   the sequence of elementary Read/Write operations the LTM will execute.
   The decomposition is state-dependent: an [Update] or [Delete] of a
   missing row decomposes into nothing, and a range select reads exactly
   the rows that exist — which is how a *resubmitted* subtransaction can
   legitimately obtain a different decomposition than its original
   incarnation (history H1).

   [plan] gives the lock set the LTM must acquire *before* it can evaluate
   the decomposition (existence checks require at least a shared lock);
   lock modes are chosen by the command's intent, so an update locks
   exclusively even if the row turns out to be missing. *)

open Hermes_kernel

type elementary = { kind : Hermes_history.Op.kind; key : int }

(* Locks to acquire, in ascending key order (reduces deadlocks), given the
   current state. Range scans lock the keys existing at plan time. *)
let plan db cmd =
  let open Command in
  match cmd with
  | Select { keys; _ } -> List.map (fun k -> (k, Lock.Shared)) (List.sort_uniq Int.compare keys)
  | Select_range { table; lo; hi } ->
      List.map (fun k -> (k, Lock.Shared)) (Hermes_store.Database.keys_in_range db ~table ~lo ~hi)
  | Update_range { table; lo; hi; _ } ->
      List.map (fun k -> (k, Lock.Exclusive)) (Hermes_store.Database.keys_in_range db ~table ~lo ~hi)
  | Update { key; _ } | Assign { key; _ } | Insert { key; _ } | Delete { key; _ } ->
      [ (key, Lock.Exclusive) ]

(* The elementary operations for [cmd] given the current state (to be
   evaluated only once the planned locks are held). *)
let elementary db cmd =
  let open Command in
  let open Hermes_history in
  let exists table key = Hermes_store.Database.mem db ~table ~key in
  match cmd with
  | Select { table; keys } ->
      List.filter_map
        (fun k -> if exists table k then Some { kind = Op.Read; key = k } else None)
        (List.sort_uniq Int.compare keys)
  | Select_range { table; lo; hi } ->
      List.map (fun k -> { kind = Op.Read; key = k }) (Hermes_store.Database.keys_in_range db ~table ~lo ~hi)
  | Update_range { table; lo; hi; _ } ->
      List.concat_map
        (fun k -> [ { kind = Op.Read; key = k }; { kind = Op.Write; key = k } ])
        (Hermes_store.Database.keys_in_range db ~table ~lo ~hi)
  | Update { table; key; _ } ->
      if exists table key then [ { kind = Op.Read; key }; { kind = Op.Write; key } ] else []
  | Assign { table; key; _ } -> if exists table key then [ { kind = Op.Write; key } ] else []
  | Insert { key; _ } -> [ { kind = Op.Write; key } ]
  | Delete { table; key } -> if exists table key then [ { kind = Op.Write; key } ] else []

(* As [elementary], but range reads restricted to the [planned] keys: the
   LTM only holds locks on the keys it planned, and a row inserted into
   the range after planning must not be read lock-free. *)
let elementary_planned db cmd ~planned =
  let open Command in
  let open Hermes_history in
  let exists table key = Hermes_store.Database.mem db ~table ~key in
  match cmd with
  | Select_range { table; _ } ->
      List.filter_map (fun k -> if exists table k then Some { kind = Op.Read; key = k } else None) planned
  | Update_range { table; _ } ->
      List.concat_map
        (fun k -> if exists table k then [ { kind = Op.Read; key = k }; { kind = Op.Write; key = k } ] else [])
        planned
  | Select _ | Update _ | Assign _ | Insert _ | Delete _ -> elementary db cmd

(** The deterministic decomposition function D(O, S) — the DDF assumption.
    State-dependent: updates/deletes of missing rows decompose into
    nothing; range selects read exactly the existing rows. *)

open Hermes_kernel

type elementary = { kind : Hermes_history.Op.kind; key : int }

val plan : Hermes_store.Database.t -> Command.t -> (int * Lock.mode) list
(** The lock set to acquire before evaluating the decomposition, in
    ascending key order. *)

val elementary : Hermes_store.Database.t -> Command.t -> elementary list
(** The elementary operations, to be evaluated with the planned locks
    held. *)

val elementary_planned :
  Hermes_store.Database.t -> Command.t -> planned:int list -> elementary list
(** As {!elementary}, but range reads restricted to the planned (locked)
    keys. *)

(* The unilateral-abort injector.

   "Preserving D- and E-autonomy of an LDBS means that it can roll back a
   single transaction at any time. [...] This may happen, in a real
   system, even after all the database commands have been executed. The
   reasons are various implementation-dependent issues, like the log
   buffer overflow (INGRES), or unexpected system bugs." (§1)

   The injector is lifecycle-driven so the event queue drains when the
   workload does: when a transaction begins (or is moved to the simulated
   prepared state by the 2PC Agent), the injector flips a coin and, on
   heads, schedules one abort attempt an exponentially distributed delay
   later. [p_prepared] is the interesting dial — unilateral aborts of
   *prepared* subtransactions are what create the resubmission anomalies.

   The TW assumption ("after a fixed number of resubmissions, any global
   subtransaction that should be committed can be committed") is realized
   by capping injected aborts per (logical transaction, site). *)

open Hermes_kernel
module Engine = Hermes_sim.Engine

type config = {
  p_active : float;  (* chance an incarnation suffers an abort attempt while executing *)
  p_prepared : float;  (* chance a prepared (agent-held) subtransaction is aborted *)
  delay_mean : int;  (* mean ticks from begin/prepare to the attempt *)
  global_only : bool;  (* spare purely local transactions *)
  max_per_victim : int;  (* TW cap per logical transaction at this site *)
  crash_interval : int;  (* mean ticks between site crashes (collective aborts); <= 0 disables *)
  crash_horizon : int;  (* stop scheduling crashes after this tick (lets the run drain) *)
}

let disabled =
  {
    p_active = 0.0;
    p_prepared = 0.0;
    delay_mean = 2_000;
    global_only = true;
    max_per_victim = 3;
    crash_interval = 0;
    crash_horizon = 0;
  }

let prepared_rate ?(delay_mean = 2_000) p = { disabled with p_prepared = p; delay_mean }

(* Site crashes: the paper's *collective* unilateral abort ("without
   making difference between single and collective abort (i.e. site
   crash)", §1). Every live transaction at the site is unilaterally
   aborted at once; the LDBS itself comes straight back (media recovery
   is RR's job, and the 2PC Agents then resubmit the prepared ones). *)
let crashes ~mean_interval ~horizon = { disabled with crash_interval = mean_interval; crash_horizon = horizon }

type t = { mutable injected : int; mutable attempts : int; mutable crashes : int; config : config }

let attach ~engine ~rng ~config ltm =
  let t = { injected = 0; attempts = 0; crashes = 0; config } in
  let per_victim : (Txn.t, int) Hashtbl.t = Hashtbl.create 32 in
  let under_cap owner =
    Option.value ~default:0 (Hashtbl.find_opt per_victim owner) < config.max_per_victim
  in
  let attempt txn ~require_held =
    t.attempts <- t.attempts + 1;
    let owner = (Ltm.owner txn).Txn.Incarnation.txn in
    if
      Ltm.is_active txn
      && ((not require_held) || Ltm.is_held_open txn)
      && under_cap owner
      && Ltm.unilateral_abort ltm txn
    then begin
      t.injected <- t.injected + 1;
      Hashtbl.replace per_victim owner (1 + Option.value ~default:0 (Hashtbl.find_opt per_victim owner))
    end
  in
  let eligible txn =
    (not config.global_only) || Txn.is_global (Ltm.owner txn).Txn.Incarnation.txn
  in
  if config.p_active > 0.0 then
    Ltm.set_begin_hook ltm (fun txn ->
        if eligible txn && Rng.bool rng ~p:config.p_active then
          Engine.schedule_unit engine ~delay:(Rng.exponential rng ~mean:config.delay_mean) (fun () ->
              attempt txn ~require_held:false));
  if config.p_prepared > 0.0 then
    Ltm.set_held_open_hook ltm (fun txn ->
        if eligible txn && Rng.bool rng ~p:config.p_prepared then
          Engine.schedule_unit engine ~delay:(Rng.exponential rng ~mean:config.delay_mean) (fun () ->
              attempt txn ~require_held:true));
  if config.crash_interval > 0 then begin
    (* Collective abort: kill every live transaction at the site. The cap
       still applies per victim, so a crashloop cannot break TW. The crash
       scheduler stops at the horizon so the event queue can drain. *)
    let rec crash_tick () =
      if Time.to_int (Engine.now engine) < config.crash_horizon then begin
        let victims = Ltm.live_txns ltm in
        if victims <> [] then begin
          t.crashes <- t.crashes + 1;
          List.iter
            (fun txn ->
              t.attempts <- t.attempts + 1;
              let owner = (Ltm.owner txn).Txn.Incarnation.txn in
              if under_cap owner && Ltm.unilateral_abort ltm txn then begin
                t.injected <- t.injected + 1;
                Hashtbl.replace per_victim owner
                  (1 + Option.value ~default:0 (Hashtbl.find_opt per_victim owner))
              end)
            victims
        end;
        Engine.schedule_unit engine ~delay:(Rng.exponential rng ~mean:config.crash_interval) crash_tick
      end
    in
    Engine.schedule_unit engine ~delay:(Rng.exponential rng ~mean:config.crash_interval) crash_tick
  end;
  t

let injected t = t.injected
let attempts t = t.attempts
let crash_count t = t.crashes

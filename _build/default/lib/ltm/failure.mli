(** The unilateral-abort injector (paper §1), lifecycle-driven: on begin
    (or on entering the simulated prepared state) a transaction may be
    scheduled one abort attempt after an exponential delay. Aborts per
    (transaction, site) are capped, realizing the TW assumption. *)

type config = {
  p_active : float;
  p_prepared : float;
  delay_mean : int;
  global_only : bool;
  max_per_victim : int;
  crash_interval : int;  (** mean ticks between site crashes; <= 0 disables *)
  crash_horizon : int;  (** no crashes scheduled past this tick *)
}

val disabled : config

val prepared_rate : ?delay_mean:int -> float -> config
(** Abort each prepared subtransaction with the given probability — the
    dial the failure-sweep experiments turn. *)

val crashes : mean_interval:int -> horizon:int -> config
(** Site crashes — the paper's *collective* unilateral abort (§1): every
    live transaction at the site aborted at once. *)

type t

val attach : engine:Hermes_sim.Engine.t -> rng:Hermes_kernel.Rng.t -> config:config -> Ltm.t -> t
val injected : t -> int
val attempts : t -> int
val crash_count : t -> int

(* The lock table of one LTM: item-granularity shared/exclusive locks with
   FIFO wait queues and lock upgrades.

   Holding all locks to transaction end (which {!Ltm} enforces) gives
   strict two-phase locking, hence rigorous histories — the SRS assumption
   the whole Certifier soundness argument rests on. The table itself is
   policy-free: it grants, queues and releases; hold durations, timeouts
   and deadlock handling live in the LTM.

   Grant discipline: strict FIFO from the queue head (no overtaking), so
   writers cannot starve behind a stream of readers. Upgrades (held Shared,
   requesting Exclusive) jump to the queue head and are granted once the
   upgrader is the sole holder; two simultaneous upgraders deadlock, which
   the LTM's timeout/detection resolves.

   Grant callbacks run synchronously inside [release_all]/[cancel_waits];
   the LTM defers real work through the engine to avoid reentrancy. *)

type mode = Shared | Exclusive

let pp_mode ppf = function Shared -> Fmt.string ppf "S" | Exclusive -> Fmt.string ppf "X"

type key = string * int

type request = {
  req_owner : int;
  req_mode : mode;
  upgrade : bool;
  on_grant : unit -> unit;
}

type entry = {
  mutable holders : (int * mode) list;  (* each owner appears at most once *)
  mutable queue : request list;  (* head = next to grant *)
}

type t = {
  entries : (key, entry) Hashtbl.t;
  held : (int, key list ref) Hashtbl.t;  (* owner -> keys it holds *)
}

let create () = { entries = Hashtbl.create 256; held = Hashtbl.create 64 }

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e = { holders = []; queue = [] } in
      Hashtbl.replace t.entries key e;
      e

let note_held t ~owner key =
  match Hashtbl.find_opt t.held owner with
  | Some l -> if not (List.mem key !l) then l := key :: !l
  | None -> Hashtbl.replace t.held owner (ref [ key ])

let compatible requested held = match (requested, held) with Shared, Shared -> true | _ -> false

let holder_mode e owner = List.assoc_opt owner e.holders

(* Can [owner] be granted [mode] right now, given current holders? *)
let grantable e ~owner ~mode =
  List.for_all
    (fun (h, m) -> h = owner || compatible mode m)
    e.holders

let set_holder e ~owner ~mode =
  let others = List.remove_assoc owner e.holders in
  (* An owner's mode only strengthens: X covers S. *)
  let mode =
    match (holder_mode e owner, mode) with Some Exclusive, _ -> Exclusive | _, m -> m
  in
  e.holders <- (owner, mode) :: others

type outcome = Granted | Waiting

(* Process the queue head-first, granting while possible. Returns the
   grant callbacks to run (already applied to the table state). *)
let drain e =
  let granted = ref [] in
  let rec go () =
    match e.queue with
    | [] -> ()
    | r :: rest ->
        let ok =
          if r.upgrade then
            (* Upgrade: sole holder required. *)
            List.for_all (fun (h, _) -> h = r.req_owner) e.holders
          else grantable e ~owner:r.req_owner ~mode:r.req_mode
        in
        if ok then begin
          e.queue <- rest;
          set_holder e ~owner:r.req_owner ~mode:r.req_mode;
          granted := r :: !granted;
          go ()
        end
  in
  go ();
  List.rev !granted

let acquire t key ~owner ~mode ~on_grant =
  let e = entry t key in
  match holder_mode e owner with
  | Some Exclusive -> Granted  (* X covers everything *)
  | Some Shared when mode = Shared -> Granted
  | Some Shared ->
      (* Upgrade S -> X. *)
      if List.for_all (fun (h, _) -> h = owner) e.holders && e.queue = [] then begin
        set_holder e ~owner ~mode:Exclusive;
        Granted
      end
      else begin
        e.queue <- { req_owner = owner; req_mode = Exclusive; upgrade = true; on_grant } :: e.queue;
        Waiting
      end
  | None ->
      if e.queue = [] && grantable e ~owner ~mode then begin
        set_holder e ~owner ~mode;
        note_held t ~owner key;
        Granted
      end
      else begin
        e.queue <- e.queue @ [ { req_owner = owner; req_mode = mode; upgrade = false; on_grant } ];
        Waiting
      end

(* Remove all queued requests of [owner] (e.g. it was aborted while
   waiting); may unblock others whose grant was queued behind it. Returns
   the callbacks of newly granted requests. *)
let cancel_waits t ~owner =
  let newly = ref [] in
  Hashtbl.iter
    (fun key e ->
      let before = List.length e.queue in
      e.queue <- List.filter (fun r -> r.req_owner <> owner) e.queue;
      if List.length e.queue <> before then begin
        let granted = drain e in
        List.iter (fun r -> note_held t ~owner:r.req_owner key) granted;
        newly := List.map (fun r -> r.on_grant) granted @ !newly
      end)
    t.entries;
  !newly

(* Release every lock [owner] holds. Returns grant callbacks of waiters
   that became grantable. *)
let release_all t ~owner =
  let keys = match Hashtbl.find_opt t.held owner with Some l -> !l | None -> [] in
  Hashtbl.remove t.held owner;
  let newly = ref [] in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.entries key with
      | None -> ()
      | Some e ->
          e.holders <- List.remove_assoc owner e.holders;
          let granted = drain e in
          List.iter (fun r -> note_held t ~owner:r.req_owner key) granted;
          newly := List.map (fun r -> r.on_grant) granted @ !newly)
    keys;
  !newly

(* Release only the Shared locks of [owner] — the non-rigorous ablation
   (dropping read locks early breaks the SRS assumption on purpose). *)
let release_shared t ~owner =
  let keys = match Hashtbl.find_opt t.held owner with Some l -> !l | None -> [] in
  let newly = ref [] in
  let kept = ref [] in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.entries key with
      | None -> ()
      | Some e -> (
          match holder_mode e owner with
          | Some Shared ->
              e.holders <- List.remove_assoc owner e.holders;
              let granted = drain e in
              List.iter (fun r -> note_held t ~owner:r.req_owner key) granted;
              newly := List.map (fun r -> r.on_grant) granted @ !newly
          | Some Exclusive -> kept := key :: !kept
          | None -> ()))
    keys;
  (match Hashtbl.find_opt t.held owner with Some l -> l := !kept | None -> ());
  !newly

let holders t key = match Hashtbl.find_opt t.entries key with Some e -> e.holders | None -> []

(* Current holders that conflict with a (hypothetical or queued) request —
   the wait-for edges for deadlock detection. *)
let blockers t key ~owner ~mode =
  match Hashtbl.find_opt t.entries key with
  | None -> []
  | Some e ->
      List.filter_map
        (fun (h, m) -> if h <> owner && not (compatible mode m) then Some h else None)
        e.holders

(* All waiting requests, as (key, owner, mode) triples. *)
let waiting t =
  Hashtbl.fold
    (fun key e acc -> List.fold_left (fun acc r -> (key, r.req_owner, r.req_mode) :: acc) acc e.queue)
    t.entries []

let held_keys t ~owner = match Hashtbl.find_opt t.held owner with Some l -> !l | None -> []

let n_locks_held t = Hashtbl.fold (fun _ e acc -> acc + List.length e.holders) t.entries 0
let n_waiting t = Hashtbl.fold (fun _ e acc -> acc + List.length e.queue) t.entries 0

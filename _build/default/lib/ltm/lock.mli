(** The lock table of one LTM: item-granularity shared/exclusive locks,
    strict-FIFO wait queues, lock upgrades. Policy (hold-to-end, timeouts,
    deadlocks) lives in {!Ltm}; grant callbacks run synchronously inside
    [release_all]/[cancel_waits] and must be deferred by the caller. *)

type mode = Shared | Exclusive

val pp_mode : mode Fmt.t

type key = string * int
type t
type outcome = Granted | Waiting

val create : unit -> t

val acquire : t -> key -> owner:int -> mode:mode -> on_grant:(unit -> unit) -> outcome
(** [Granted]: the caller holds the lock now. [Waiting]: [on_grant] will be
    called when granted (unless cancelled). Re-acquiring a held lock (or S
    under X) is a no-op grant; S->X upgrades jump the queue and wait for
    sole-holdership. *)

val cancel_waits : t -> owner:int -> (unit -> unit) list
(** Drop all queued requests of [owner]; returns grant callbacks of
    requests that became grantable behind it. *)

val release_all : t -> owner:int -> (unit -> unit) list
(** Release everything [owner] holds; returns grant callbacks of newly
    granted waiters. *)

val release_shared : t -> owner:int -> (unit -> unit) list
(** Release only [owner]'s Shared locks — the deliberate non-rigorous
    ablation (breaks SRS). *)

val holders : t -> key -> (int * mode) list

val blockers : t -> key -> owner:int -> mode:mode -> int list
(** Holders conflicting with a request — wait-for edges for deadlock
    detection. (Queue-order waits are not edges; the timeout fallback
    covers deadlocks detection misses.) *)

val waiting : t -> (key * int * mode) list
val held_keys : t -> owner:int -> key list
val n_locks_held : t -> int
val n_waiting : t -> int

(* Tunables of one LTM. Defaults model a responsive early-90s DBMS at
   microsecond-tick resolution: elementary operations take tens of
   microseconds, lock waits time out after 50 ms. *)

type dlu_enforcement =
  | Deny  (* abort a local transaction that tries to update bound data *)
  | Block  (* make it wait (bounded by lock_timeout), then abort *)
  | Ignore  (* ablation: let the violation happen *)

type deadlock_resolution =
  | Timeout_only  (* the paper's assumption for 2CM (§6) *)
  | Detection_and_timeout  (* wait-for-graph check on block, timeout as backstop *)
  | Wait_die  (* Rosenkrantz et al.: a requester younger than a conflicting holder dies *)
  | Wound_wait  (* an older requester wounds (aborts) younger conflicting holders *)

type t = {
  lock_timeout : int;  (* ticks a lock request may wait before its owner aborts *)
  deadlock : deadlock_resolution;
  cmd_latency : int;  (* fixed per-command processing ticks *)
  op_latency : int;  (* ticks per elementary operation *)
  dlu : dlu_enforcement;
  dlu_retry_interval : int;  (* Block mode: ticks between bound-data rechecks *)
  rigorous : bool;  (* false = release read locks at command end (breaks SRS; ablation) *)
}

let default =
  {
    lock_timeout = 50_000;
    deadlock = Timeout_only;
    cmd_latency = 100;
    op_latency = 30;
    dlu = Deny;
    dlu_retry_interval = 2_000;
    rigorous = true;
  }

(** Tunables of one LTM. *)

type dlu_enforcement =
  | Deny  (** abort a local transaction that tries to update bound data *)
  | Block  (** make it wait (bounded by [lock_timeout]), then abort *)
  | Ignore  (** ablation: let the violation happen *)

type deadlock_resolution =
  | Timeout_only  (** the paper's assumption for 2CM (§6) *)
  | Detection_and_timeout  (** wait-for-graph check on block, timeout as backstop *)
  | Wait_die  (** a requester younger than a conflicting holder dies (non-preemptive) *)
  | Wound_wait  (** an older requester aborts ("wounds") younger conflicting holders *)

type t = {
  lock_timeout : int;
  deadlock : deadlock_resolution;
  cmd_latency : int;
  op_latency : int;
  dlu : dlu_enforcement;
  dlu_retry_interval : int;  (** Block mode: ticks between bound-data rechecks *)
  rigorous : bool;  (** false = release read locks early (breaks SRS; ablation) *)
}

val default : t

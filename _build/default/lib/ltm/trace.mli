(** The shared global trace: timestamped history operations appended by
    LTMs, 2PC Agents and Coordinators; consumed by the offline checkers. *)

open Hermes_kernel
open Hermes_history

type t

val create : unit -> t
val record : t -> at:Time.t -> Op.t -> unit
val count : t -> int
val history : t -> History.t

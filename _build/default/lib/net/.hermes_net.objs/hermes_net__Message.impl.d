lib/net/message.ml: Command Fmt Hermes_kernel Int Site Sn

lib/net/message.mli: Command Fmt Hermes_kernel Site Sn

lib/net/network.ml: Fmt Hashtbl Hermes_kernel Hermes_sim Logs Message Rng Time

lib/net/network.mli: Hermes_kernel Hermes_sim Message

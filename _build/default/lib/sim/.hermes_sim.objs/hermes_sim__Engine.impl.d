lib/sim/engine.ml: Hermes_kernel Int Pqueue Time

lib/sim/engine.mli: Hermes_kernel Time

lib/sim/pqueue.ml: List

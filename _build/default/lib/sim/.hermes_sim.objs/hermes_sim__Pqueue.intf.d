lib/sim/pqueue.mli:

(* A purely functional leftist min-heap, functorized over the element
   order. The simulation engine stores (time, sequence) keyed events in
   one; the deterministic tie-break lives in the element order. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool
  val insert : t -> elt -> t
  val min : t -> elt option
  val pop : t -> (elt * t) option
  val size : t -> int
  val of_list : elt list -> t
  val to_sorted_list : t -> elt list
end

module Make (E : ORDERED) : S with type elt = E.t = struct
  type elt = E.t

  type t =
    | Leaf
    | Node of { rank : int; v : elt; l : t; r : t; n : int }

  let empty = Leaf
  let is_empty = function Leaf -> true | Node _ -> false
  let rank = function Leaf -> 0 | Node { rank; _ } -> rank
  let size = function Leaf -> 0 | Node { n; _ } -> n

  let node v l r =
    let n = 1 + size l + size r in
    if rank l >= rank r then Node { rank = rank r + 1; v; l; r; n }
    else Node { rank = rank l + 1; v; l = r; r = l; n }

  let rec merge a b =
    match (a, b) with
    | Leaf, t | t, Leaf -> t
    | Node na, Node nb ->
        if E.compare na.v nb.v <= 0 then node na.v na.l (merge na.r b)
        else node nb.v nb.l (merge a nb.r)

  let insert t v = merge t (Node { rank = 1; v; l = Leaf; r = Leaf; n = 1 })
  let min = function Leaf -> None | Node { v; _ } -> Some v
  let pop = function Leaf -> None | Node { v; l; r; _ } -> Some (v, merge l r)
  let of_list l = List.fold_left insert empty l

  let to_sorted_list t =
    let rec go acc t = match pop t with None -> List.rev acc | Some (v, t') -> go (v :: acc) t' in
    go [] t
end

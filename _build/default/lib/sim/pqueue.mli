(** Purely functional leftist min-heaps. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool
  val insert : t -> elt -> t
  val min : t -> elt option
  val pop : t -> (elt * t) option
  val size : t -> int
  val of_list : elt list -> t
  val to_sorted_list : t -> elt list
end

module Make (E : ORDERED) : S with type elt = E.t

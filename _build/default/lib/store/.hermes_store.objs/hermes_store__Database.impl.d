lib/store/database.ml: Hashtbl Hermes_kernel Int Item List Row Site String

lib/store/database.mli: Hermes_kernel Item Row Site

lib/store/row.ml: Fmt Hermes_kernel Txn

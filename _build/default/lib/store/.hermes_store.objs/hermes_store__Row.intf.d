lib/store/row.mli: Fmt Hermes_kernel Txn

lib/store/undo.ml: Database List Row

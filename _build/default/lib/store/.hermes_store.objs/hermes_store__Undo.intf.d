lib/store/undo.mli: Database Row

(* The concrete database state of one LDBS: named tables of integer-keyed
   rows, updated in place. Recovery (the RR assumption) is implemented by
   the undo logs in {!Undo}; this module only provides raw state access.

   Mutation goes through [write] (upsert) and [delete], both of which
   return the before image so the caller can log it. Range scans return
   keys in ascending order, which keeps the decomposition function
   deterministic (DDF). *)

open Hermes_kernel

type table = (int, Row.t) Hashtbl.t

type t = { site : Site.t; tables : (string, table) Hashtbl.t }

let create ~site = { site; tables = Hashtbl.create 16 }
let site t = t.site

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.tables name tbl;
      tbl

let read t ~table:name ~key = Hashtbl.find_opt (table t name) key

let write t ~table:name ~key row =
  let tbl = table t name in
  let before = Hashtbl.find_opt tbl key in
  Hashtbl.replace tbl key row;
  before

let delete t ~table:name ~key =
  let tbl = table t name in
  let before = Hashtbl.find_opt tbl key in
  Hashtbl.remove tbl key;
  before

(* Restore a before image: [None] removes the row. *)
let restore t ~table:name ~key before =
  let tbl = table t name in
  match before with None -> Hashtbl.remove tbl key | Some row -> Hashtbl.replace tbl key row

let keys_in_range t ~table:name ~lo ~hi =
  let tbl = table t name in
  Hashtbl.fold (fun k _ acc -> if lo <= k && k <= hi then k :: acc else acc) tbl []
  |> List.sort Int.compare

let mem t ~table:name ~key = Hashtbl.mem (table t name) key

let item t ~table ~key = Item.make ~site:t.site ~table ~key

let table_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let size t = Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.tables 0

(* A deterministic snapshot of the whole database, for invariant checks in
   tests and examples (e.g. conservation of money in the banking example). *)
let snapshot t =
  table_names t
  |> List.concat_map (fun name ->
         let tbl = table t name in
         Hashtbl.fold (fun k row acc -> (item t ~table:name ~key:k, row) :: acc) tbl []
         |> List.sort (fun (i1, _) (i2, _) -> Item.compare i1 i2))

let total t ~table:name =
  let tbl = table t name in
  Hashtbl.fold (fun _ row acc -> acc + Row.value row) tbl 0

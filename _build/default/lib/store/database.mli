(** The concrete database state of one LDBS: named tables of integer-keyed
    rows, updated in place. Mutators return before images for undo logging
    (the RR assumption); range scans are deterministic (ascending keys), as
    DDF requires. *)

open Hermes_kernel

type t

val create : site:Site.t -> t
val site : t -> Site.t

val read : t -> table:string -> key:int -> Row.t option

val write : t -> table:string -> key:int -> Row.t -> Row.t option
(** Upsert; returns the before image. *)

val delete : t -> table:string -> key:int -> Row.t option
(** Returns the before image ([None] if the row did not exist). *)

val restore : t -> table:string -> key:int -> Row.t option -> unit
(** Reinstall a before image; [None] removes the row. *)

val keys_in_range : t -> table:string -> lo:int -> hi:int -> int list
(** Existing keys in [lo, hi], ascending. *)

val mem : t -> table:string -> key:int -> bool
val item : t -> table:string -> key:int -> Item.t
val table_names : t -> string list
val size : t -> int

val snapshot : t -> (Item.t * Row.t) list
(** Deterministic full-state snapshot, for invariant checks. *)

val total : t -> table:string -> int
(** Sum of all values in a table (e.g. total money across accounts). *)

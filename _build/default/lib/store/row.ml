(* A stored row: an integer value tagged with the incarnation that wrote
   it. The tag implements reads-from tracking: when an elementary read
   returns a row, the trace records which (sub)transaction incarnation the
   value was read from — [None] meaning the paper's hypothetical
   initializing transaction T_0. *)

open Hermes_kernel

type t = { value : int; writer : Txn.Incarnation.t option }

let initial value = { value; writer = None }
let make ~value ~writer = { value; writer = Some writer }
let value t = t.value
let writer t = t.writer

let pp ppf t =
  match t.writer with
  | None -> Fmt.pf ppf "%d(T0)" t.value
  | Some w -> Fmt.pf ppf "%d(%a)" t.value Txn.Incarnation.pp w

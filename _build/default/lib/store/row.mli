(** A stored row: an integer value tagged with the writing incarnation
    ([None] = the paper's hypothetical initializing transaction T_0), which
    implements reads-from tracking. *)

open Hermes_kernel

type t = { value : int; writer : Txn.Incarnation.t option }

val initial : int -> t
val make : value:int -> writer:Txn.Incarnation.t -> t
val value : t -> int
val writer : t -> Txn.Incarnation.t option
val pp : t Fmt.t

(* Per-transaction undo logs: the Rollback Recovery (RR) assumption.

   "If a transaction is aborted, the LTM restores the concrete before
   images for all data items affected by the transaction." Only the first
   before image per (table, key) matters; recording every write and
   restoring in reverse order achieves the same effect without a lookup
   structure. *)

type entry = { table : string; key : int; before : Row.t option }

type t = { mutable entries : entry list }

let create () = { entries = [] }

let record t ~table ~key ~before = t.entries <- { table; key; before } :: t.entries

let rollback t db =
  List.iter (fun { table; key; before } -> Database.restore db ~table ~key before) t.entries;
  t.entries <- []

let discard t = t.entries <- []
let length t = List.length t.entries
let is_empty t = t.entries = []

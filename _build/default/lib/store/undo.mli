(** Per-transaction undo logs — the Rollback Recovery (RR) assumption:
    aborting restores the before images of every item the transaction
    wrote. *)

type t

val create : unit -> t
val record : t -> table:string -> key:int -> before:Row.t option -> unit

val rollback : t -> Database.t -> unit
(** Restore all before images in reverse write order, then clear the log. *)

val discard : t -> unit
(** Clear without restoring (commit). *)

val length : t -> int
val is_empty : t -> bool

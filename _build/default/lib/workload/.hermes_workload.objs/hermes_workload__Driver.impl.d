lib/workload/driver.ml: Array Clock Generator Hermes_baselines Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim List Option Rng Site Spec Stats Time Txn

lib/workload/driver.mli: Clock Hermes_baselines Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Spec Stats

lib/workload/generator.ml: Array Command Hermes_core Hermes_kernel List Rng Site Spec Zipf

lib/workload/generator.mli: Command Hermes_core Hermes_kernel Rng Spec

lib/workload/spec.ml: Fmt List

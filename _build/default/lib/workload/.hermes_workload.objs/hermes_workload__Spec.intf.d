lib/workload/spec.mli: Fmt

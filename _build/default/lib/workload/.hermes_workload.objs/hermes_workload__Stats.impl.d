lib/workload/stats.ml: Array Hermes_kernel Int List Time

lib/workload/stats.mli: Hermes_kernel Time

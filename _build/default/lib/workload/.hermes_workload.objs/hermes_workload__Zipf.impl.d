lib/workload/zipf.ml: Array Float Hermes_kernel Rng

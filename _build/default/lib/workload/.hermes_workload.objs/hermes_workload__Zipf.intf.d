lib/workload/zipf.mli: Hermes_kernel Rng

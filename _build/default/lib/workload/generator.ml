(* Program generation.

   Global programs pick distinct participating sites and, per site, a mix
   of single-row selects and updates over Zipf-distributed keys. Within
   one subtransaction a key is never first selected and then updated —
   that S->X upgrade pattern mass-produces upgrade deadlocks under strict
   FIFO queues and real applications lock-for-update up front; updates go
   straight to exclusive locks instead. *)

open Hermes_kernel

type t = { spec : Spec.t; zipf : Zipf.t; rng : Rng.t }

let create ~spec ~rng = { spec; zipf = Zipf.create ~n:spec.Spec.keys_per_site ~theta:spec.Spec.zipf_theta; rng }

let distinct_sites t =
  let n = min t.spec.Spec.sites_per_txn t.spec.Spec.n_sites in
  let all = Rng.shuffle t.rng (Array.init t.spec.Spec.n_sites Site.of_int) in
  Array.to_list (Array.sub all 0 n)

let pick_table t = Spec.table_name (Rng.int t.rng ~bound:t.spec.Spec.n_tables)

(* Per-site command list: distinct (table, key) targets, each either
   selected or updated. *)
let site_commands t =
  let rec pick_targets acc n =
    if n = 0 then acc
    else
      let target = (pick_table t, Zipf.sample t.zipf t.rng) in
      if List.mem target acc then pick_targets acc n else pick_targets (target :: acc) (n - 1)
  in
  let n_keys = min t.spec.Spec.ops_per_site (t.spec.Spec.keys_per_site * t.spec.Spec.n_tables) in
  let targets = pick_targets [] n_keys in
  List.map
    (fun (table, key) ->
      if Rng.bool t.rng ~p:t.spec.Spec.global_write_ratio then
        Command.Update { table; key; delta = Rng.int_in t.rng ~lo:(-5) ~hi:5 }
      else
        let hi = min (t.spec.Spec.keys_per_site - 1) (key + 2) in
        let overlaps_other_target =
          List.exists (fun (tb, k) -> tb = table && k <> key && key <= k && k <= hi) targets
        in
        if Rng.bool t.rng ~p:0.15 && not overlaps_other_target then
          (* An occasional small range scan: its decomposition is
             state-dependent over several rows at once. Never emitted when
             it would cover another target of the same subtransaction —
             scanning a key the transaction later updates is the S->X
             upgrade trap again. *)
          Command.Select_range { table; lo = key; hi }
        else Command.Select { table; keys = [ key ] })
    targets

let global_program t =
  let steps = List.concat_map (fun site -> List.map (fun c -> (site, c)) (site_commands t)) (distinct_sites t) in
  Hermes_core.Program.make steps

(* The locally-updateable partition of the CGM baseline: a dedicated
   per-site table local writes are confined to (paper §6: CGM partitions
   items into locally- and globally-updateable sets; global updaters may
   not read the locally-updateable set — our globals never touch it). *)
let local_partition_table = "LOCAL"

(* A local transaction's commands at one site. Under [partitioned]
   (CGM), writes go to the locally-updateable table only; reads may still
   look at global data. Without it (2CM), locals write global data too —
   DLU merely keeps them off *bound* items. *)
let local_commands ?(partitioned = false) t =
  List.init t.spec.Spec.local_ops (fun _ ->
      let key = Zipf.sample t.zipf t.rng in
      if Rng.bool t.rng ~p:t.spec.Spec.local_write_ratio then
        let table = if partitioned then local_partition_table else pick_table t in
        Command.Update { table; key; delta = Rng.int_in t.rng ~lo:(-3) ~hi:3 }
      else Command.Select { table = pick_table t; keys = [ key ] })

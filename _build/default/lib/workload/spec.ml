(* Workload parameters for the experiment harness. One spec describes the
   database population, the global-transaction traffic (multiprogramming
   level, shape, skew) and the purely local traffic at each site. *)

type t = {
  n_sites : int;
  keys_per_site : int;  (* keys per table *)
  n_tables : int;  (* tables per site (named "T0", "T1", ...) *)
  initial_value : int;
  (* Global transactions. *)
  n_global : int;  (* run this many global transactions to completion *)
  global_mpl : int;  (* concurrent global clients *)
  sites_per_txn : int;  (* participants per global transaction *)
  ops_per_site : int;  (* commands per participating site *)
  global_write_ratio : float;
  (* Local transactions (run while the global quota is being worked off). *)
  local_mpl_per_site : int;
  local_ops : int;
  local_write_ratio : float;
  local_txn_cap : int;  (* total local txns per run: bounds analysis cost when a protocol livelocks *)
  (* Access skew and pacing. *)
  zipf_theta : float;
  think_time_mean : int;  (* ticks between a client's transactions *)
  max_retries : int;  (* how often a client retries an aborted global txn *)
}

let default =
  {
    n_sites = 3;
    keys_per_site = 40;
    n_tables = 4;
    initial_value = 100;
    n_global = 100;
    global_mpl = 4;
    sites_per_txn = 2;
    ops_per_site = 2;
    global_write_ratio = 0.5;
    local_mpl_per_site = 1;
    local_ops = 2;
    local_write_ratio = 0.5;
    local_txn_cap = 2_000;
    zipf_theta = 0.6;
    think_time_mean = 2_000;
    max_retries = 10;
  }

let table_name i = "T" ^ string_of_int i
let tables t = List.init t.n_tables table_name

let pp ppf t =
  Fmt.pf ppf
    "%d sites x %d tables x %d keys, %d globals (MPL %d, %d sites/txn, %d ops/site, w=%.2f), locals MPL %d/site, theta=%.2f"
    t.n_sites t.n_tables t.keys_per_site t.n_global t.global_mpl t.sites_per_txn t.ops_per_site
    t.global_write_ratio t.local_mpl_per_site t.zipf_theta

(** Workload parameters: database population, global-transaction traffic
    and local traffic per site. One spec + one seed = one deterministic
    measured run. *)

type t = {
  n_sites : int;
  keys_per_site : int;  (** keys per table *)
  n_tables : int;  (** tables per site, named ["T0"], ["T1"], ... *)
  initial_value : int;
  n_global : int;  (** global transactions to run to completion *)
  global_mpl : int;  (** concurrent global clients *)
  sites_per_txn : int;
  ops_per_site : int;
  global_write_ratio : float;
  local_mpl_per_site : int;
  local_ops : int;
  local_write_ratio : float;
  local_txn_cap : int;  (** bound on total local transactions per run *)
  zipf_theta : float;
  think_time_mean : int;
  max_retries : int;  (** retries of an aborted global transaction *)
}

val default : t
val table_name : int -> string
val tables : t -> string list
val pp : t Fmt.t

(* Client-side statistics: outcomes, retries and commit latencies. *)

open Hermes_kernel

type t = {
  mutable committed : int;
  mutable aborted_final : int;  (* gave up after max_retries *)
  mutable attempts : int;
  mutable retries : int;
  mutable local_committed : int;
  mutable local_aborted : int;
  mutable latencies : int list;  (* commit latencies of committed globals *)
}

let create () =
  {
    committed = 0;
    aborted_final = 0;
    attempts = 0;
    retries = 0;
    local_committed = 0;
    local_aborted = 0;
    latencies = [];
  }

let record_latency t ~started ~finished = t.latencies <- Time.diff finished started :: t.latencies

type latency_summary = { mean : float; p50 : int; p95 : int; max : int }

let latency_summary t =
  match t.latencies with
  | [] -> { mean = 0.0; p50 = 0; p95 = 0; max = 0 }
  | ls ->
      let sorted = List.sort Int.compare ls in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pct p = arr.(min (n - 1) (p * n / 100)) in
      {
        mean = float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int n;
        p50 = pct 50;
        p95 = pct 95;
        max = arr.(n - 1);
      }

let abort_rate t =
  if t.attempts = 0 then 0.0 else float_of_int (t.attempts - t.committed) /. float_of_int t.attempts

(** Client-side statistics: outcomes, retries, commit latencies. *)

open Hermes_kernel

type t = {
  mutable committed : int;
  mutable aborted_final : int;  (** gave up after max_retries *)
  mutable attempts : int;  (** submissions including retries *)
  mutable retries : int;
  mutable local_committed : int;
  mutable local_aborted : int;
  mutable latencies : int list;
}

val create : unit -> t
val record_latency : t -> started:Time.t -> finished:Time.t -> unit

type latency_summary = { mean : float; p50 : int; p95 : int; max : int }

val latency_summary : t -> latency_summary

val abort_rate : t -> float
(** Failed attempts / attempts. *)

(* Zipfian key sampling with precomputed cumulative weights: item i
   (0-based) has weight 1/(i+1)^theta. theta = 0 is uniform; theta around
   0.8-1.2 gives the hot-spot skew contended-workload experiments need. *)

open Hermes_kernel

type t = { cdf : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  let cdf =
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w
  in
  (* Guard against rounding: the last bucket must cover 1.0. *)
  cdf.(n - 1) <- 1.0;
  { cdf }

let n t = Array.length t.cdf

(* Binary search for the first index with cdf >= u. *)
let sample t rng =
  let u = Rng.float rng ~bound:1.0 in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

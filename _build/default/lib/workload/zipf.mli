(** Zipfian key sampling (theta = 0 is uniform). *)

open Hermes_kernel

type t

val create : n:int -> theta:float -> t
val n : t -> int
val sample : t -> Rng.t -> int
(** A key in [0, n), item 0 hottest. *)

test/test_baselines.ml: Alcotest Array Command Fun Hermes_baselines Hermes_core Hermes_history Hermes_kernel Hermes_ltm Hermes_net Hermes_sim List Rng Site

test/test_graph.ml: Alcotest Dump Fmt Fun Hashtbl Hermes_graph Int List Option QCheck QCheck_alcotest

test/test_harness.ml: Alcotest Astring Hermes_core Hermes_harness Hermes_history Int List String

test/test_history.mli:

test/test_kernel.ml: Alcotest Array Clock Command Fun Hermes_kernel Int Interval Item List Option QCheck QCheck_alcotest Rng Site Sn Time Txn

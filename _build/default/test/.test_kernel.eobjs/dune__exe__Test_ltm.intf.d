test/test_ltm.mli:

test/test_net.ml: Alcotest Hermes_kernel Hermes_net Hermes_sim Int List Option QCheck QCheck_alcotest Rng Site

test/test_sim.ml: Alcotest Fun Hermes_kernel Hermes_sim Int List QCheck QCheck_alcotest Time

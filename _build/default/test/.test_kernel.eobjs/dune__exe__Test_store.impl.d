test/test_store.ml: Alcotest Database Hermes_kernel Hermes_store List Option QCheck QCheck_alcotest Row Site Txn Undo

test/test_store.mli:

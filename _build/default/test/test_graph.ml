(* Tests for hermes.graph: digraphs (cycles, topo sort, SCC) and
   undirected graphs (incremental loop detection for the CGM commit
   graph). *)

module D = Hermes_graph.Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

module U = Hermes_graph.Ugraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

let digraph edges = List.fold_left (fun g (u, v) -> D.add_edge g u v) D.empty edges
let ugraph edges = List.fold_left (fun g (u, v) -> U.add_edge g u v) U.empty edges

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  Alcotest.(check bool) "empty acyclic" true (D.is_acyclic D.empty);
  Alcotest.(check int) "no vertices" 0 (D.n_vertices D.empty);
  Alcotest.(check bool) "topo of empty" true (D.topological_sort D.empty = Some [])

let test_dag () =
  let g = digraph [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  Alcotest.(check bool) "acyclic" true (D.is_acyclic g);
  Alcotest.(check bool) "no cycle found" true (D.find_cycle g = None);
  match D.topological_sort g with
  | None -> Alcotest.fail "expected topo order"
  | Some order ->
      let pos x = Option.get (List.find_index (Int.equal x) order) in
      Alcotest.(check bool) "1 before 2" true (pos 1 < pos 2);
      Alcotest.(check bool) "1 before 3" true (pos 1 < pos 3);
      Alcotest.(check bool) "2 before 4" true (pos 2 < pos 4);
      Alcotest.(check bool) "3 before 4" true (pos 3 < pos 4)

let test_cycle () =
  let g = digraph [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  Alcotest.(check bool) "cyclic" false (D.is_acyclic g);
  Alcotest.(check bool) "no topo order" true (D.topological_sort g = None);
  match D.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some c ->
      (* Verify it is an actual cycle in the graph. *)
      let n = List.length c in
      Alcotest.(check bool) "nonempty" true (n > 0);
      List.iteri
        (fun i u ->
          let v = List.nth c ((i + 1) mod n) in
          Alcotest.(check bool) (Fmt.str "edge %d->%d" u v) true (D.mem_edge g u v))
        c

let test_self_loop () =
  let g = digraph [ (1, 1) ] in
  Alcotest.(check bool) "self-loop is a cycle" false (D.is_acyclic g);
  match D.find_cycle g with
  | Some [ 1 ] -> ()
  | other -> Alcotest.failf "expected [1], got %a" Fmt.(option (Dump.list int)) other

let test_sccs () =
  let g = digraph [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5); (5, 4); (6, 6) ] in
  let sccs = List.map (List.sort Int.compare) (D.sccs g) in
  let sorted = List.sort compare sccs in
  Alcotest.(check (list (list int))) "components" [ [ 1; 2; 3 ]; [ 4; 5 ]; [ 6 ] ] sorted

let test_reachable () =
  let g = digraph [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "1 reaches 3" true (D.reachable g 1 3);
  Alcotest.(check bool) "3 does not reach 1" false (D.reachable g 3 1)

let test_counts () =
  let g = digraph [ (1, 2); (1, 2); (2, 3) ] in
  Alcotest.(check int) "vertices" 3 (D.n_vertices g);
  Alcotest.(check int) "edges deduplicated" 2 (D.n_edges g)

(* Random DAG: edges only from smaller to larger vertex; must be acyclic
   and topo-sortable. *)
let prop_random_dag_acyclic =
  QCheck.Test.make ~name:"random DAGs are acyclic with valid topo sort" ~count:200
    QCheck.(list (pair (int_bound 20) (int_bound 20)))
    (fun pairs ->
      let edges = List.filter_map (fun (a, b) -> if a < b then Some (a, b) else None) pairs in
      let g = digraph edges in
      D.is_acyclic g
      &&
      match D.topological_sort g with
      | None -> false
      | Some order ->
          List.for_all
            (fun (u, v) ->
              let pos x = Option.get (List.find_index (Int.equal x) order) in
              pos u < pos v)
            edges)

let prop_cycle_closes =
  QCheck.Test.make ~name:"adding a back path makes a cycle detectable" ~count:200
    QCheck.(int_range 2 15)
    (fun n ->
      (* chain 0 -> 1 -> ... -> n, then n -> 0 *)
      let chain = List.init n (fun i -> (i, i + 1)) in
      let g = digraph ((n, 0) :: chain) in
      (not (D.is_acyclic g)) && D.find_cycle g <> None)

let prop_scc_topological_order =
  QCheck.Test.make ~name:"sccs come out in topological order of the condensation" ~count:300
    QCheck.(list (pair (int_bound 10) (int_bound 10)))
    (fun pairs ->
      let g = digraph pairs in
      let sccs = D.sccs g in
      let component_of = Hashtbl.create 16 in
      List.iteri (fun i scc -> List.iter (fun v -> Hashtbl.replace component_of v i) scc) sccs;
      List.for_all
        (fun (u, v) ->
          let cu = Hashtbl.find component_of u and cv = Hashtbl.find component_of v in
          cu <= cv)
        (D.edges g))

let prop_find_cycle_sound =
  QCheck.Test.make ~name:"find_cycle returns an actual cycle" ~count:300
    QCheck.(list (pair (int_bound 10) (int_bound 10)))
    (fun pairs ->
      let g = digraph pairs in
      match D.find_cycle g with
      | None -> D.is_acyclic g
      | Some c ->
          let n = List.length c in
          n > 0
          && List.for_all
               (fun i -> D.mem_edge g (List.nth c i) (List.nth c ((i + 1) mod n)))
               (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Ugraph                                                              *)
(* ------------------------------------------------------------------ *)

let test_u_basic () =
  let g = ugraph [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "edge" true (U.mem_edge g 1 2);
  Alcotest.(check bool) "symmetric" true (U.mem_edge g 2 1);
  Alcotest.(check bool) "connected" true (U.connected g 1 3);
  Alcotest.(check bool) "tree has no cycle" false (U.has_cycle g)

let test_u_cycle () =
  let g = ugraph [ (1, 2); (2, 3); (3, 1) ] in
  Alcotest.(check bool) "triangle" true (U.has_cycle g)

let test_u_would_close () =
  let g = ugraph [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "closing edge" true (U.adding_edges_creates_cycle g [ (1, 3) ]);
  Alcotest.(check bool) "fresh edge" false (U.adding_edges_creates_cycle g [ (3, 4) ]);
  Alcotest.(check bool) "batch with internal cycle" true
    (U.adding_edges_creates_cycle g [ (4, 5); (5, 6); (6, 4) ]);
  Alcotest.(check bool) "batch forest" false (U.adding_edges_creates_cycle g [ (4, 5); (5, 6) ])

let test_u_remove () =
  let g = ugraph [ (1, 2); (2, 3); (3, 1) ] in
  let g = U.remove_edge g 3 1 in
  Alcotest.(check bool) "no longer cyclic" false (U.has_cycle g);
  let g = U.remove_vertex g 2 in
  Alcotest.(check bool) "1-3 disconnected" false (U.connected g 1 3)

(* Consistency: adding_edges_creates_cycle g [e] agrees with has_cycle
   after actually adding e. *)
let prop_u_incremental_consistent =
  QCheck.Test.make ~name:"incremental loop check agrees with has_cycle" ~count:300
    QCheck.(pair (list (pair (int_bound 8) (int_bound 8))) (pair (int_bound 8) (int_bound 8)))
    (fun (pairs, (a, b)) ->
      (* Undirected simple graphs: skip self-loops, dedupe. *)
      let edges = List.filter (fun (u, v) -> u <> v) pairs in
      let g = List.fold_left (fun g (u, v) -> if U.mem_edge g u v then g else U.add_edge g u v) U.empty edges in
      QCheck.assume (a <> b);
      QCheck.assume (not (U.mem_edge g a b));
      QCheck.assume (not (U.has_cycle g));
      let predicted = U.adding_edges_creates_cycle g [ (a, b) ] in
      let actual = U.has_cycle (U.add_edge g a b) in
      predicted = actual)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "dag" `Quick test_dag;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "self-loop" `Quick test_self_loop;
          Alcotest.test_case "sccs" `Quick test_sccs;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "counts" `Quick test_counts;
          q prop_random_dag_acyclic;
          q prop_cycle_closes;
          q prop_scc_topological_order;
          q prop_find_cycle_sound;
        ] );
      ( "ugraph",
        [
          Alcotest.test_case "basics" `Quick test_u_basic;
          Alcotest.test_case "cycle" `Quick test_u_cycle;
          Alcotest.test_case "incremental check" `Quick test_u_would_close;
          Alcotest.test_case "removal" `Quick test_u_remove;
          q prop_u_incremental_consistent;
        ] );
    ]

(* Unit and property tests for hermes.kernel. *)

open Hermes_kernel

let site n = Site.of_int n
let t n = Time.of_int n

(* ------------------------------------------------------------------ *)
(* Site                                                                *)
(* ------------------------------------------------------------------ *)

let test_site_names () =
  Alcotest.(check string) "site 0 is a" "a" (Site.name (site 0));
  Alcotest.(check string) "site 1 is b" "b" (Site.name (site 1));
  Alcotest.(check string) "site 25 is z" "z" (Site.name (site 25));
  Alcotest.(check string) "site 26 overflows" "s26" (Site.name (site 26))

let test_site_of_int_negative () =
  Alcotest.check_raises "negative site" (Invalid_argument "Site.of_int: negative site id") (fun () ->
      ignore (Site.of_int (-1)))

let test_site_order () =
  Alcotest.(check bool) "0 < 1" true (Site.compare (site 0) (site 1) < 0);
  Alcotest.(check bool) "equal" true (Site.equal (site 3) (site 3))

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let test_time_arith () =
  Alcotest.(check int) "add" 15 (Time.to_int (Time.add (t 10) 5));
  Alcotest.(check int) "diff" 7 (Time.diff (t 10) (t 3));
  Alcotest.(check bool) "lt" true Time.(t 1 < t 2);
  Alcotest.(check bool) "le refl" true Time.(t 2 <= t 2);
  Alcotest.(check bool) "gt" false Time.(t 1 > t 2)

let test_time_pp () =
  Alcotest.(check string) "us" "42us" (Time.show (t 42));
  Alcotest.(check string) "ms" "3ms" (Time.show (t 3_000));
  Alcotest.(check string) "s" "2.500s" (Time.show (t 2_500_000))

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval_intersects () =
  let i a b = Interval.make ~lo:(t a) ~hi:(t b) in
  Alcotest.(check bool) "overlap" true (Interval.intersects (i 0 10) (i 5 15));
  Alcotest.(check bool) "disjoint" false (Interval.intersects (i 0 4) (i 5 15));
  Alcotest.(check bool) "touching endpoints intersect" true (Interval.intersects (i 0 5) (i 5 9));
  Alcotest.(check bool) "containment" true (Interval.intersects (i 0 100) (i 40 60));
  Alcotest.(check bool) "points" true (Interval.intersects (Interval.point (t 5)) (i 5 5))

let test_interval_make_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make: hi < lo") (fun () ->
      ignore (Interval.make ~lo:(t 5) ~hi:(t 4)))

let test_interval_extend () =
  let i = Interval.make ~lo:(t 2) ~hi:(t 4) in
  let j = Interval.extend_to i ~hi:(t 9) in
  Alcotest.(check int) "lo unchanged" 2 (Time.to_int (Interval.lo j));
  Alcotest.(check int) "hi moved" 9 (Time.to_int (Interval.hi j))

let test_interval_intersection () =
  let i a b = Interval.make ~lo:(t a) ~hi:(t b) in
  (match Interval.intersection (i 0 10) (i 5 15) with
  | Some x ->
      Alcotest.(check int) "lo" 5 (Time.to_int (Interval.lo x));
      Alcotest.(check int) "hi" 10 (Time.to_int (Interval.hi x))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "none" true (Interval.intersection (i 0 1) (i 2 3) = None)

let prop_interval_intersects_comm =
  QCheck.Test.make ~name:"interval intersection is commutative" ~count:500
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let i = Interval.make ~lo:(t (min a b)) ~hi:(t (max a b)) in
      let j = Interval.make ~lo:(t (min c d)) ~hi:(t (max c d)) in
      Interval.intersects i j = Interval.intersects j i)

let prop_interval_intersection_consistent =
  QCheck.Test.make ~name:"intersection is Some iff intersects" ~count:500
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let i = Interval.make ~lo:(t (min a b)) ~hi:(t (max a b)) in
      let j = Interval.make ~lo:(t (min c d)) ~hi:(t (max c d)) in
      Interval.intersects i j = Option.is_some (Interval.intersection i j))

(* ------------------------------------------------------------------ *)
(* Txn / Incarnation                                                   *)
(* ------------------------------------------------------------------ *)

let test_txn_pp () =
  Alcotest.(check string) "global" "T7" (Txn.show (Txn.global 7));
  Alcotest.(check string) "local" "L4a" (Txn.show (Txn.local ~site:(site 0) ~n:4))

let test_txn_classify () =
  Alcotest.(check bool) "global" true (Txn.is_global (Txn.global 1));
  Alcotest.(check bool) "local" true (Txn.is_local (Txn.local ~site:(site 1) ~n:2));
  Alcotest.(check bool) "not both" false (Txn.is_local (Txn.global 1))

let test_incarnation_validation () =
  let l = Txn.local ~site:(site 0) ~n:1 in
  Alcotest.check_raises "local resubmission"
    (Invalid_argument "Incarnation.make: local txns are never resubmitted") (fun () ->
      ignore (Txn.Incarnation.make ~txn:l ~site:(site 0) ~inc:1));
  Alcotest.check_raises "foreign site" (Invalid_argument "Incarnation.make: local txn at foreign site")
    (fun () -> ignore (Txn.Incarnation.make ~txn:l ~site:(site 1) ~inc:0))

let test_incarnation_pp () =
  let i = Txn.Incarnation.make ~txn:(Txn.global 1) ~site:(site 0) ~inc:2 in
  Alcotest.(check string) "incarnation" "Ta12" (Txn.Incarnation.show i)

(* ------------------------------------------------------------------ *)
(* Sn                                                                  *)
(* ------------------------------------------------------------------ *)

let test_sn_order () =
  let sn ts s seq = Sn.make ~ts:(t ts) ~site:(site s) ~seq in
  Alcotest.(check bool) "ts dominates" true Sn.(sn 1 5 9 < sn 2 0 0);
  Alcotest.(check bool) "site breaks ties" true Sn.(sn 1 0 9 < sn 1 1 0);
  Alcotest.(check bool) "seq breaks ties" true Sn.(sn 1 0 0 < sn 1 0 1);
  Alcotest.(check bool) "equal" true (Sn.equal (sn 1 0 0) (sn 1 0 0))

let prop_sn_total_order =
  QCheck.Test.make ~name:"sn compare is antisymmetric" ~count:500
    QCheck.(pair (triple small_nat small_nat small_nat) (triple small_nat small_nat small_nat))
    (fun ((a, b, c), (d, e, f)) ->
      let x = Sn.make ~ts:(t a) ~site:(site b) ~seq:c in
      let y = Sn.make ~ts:(t d) ~site:(site e) ~seq:f in
      Sn.compare x y = -Sn.compare y x)

(* ------------------------------------------------------------------ *)
(* Item / Command                                                      *)
(* ------------------------------------------------------------------ *)

let test_item_pp () =
  Alcotest.(check string) "key0" "Xa" (Item.show (Item.make ~site:(site 0) ~table:"X" ~key:0));
  Alcotest.(check string) "keyed" "X3b" (Item.show (Item.make ~site:(site 1) ~table:"X" ~key:3))

let test_command_read_only () =
  Alcotest.(check bool) "select" true (Command.is_read_only (Select { table = "X"; keys = [ 1 ] }));
  Alcotest.(check bool) "range" true (Command.is_read_only (Select_range { table = "X"; lo = 0; hi = 9 }));
  Alcotest.(check bool) "update" false (Command.is_read_only (Update { table = "X"; key = 1; delta = 2 }));
  Alcotest.(check bool) "delete" false (Command.is_read_only (Delete { table = "X"; key = 1 }))

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_perfect () =
  Alcotest.(check int) "identity" 1234 (Time.to_int (Clock.read Clock.perfect ~real:(t 1234)))

let test_clock_offset () =
  let c = Clock.make ~offset:500 () in
  Alcotest.(check int) "offset" 1500 (Time.to_int (Clock.read c ~real:(t 1000)));
  let c = Clock.make ~offset:(-2000) () in
  Alcotest.(check int) "clamped at zero" 0 (Time.to_int (Clock.read c ~real:(t 1000)))

let test_clock_skew () =
  let c = Clock.make ~skew_ppm:1000 () in
  (* +1000 ppm = +1ms per second *)
  Alcotest.(check int) "skew at 1s" 1_001_000 (Time.to_int (Clock.read c ~real:(t 1_000_000)))

let prop_clock_monotone =
  QCheck.Test.make ~name:"clock is monotone for moderate skew" ~count:300
    QCheck.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_range (-1000) 1000))
    (fun (a, b, skew_ppm) ->
      let c = Clock.make ~skew_ppm () in
      let lo = min a b and hi = max a b in
      Time.(Clock.read c ~real:(t lo) <= Clock.read c ~real:(t hi)))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 20 (fun _ -> Rng.int a ~bound:1000) in
  let ys = List.init 20 (fun _ -> Rng.int b ~bound:1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create ~seed:42 in
  let c1 = Rng.split a ~label:"x" in
  let c2 = Rng.split a ~label:"y" in
  let xs = List.init 10 (fun _ -> Rng.int c1 ~bound:1_000_000) in
  let ys = List.init 10 (fun _ -> Rng.int c2 ~bound:1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"int_in stays in bounds" ~count:500
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, a, b) ->
      let rng = Rng.create ~seed in
      let lo = min a b and hi = max a b in
      let x = Rng.int_in rng ~lo ~hi in
      lo <= x && x <= hi)

let prop_rng_exponential_positive =
  QCheck.Test.make ~name:"exponential is at least 1" ~count:500
    QCheck.(pair small_nat (int_range 1 100_000))
    (fun (seed, mean) ->
      let rng = Rng.create ~seed in
      Rng.exponential rng ~mean >= 1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:7 in
  let input = Array.init 50 Fun.id in
  let out = Rng.shuffle rng input in
  Alcotest.(check (list int)) "same multiset" (Array.to_list input)
    (List.sort Int.compare (Array.to_list out));
  Alcotest.(check (list int)) "input untouched" (List.init 50 Fun.id) (Array.to_list input)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kernel"
    [
      ( "site",
        [
          Alcotest.test_case "names" `Quick test_site_names;
          Alcotest.test_case "negative rejected" `Quick test_site_of_int_negative;
          Alcotest.test_case "order" `Quick test_site_order;
        ] );
      ( "time",
        [
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "interval",
        [
          Alcotest.test_case "intersects" `Quick test_interval_intersects;
          Alcotest.test_case "invalid make" `Quick test_interval_make_invalid;
          Alcotest.test_case "extend_to" `Quick test_interval_extend;
          Alcotest.test_case "intersection" `Quick test_interval_intersection;
          q prop_interval_intersects_comm;
          q prop_interval_intersection_consistent;
        ] );
      ( "txn",
        [
          Alcotest.test_case "pp" `Quick test_txn_pp;
          Alcotest.test_case "classify" `Quick test_txn_classify;
          Alcotest.test_case "incarnation validation" `Quick test_incarnation_validation;
          Alcotest.test_case "incarnation pp" `Quick test_incarnation_pp;
        ] );
      ( "sn",
        [ Alcotest.test_case "lexicographic order" `Quick test_sn_order; q prop_sn_total_order ] );
      ( "item-command",
        [
          Alcotest.test_case "item pp" `Quick test_item_pp;
          Alcotest.test_case "command read-only" `Quick test_command_read_only;
        ] );
      ( "clock",
        [
          Alcotest.test_case "perfect" `Quick test_clock_perfect;
          Alcotest.test_case "offset" `Quick test_clock_offset;
          Alcotest.test_case "skew" `Quick test_clock_skew;
          q prop_clock_monotone;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          q prop_rng_int_in_bounds;
          q prop_rng_exponential_positive;
        ] );
    ]

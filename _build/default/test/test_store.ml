(* Tests for hermes.store: database state, before images and undo logs
   (the RR assumption). *)

open Hermes_kernel
open Hermes_store

let site0 = Site.of_int 0
let inc k = Txn.Incarnation.make ~txn:(Txn.global k) ~site:site0 ~inc:0

let test_read_write () =
  let db = Database.create ~site:site0 in
  Alcotest.(check bool) "missing" true (Database.read db ~table:"X" ~key:1 = None);
  let before = Database.write db ~table:"X" ~key:1 (Row.initial 10) in
  Alcotest.(check bool) "no before image" true (before = None);
  (match Database.read db ~table:"X" ~key:1 with
  | Some row -> Alcotest.(check int) "value" 10 (Row.value row)
  | None -> Alcotest.fail "row missing");
  let before = Database.write db ~table:"X" ~key:1 (Row.make ~value:20 ~writer:(inc 1)) in
  match before with
  | Some row -> Alcotest.(check int) "before image" 10 (Row.value row)
  | None -> Alcotest.fail "expected before image"

let test_delete_restore () =
  let db = Database.create ~site:site0 in
  ignore (Database.write db ~table:"X" ~key:1 (Row.initial 10));
  let before = Database.delete db ~table:"X" ~key:1 in
  Alcotest.(check bool) "deleted" true (Database.read db ~table:"X" ~key:1 = None);
  Database.restore db ~table:"X" ~key:1 before;
  match Database.read db ~table:"X" ~key:1 with
  | Some row -> Alcotest.(check int) "restored" 10 (Row.value row)
  | None -> Alcotest.fail "restore failed"

let test_writer_tag () =
  let db = Database.create ~site:site0 in
  ignore (Database.write db ~table:"X" ~key:1 (Row.initial 5));
  (match Database.read db ~table:"X" ~key:1 with
  | Some row -> Alcotest.(check bool) "initial writer is T0" true (Row.writer row = None)
  | None -> Alcotest.fail "missing");
  ignore (Database.write db ~table:"X" ~key:1 (Row.make ~value:6 ~writer:(inc 3)));
  match Database.read db ~table:"X" ~key:1 with
  | Some row -> (
      match Row.writer row with
      | Some w -> Alcotest.(check bool) "writer recorded" true (Txn.equal w.Txn.Incarnation.txn (Txn.global 3))
      | None -> Alcotest.fail "writer missing")
  | None -> Alcotest.fail "missing"

let test_range () =
  let db = Database.create ~site:site0 in
  List.iter (fun k -> ignore (Database.write db ~table:"X" ~key:k (Row.initial k))) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "ascending keys" [ 3; 5; 7 ] (Database.keys_in_range db ~table:"X" ~lo:2 ~hi:8);
  Alcotest.(check (list int)) "empty range" [] (Database.keys_in_range db ~table:"X" ~lo:10 ~hi:20)

let test_total_and_size () =
  let db = Database.create ~site:site0 in
  List.iter (fun k -> ignore (Database.write db ~table:"acct" ~key:k (Row.initial 100))) [ 1; 2; 3 ];
  ignore (Database.write db ~table:"other" ~key:1 (Row.initial 7));
  Alcotest.(check int) "total" 300 (Database.total db ~table:"acct");
  Alcotest.(check int) "size" 4 (Database.size db);
  Alcotest.(check (list string)) "tables" [ "acct"; "other" ] (Database.table_names db)

let test_undo_rollback () =
  let db = Database.create ~site:site0 in
  ignore (Database.write db ~table:"X" ~key:1 (Row.initial 10));
  ignore (Database.write db ~table:"X" ~key:2 (Row.initial 20));
  let u = Undo.create () in
  (* Transaction overwrites 1, deletes 2, inserts 3, then rolls back. *)
  let w = inc 1 in
  Undo.record u ~table:"X" ~key:1 ~before:(Database.write db ~table:"X" ~key:1 (Row.make ~value:11 ~writer:w));
  Undo.record u ~table:"X" ~key:2 ~before:(Database.delete db ~table:"X" ~key:2);
  Undo.record u ~table:"X" ~key:3 ~before:(Database.write db ~table:"X" ~key:3 (Row.make ~value:33 ~writer:w));
  Alcotest.(check int) "3 entries" 3 (Undo.length u);
  Undo.rollback u db;
  Alcotest.(check bool) "log cleared" true (Undo.is_empty u);
  Alcotest.(check int) "key1 restored" 10 (Row.value (Option.get (Database.read db ~table:"X" ~key:1)));
  Alcotest.(check int) "key2 restored" 20 (Row.value (Option.get (Database.read db ~table:"X" ~key:2)));
  Alcotest.(check bool) "key3 gone" true (Database.read db ~table:"X" ~key:3 = None)

let test_undo_reverse_order () =
  (* Two writes to the same key must restore the oldest before image. *)
  let db = Database.create ~site:site0 in
  ignore (Database.write db ~table:"X" ~key:1 (Row.initial 1));
  let u = Undo.create () in
  let w = inc 1 in
  Undo.record u ~table:"X" ~key:1 ~before:(Database.write db ~table:"X" ~key:1 (Row.make ~value:2 ~writer:w));
  Undo.record u ~table:"X" ~key:1 ~before:(Database.write db ~table:"X" ~key:1 (Row.make ~value:3 ~writer:w));
  Undo.rollback u db;
  Alcotest.(check int) "original restored" 1 (Row.value (Option.get (Database.read db ~table:"X" ~key:1)))

let test_undo_discard () =
  let db = Database.create ~site:site0 in
  let u = Undo.create () in
  Undo.record u ~table:"X" ~key:1 ~before:(Database.write db ~table:"X" ~key:1 (Row.initial 9));
  Undo.discard u;
  Undo.rollback u db;
  (* discard then rollback must be a no-op: the write survives *)
  Alcotest.(check int) "commit keeps value" 9 (Row.value (Option.get (Database.read db ~table:"X" ~key:1)))

(* Property: a random batch of upserts/deletes recorded in an undo log is
   fully reverted by rollback. *)
let prop_rollback_restores =
  let op_gen = QCheck.(pair (int_bound 10) (option (int_bound 100))) in
  QCheck.Test.make ~name:"rollback restores the exact prior state" ~count:200
    QCheck.(pair (list (pair (int_bound 10) (int_bound 100))) (list op_gen))
    (fun (init, ops) ->
      let db = Database.create ~site:site0 in
      List.iter (fun (k, v) -> ignore (Database.write db ~table:"X" ~key:k (Row.initial v))) init;
      let snapshot_before = Database.snapshot db in
      let u = Undo.create () in
      let w = inc 99 in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Undo.record u ~table:"X" ~key:k ~before:(Database.write db ~table:"X" ~key:k (Row.make ~value:v ~writer:w))
          | None -> Undo.record u ~table:"X" ~key:k ~before:(Database.delete db ~table:"X" ~key:k))
        ops;
      Undo.rollback u db;
      Database.snapshot db = snapshot_before)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ( "database",
        [
          Alcotest.test_case "read/write/before-image" `Quick test_read_write;
          Alcotest.test_case "delete/restore" `Quick test_delete_restore;
          Alcotest.test_case "writer tags" `Quick test_writer_tag;
          Alcotest.test_case "range scan" `Quick test_range;
          Alcotest.test_case "totals and size" `Quick test_total_and_size;
        ] );
      ( "undo",
        [
          Alcotest.test_case "rollback" `Quick test_undo_rollback;
          Alcotest.test_case "reverse-order restore" `Quick test_undo_reverse_order;
          Alcotest.test_case "discard" `Quick test_undo_discard;
          q prop_rollback_restores;
        ] );
    ]

(* The benchmark harness.

   Part 1 regenerates every experiment table (E1..E17) — the paper has no
   quantitative tables of its own, so these operationalize its qualitative
   claims; the mapping is documented in DESIGN.md §3 and EXPERIMENTS.md.
   The whole sweep runs with a shared metrics registry, summarized after
   the tables (and the registry totals double as a sanity check that the
   suite actually exercised the certifier paths).

   Part 2 runs Bechamel microbenchmarks (M1..M15) of the certifier's and
   substrate's hot operations: alive-interval certification (fast path
   and fold baseline), alive-table maintenance, commit certification
   (fast path and fold baseline), lock acquisition, serialization /
   commit-order graph checks, replay, the exact view-serializability
   decision — pruned DFS vs the naive permutation search on the same
   fixture, plus the DFS alone on a 10-transaction history — and the
   event-scheduler substrate itself (engine schedule/fire/cancel and
   priority-queue churn).

   Part 3 runs one fixed workload through the conservative windowed
   engine on 1 and on --domains N OCaml domains and reports wall-clock
   txns/s and the parallel speedup (the merged history is
   domain-count-invariant, so both runs commit the same transactions).

   Run with:  dune exec bench/main.exe -- [--quick] [--jobs N] [--domains N] [--json FILE]

   --json dumps every table cell, the suite metrics registry, the
   microbenchmark estimates and the multicore scaling runs as one JSON
   document, schema "hermes-bench/3" (see BENCH_0005.json for a
   committed reference dump). *)

open Hermes_kernel
module Experiment = Hermes_harness.Experiment
module Table_fmt = Hermes_harness.Table_fmt
module Alive_table = Hermes_core.Alive_table
module Lock = Hermes_ltm.Lock
module History = Hermes_history.History
module Op = Hermes_history.Op
module Serialization_graph = Hermes_history.Serialization_graph
module Commit_order_graph = Hermes_history.Commit_order_graph
module Replay = Hermes_history.Replay
module View = Hermes_history.View
module Committed = Hermes_history.Committed
module Json = Hermes_obs.Json
module Engine = Hermes_sim.Engine
module Pqueue = Hermes_sim.Pqueue
module Spec = Hermes_workload.Spec
module Stats = Hermes_workload.Stats
module Driver = Hermes_workload.Driver

(* ------------------------------------------------------------------ *)
(* Fixtures for the microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

let site n = Site.of_int n

let filled_alive_table n =
  let t = Alive_table.create () in
  for gid = 1 to n do
    Alive_table.insert t ~gid
      ~sn:(Sn.make ~ts:(Time.of_int gid) ~site:(site 0) ~seq:0)
      ~interval:(Interval.make ~lo:(Time.of_int 0) ~hi:(Time.of_int (1000 + gid)))
  done;
  t

(* A synthetic committed history: [n_txns] transactions over [n_items]
   items at two sites, round-robin interleaved, all committed. *)
let synthetic_history ~n_txns ~n_items =
  let rng = Rng.create ~seed:99 in
  let ops = ref [] in
  for g = 1 to n_txns do
    let s = site (g mod 2) in
    let inc = Txn.Incarnation.make ~txn:(Txn.global g) ~site:s ~inc:0 in
    for _ = 1 to 4 do
      let item = Item.make ~site:s ~table:"X" ~key:(Rng.int rng ~bound:n_items) in
      ops :=
        (if Rng.bool rng ~p:0.5 then Op.read ~inc ~item ~from:None () else Op.write ~inc ~item ()) :: !ops
    done;
    ops := Op.Local_commit inc :: Op.Global_commit (Txn.global g) :: !ops
  done;
  History.of_ops (List.rev !ops)

(* The paper's H1 as a literal history, for the exact
   view-serializability decision benchmarks. Its extended committed
   projection (T1 with the aborted incarnation, T2) is the global view
   distortion — NOT view serializable — so an exact decider must exhaust
   the search space to answer. *)
let h1_ops =
  let a = site 0 and b = site 1 in
  let inc txn st k = Txn.Incarnation.make ~txn ~site:st ~inc:k in
  let t1 = Txn.global 1 and t2 = Txn.global 2 in
  let i10a = inc t1 a 0 and i11a = inc t1 a 1 and i10b = inc t1 b 0 in
  let i20a = inc t2 a 0 and i20b = inc t2 b 0 in
  let item st tbl = Item.make ~site:st ~table:tbl ~key:0 in
  let xa = item a "X" and ya = item a "Y" and zb = item b "Z" in
  let r i it = Op.read ~inc:i ~item:it ~from:None () and w i it = Op.write ~inc:i ~item:it () in
  [
    r i10a xa; r i10a ya; w i10a ya; r i10b zb; w i10b zb;
    Op.Prepare { txn = t1; site = a; sn = None }; Op.Prepare { txn = t1; site = b; sn = None };
    Op.Global_commit t1; Op.Local_abort i10a; Op.Local_commit i10b;
    w i20a ya; r i20a xa; w i20a xa; r i20b zb; w i20b zb;
    Op.Prepare { txn = t2; site = a; sn = None }; Op.Prepare { txn = t2; site = b; sn = None };
    Op.Global_commit t2; Op.Local_commit i20a; Op.Local_commit i20b;
    r i11a xa; Op.Local_commit i11a;
  ]

(* H1 padded with a chain of spectator transactions s1..sn at site a:
   s1 writes P1, each s(j+1) reads Pj and writes P(j+1). The reads-from
   chain admits exactly one relative order of the spectators, and H1's
   distortion keeps the whole history non-serializable — the worst case
   for an exact decider. The pruned DFS rejects T1/T2 at every level in
   one block replay each (O(n^2) small replays overall); the naive
   search must fully replay all (n+2)! permutations. *)
let h1_chain_history n =
  let a = site 0 in
  let spectators =
    List.concat
      (List.init n (fun j ->
           let txn = Txn.global (100 + j) in
           let inc = Txn.Incarnation.make ~txn ~site:a ~inc:0 in
           let item k = Item.make ~site:a ~table:"P" ~key:k in
           let reads = if j = 0 then [] else [ Op.read ~inc ~item:(item j) ~from:None () ] in
           reads
           @ [
               Op.write ~inc ~item:(item (j + 1)) ();
               Op.Prepare { txn; site = a; sn = None };
               Op.Global_commit txn;
               Op.Local_commit inc;
             ]))
  in
  History.of_ops (h1_ops @ spectators)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

(* Each benchmark's OLS ns/run estimate, as data: the printer and the
   JSON dump share one result list. *)
let run_microbenchmarks () =
  let table64 = filled_alive_table 64 in
  let candidate = Interval.make ~lo:(Time.of_int 500) ~hi:(Time.of_int 2000) in
  let sn33 = Sn.make ~ts:(Time.of_int 33) ~site:(site 0) ~seq:0 in
  let open Bechamel in
  let m1 =
    Test.make ~name:"M1 alive-interval certification, fast path (64 prepared)"
      (Staged.stage (fun () -> ignore (Alive_table.all_intersect table64 candidate)))
  in
  let m2 =
    let counter = ref 0 in
    Test.make ~name:"M2 alive-table insert+remove"
      (Staged.stage (fun () ->
           incr counter;
           let gid = 1_000_000 + !counter in
           Alive_table.insert table64 ~gid
             ~sn:(Sn.make ~ts:(Hermes_kernel.Time.of_int gid) ~site:(site 0) ~seq:0)
             ~interval:candidate;
           Alive_table.remove table64 ~gid))
  in
  let m3 =
    let locks = Lock.create () in
    Test.make ~name:"M3 lock acquire+release (16 keys)"
      (Staged.stage (fun () ->
           for k = 0 to 15 do
             ignore (Lock.acquire locks ("X", k) ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore)
           done;
           ignore (Lock.release_all locks ~owner:1)))
  in
  let h200 = synthetic_history ~n_txns:50 ~n_items:16 in
  let m4 =
    Test.make ~name:"M4 SG build+cycle check (50 txns, 200 ops)"
      (Staged.stage (fun () -> ignore (Serialization_graph.find_cycle h200)))
  in
  let m5 =
    Test.make ~name:"M5 CG cycle check (50 txns)"
      (Staged.stage (fun () -> ignore (Commit_order_graph.find_cycle h200)))
  in
  let m6 =
    Test.make ~name:"M6 replay semantics (200 ops)"
      (Staged.stage (fun () -> ignore (Replay.run h200)))
  in
  (* The view-serializability fixtures are projected once; deciding is
     what is measured. H1+5 spectators = 7 transactions, H1+8 = 10. *)
  let h1x = Committed.extended (h1_chain_history 5) in
  let h1xx = Committed.extended (h1_chain_history 8) in
  (* Both deciders must reach the same verdict on the shared fixture or
     the M7/M9 comparison is meaningless. *)
  assert (
    View.equal_decision
      (View.view_serializable ~limit:10 h1x)
      (View.view_serializable_naive ~limit:10 h1x));
  let m7 =
    Test.make ~name:"M7 exact VSR decision, pruned DFS (H1 + chain, 7 txns)"
      (Staged.stage (fun () -> ignore (View.view_serializable ~limit:10 h1x)))
  in
  let h200_text = Hermes_history.Serial_format.to_string h200 in
  let m8 =
    Test.make ~name:"M8 history dump+parse round trip (200 ops)"
      (Staged.stage (fun () -> ignore (Hermes_history.Serial_format.of_string h200_text)))
  in
  let m9 =
    Test.make ~name:"M9 exact VSR decision, naive permutations (same 7 txns)"
      (Staged.stage (fun () -> ignore (View.view_serializable_naive ~limit:10 h1x)))
  in
  let m10 =
    Test.make ~name:"M10 exact VSR decision, pruned DFS (H1 + chain, 10 txns)"
      (Staged.stage (fun () -> ignore (View.view_serializable ~limit:10 h1xx)))
  in
  let m11 =
    Test.make ~name:"M11 alive-interval certification, fold baseline (64 prepared)"
      (Staged.stage (fun () -> ignore (Alive_table.all_intersect_fold table64 candidate)))
  in
  let m12 =
    Test.make ~name:"M12 commit certification min-SN, sorted map (64 prepared)"
      (Staged.stage (fun () -> ignore (Alive_table.min_sn_holds table64 ~gid:33 ~sn:sn33)))
  in
  let m13 =
    Test.make ~name:"M13 commit certification min-SN, fold baseline (64 prepared)"
      (Staged.stage (fun () -> ignore (Alive_table.min_sn_holds_fold table64 ~gid:33 ~sn:sn33)))
  in
  let m14 =
    Test.make ~name:"M14 engine schedule/fire/cancel (256 events, 1/4 cancelled)"
      (Staged.stage (fun () ->
           let e = Engine.create () in
           let timers = Array.init 256 (fun i -> Engine.schedule e ~delay:(i * 7 mod 64) ignore) in
           Array.iteri (fun i t -> if i land 3 = 0 then Engine.cancel t) timers;
           Engine.run e))
  in
  let m15 =
    let module Q = Pqueue.Make (Int) in
    Test.make ~name:"M15 pqueue insert+pop (256 keys, adversarial order)"
      (Staged.stage (fun () ->
           let q = ref Q.empty in
           for i = 0 to 255 do
             q := Q.insert !q (i * 7919 mod 1024)
           done;
           let rec drain () =
             match Q.pop !q with
             | Some (_, rest) ->
                 q := rest;
                 drain ()
             | None -> ()
           in
           drain ()))
  in
  let tests = [ m1; m2; m3; m4; m5; m6; m7; m8; m9; m10; m11; m12; m13; m14; m15 ] in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  List.concat_map
    (fun test ->
      let results = benchmark test in
      Hashtbl.fold
        (fun name ols acc ->
          let ns =
            match Bechamel.Analyze.OLS.estimates ols with Some [ ns ] -> Some ns | _ -> None
          in
          (name, ns) :: acc)
        results [])
    tests

let print_microbenchmarks results =
  Fmt.pr "@.== Microbenchmarks (Bechamel, monotonic clock) ==@.";
  List.iter
    (fun (name, ns) ->
      match ns with
      | Some ns -> Fmt.pr "  %-62s %12.1f ns/run@." name ns
      | None -> Fmt.pr "  %-62s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Multicore scaling                                                   *)
(* ------------------------------------------------------------------ *)

(* One fixed workload through the conservative windowed engine, on one
   domain and on [domains]: the merged history is domain-count-invariant,
   so both runs commit the same transactions and the only thing that may
   change is the wall clock. *)
let run_multicore ~quick ~domains =
  let n_sites = 16 in
  let n_global = if quick then 160 else 480 in
  let setup =
    {
      Driver.default_setup with
      Driver.seed = 7;
      spec =
        Spec.make ~n_sites ~n_global
          ~arrival:
            (Spec.Closed { mpl = 2 * n_sites; think_time_mean = Spec.think_time Spec.default })
          ~local_txn_cap:(20 * n_sites) ();
    }
  in
  List.map
    (fun d ->
      let r = Driver.run_windowed ~domains:d setup in
      let committed = Stats.committed r.Driver.stats in
      let tps = if r.Driver.wall_s > 0.0 then float_of_int committed /. r.Driver.wall_s else 0.0 in
      (d, committed, r.Driver.stuck, r.Driver.wall_s, tps))
    (if domains > 1 then [ 1; domains ] else [ 1 ])

let print_multicore runs =
  Fmt.pr "@.== Multicore windowed engine (16 sites; host advertises %d core%s) ==@."
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  let base_wall = match runs with (_, _, _, w, _) :: _ -> w | [] -> 0.0 in
  List.iter
    (fun (d, committed, stuck, wall, tps) ->
      Fmt.pr "  domains %d: %d committed (%d stuck), %.3fs wall, %.0f txns/s wall, speedup %.2fx@." d
        committed stuck wall tps
        (if wall > 0.0 then base_wall /. wall else 0.0))
    runs

(* ------------------------------------------------------------------ *)
(* JSON dump                                                           *)
(* ------------------------------------------------------------------ *)

let table_json (name, (t : Table_fmt.t)) =
  Json.Obj
    [
      ("name", Json.String name);
      ("title", Json.String t.Table_fmt.title);
      ("headers", Json.List (List.map (fun h -> Json.String h) t.Table_fmt.headers));
      ("rows", Json.List (List.map (fun row -> Json.List (List.map (fun c -> Json.String c) row)) t.Table_fmt.rows));
      ("notes", Json.List (List.map (fun n -> Json.String n) t.Table_fmt.notes));
    ]

let dump_json ~path ~quick ~jobs ~domains ~tables ~metrics ~micro ~multicore =
  let micro_json =
    List.map
      (fun (name, ns) ->
        Json.Obj
          [
            ("name", Json.String name);
            ("ns_per_run", match ns with Some ns -> Json.Float ns | None -> Json.Null);
          ])
      micro
  in
  let multicore_json =
    List.map
      (fun (d, committed, stuck, wall, tps) ->
        Json.Obj
          [
            ("domains", Json.Int d);
            ("committed", Json.Int committed);
            ("stuck", Json.Int stuck);
            ("wall_s", Json.Float wall);
            ("txns_per_sec", Json.Float tps);
          ])
      multicore
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "hermes-bench/3");
        ("quick", Json.Bool quick);
        ("jobs", Json.Int jobs);
        ("domains", Json.Int domains);
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("tables", Json.List (List.map table_json tables));
        ("metrics", Json.of_string (Hermes_obs.Registry.to_json metrics));
        ("microbench", Json.List micro_json);
        ("multicore", Json.List multicore_json);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.benchmark results written to %s@." path

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let bench quick jobs domains json =
  let t0 = Unix.gettimeofday () in
  let metrics = Hermes_obs.Registry.create () in
  let seeds_of n = if quick then max 1 (n / 3) else n in
  let tables =
    List.map
      (fun (name, table) ->
        let t = table () in
        Table_fmt.print t;
        (name, t))
      (Experiment.tables ~seeds_of ~jobs ~domains ~metrics ())
  in
  Hermes_harness.Obs_report.print ~title:"Suite metrics (all experiments)" metrics;
  let micro = run_microbenchmarks () in
  print_microbenchmarks micro;
  let multicore = run_multicore ~quick ~domains in
  print_multicore multicore;
  Option.iter (fun path -> dump_json ~path ~quick ~jobs ~domains ~tables ~metrics ~micro ~multicore) json;
  Fmt.pr "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)

let () =
  let open Cmdliner in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Fewer seeds per experiment cell.") in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan each experiment's seed sweep out over $(docv) domains — parallelism ACROSS \
             independent seeded runs; results are byte-identical. Contrast $(b,--domains).")
  in
  let domains =
    Arg.(
      value
      & opt int (max 2 (Domain.recommended_domain_count ()))
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Within-run site parallelism for the multicore section and E16: the windowed engine \
             runs on 1 and on $(docv) OCaml domains (default: the host core count, at least 2). \
             Contrast $(b,--jobs), which parallelizes across independent runs.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Dump every table cell, the metrics registry, the microbenchmark estimates and the \
             multicore scaling runs to $(docv) (schema $(b,hermes-bench/3)).")
  in
  let term = Term.(const bench $ quick $ jobs $ domains $ json) in
  let info =
    Cmd.info "bench" ~doc:"Regenerate the experiment tables (E1..E17) and run the microbenchmarks (M1..M15)."
  in
  exit (Cmd.eval (Cmd.v info term))

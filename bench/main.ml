(* The benchmark harness.

   Part 1 regenerates every experiment table (E1..E12) — the paper has no
   quantitative tables of its own, so these operationalize its qualitative
   claims; the mapping is documented in DESIGN.md §3 and EXPERIMENTS.md.
   The whole sweep runs with a shared metrics registry, summarized after
   the tables (and the registry totals double as a sanity check that the
   suite actually exercised the certifier paths).

   Part 2 runs Bechamel microbenchmarks (M1..M7) of the certifier's and
   substrate's hot operations: alive-interval certification, alive-table
   maintenance, lock acquisition, serialization/commit-order graph checks,
   replay, and the exact view-serializability decision on the paper's H1.

   Run with:  dune exec bench/main.exe
   (pass --quick for fewer seeds per experiment cell) *)

open Hermes_kernel
module Experiment = Hermes_harness.Experiment
module Table_fmt = Hermes_harness.Table_fmt
module Alive_table = Hermes_core.Alive_table
module Lock = Hermes_ltm.Lock
module History = Hermes_history.History
module Op = Hermes_history.Op
module Serialization_graph = Hermes_history.Serialization_graph
module Commit_order_graph = Hermes_history.Commit_order_graph
module Replay = Hermes_history.Replay
module View = Hermes_history.View
module Committed = Hermes_history.Committed

(* ------------------------------------------------------------------ *)
(* Fixtures for the microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

let site n = Site.of_int n

let filled_alive_table n =
  let t = Alive_table.create () in
  for gid = 1 to n do
    Alive_table.insert t ~gid
      ~sn:(Sn.make ~ts:(Time.of_int gid) ~site:(site 0) ~seq:0)
      ~interval:(Interval.make ~lo:(Time.of_int 0) ~hi:(Time.of_int (1000 + gid)))
  done;
  t

(* A synthetic committed history: [n_txns] transactions over [n_items]
   items at two sites, round-robin interleaved, all committed. *)
let synthetic_history ~n_txns ~n_items =
  let rng = Rng.create ~seed:99 in
  let ops = ref [] in
  for g = 1 to n_txns do
    let s = site (g mod 2) in
    let inc = Txn.Incarnation.make ~txn:(Txn.global g) ~site:s ~inc:0 in
    for _ = 1 to 4 do
      let item = Item.make ~site:s ~table:"X" ~key:(Rng.int rng ~bound:n_items) in
      ops :=
        (if Rng.bool rng ~p:0.5 then Op.read ~inc ~item ~from:None () else Op.write ~inc ~item ()) :: !ops
    done;
    ops := Op.Local_commit inc :: Op.Global_commit (Txn.global g) :: !ops
  done;
  History.of_ops (List.rev !ops)

(* The paper's H1 as a literal history (4 transactions after projection),
   for the exact view-serializability decision benchmark. *)
let h1_history =
  let a = site 0 and b = site 1 in
  let inc txn st k = Txn.Incarnation.make ~txn ~site:st ~inc:k in
  let t1 = Txn.global 1 and t2 = Txn.global 2 in
  let i10a = inc t1 a 0 and i11a = inc t1 a 1 and i10b = inc t1 b 0 in
  let i20a = inc t2 a 0 and i20b = inc t2 b 0 in
  let item st tbl = Item.make ~site:st ~table:tbl ~key:0 in
  let xa = item a "X" and ya = item a "Y" and zb = item b "Z" in
  let r i it = Op.read ~inc:i ~item:it ~from:None () and w i it = Op.write ~inc:i ~item:it () in
  History.of_ops
    [
      r i10a xa; r i10a ya; w i10a ya; r i10b zb; w i10b zb;
      Op.Prepare { txn = t1; site = a; sn = None }; Op.Prepare { txn = t1; site = b; sn = None };
      Op.Global_commit t1; Op.Local_abort i10a; Op.Local_commit i10b;
      w i20a ya; r i20a xa; w i20a xa; r i20b zb; w i20b zb;
      Op.Prepare { txn = t2; site = a; sn = None }; Op.Prepare { txn = t2; site = b; sn = None };
      Op.Global_commit t2; Op.Local_commit i20a; Op.Local_commit i20b;
      r i11a xa; Op.Local_commit i11a;
    ]

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  let table64 = filled_alive_table 64 in
  let candidate = Interval.make ~lo:(Time.of_int 500) ~hi:(Time.of_int 2000) in
  let open Bechamel in
  let m1 =
    Test.make ~name:"M1 alive-interval certification (64 prepared)"
      (Staged.stage (fun () -> ignore (Alive_table.all_intersect table64 candidate)))
  in
  let m2 =
    let counter = ref 0 in
    Test.make ~name:"M2 alive-table insert+remove"
      (Staged.stage (fun () ->
           incr counter;
           let gid = 1_000_000 + !counter in
           Alive_table.insert table64 ~gid
             ~sn:(Sn.make ~ts:(Hermes_kernel.Time.of_int gid) ~site:(site 0) ~seq:0)
             ~interval:candidate;
           Alive_table.remove table64 ~gid))
  in
  let m3 =
    let locks = Lock.create () in
    Test.make ~name:"M3 lock acquire+release (16 keys)"
      (Staged.stage (fun () ->
           for k = 0 to 15 do
             ignore (Lock.acquire locks ("X", k) ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore)
           done;
           ignore (Lock.release_all locks ~owner:1)))
  in
  let h200 = synthetic_history ~n_txns:50 ~n_items:16 in
  let m4 =
    Test.make ~name:"M4 SG build+cycle check (50 txns, 200 ops)"
      (Staged.stage (fun () -> ignore (Serialization_graph.find_cycle h200)))
  in
  let m5 =
    Test.make ~name:"M5 CG cycle check (50 txns)"
      (Staged.stage (fun () -> ignore (Commit_order_graph.find_cycle h200)))
  in
  let m6 =
    Test.make ~name:"M6 replay semantics (200 ops)"
      (Staged.stage (fun () -> ignore (Replay.run h200)))
  in
  let m7 =
    Test.make ~name:"M7 exact VSR decision on H1"
      (Staged.stage (fun () -> ignore (View.view_serializable (Committed.extended h1_history))))
  in
  let h200_text = Hermes_history.Serial_format.to_string h200 in
  let m8 =
    Test.make ~name:"M8 history dump+parse round trip (200 ops)"
      (Staged.stage (fun () -> ignore (Hermes_history.Serial_format.of_string h200_text)))
  in
  let tests = [ m1; m2; m3; m4; m5; m6; m7; m8 ] in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  Fmt.pr "@.== Microbenchmarks (Bechamel, monotonic clock) ==@.";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ ns ] -> Fmt.pr "  %-50s %10.1f ns/run@." name ns
          | _ -> Fmt.pr "  %-50s (no estimate)@." name)
        results)
    tests

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let t0 = Unix.gettimeofday () in
  let metrics = Hermes_obs.Registry.create () in
  let seeds_of n = if quick then max 1 (n / 3) else n in
  List.iter
    (fun (_, table) -> Table_fmt.print (table ()))
    (Experiment.tables ~seeds_of ~metrics ());
  Hermes_harness.Obs_report.print ~title:"Suite metrics (all experiments)" metrics;
  microbenchmarks ();
  Fmt.pr "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)

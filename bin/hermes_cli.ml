(* The hermes command-line interface.

     hermes run         -- one workload simulation, with a verification report
     hermes scenario    -- replay a paper anomaly (h1 | h2 | h3 | overtake)
     hermes experiments -- print the experiment tables (E1..E19)

   All simulations are deterministic in the seed. *)

open Cmdliner
module Config = Hermes_core.Config
module Dtm = Hermes_core.Dtm
module Cgm = Hermes_baselines.Cgm
module Failure = Hermes_ltm.Failure
module Network = Hermes_net.Network
module Spec = Hermes_workload.Spec
module Stats = Hermes_workload.Stats
module Driver = Hermes_workload.Driver
module Scenario = Hermes_harness.Scenario
module Experiment = Hermes_harness.Experiment
module Table_fmt = Hermes_harness.Table_fmt
module Report = Hermes_history.Report
module History = Hermes_history.History
module Committed = Hermes_history.Committed
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry
module Tracer = Hermes_obs.Tracer
module Obs_report = Hermes_harness.Obs_report

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (runs are deterministic).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metrics registry to $(docv): JSON, or CSV when $(docv) ends in $(b,.csv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the structured event trace to $(docv): JSON lines, or CSV when $(docv) ends in $(b,.csv).")

let metrics_summary_arg =
  Arg.(value & flag & info [ "metrics-summary" ] ~doc:"Print an ASCII summary table of the collected metrics.")

(* An Obs context if any observability output was requested, else None
   (instrumentation then costs nothing). *)
let obs_of_flags ~metrics_out ~trace_out ~summary =
  if metrics_out <> None || trace_out <> None || summary then Some (Obs.create ()) else None

let write_obs_outputs obs ~metrics_out ~trace_out ~summary =
  match obs with
  | None -> ()
  | Some o ->
      if summary then Obs_report.print (Obs.metrics o);
      Option.iter
        (fun path ->
          Obs.write_metrics o path;
          Fmt.pr "metrics written to %s@." path)
        metrics_out;
      Option.iter
        (fun path ->
          Obs.write_trace o path;
          Fmt.pr "trace written to %s (%d events)@." path (Tracer.length (Obs.trace o)))
        trace_out

(* Structured logging: components emit on the hermes.* sources (agent,
   coordinator, ltm, net); every message carries the simulated time. *)
let setup_logs =
  let level =
    Arg.(
      value
      & opt (enum [ ("quiet", None); ("info", Some Logs.Info); ("debug", Some Logs.Debug) ]) None
      & info [ "log" ] ~docv:"LEVEL" ~doc:"Log verbosity: $(b,quiet), $(b,info) or $(b,debug).")
  in
  let setup level =
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level
  in
  Term.(const setup $ level)

let certifier_conv =
  let parse = function
    | "full" | "2cm" -> Ok Config.full
    | "naive" -> Ok Config.naive
    | "ticket" -> Ok Config.ticket
    | "no-extension" -> Ok Config.without_extension
    | "no-commit-cert" -> Ok Config.without_commit_certification
    | "no-prepare-cert" -> Ok Config.without_prepare_certification
    | "no-dlu" -> Ok Config.without_dlu
    | "commit-only" -> Ok { Config.naive with Config.commit_certification = true }
    | "prepare-only" -> Ok { Config.naive with Config.prepare_certification = true; bind_data = true }
    | s -> Error (`Msg (Fmt.str "unknown certifier %S" s))
  in
  Arg.conv (parse, fun ppf c -> Config.pp ppf c)

let certifier_arg =
  Arg.(
    value
    & opt certifier_conv Config.full
    & info [ "certifier"; "c" ] ~docv:"CERTIFIER"
        ~doc:
          "Certifier variant: $(b,full), $(b,naive), $(b,ticket), $(b,commit-only), $(b,prepare-only), \
           $(b,no-extension), $(b,no-commit-cert), $(b,no-prepare-cert), $(b,no-dlu).")

let commit_proto_arg =
  Arg.(
    value
    & opt (enum [ ("2pc", `Two_pc); ("backup-tm", `Backup_tm); ("paxos", `Paxos) ]) `Two_pc
    & info [ "commit-proto" ] ~docv:"PROTO"
        ~doc:
          "Commit protocol: $(b,2pc) (plain presumed-abort 2PC, the default), $(b,backup-tm) (the \
           decision also lands on one backup TM at another site — non-blocking for a single \
           failure), or $(b,paxos) (Paxos Commit: the decision is a Paxos-replicated register \
           across 2F+1 acceptors; see $(b,--paxos-f)).")

let paxos_f_arg =
  Arg.(
    value
    & opt int 1
    & info [ "paxos-f" ] ~docv:"F"
        ~doc:
          "Fault tolerance of $(b,--commit-proto paxos): 2$(docv)+1 acceptors, write/read quorums \
           of $(docv)+1. The commit decision survives any $(docv) permanent failures.")

let resolve_commit_proto proto f =
  match proto with
  | `Two_pc -> Config.Two_pc
  | `Backup_tm -> Config.Backup_tm
  | `Paxos ->
      if f < 1 then begin
        Fmt.epr "hermes: --paxos-f must be at least 1@.";
        exit 2
      end;
      Config.Paxos { f }

(* ------------------------------------------------------------------ *)
(* hermes run                                                          *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let sites = Arg.(value & opt int 3 & info [ "sites" ] ~doc:"Number of autonomous sites.") in
  let globals = Arg.(value & opt int 100 & info [ "globals"; "n" ] ~doc:"Global transactions to run.") in
  let mpl = Arg.(value & opt int 4 & info [ "mpl" ] ~doc:"Concurrent global clients.") in
  let failure_p =
    Arg.(value & opt float 0.0 & info [ "failure" ] ~doc:"P(unilateral abort | prepared subtransaction).")
  in
  let jitter = Arg.(value & opt int 200 & info [ "jitter" ] ~doc:"Network jitter in ticks.") in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"P(a message is dropped by the network).")
  in
  let dup =
    Arg.(value & opt float 0.0 & info [ "dup" ] ~doc:"P(a message is duplicated by the network).")
  in
  let crashes =
    Arg.(value & opt int 0 & info [ "crashes" ] ~doc:"Schedule $(docv) full site crashes across the run." ~docv:"N")
  in
  let reboot_delay =
    Arg.(
      value
      & opt int 0
      & info [ "reboot-delay" ]
          ~doc:"Ticks a crashed site stays down before recovery (0 = instantaneous reboot).")
  in
  let crash_coordinator =
    Arg.(
      value
      & flag
      & info [ "crash-coordinator" ]
          ~doc:
            "Scheduled crashes also take down the coordinators hosted at the site; they reboot \
             from the coordinator log and participants run the in-doubt termination protocol.")
  in
  let drift = Arg.(value & opt int 0 & info [ "drift" ] ~doc:"Site clock drift: site i gets +/-DRIFT ticks.") in
  let theta =
    Arg.(value & opt float 0.6 & info [ "theta"; "zipf" ] ~docv:"THETA" ~doc:"Zipf skew of key accesses.")
  in
  let open_loop =
    Arg.(
      value
      & opt (some float) None
      & info [ "open-loop" ] ~docv:"RATE"
          ~doc:
            "Open-loop arrivals: Poisson at $(docv) global transactions per simulated second. \
             $(b,--mpl) becomes the in-service cap (arrivals beyond it queue) and latency is \
             measured from arrival. Without this flag the workload is the classic closed loop.")
  in
  let group_commit =
    Arg.(
      value
      & flag
      & info [ "group-commit" ]
          ~doc:
            "Group commit: agents and coordinators stage their forced log records and pay one \
             synchronous force per batch (1000-tick flush window, 8-record batches).")
  in
  let cgm =
    Arg.(
      value
      & opt (some (enum [ ("site", Cgm.Site_level); ("table", Cgm.Table_level) ])) None
      & info [ "cgm" ] ~doc:"Use the CGM baseline at $(b,site) or $(b,table) granularity instead of 2CM.")
  in
  let domains =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run the simulation's sites on $(docv) OCaml domains with the conservative windowed \
             scheduler (within-run parallelism; contrast $(b,experiments --jobs), which fans \
             independent seeded runs out across domains). $(docv) = 1 keeps the legacy sequential \
             engine and its byte-identical schedules. The windowed schedule is deterministic and \
             identical for every $(docv) > 1, but differs from the sequential one.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Size of the shard space in the placement map (default: one shard per site). Keys hash \
             onto shards; the epoch-versioned map sends each shard's traffic to its owning site.")
  in
  let moves =
    Arg.(
      value
      & opt int 0
      & info [ "moves" ] ~docv:"N"
          ~doc:
            "Schedule $(docv) online shard moves across the run. Each move installs a new placement \
             epoch after the losing agent hands the moved shard's prepared certification state to \
             the gaining site; in-flight old-epoch work is refused (WRONG-EPOCH) and resubmitted \
             against the new map. 2CM, sequential engine only.")
  in
  let reconfigure_at =
    Arg.(
      value
      & opt int 30_000
      & info [ "reconfigure-at" ] ~docv:"TICK"
          ~doc:"Tick of the first scheduled shard move; move $(i,m) fires at $(i,m) * $(docv).")
  in
  let leave_at =
    Arg.(
      value
      & opt_all (pair ~sep:':' int int) []
      & info [ "leave-at" ] ~docv:"TICK:SITE"
          ~doc:
            "Schedule site $(i,SITE) to leave the serving set at tick $(i,TICK): its shards \
             redistribute over the survivors after a prepared-state handover. Repeatable. 2CM, \
             sequential engine only.")
  in
  let join_at =
    Arg.(
      value
      & opt_all (pair ~sep:':' int int) []
      & info [ "join-at" ] ~docv:"TICK:SITE"
          ~doc:
            "Schedule site $(i,SITE) to (re)join the serving set at tick $(i,TICK); the joiner \
             owns nothing until a later move rebalances onto it. Pair with an earlier \
             $(b,--leave-at) of the same site. Repeatable.")
  in
  let lying_sites =
    Arg.(
      value
      & opt (list int) []
      & info [ "lying-sites" ] ~docv:"SITES"
          ~doc:
            "Adversary: agents at these sites vote READY without preparing, deny having prepared \
             when asked, and silently drop their local commit. Defend with $(b,--certificates).")
  in
  let equivocate =
    Arg.(
      value
      & flag
      & info [ "equivocate" ]
          ~doc:
            "Adversary: committing coordinators send COMMIT to the first half of the participants \
             and a bare ROLLBACK to the rest. Defend with $(b,--certificates) (+ $(b,--suspicion)).")
  in
  let sn_drift =
    Arg.(
      value
      & opt int 0
      & info [ "sn-drift" ] ~docv:"TICKS"
          ~doc:
            "Adversary: even-gid coordinators draw serial numbers $(docv) ticks in the past \
             (stale clocks). Defend with $(b,--drift-bound).")
  in
  let gray_sites =
    Arg.(
      value
      & opt (list int) []
      & info [ "gray-sites" ] ~docv:"SITES"
          ~doc:
            "Gray failure: these sites stay alive but all their links run $(b,--gray-factor) \
             times slower — crash detection never trips. Defend with $(b,--suspicion).")
  in
  let gray_factor =
    Arg.(
      value
      & opt int 20
      & info [ "gray-factor" ] ~docv:"N"
          ~doc:"Latency multiplier for $(b,--gray-sites) links.")
  in
  let certificates =
    Arg.(
      value
      & flag
      & info [ "certificates" ]
          ~doc:
            "Countermeasure: votes and decisions must carry certificates; uncertified READY votes \
             are rejected at the coordinator and bare decisions at prepared participants are \
             dropped as equivocation.")
  in
  let drift_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "drift-bound" ] ~docv:"TICKS"
          ~doc:
            "Countermeasure: refuse any PREPARE whose serial number is more than $(docv) ticks \
             older than the local clock (DRIFT-REFUSED; the round retries with a fresh number).")
  in
  let suspicion =
    Arg.(
      value
      & opt int 0
      & info [ "suspicion" ] ~docv:"TICKS"
          ~doc:
            "Countermeasure: mutual-suspicion timeout — a participant prepared for $(docv) ticks \
             without a decision suspects its coordinator and escalates to the termination path \
             (decision inquiry / recovery ballot), bounding the in-doubt window.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Also print the committed projection.") in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE" ~doc:"Write the recorded history to $(docv) (verify it later with $(b,hermes verify)).")
  in
  let run () certifier commit_proto paxos_f cgm sites globals mpl failure_p jitter drop dup crashes
      reboot_delay crash_coordinator drift theta open_loop group_commit shards moves reconfigure_at
      leave_at join_at lying_sites equivocate sn_drift gray_sites gray_factor certificates
      drift_bound suspicion domains seed verbose dump metrics_out trace_out metrics_summary =
    if domains > 1 && trace_out <> None then
      (* The windowed engine writes the deterministic merged trace — a
         valid schedule, but not the sequential one the golden digests
         are pinned to. *)
      Fmt.epr "hermes: note: --trace-out with --domains %d writes the deterministic merged \
               windowed trace; golden trace digests are pinned to the sequential engine only@."
        domains;
    if domains > 1 && cgm <> None then begin
      Fmt.epr "hermes: --domains %d requires the 2CM protocol (the CGM baseline is single-domain \
               only)@." domains;
      exit 2
    end;
    if moves > 0 && (cgm <> None || domains > 1) then begin
      Fmt.epr "hermes: --moves requires the 2CM protocol on the sequential engine (--domains 1)@.";
      exit 2
    end;
    if (leave_at <> [] || join_at <> []) && (cgm <> None || domains > 1) then begin
      Fmt.epr "hermes: --leave-at/--join-at require the 2CM protocol on the sequential engine \
               (--domains 1)@.";
      exit 2
    end;
    let commit_proto = resolve_commit_proto commit_proto paxos_f in
    if domains > 1 && commit_proto <> Config.Two_pc then begin
      Fmt.epr "hermes: --domains %d requires --commit-proto 2pc (replicated commit protocols run \
               on the sequential engine only)@." domains;
      exit 2
    end;
    let certifier = { certifier with Config.commit_proto } in
    let certifier =
      {
        certifier with
        Config.adversary =
          { Config.lying_sites; equivocate; sn_drift };
        decision_certificates = certificates;
        suspicion_timeout = suspicion;
      }
    in
    let certifier =
      match drift_bound with
      | Some n -> { certifier with Config.sn_drift_rejection = true; Config.max_sn_drift = n }
      | None -> certifier
    in
    let certifier =
      if group_commit then
        {
          certifier with
          Config.group_commit_window = Config.grouped.Config.group_commit_window;
          max_batch = Config.grouped.Config.max_batch;
        }
      else certifier
    in
    let protocol =
      match cgm with
      | Some granularity -> Driver.Cgm_baseline { Cgm.default_config with Cgm.granularity }
      | None -> Driver.Two_pca certifier
    in
    let obs = obs_of_flags ~metrics_out ~trace_out ~summary:metrics_summary in
    let crash_schedule =
      List.init crashes (fun i -> (20_000 + (i * 30_000), i mod max 1 sites))
    in
    let setup =
      {
        Driver.default_setup with
        Driver.protocol;
        failure = Failure.prepared_rate failure_p;
        net =
          {
            Network.base_delay = 500;
            jitter;
            faults = { Network.no_faults with drop; dup; gray_sites; gray_factor };
          };
        clock_of_site =
          (fun i -> Hermes_kernel.Clock.make ~offset:(if i mod 2 = 0 then drift else -drift) ());
        seed;
        spec =
          (match open_loop with
          | Some rate ->
              Spec.make ~n_sites:sites ?n_shards:shards ~n_global:globals
                ~arrival:(Spec.Open { rate; max_in_flight = mpl })
                ~key_dist:(Spec.Zipf { theta }) ()
          | None ->
              Spec.make ~n_sites:sites ?n_shards:shards ~n_global:globals
                ~arrival:(Spec.Closed { mpl; think_time_mean = Spec.think_time Spec.default })
                ~key_dist:(Spec.Zipf { theta }) ());
        crash_schedule;
        reboot_delay;
        crash_coordinators = crash_coordinator;
        obs;
        moves;
        reconfigure_at;
        leave_schedule = leave_at;
        join_schedule = join_at;
        domains;
      }
    in
    let r = Driver.run setup in
    let s = r.Driver.stats in
    Fmt.pr "protocol: %s, seed %d@." (Driver.protocol_name protocol) seed;
    if commit_proto <> Config.Two_pc then
      Fmt.pr "commit protocol: %a@." Config.pp_commit_proto commit_proto;
    if domains > 1 then
      Fmt.pr "engine: windowed, %d domains, %.3fs wall (%.0f txns/s wall)@." domains r.Driver.wall_s
        (if r.Driver.wall_s > 0.0 then float_of_int (Stats.committed s) /. r.Driver.wall_s else 0.0);
    Fmt.pr "global txns: %d committed, %d gave up, %d retries, %d stuck@." (Stats.committed s)
      (Stats.aborted_final s) (Stats.retries s) r.Driver.stuck;
    Fmt.pr "local txns: %d committed, %d aborted@." (Stats.local_committed s) (Stats.local_aborted s);
    let lat = Stats.latency_summary s in
    Fmt.pr "latency: mean %.1fms, p50 %.1fms, p95 %.1fms, p99 %.1fms@." (lat.Stats.mean /. 1000.0)
      (float_of_int lat.Stats.p50 /. 1000.0)
      (float_of_int lat.Stats.p95 /. 1000.0)
      (float_of_int lat.Stats.p99 /. 1000.0);
    Fmt.pr "throughput: %.1f commits/s over %.1fms simulated@." r.Driver.throughput
      (float_of_int r.Driver.sim_ticks /. 1000.0);
    let t = r.Driver.totals in
    Fmt.pr "certifier: %d prepared, refusals ext/interval/dead %d/%d/%d, %d resubmissions, %d commit retries, %d DLU denials@."
      t.Dtm.prepared t.Dtm.refused_extension t.Dtm.refused_interval t.Dtm.refused_dead t.Dtm.resubmissions
      t.Dtm.commit_retries t.Dtm.dlu_denials;
    if moves > 0 || leave_at <> [] || join_at <> [] then
      Fmt.pr "placement: %d scheduled moves, %d leaves, %d joins, %d wrong-epoch refusals@." moves
        (List.length leave_at) (List.length join_at) t.Dtm.refused_epoch;
    if lying_sites <> [] || equivocate || sn_drift > 0 || gray_sites <> [] then
      Fmt.pr "adversary: lying %a, equivocate %b, sn-drift %d, gray %a (x%d); %d drift refusals@."
        Fmt.(Dump.list int) lying_sites equivocate sn_drift Fmt.(Dump.list int) gray_sites
        gray_factor t.Dtm.refused_drift;
    if Config.group_commit certifier then
      Fmt.pr "group commit: %d log forces (%d agent, %d coord), %d coord flushes, avg coord batch %.1f@."
        (t.Dtm.agent_log_forces + t.Dtm.coord_log_forces)
        t.Dtm.agent_log_forces t.Dtm.coord_log_forces t.Dtm.gc_flushes
        (if t.Dtm.gc_flushes = 0 then 0.0
         else float_of_int t.Dtm.gc_staged /. float_of_int t.Dtm.gc_flushes);
    (match r.Driver.cgm with
    | Some c ->
        Fmt.pr "CGM: %d gate delays, %d gate aborts, %d global-lock timeouts@." c.Cgm.gate_delays
          c.Cgm.gate_aborts c.Cgm.glock_timeouts
    | None -> ());
    if verbose then Fmt.pr "@.committed projection:@.%a@." History.pp_with_from (Committed.extended r.Driver.history);
    (match dump with
    | Some path ->
        Hermes_history.Serial_format.to_file r.Driver.history path;
        Fmt.pr "history written to %s (%d operations)@." path (History.length r.Driver.history)
    | None -> ());
    write_obs_outputs obs ~metrics_out ~trace_out ~summary:metrics_summary;
    Fmt.pr "@.%a@." Report.pp (Report.analyze r.Driver.history);
    if Report.serializable (Report.analyze r.Driver.history) then 0 else 1
  in
  let term =
    Term.(
      const run $ setup_logs $ certifier_arg $ commit_proto_arg $ paxos_f_arg $ cgm $ sites
      $ globals $ mpl $ failure_p $ jitter $ drop $ dup $ crashes $ reboot_delay
      $ crash_coordinator $ drift $ theta $ open_loop $ group_commit $ shards $ moves
      $ reconfigure_at $ leave_at $ join_at $ lying_sites $ equivocate $ sn_drift $ gray_sites
      $ gray_factor $ certificates $ drift_bound $ suspicion $ domains $ seed_arg $ verbose $ dump
      $ metrics_out_arg $ trace_out_arg $ metrics_summary_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload simulation and verify the recorded history.")
    term

(* ------------------------------------------------------------------ *)
(* hermes scenario                                                     *)
(* ------------------------------------------------------------------ *)

let scenario_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("h1", `H1); ("h2", `H2); ("h3", `H3); ("overtake", `Overtake) ])) None
      & info [] ~docv:"SCENARIO" ~doc:"One of $(b,h1), $(b,h2), $(b,h3), $(b,overtake).")
  in
  let jitter = Arg.(value & opt int 8_000 & info [ "jitter" ] ~doc:"Jitter for the overtake scenario.") in
  let run () which certifier seed jitter metrics_out trace_out metrics_summary =
    let obs = obs_of_flags ~metrics_out ~trace_out ~summary:metrics_summary in
    let show (r : Scenario.run) =
      List.iter (fun (l, o) -> Fmt.pr "%s: %a@." l Scenario.pp_outcome_opt o) r.Scenario.outcomes;
      List.iter (fun (l, ok) -> Fmt.pr "%s (local): %s@." l (if ok then "committed" else "failed")) r.Scenario.locals;
      Fmt.pr "@.committed projection:@.  %a@." History.pp_with_from (Committed.extended r.Scenario.history);
      Fmt.pr "@.%a@." Report.pp r.Scenario.report;
      write_obs_outputs obs ~metrics_out ~trace_out ~summary:metrics_summary;
      if Report.serializable r.Scenario.report then 0 else 1
    in
    match which with
    | `H1 -> show (Scenario.h1 ~certifier ~seed ?obs ())
    | `H2 -> show (Scenario.h2 ~certifier ~seed ?obs ())
    | `H3 -> show (Scenario.h3 ~certifier ~seed ?obs ())
    | `Overtake ->
        let r = Scenario.overtake ~certifier ?obs ~jitter ~seed () in
        Fmt.pr "overtaken: %b, extension refusals: %d@." r.Scenario.overtaken r.Scenario.extension_refusals;
        show r.Scenario.o_run
  in
  let term =
    Term.(
      const run $ setup_logs $ which $ certifier_arg $ seed_arg $ jitter $ metrics_out_arg $ trace_out_arg
      $ metrics_summary_arg)
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Replay a paper anomaly (H1/H2/H3/S5.3 overtake) through the protocol stack.")
    term

(* ------------------------------------------------------------------ *)
(* hermes verify                                                       *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A dumped history.") in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Also print the committed projection.") in
  (* An offline report as a metrics dump, so verification results of many
     histories can be collected the same way as run metrics. *)
  let report_metrics (rep : Report.t) path =
    let obs = Obs.create () in
    let reg = Obs.metrics obs in
    let c name v = Registry.Counter.add (Registry.counter reg name) v in
    c "verify.ops" rep.Report.n_ops;
    c "verify.txns_global" rep.Report.n_global;
    c "verify.txns_local" rep.Report.n_local;
    c "verify.rigorous_violations"
      (List.fold_left (fun n (_, vs) -> n + List.length vs) 0 rep.Report.rigorous_violations);
    c "verify.global_distortions" (List.length rep.Report.global_distortions);
    c "verify.value_mismatches" (List.length rep.Report.value_mismatches);
    Registry.Gauge.set (Registry.gauge reg "verify.serializable") (if Report.serializable rep then 1 else 0);
    Registry.Gauge.set (Registry.gauge reg "verify.rigorous") (if Report.rigorous rep then 1 else 0);
    Obs.write_metrics obs path;
    Fmt.pr "metrics written to %s@." path
  in
  let run () file verbose metrics_out =
    match Hermes_history.Serial_format.of_file file with
    | exception Hermes_history.Serial_format.Parse_error (line, msg) ->
        Fmt.epr "%s:%d: %s@." file line msg;
        2
    | h ->
        Fmt.pr "%s: %d operations, %d transactions@." file (History.length h)
          (List.length (History.txns h));
        if verbose then Fmt.pr "@.committed projection:@.%a@." History.pp_with_from (Committed.extended h);
        let rep = Report.analyze h in
        Fmt.pr "@.%a@." Report.pp rep;
        Option.iter (report_metrics rep) metrics_out;
        if Report.serializable rep then 0 else 1
  in
  let term = Term.(const run $ setup_logs $ file $ verbose $ metrics_out_arg) in
  Cmd.v
    (Cmd.info "verify" ~doc:"Re-verify a dumped history offline (rigorousness, distortions, CG, VSR).")
    term

(* ------------------------------------------------------------------ *)
(* hermes experiments                                                  *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Fewer seeds per cell.") in
  let seeds =
    Arg.(
      value
      & opt (some int) None
      & info [ "seeds" ] ~docv:"N" ~doc:"Override every experiment's seed count (wins over $(b,--quick)).")
  in
  let only =
    let names = List.init 19 (fun i -> Fmt.str "e%d" (i + 1)) in
    Arg.(
      value
      & opt (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [ "only" ] ~docv:"EXP" ~doc:"Run a single experiment ($(b,e1)..$(b,e19)).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan each experiment's seed sweep out over $(docv) domains — parallelism ACROSS \
             independent seeded runs. Tables and metrics are byte-identical to a sequential run. \
             Contrast $(b,--domains), which parallelizes WITHIN a run and only affects E16.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Override E16's domain sweep to {1, $(docv)}: each scaling block runs the windowed \
             engine single-domain and on $(docv) domains. Other experiments are unaffected (they \
             pin the legacy sequential engine for byte-identical tables). Contrast $(b,--jobs), \
             which fans independent seeded runs out across domains.")
  in
  let run () quick seeds only jobs domains metrics_out metrics_summary =
    let obs = obs_of_flags ~metrics_out ~trace_out:None ~summary:metrics_summary in
    let seeds_of default =
      match seeds with Some n -> n | None -> if quick then max 1 (default / 3) else default
    in
    let tables =
      Experiment.tables ~seeds_of ~jobs ?metrics:(Option.map Obs.metrics obs) ?domains ()
    in
    let tables =
      match only with None -> tables | Some name -> List.filter (fun (n, _) -> n = name) tables
    in
    List.iter (fun (_, table) -> Table_fmt.print (table ())) tables;
    write_obs_outputs obs ~metrics_out ~trace_out:None ~summary:metrics_summary;
    0
  in
  let term =
    Term.(
      const run $ setup_logs $ quick $ seeds $ only $ jobs $ domains $ metrics_out_arg
      $ metrics_summary_arg)
  in
  Cmd.v (Cmd.info "experiments" ~doc:"Print the experiment tables (E1..E19).") term

(* ------------------------------------------------------------------ *)
(* hermes explore                                                      *)
(* ------------------------------------------------------------------ *)

let explore_cmd =
  let module Explore = Hermes_protocol.Explore in
  let module Coordinator_sm = Hermes_protocol.Coordinator_sm in
  let sites = Arg.(value & opt int 2 & info [ "sites" ] ~doc:"Number of sites (every transaction touches all of them).") in
  let txns = Arg.(value & opt int 2 & info [ "txns" ] ~doc:"Number of global transactions.") in
  let txn_shards =
    Arg.(
      value
      & opt int 0
      & info [ "txn-shards" ] ~docv:"N"
          ~doc:
            "Shards each transaction touches (default 0 = all). A proper subset (e.g. 2 of 3 \
             sites) leaves non-participant sites that can gain a moved shard — the scenarios \
             where the reconfiguration handover actually matters.")
  in
  let budget name ~default doc = Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc) in
  let drops = budget "drops" ~default:0 "Budget of messages the network may lose." in
  let dups = budget "dups" ~default:0 "Budget of messages the network may duplicate." in
  let crashes = budget "crashes" ~default:0 "Budget of site crash+recover events." in
  let uaborts = budget "uaborts" ~default:1 "Budget of unilateral aborts of live local transactions." in
  let alive_fires = budget "alive-fires" ~default:1 "Budget of periodic alive-check firings." in
  let commit_retries = budget "commit-retries" ~default:2 "Budget of commit-certification retry firings." in
  let exec_timeouts = budget "exec-timeouts" ~default:0 "Budget of coordinator command-reply timeouts." in
  let retransmits = budget "retransmits" ~default:0 "Budget of decision/PREPARE retransmission firings." in
  let coord_crashes =
    budget "coord-crashes" ~default:0 "Budget of coordinator-site crash (+log recovery) events."
  in
  let inquiries = budget "inquiries" ~default:0 "Budget of decision-inquiry timer firings." in
  let replica_kills =
    budget "replica-kills" ~default:0
      "Budget of permanent leader/acceptor kills (replicated commit protocols: at F the space must \
       exhaust clean, at F+1 blocking reappears)."
  in
  let reconfigures =
    budget "reconfigures" ~default:0
      "Budget of shard-placement reconfigurations (each move installs a new epoch and hands the \
       moved shard's prepared state to the gainer)."
  in
  let no_handover =
    Arg.(
      value
      & flag
      & info [ "no-handover" ]
          ~doc:
            "Ablate the reconfiguration handover: a shard move installs the new epoch without \
             transferring the loser's prepared certification state. With a reconfigure budget \
             this violates I6 (expected exit 1).")
  in
  let no_termination =
    Arg.(
      value
      & flag
      & info [ "no-termination" ]
          ~doc:
            "Ablate the coordinator durability + in-doubt termination protocol: a crashed \
             coordinator stays dead instead of recovering from its log. With a coordinator-crash \
             budget this rediscovers the forever-blocking counterexample (expected exit 1).")
  in
  let max_states =
    Arg.(value & opt int 2_000_000 & info [ "max-states" ] ~docv:"N" ~doc:"Exploration cap (a hit is reported as truncation).")
  in
  let lying_sites =
    Arg.(
      value
      & opt (list int) []
      & info [ "lying-sites" ] ~docv:"SITES"
          ~doc:
            "Adversary: agents at these sites vote READY without preparing, deny having prepared, \
             and drop their local commit. Undefended this violates I2; with $(b,--certificates) \
             the space must exhaust clean.")
  in
  let equivocate =
    Arg.(
      value
      & flag
      & info [ "equivocate" ]
          ~doc:
            "Adversary: committing coordinators split COMMIT/bare-ROLLBACK across the \
             participants. Undefended this violates I4; defend with $(b,--certificates) and a \
             $(b,--suspicion) timeout plus inquiry/retransmit budgets.")
  in
  let sn_drift =
    Arg.(
      value
      & opt int 0
      & info [ "sn-drift" ] ~docv:"TICKS"
          ~doc:
            "Adversary: even-gid coordinators draw serial numbers $(docv) ticks in the past. On \
             the extension ablation this violates I3; defend with $(b,--drift-bound).")
  in
  let certificates =
    Arg.(
      value
      & flag
      & info [ "certificates" ]
          ~doc:
            "Countermeasure: certified votes and decisions — uncertified READY is rejected, bare \
             decisions at prepared participants are dropped as equivocation.")
  in
  let drift_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "drift-bound" ] ~docv:"TICKS"
          ~doc:"Countermeasure: refuse PREPAREs whose serial number is staler than $(docv) ticks.")
  in
  let suspicion =
    Arg.(
      value
      & opt int 0
      & info [ "suspicion" ] ~docv:"TICKS"
          ~doc:
            "Countermeasure: mutual-suspicion timeout — prepared participants escalate to the \
             termination path after $(docv) ticks without a decision.")
  in
  let json =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: exploration stats plus one record per reported violation \
             with the violated invariant id and its counterexample schedule.")
  in
  let quorum =
    Arg.(
      value
      & opt (enum [ ("dedup", Coordinator_sm.Dedup); ("counted", Coordinator_sm.Counted) ]) Coordinator_sm.Dedup
      & info [ "quorum" ]
          ~doc:
            "Vote counting: $(b,dedup) (per-site, correct) or $(b,counted) (raw counter — the \
             historical duplicate-READY fake-quorum bug, expected to produce violations).")
  in
  let run () certifier commit_proto paxos_f sites txns txn_shards drops dups crashes uaborts
      alive_fires commit_retries exec_timeouts retransmits coord_crashes inquiries replica_kills
      reconfigures no_handover no_termination max_states lying_sites equivocate sn_drift
      certificates drift_bound suspicion json quorum =
    let commit_proto = resolve_commit_proto commit_proto paxos_f in
    let certifier =
      {
        certifier with
        Config.adversary = { Config.lying_sites; equivocate; sn_drift };
        decision_certificates = certificates;
        suspicion_timeout = suspicion;
      }
    in
    let certifier =
      match drift_bound with
      | Some n -> { certifier with Config.sn_drift_rejection = true; Config.max_sn_drift = n }
      | None -> certifier
    in
    let scenario =
      {
        Explore.n_sites = sites;
        n_txns = txns;
        config = { certifier with Config.bind_data = false; commit_proto };
        quorum;
        budgets =
          {
            Explore.drops;
            dups;
            crashes;
            uaborts;
            alive_fires;
            commit_retries;
            exec_timeouts;
            retransmits;
            coord_crashes;
            inquiries;
            replica_kills;
            reconfigures;
          };
        termination = not no_termination;
        handover = not no_handover;
        txn_shards;
        max_states;
      }
    in
    let st = Explore.run scenario in
    if json then begin
      let module Json = Hermes_obs.Json in
      (* The invariant id is the "I<n>" prefix every violation message
         carries; the schedule is the counterexample, oldest step first. *)
      let violation_json (msg, trail) =
        let invariant =
          match String.index_opt msg ':' with Some i -> String.sub msg 0 i | None -> ""
        in
        Json.Obj
          [
            ("invariant", Json.String invariant);
            ("message", Json.String msg);
            ( "schedule",
              Json.List
                (List.map (fun a -> Json.String (Fmt.str "%a" Explore.pp_action a)) trail) );
          ]
      in
      Fmt.pr "%s@."
        (Json.to_string
           (Json.Obj
              [
                ("states", Json.Int st.Explore.states);
                ("transitions", Json.Int st.Explore.transitions);
                ("terminals", Json.Int st.Explore.terminals);
                ("violations", Json.Int st.Explore.n_violations);
                ("truncated", Json.Bool st.Explore.truncated);
                ("counterexamples", Json.List (List.map violation_json st.Explore.violations));
              ]))
    end
    else begin
      Fmt.pr "%a@." Explore.pp_stats st;
      List.iter (fun v -> Fmt.pr "@.%a@." Explore.pp_violation v) st.Explore.violations;
      if st.Explore.n_violations > List.length st.Explore.violations then
        Fmt.pr "@.(%d further violations not shown)@."
          (st.Explore.n_violations - List.length st.Explore.violations)
    end;
    if st.Explore.truncated then 2 else if st.Explore.n_violations > 0 then 1 else 0
  in
  let term =
    Term.(
      const run $ setup_logs $ certifier_arg $ commit_proto_arg $ paxos_f_arg $ sites $ txns
      $ txn_shards $ drops $ dups $ crashes $ uaborts $ alive_fires $ commit_retries
      $ exec_timeouts $ retransmits $ coord_crashes $ inquiries $ replica_kills $ reconfigures
      $ no_handover $ no_termination $ max_states $ lying_sites $ equivocate $ sn_drift
      $ certificates $ drift_bound $ suspicion $ json $ quorum)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively model-check the pure protocol machines over every schedule of a small \
          scenario (message reorderings, budgeted losses, duplications, unilateral aborts and \
          crash points). Exit 0: space exhausted, no violations; 1: violations found; 2: truncated.")
    term

(* ------------------------------------------------------------------ *)
(* hermes fuzz                                                         *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let count = Arg.(value & opt int 50 & info [ "count"; "n" ] ~doc:"Random configurations to try.") in
  let run () count seed =
    let rng = Hermes_kernel.Rng.create ~seed in
    let failures = ref 0 in
    for i = 1 to count do
      (* Same space as the test-suite fuzzer, but reported instead of
         asserted. *)
      let n_sites = Hermes_kernel.Rng.int_in rng ~lo:2 ~hi:5 in
      let setup =
        {
          Driver.default_setup with
          Driver.protocol = Driver.Two_pca Config.full;
          failure = Failure.prepared_rate (Hermes_kernel.Rng.float rng ~bound:0.4);
          net = { Network.default_config with base_delay = 500; jitter = Hermes_kernel.Rng.int rng ~bound:2_000 };
          crash_schedule =
            (if Hermes_kernel.Rng.bool rng ~p:0.3 then
               [ (20_000, Hermes_kernel.Rng.int rng ~bound:n_sites) ]
             else []);
          seed = Hermes_kernel.Rng.int rng ~bound:1_000_000;
          time_limit = 60_000_000;
          spec =
            Spec.make ~n_sites
              ~n_global:(Hermes_kernel.Rng.int_in rng ~lo:20 ~hi:50)
              ~arrival:
                (Spec.Closed
                   {
                     mpl = Hermes_kernel.Rng.int_in rng ~lo:2 ~hi:8;
                     think_time_mean = Spec.think_time Spec.default;
                   })
              ~key_dist:(Spec.Zipf { theta = Hermes_kernel.Rng.float rng ~bound:1.1 })
              ~local_txn_cap:300 ();
        }
      in
      let r = Driver.run setup in
      let c = Committed.extended r.Driver.history in
      let distortions = Hermes_history.Anomaly.global_view_distortions c in
      let cycle = Hermes_history.Anomaly.commit_order_cycle c in
      let bad = r.Driver.stuck > 0 || distortions <> [] || cycle <> None in
      if bad then begin
        incr failures;
        Fmt.pr "#%d FAILED: stuck=%d distortions=%d cycle=%b (driver seed %d)@." i r.Driver.stuck
          (List.length distortions) (cycle <> None) setup.Driver.seed
      end
      else
        Fmt.pr "#%d ok: %d commits, %d resubmissions, %d ops verified@." i
          (Stats.committed r.Driver.stats) r.Driver.totals.Dtm.resubmissions
          (History.length r.Driver.history)
    done;
    if !failures = 0 then begin
      Fmt.pr "@.all %d random configurations clean.@." count;
      0
    end
    else begin
      Fmt.pr "@.%d/%d configurations FAILED.@." !failures count;
      1
    end
  in
  let term = Term.(const run $ setup_logs $ count $ seed_arg) in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run random configurations under the full certifier and verify each history.")
    term

let () =
  let doc = "2PC Agent certification for rigorous heterogeneous multidatabases (Veijalainen & Wolski, ICDE 1992)" in
  let info = Cmd.info "hermes" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info [ run_cmd; scenario_cmd; experiments_cmd; verify_cmd; explore_cmd; fuzz_cmd ]))

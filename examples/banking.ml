(* Banking: the classic multidatabase workload the paper's introduction
   motivates. Three autonomous banks, each with its own DBMS; global
   inter-bank transfers coordinated by the 2PCA DTM, mixed with purely
   local traffic (tellers posting fees, auditors summing books) submitted
   directly to each bank, all under unilateral aborts.

   Checks two invariants at the end:
     - conservation: inter-bank transfers are zero-sum, local fee postings
       are accounted, so total money = initial + posted fees;
     - serializability: the recorded history passes the full analysis.

   Run with:  dune exec examples/banking.exe *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Ltm = Hermes_ltm.Ltm
module Trace = Hermes_ltm.Trace
module Failure = Hermes_ltm.Failure
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module Report = Hermes_history.Report

let n_banks = 3
let accounts_per_bank = 20
let initial_balance = 1_000
let n_transfers = 120
let fee = 1

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7 in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace ~net_config:Hermes_net.Network.default_config
      ~certifier:Config.full
      ~site_specs:
        (Array.make n_banks { Dtm.default_site_spec with Dtm.failure = Failure.prepared_rate 0.15 })
      ()
  in
  let banks = Dtm.site_ids dtm in
  List.iter
    (fun bank ->
      for acct = 0 to accounts_per_bank - 1 do
        Dtm.load dtm bank ~table:"accounts" ~key:acct ~value:initial_balance
      done;
      Dtm.load dtm bank ~table:"fees" ~key:0 ~value:0)
    banks;

  let wrng = Rng.split rng ~label:"workload" in
  let committed = ref 0 and aborted = ref 0 in
  let fees_posted = ref 0 in

  (* Global clients: transfers between random accounts at two distinct
     banks, retried a few times on refusal. *)
  let transfer () =
    let b1 = Rng.int wrng ~bound:n_banks in
    let b2 = (b1 + 1 + Rng.int wrng ~bound:(n_banks - 1)) mod n_banks in
    let amount = 10 + Rng.int wrng ~bound:90 in
    Program.make
      [
        (Site.of_int b1, Command.Update { table = "accounts"; key = Rng.int wrng ~bound:accounts_per_bank; delta = -amount });
        (Site.of_int b2, Command.Update { table = "accounts"; key = Rng.int wrng ~bound:accounts_per_bank; delta = amount });
      ]
  in
  let remaining = ref n_transfers in
  let rec client () =
    if !remaining > 0 then begin
      decr remaining;
      let program = transfer () in
      let rec attempt tries =
        ignore
          (Dtm.submit dtm program ~on_done:(fun o ->
               match o with
               | Coordinator.Committed ->
                   incr committed;
                   next ()
               | Coordinator.Aborted _ when tries < 8 ->
                   Engine.schedule_unit engine ~delay:(Rng.exponential wrng ~mean:2_000) (fun () ->
                       attempt (tries + 1))
               | Coordinator.Aborted _ ->
                   incr aborted;
                   next ()))
      and next () = Engine.schedule_unit engine ~delay:(Rng.exponential wrng ~mean:1_500) client in
      attempt 0
    end
  in
  for _ = 1 to 5 do
    client ()
  done;

  (* Local tellers: post a fixed fee from an account into the bank's fee
     ledger — a purely local read-modify-write the DTM never sees. DLU may
     deny one that touches bound data; the teller just retries later. *)
  let local_counter = ref 0 in
  let teller bank =
    let ltm = Dtm.ltm dtm bank in
    let rec loop () =
      if !remaining > 0 then
        Engine.schedule_unit engine ~delay:(Rng.exponential wrng ~mean:3_000) (fun () ->
            incr local_counter;
            let owner =
              Txn.Incarnation.make ~txn:(Txn.local ~site:bank ~n:!local_counter) ~site:bank ~inc:0
            in
            let txn = Ltm.begin_txn ltm ~owner in
            let acct = Rng.int wrng ~bound:accounts_per_bank in
            Ltm.exec ltm txn (Command.Update { table = "accounts"; key = acct; delta = -fee })
              ~on_done:(function
              | Ltm.Failed _ -> loop ()
              | Ltm.Done _ ->
                  Ltm.exec ltm txn (Command.Update { table = "fees"; key = 0; delta = fee })
                    ~on_done:(function
                    | Ltm.Failed _ -> loop ()
                    | Ltm.Done _ ->
                        Ltm.commit ltm txn ~on_done:(fun r ->
                            if r = Ltm.Committed then fees_posted := !fees_posted + fee;
                            loop ()))))
    in
    loop ()
  in
  List.iter teller banks;

  Engine.run engine;

  (* Invariants. *)
  let money =
    List.fold_left
      (fun acc bank ->
        acc
        + Hermes_store.Database.total (Dtm.database dtm bank) ~table:"accounts"
        + Hermes_store.Database.total (Dtm.database dtm bank) ~table:"fees")
      0 banks
  in
  let expected = n_banks * accounts_per_bank * initial_balance in
  Fmt.pr "transfers: %d committed, %d given up@." !committed !aborted;
  Fmt.pr "fees posted by tellers: %d@." !fees_posted;
  Fmt.pr "money: %d (expected %d) -- %s@." money expected (if money = expected then "CONSERVED" else "LOST!");
  let totals = Dtm.totals dtm in
  Fmt.pr "unilateral aborts: %d, resubmissions: %d, DLU denials: %d@." totals.Dtm.unilateral_aborts
    totals.Dtm.resubmissions totals.Dtm.dlu_denials;
  let rep = Report.analyze (Dtm.history dtm) in
  Fmt.pr "@.%a@." Report.pp rep;
  if money <> expected || not (Report.serializable rep) then exit 1

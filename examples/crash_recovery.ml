(* Crash recovery: why the Appendix force-writes the prepare and commit
   records. A transfer reaches the prepared state at both banks; site a
   then crashes outright — every live transaction collectively aborted,
   all volatile agent state (subtransaction table, alive intervals,
   timers) gone, only the Agent log left. Recovery rebuilds the in-doubt
   subtransaction by resubmission, the coordinator retransmits the
   unacknowledged COMMIT, and the transfer still commits exactly once.

   Run with:  dune exec examples/crash_recovery.exe
   (add HERMES_LOG=debug for the full protocol transcript) *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Trace = Hermes_ltm.Trace
module Agent = Hermes_core.Agent
module Agent_log = Hermes_core.Agent_log
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module History = Hermes_history.History
module Report = Hermes_history.Report

let () =
  (match Sys.getenv_opt "HERMES_LOG" with
  | Some "debug" ->
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level (Some Logs.Debug)
  | _ -> ());
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1992 in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace
      ~net_config:{ Hermes_net.Network.default_config with base_delay = 500; jitter = 0 }
      ~certifier:Config.full
      ~site_specs:(Array.make 2 Dtm.default_site_spec)
      ()
  in
  let a = Site.of_int 0 and b = Site.of_int 1 in
  Dtm.load dtm a ~table:"accounts" ~key:1 ~value:1_000;
  Dtm.load dtm b ~table:"accounts" ~key:1 ~value:500;

  let outcome = ref None in
  ignore
    (Dtm.submit dtm
       (Program.make
          [
            (a, Command.Update { table = "accounts"; key = 1; delta = -250 });
            (b, Command.Update { table = "accounts"; key = 1; delta = 250 });
          ])
       ~on_done:(fun o -> outcome := Some o));

  (* Crash site a the moment its subtransaction is prepared (READY sent,
     prepare record forced) — before the COMMIT can arrive. *)
  let crashed = ref false in
  let rec watch () =
    if not !crashed then
      if Agent.n_prepared (Dtm.agent dtm a) > 0 then begin
        crashed := true;
        Fmt.pr ">> site a crashes (its READY is already on the wire)...@.";
        Dtm.crash_site dtm a;
        Fmt.pr ">> ...and reboots; recovery resubmits from the Agent log.@."
      end
      else Engine.schedule_unit engine ~delay:100 watch
  in
  Engine.schedule_unit engine ~delay:100 watch;

  Engine.run engine;

  (match !outcome with
  | Some o -> Fmt.pr "@.transfer outcome: %a@." Coordinator.pp_outcome o
  | None -> Fmt.pr "@.transfer never finished?!@.");
  let balance site =
    Hermes_store.Row.value
      (Option.get (Hermes_store.Database.read (Dtm.database dtm site) ~table:"accounts" ~key:1))
  in
  Fmt.pr "balances: a=%d b=%d (total %d, expected 1500)@." (balance a) (balance b)
    (balance a + balance b);
  let ags = Agent.stats (Dtm.agent dtm a) in
  Fmt.pr "site a: %d crash, %d in-doubt subtransaction(s) recovered, %d resubmissions@."
    ags.Agent.crashes ags.Agent.recovered ags.Agent.resubmissions;
  Fmt.pr "agent log at a: %d entries, %d force-writes@."
    (Agent_log.n_entries (Agent.agent_log (Dtm.agent dtm a)))
    (Agent_log.force_writes (Agent.agent_log (Dtm.agent dtm a)));
  Fmt.pr "@.%a@." Report.pp (Report.analyze (Dtm.history dtm));
  if balance a + balance b <> 1500 then exit 1

(* Quickstart: a two-site heterogeneous multidatabase, one global
   transfer, one injected unilateral abort, one resubmission — and an
   independently verified history.

   Run with:  dune exec examples/quickstart.exe *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Trace = Hermes_ltm.Trace
module Failure = Hermes_ltm.Failure
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module History = Hermes_history.History
module Report = Hermes_history.Report

let () =
  (* 1. A simulation world: engine, RNG, trace. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:2026 in
  let trace = Trace.create () in

  (* 2. Two autonomous sites, each an LDBS with a rigorous (S2PL) LTM and
     a 2PC Agent running the full Certifier. Prepared subtransactions
     suffer unilateral aborts with probability 0.5 — an INGRES log
     overflow in miniature. *)
  let dtm =
    Dtm.create ~engine ~rng ~trace ~net_config:Hermes_net.Network.default_config
      ~certifier:Config.full
      ~site_specs:
        (Array.make 2 { Dtm.default_site_spec with Dtm.failure = Failure.prepared_rate 0.5 })
      ()
  in
  let a = Site.of_int 0 and b = Site.of_int 1 in

  (* 3. Initial balances. *)
  Dtm.load dtm a ~table:"accounts" ~key:1 ~value:1_000;
  Dtm.load dtm b ~table:"accounts" ~key:1 ~value:500;

  (* 4. A global transfer: debit at site a, credit at site b. *)
  let transfer =
    Program.make
      [
        (a, Command.Update { table = "accounts"; key = 1; delta = -100 });
        (b, Command.Update { table = "accounts"; key = 1; delta = 100 });
      ]
  in
  let outcome = ref None in
  ignore (Dtm.submit dtm transfer ~on_done:(fun o -> outcome := Some o));

  (* 5. Run the discrete-event simulation to completion. *)
  Engine.run engine;

  (* 6. Results. *)
  (match !outcome with
  | Some o -> Fmt.pr "transfer: %a@." Coordinator.pp_outcome o
  | None -> Fmt.pr "transfer never finished?!@.");
  let balance site =
    Hermes_store.Row.value
      (Option.get (Hermes_store.Database.read (Dtm.database dtm site) ~table:"accounts" ~key:1))
  in
  Fmt.pr "balances: a=%d b=%d (total %d)@." (balance a) (balance b) (balance a + balance b);
  let totals = Dtm.totals dtm in
  Fmt.pr "unilateral aborts: %d, resubmissions: %d@." totals.Dtm.unilateral_aborts totals.Dtm.resubmissions;

  (* 7. The recorded history, in the paper's notation, and its formal
     verification by the independent theory library. *)
  let h = Dtm.history dtm in
  Fmt.pr "@.history:@.  %a@." History.pp_with_from h;
  Fmt.pr "@.%a@." Report.pp (Report.analyze h)

(* Travel agency: bookings across three pre-existing reservation systems
   (airline, hotel, car rental), each an autonomous LDBS that cannot be
   modified — the heterogeneous-multidatabase setting of the paper. A
   booking decrements seat/room/car inventory at two or three sites
   atomically; reporting transactions run locally at each system.

   The example runs the SAME workload twice — once with the naive
   resubmitting agent, once with the full 2CM Certifier — and contrasts
   the verification verdicts: under unilateral aborts the naive agent
   oversells inventory consistency (view distortions), the Certifier does
   not.

   Run with:  dune exec examples/travel.exe *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Ltm = Hermes_ltm.Ltm
module Trace = Hermes_ltm.Trace
module Failure = Hermes_ltm.Failure
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module Committed = Hermes_history.Committed
module Anomaly = Hermes_history.Anomaly
module Report = Hermes_history.Report

let airline = Site.of_int 0
let hotel = Site.of_int 1
let cars = Site.of_int 2
let n_flights = 8
let n_hotels = 8
let n_cars = 8
let n_bookings = 80

let run ~name ~certifier ~seed =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace ~net_config:Hermes_net.Network.default_config ~certifier
      ~site_specs:(Array.make 3 { Dtm.default_site_spec with Dtm.failure = Failure.prepared_rate 0.3 })
      ()
  in
  for k = 0 to n_flights - 1 do
    Dtm.load dtm airline ~table:"seats" ~key:k ~value:50
  done;
  for k = 0 to n_hotels - 1 do
    Dtm.load dtm hotel ~table:"rooms" ~key:k ~value:30
  done;
  for k = 0 to n_cars - 1 do
    Dtm.load dtm cars ~table:"fleet" ~key:k ~value:20
  done;
  let wrng = Rng.split rng ~label:"workload" in
  let committed = ref 0 and refused = ref 0 in
  let remaining = ref n_bookings in
  let booking () =
    let flight = (airline, Command.Update { table = "seats"; key = Rng.int wrng ~bound:n_flights; delta = -1 }) in
    let room = (hotel, Command.Update { table = "rooms"; key = Rng.int wrng ~bound:n_hotels; delta = -1 }) in
    let car = (cars, Command.Update { table = "fleet"; key = Rng.int wrng ~bound:n_cars; delta = -1 }) in
    (* Most trips need flight+hotel; a third also rent a car. *)
    Program.make (if Rng.bool wrng ~p:0.33 then [ flight; room; car ] else [ flight; room ])
  in
  let rec client () =
    if !remaining > 0 then begin
      decr remaining;
      let program = booking () in
      let rec attempt tries =
        ignore
          (Dtm.submit dtm program ~on_done:(fun o ->
               match o with
               | Coordinator.Committed ->
                   incr committed;
                   next ()
               | Coordinator.Aborted _ when tries < 6 ->
                   Engine.schedule_unit engine ~delay:(Rng.exponential wrng ~mean:2_000) (fun () ->
                       attempt (tries + 1))
               | Coordinator.Aborted _ ->
                   incr refused;
                   next ()))
      and next () = Engine.schedule_unit engine ~delay:(Rng.exponential wrng ~mean:1_000) client in
      attempt 0
    end
  in
  for _ = 1 to 6 do
    client ()
  done;
  (* Local availability reports at each system: read-only scans. *)
  let local_counter = ref 0 in
  let reporter site table hi =
    let ltm = Dtm.ltm dtm site in
    let rec loop () =
      if !remaining > 0 then
        Engine.schedule_unit engine ~delay:(Rng.exponential wrng ~mean:4_000) (fun () ->
            incr local_counter;
            let owner =
              Txn.Incarnation.make ~txn:(Txn.local ~site ~n:!local_counter) ~site ~inc:0
            in
            let txn = Ltm.begin_txn ltm ~owner in
            Ltm.exec ltm txn (Command.Select_range { table; lo = 0; hi }) ~on_done:(function
              | Ltm.Failed _ -> loop ()
              | Ltm.Done _ -> Ltm.commit ltm txn ~on_done:(fun _ -> loop ())))
    in
    loop ()
  in
  reporter airline "seats" (n_flights - 1);
  reporter hotel "rooms" (n_hotels - 1);
  reporter cars "fleet" (n_cars - 1);
  Engine.run engine;
  let h = Dtm.history dtm in
  let c = Committed.extended h in
  let distortions = Anomaly.global_view_distortions c in
  let cycle = Anomaly.commit_order_cycle c in
  let totals = Dtm.totals dtm in
  Fmt.pr "@.== %s ==@." name;
  Fmt.pr "bookings: %d committed, %d given up; resubmissions: %d, unilateral aborts: %d@." !committed
    !refused totals.Dtm.resubmissions totals.Dtm.unilateral_aborts;
  Fmt.pr "global view distortions: %d%a@." (List.length distortions)
    Fmt.(list ~sep:nop (fun ppf d -> Fmt.pf ppf "@.  %a" Anomaly.pp_global d))
    distortions;
  Fmt.pr "commit-order cycle: %s@."
    (match cycle with
    | None -> "none"
    | Some txns -> Fmt.str "%a" Fmt.(list ~sep:(any " -> ") Txn.pp) txns);
  (distortions, cycle)

let () =
  (* The naive agent needs a seed where the anomaly manifests; sweep a few
     and report the first, then run the certifier on the same seed. *)
  let rec hunt seed =
    if seed > 60 then (Fmt.pr "no anomaly found in 60 seeds (unlucky); try more traffic@.", seed)
    else
      let distortions, cycle = run ~name:(Fmt.str "naive agent (seed %d)" seed) ~certifier:Config.naive ~seed in
      if distortions <> [] || cycle <> None then ((), seed) else hunt (seed + 1)
  in
  let (), seed = hunt 1 in
  let d2, c2 = run ~name:(Fmt.str "full 2CM certifier (seed %d)" seed) ~certifier:Config.full ~seed in
  Fmt.pr "@.verdict: naive agent corrupts views under failures; the Certifier (same seed) shows %d distortions and %s cycle.@."
    (List.length d2)
    (match c2 with None -> "no" | Some _ -> "a");
  if d2 <> [] || c2 <> None then exit 1

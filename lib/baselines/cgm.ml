(* The Commit Graph Method (CGM) baseline — Breitbart, Silberschatz &
   Thompson, "Reliable Transaction Management in a Multidatabase System"
   (SIGMOD 1990), built to the description in the paper's §6 comparison:

   - a *centralized* scheduler (this module instance) in contrast to the
     decentralized 2PCA Certifiers;
   - a global S2PL lock manager operated by the DTM at coarse granularity
     (site or table — the paper notes item granularity is impractical
     without server support), acquired before execution and held to the
     end of the global transaction: this is what protects against global
     view distortion instead of prepare certification;
   - the commit graph: at global-commit time the transaction's
     (transaction, site) edges are tentatively added; if they would close
     a loop, the commit is delayed (or the transaction aborted, by
     policy) until the graph clears — this replaces commit certification;
   - per-subtransaction servers that simulate the prepared state and
     resubmit after unilateral aborts, without certification: the
     underlying DTM runs with [Config.naive] agents.

   Global locks are acquired in sorted key order, so the global lock
   layer itself cannot deadlock; a timeout is still applied because a
   global lock can be held for a long time by a transaction stuck behind
   the commit-graph gate. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Lock = Hermes_ltm.Lock
module Trace = Hermes_ltm.Trace
module Network = Hermes_net.Network
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm

type granularity = Site_level | Table_level

type loop_policy = Delay | Abort_txn

type config = {
  granularity : granularity;
  loop_policy : loop_policy;
  global_lock_timeout : int;  (* ticks a global lock request may wait *)
}

let default_config = { granularity = Site_level; loop_policy = Delay; global_lock_timeout = 400_000 }

type stats = {
  mutable gate_delays : int;  (* commits held back by a commit-graph loop *)
  mutable gate_aborts : int;  (* commits refused (Abort_txn policy) *)
  mutable glock_timeouts : int;  (* global-lock acquisition timeouts *)
  mutable gate_wait_ticks : int;  (* total ticks spent waiting at the gate *)
}

type pending_gate = { gid : int; sites : Site.t list; proceed : unit -> unit; enqueued_at : Time.t }

type t = {
  engine : Engine.t;
  dtm : Dtm.t;
  config : config;
  glm : Lock.t;  (* the global lock manager; owners are CGM-local ids *)
  cg : Commit_graph.t;
  mutable queue : pending_gate list;  (* commits waiting for the graph to clear *)
  mutable next_owner : int;
  stats : stats;
}

let create ~engine ~rng ~trace ~net_config ~config ?obs ~site_specs () =
  let dtm = Dtm.create ~engine ~rng ~trace ~net_config ~certifier:Config.naive ?obs ~site_specs () in
  {
    engine;
    dtm;
    config;
    glm = Lock.create ();
    cg = Commit_graph.create ();
    queue = [];
    next_owner = 0;
    stats = { gate_delays = 0; gate_aborts = 0; glock_timeouts = 0; gate_wait_ticks = 0 };
  }

let dtm t = t.dtm
let stats t = t.stats

(* The global lock set of a program: at site granularity one lock per
   participating site; at table granularity one per (site, table). Mode is
   exclusive as soon as the transaction writes anything in the granule. *)
let global_locks t program =
  let writes_in = Hashtbl.create 8 in
  let granules = Hashtbl.create 8 in
  List.iter
    (fun (site, cmd) ->
      let key =
        match t.config.granularity with
        | Site_level -> (Fmt.str "site-%d" (Site.to_int site), 0)
        | Table_level -> (Fmt.str "site-%d/%s" (Site.to_int site) (Command.table cmd), 0)
      in
      Hashtbl.replace granules key ();
      if not (Command.is_read_only cmd) then Hashtbl.replace writes_in key ())
    (Program.steps program);
  Hashtbl.fold
    (fun key () acc ->
      let mode = if Hashtbl.mem writes_in key then Lock.Exclusive else Lock.Shared in
      (key, mode) :: acc)
    granules []
  |> List.sort compare

(* Retry all queued gates (cheap: the queue holds only in-doubt commits). *)
let drain_queue t =
  let pending = t.queue in
  t.queue <- [];
  List.iter
    (fun p ->
      if Commit_graph.would_loop t.cg ~gid:p.gid ~sites:p.sites then t.queue <- p :: t.queue
      else begin
        Commit_graph.enter t.cg ~gid:p.gid ~sites:p.sites;
        t.stats.gate_wait_ticks <-
          t.stats.gate_wait_ticks + Time.diff (Engine.now t.engine) p.enqueued_at;
        p.proceed ()
      end)
    pending

let gate t : Coordinator.gate =
 fun ~gid ~sites ~proceed ~refuse ->
  if Commit_graph.would_loop t.cg ~gid ~sites then
    match t.config.loop_policy with
    | Abort_txn ->
        t.stats.gate_aborts <- t.stats.gate_aborts + 1;
        refuse "commit-graph-loop"
    | Delay ->
        t.stats.gate_delays <- t.stats.gate_delays + 1;
        t.queue <- { gid; sites; proceed; enqueued_at = Engine.now t.engine } :: t.queue
  else begin
    Commit_graph.enter t.cg ~gid ~sites;
    proceed ()
  end

let submit t program ~on_done =
  let owner = t.next_owner in
  t.next_owner <- t.next_owner + 1;
  let locks = global_locks t program in
  let released = ref false in
  let release () =
    if not !released then begin
      released := true;
      List.iter (fun cb -> cb ()) (Lock.release_all t.glm ~owner)
    end
  in
  let timed_out = ref false in
  let rec acquire = function
    | [] ->
        let gid_ref = ref (-1) in
        let gid =
          Dtm.submit t.dtm program ~gate:(gate t) ~on_done:(fun outcome ->
              (* The transaction is done everywhere: leave the commit
                 graph, release the global locks, wake waiters. *)
              Commit_graph.leave t.cg ~gid:!gid_ref;
              release ();
              drain_queue t;
              on_done outcome)
        in
        gid_ref := gid
    | (key, mode) :: rest -> (
        let timer = ref None in
        let continue () =
          (match !timer with Some tm -> Engine.cancel tm | None -> ());
          if not !timed_out then acquire rest
        in
        match Lock.acquire t.glm key ~owner ~mode ~on_grant:(fun () -> Engine.schedule_unit t.engine ~delay:0 continue) with
        | Lock.Granted -> acquire rest
        | Lock.Waiting ->
            timer :=
              Some
                (Engine.schedule t.engine ~delay:t.config.global_lock_timeout (fun () ->
                     timed_out := true;
                     t.stats.glock_timeouts <- t.stats.glock_timeouts + 1;
                     List.iter (fun cb -> cb ()) (Lock.cancel_waits t.glm ~owner);
                     release ();
                     on_done (Coordinator.Aborted (Coordinator.Gate_refused "global-lock-timeout")))))
  in
  acquire locks

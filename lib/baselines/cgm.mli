(** The Commit Graph Method baseline (paper §6): a centralized scheduler
    with a coarse-granularity global S2PL lock manager (acquired before
    execution, held to transaction end), the commit graph gating the
    commit phase, and naive (certification-free) resubmitting agents
    underneath. Local transactions are restricted by the
    locally-/globally-updateable data partition, realized in the workload
    generator. *)

open Hermes_kernel

type granularity = Site_level | Table_level
type loop_policy = Delay | Abort_txn

type config = {
  granularity : granularity;
  loop_policy : loop_policy;
  global_lock_timeout : int;
}

val default_config : config
(** Site granularity, Delay policy. *)

type stats = {
  mutable gate_delays : int;
  mutable gate_aborts : int;
  mutable glock_timeouts : int;
  mutable gate_wait_ticks : int;
}

type t

val create :
  engine:Hermes_sim.Engine.t ->
  rng:Rng.t ->
  trace:Hermes_ltm.Trace.t ->
  net_config:Hermes_net.Network.config ->
  config:config ->
  ?obs:Hermes_obs.Obs.t ->
  site_specs:Hermes_core.Dtm.site_spec array ->
  unit ->
  t

val dtm : t -> Hermes_core.Dtm.t
(** The underlying (naive-agent) DTM, for loading data and reading the
    history. *)

val stats : t -> stats

val submit : t -> Hermes_core.Program.t -> on_done:(Hermes_core.Coordinator.outcome -> unit) -> unit
(** Acquire the global locks (sorted order; timeout aborts), run the
    program through the DTM with the commit-graph gate, release on
    completion. *)

(* The effectful shell of the decision register's acceptors: one
   [Acceptor.t] per site hosts every {!Hermes_protocol.Paxos_coordinator_sm}
   instance placed at that site (instance [idx] of transaction [gid]
   lives at site [(gid + idx) mod n_sites] — strided like gids, starting
   at the site *after* the leader's so backup-TM's single acceptor never
   shares the leader's failure domain).

   The machines are timerless, so this adapter owns no engine timers at
   all: it interprets [Send], [Force_log] and [Emit] only.  The stable
   acceptor log is embedded here (promised ballot, accepted value,
   decision — exactly the three force-written facts Paxos needs);
   {!crash} wipes the volatile machines and {!recover} replays them from
   it, mirroring [Coordinator_log] recovery. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Message = Hermes_net.Message
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry
module Sm = Hermes_protocol.Paxos_coordinator_sm
module Types = Hermes_protocol.Types

let src = Logs.Src.create "hermes.acceptor" ~doc:"Paxos Commit acceptor events"

module Log = (val Logs.src_log src : Logs.LOG)

(* The force-written facts of one acceptor instance. *)
type entry = {
  mutable promised : int;
  mutable accepted : (int * bool) option;
  mutable decided : bool option;
}

type inst = { a_gid : int; a_idx : int; mutable machine : Sm.state }

type t = {
  site : Site.t;
  engine : Engine.t;
  net : Network.t;
  obs : Obs.t option;
  config : Sm.config;
  insts : (int * int, inst) Hashtbl.t;
  log : (int * int, entry) Hashtbl.t;  (* stable: survives crash/recover *)
  mutable force_writes : int;
}

let create ~site ~engine ~net ?obs ~config () =
  {
    site;
    engine;
    net;
    obs;
    config = Sm.config config;
    insts = Hashtbl.create 64;
    log = Hashtbl.create 64;
    force_writes = 0;
  }

let counter t name =
  match t.obs with
  | Some o -> Registry.Counter.incr (Registry.counter (Obs.metrics o) ~site:t.site name)
  | None -> ()

let log_entry t inst =
  let key = (inst.a_gid, inst.a_idx) in
  match Hashtbl.find_opt t.log key with
  | Some e -> e
  | None ->
      let e = { promised = 0; accepted = None; decided = None } in
      Hashtbl.replace t.log key e;
      e

let log_force t inst (r : Sm.record) =
  let e = log_entry t inst in
  (match r with
  | Sm.R_promised { ballot } -> e.promised <- max e.promised ballot
  | Sm.R_accepted { ballot; committed } ->
      e.promised <- max e.promised ballot;
      e.accepted <- Some (ballot, committed)
  | Sm.R_decided { committed } -> e.decided <- Some committed);
  t.force_writes <- t.force_writes + 1;
  counter t "acceptor.log_force_writes"

let emit_event t inst (ev : Sm.event) =
  match ev with
  | Recovery_ballot { ballot } ->
      counter t "acceptor.recovery_ballots";
      Log.info (fun m ->
          m "[%a] T%d.%d: leading recovery ballot %d" Time.pp (Engine.now t.engine) inst.a_gid
            inst.a_idx ballot)
  | Chosen { ballot; committed } ->
      counter t "acceptor.chosen";
      Log.info (fun m ->
          m "[%a] T%d.%d: ballot %d chose %s" Time.pp (Engine.now t.engine) inst.a_gid inst.a_idx
            ballot
            (if committed then "commit" else "rollback"))
  | Nacked { ballot; promised } ->
      counter t "acceptor.nacks";
      Log.debug (fun m ->
          m "[%a] T%d.%d: ballot %d nacked (promised %d elsewhere)" Time.pp (Engine.now t.engine)
            inst.a_gid inst.a_idx ballot promised)

let feed t inst input =
  let machine, effects = Sm.step t.config inst.machine input in
  inst.machine <- machine;
  List.iter
    (fun (eff : Sm.effect) ->
      match eff with
      | Types.Send { dst; gid; payload } ->
          Network.send t.net ~src:(Message.Acceptor { gid = inst.a_gid; idx = inst.a_idx }) ~dst ~gid
            payload
      | Types.Force_log r -> log_force t inst r
      | Types.Emit ev -> emit_event t inst ev
      | Types.Arm_timer _ | Types.Cancel_timer _ | Types.Ltm_call _ -> .
      | Types.Stage_log _ | Types.Force_batch _ | Types.Record _ | Types.Invoke_gate
      | Types.Decide _ ->
          assert false (* not in the acceptor vocabulary *))
    effects

(* Host instance [idx] of [gid]'s register at this site and register its
   network address. Idempotent: a retransmitted hosting request (never
   happens today) would keep the existing instance. *)
let host t ~gid ~idx =
  let key = (gid, idx) in
  if not (Hashtbl.mem t.insts key) then begin
    let inst = { a_gid = gid; a_idx = idx; machine = Sm.init ~gid ~idx } in
    Hashtbl.replace t.insts key inst;
    Network.register t.net
      (Message.Acceptor { gid; idx })
      (fun msg -> feed t inst (Sm.Deliver { src = msg.Message.src; payload = msg.Message.payload }))
  end

(* The site crashed: every hosted instance loses its volatile state
   (askers, leadership). The stable log survives; the handlers stay
   registered — [Dtm] marks the addresses down for the outage. *)
let crash t =
  Hashtbl.iter (fun _ inst -> inst.machine <- Sm.init ~gid:inst.a_gid ~idx:inst.a_idx) t.insts

(* Reboot: replay every instance from its force-written log entry. *)
let recover t =
  Hashtbl.iter
    (fun key inst ->
      match Hashtbl.find_opt t.log key with
      | None -> ()
      | Some e ->
          feed t inst
            (Sm.Recover { promised = e.promised; accepted = e.accepted; decided = e.decided }))
    t.insts

let addresses t =
  Hashtbl.fold (fun (gid, idx) _ acc -> Message.Acceptor { gid; idx } :: acc) t.insts []

let force_writes t = t.force_writes
let n_hosted t = Hashtbl.length t.insts

(** Per-site host for the Paxos Commit decision register's acceptors.

    Instance [idx] of transaction [gid]'s register is placed at site
    [(gid + idx) mod n_sites] — the stride starts one past the leader's
    site, so even backup-TM's single acceptor (F = 1 degenerate case)
    never shares the coordinator's failure domain. The acceptor state
    machines ({!Hermes_protocol.Paxos_coordinator_sm}) are timerless, so
    this adapter interprets only [Send], [Force_log] and [Emit]; the
    force-written acceptor log (promised ballot, accepted value,
    decision) is embedded here and survives {!crash}/{!recover}. *)

open Hermes_kernel

type t

val create :
  site:Site.t ->
  engine:Hermes_sim.Engine.t ->
  net:Hermes_net.Network.t ->
  ?obs:Hermes_obs.Obs.t ->
  config:Config.t ->
  unit ->
  t

val host : t -> gid:int -> idx:int -> unit
(** Create acceptor instance [idx] of [gid]'s register at this site and
    register its network address. Must run before any message is sent to
    the address (the network fails fast on unknown handlers). *)

val crash : t -> unit
(** The site crashed: every hosted instance loses its volatile state
    (leadership, pending askers). The stable log survives; mark the
    addresses down on the network for the outage. *)

val recover : t -> unit
(** Reboot: replay every hosted instance from its force-written log. *)

val addresses : t -> Hermes_net.Message.address list
(** Network addresses of every instance hosted here (for down/up marks). *)

val force_writes : t -> int
(** Total force-writes to the embedded acceptor log. *)

val n_hosted : t -> int

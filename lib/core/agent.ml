(* The 2PC Agent's effectful shell. The protocol itself — the 2PC
   Participant role and the three Certifier algorithms of the paper's
   Appendix (alive check, extended prepare certification, commit
   certification), subtransaction resubmission, crash volatility and
   log-driven recovery — lives in the pure state machine
   {!Hermes_protocol.Agent_sm}; this module owns the machine's state
   reference and everything imperative around it:

   - translating network deliveries, timer pops, LTM callbacks (command
     completion, commit completion, UAN) and crash/recover calls into
     machine inputs, with the read-only environment ([Ltm.is_alive],
     [Ltm.last_op_done], the stable log's views) sampled at input time;
   - interpreting the returned effect list, in order, against the
     network, the engine's timers, the {!Agent_log}, the LTM and the
     observability layer.

   The interpretation is order-faithful to the historical imperative
   agent (sends, timer arms/cancels, log forces and LTM calls happen in
   the exact sequence the old code performed them), which keeps runs
   byte-identical at a fixed seed.

   Bookkeeping owned here, keyed by gid: the LTM transaction handle of
   the current incarnation, the live alive-check/commit-retry timers,
   and the stable Agent log itself (it must survive [crash], which
   resets the machine's volatile state). Stale callbacks of superseded
   incarnations are filtered inside the machine by incarnation tags, so
   the shell never needs to reason about protocol state. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Ltm = Hermes_ltm.Ltm
module Bound = Hermes_ltm.Bound
module Trace = Hermes_ltm.Trace
module Op = Hermes_history.Op
module Message = Hermes_net.Message
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram
module Agent_sm = Hermes_protocol.Agent_sm
module Types = Hermes_protocol.Types

let src = Logs.Src.create "hermes.agent" ~doc:"2PC Agent / Certifier events"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  mutable prepared : int;
  mutable refused_extension : int;
  mutable refused_interval : int;
  mutable refused_dead : int;
  mutable refused_epoch : int;
  mutable refused_drift : int;  (* PREPAREs rejected by the SN staleness bound *)
  mutable resubmissions : int;
  mutable commit_retries : int;
  mutable local_commits : int;
  mutable rollbacks : int;
  mutable crashes : int;
  mutable recovered : int;  (* in-doubt subtransactions rebuilt from the log *)
}

type t = {
  site : Site.t;
  engine : Engine.t;
  ltm : Ltm.t;
  net : Network.t;
  trace : Trace.t;
  config : Config.t;
  termination : bool;  (* coordinator crashes enabled: inquiry timers + in-doubt metrics live *)
  epoch : unit -> int;
      (* the installed placement epoch, sampled per input (the Dtm owns
         the shard map); constantly 0 on runs that never reconfigure *)
  log : Agent_log.t;  (* stable storage: survives crash *)
  mutable machine : Agent_sm.state;  (* the volatile protocol state *)
  txns : (int, Ltm.txn) Hashtbl.t;  (* current incarnation's LTM handle *)
  alive_timers : (int, Engine.timer) Hashtbl.t;
  retry_timers : (int, Engine.timer) Hashtbl.t;
  inquiry_timers : (int, Engine.timer) Hashtbl.t;
  mutable flush_timer : Engine.timer option;  (* group commit: the batch window *)
  stats : stats;
  obs : Obs.t option;
  commit_delay : Histogram.t option;  (* resolved once: decision-to-local-commit ticks *)
  mutable in_doubt_now : int;  (* prepared, no decision yet (tracked volatile) *)
  in_doubt_gauge : Registry.Gauge.t option;
  in_doubt_time : Histogram.t option;  (* prepare-to-decision ticks *)
}

let create ~site ~engine ~ltm ~net ~trace ?obs ?(termination = false) ?(epoch = fun () -> 0)
    ~config () =
  (* The in-doubt instruments exist only when coordinator crashes are
     enabled for the run — or when the mutual-suspicion timeout arms the
     same escalation path against gray coordinators: runs with neither
     must export byte-identical metrics (the golden-digest guard). *)
  let term_obs = if termination || config.Config.suspicion_timeout > 0 then obs else None in
  {
    site;
    engine;
    ltm;
    net;
    trace;
    config;
    termination;
    epoch;
    log = Agent_log.create ();
    machine = Agent_sm.init ~site;
    txns = Hashtbl.create 32;
    alive_timers = Hashtbl.create 32;
    retry_timers = Hashtbl.create 32;
    inquiry_timers = Hashtbl.create 32;
    flush_timer = None;
    stats =
      {
        prepared = 0;
        refused_extension = 0;
        refused_interval = 0;
        refused_dead = 0;
        refused_epoch = 0;
        refused_drift = 0;
        resubmissions = 0;
        commit_retries = 0;
        local_commits = 0;
        rollbacks = 0;
        crashes = 0;
        recovered = 0;
      };
    obs;
    commit_delay =
      Option.map (fun o -> Registry.histogram (Obs.metrics o) ~site "agent.commit_delay") obs;
    in_doubt_now = 0;
    in_doubt_gauge =
      Option.map (fun o -> Registry.gauge (Obs.metrics o) ~site "agent.in_doubt") term_obs;
    in_doubt_time =
      Option.map (fun o -> Registry.histogram (Obs.metrics o) ~site "agent.in_doubt_time") term_obs;
  }

let address t = Message.Agent t.site
let stats t = t.stats
let alive_table t = t.machine.Agent_sm.table
let agent_log t = t.log
let n_prepared t = Agent_sm.n_prepared t.machine
let flush_pending t = Agent_sm.flush_pending t.machine
let now t = Engine.now t.engine

let txn_exn t gid =
  match Hashtbl.find_opt t.txns gid with
  | Some txn -> txn
  | None -> Fmt.invalid_arg "agent %a: no LTM transaction for T%d" Site.pp t.site gid

let entry_exn t gid =
  match Agent_log.find t.log ~gid with
  | Some e -> e
  | None -> Fmt.invalid_arg "agent %a: no log entry for T%d" Site.pp t.site gid

(* The read-only LTM snapshot the machine certifies against. Sampling at
   input-build time is exact: the machine reads these before any of its
   LTM-mutating effects is interpreted. *)
let env t =
  {
    Agent_sm.now = now t;
    views =
      Hashtbl.fold
        (fun gid txn acc ->
          (gid, { Agent_sm.alive = Ltm.is_alive txn; last_op_done = Ltm.last_op_done txn }) :: acc)
        t.txns [];
    max_committed_sn = Agent_log.max_committed_sn t.log;
    (* The termination protocol engages whenever coordinator crashes are
       enabled for this run, so crash-free runs arm no extra timers and
       stay byte-identical.  It must NOT additionally require a lossy
       network: a coordinator crash strands in-doubt participants on a
       perfectly reliable network too — the crash itself loses the
       in-flight decision. *)
    inquiry = t.termination;
    epoch = t.epoch ();
  }

(* ------------------------------------------------------------------ *)
(* Effect interpretation                                               *)
(* ------------------------------------------------------------------ *)

let emit_event t (ev : Agent_sm.event) =
  match ev with
  | Ev_alive_check { gid; alive } ->
      Obs.emit t.obs ~at:(now t) (fun () -> Tracer.Alive_check { site = t.site; gid; alive })
  | Ev_resubmission { gid; inc } ->
      t.stats.resubmissions <- t.stats.resubmissions + 1;
      Obs.emit t.obs ~at:(now t) (fun () -> Tracer.Resubmission { site = t.site; gid; inc });
      Log.debug (fun m ->
          m "[%a %a] resubmitting T%d as incarnation %d" Time.pp (now t) Site.pp t.site gid inc)
  | Ev_prepare_certification { gid; sn; verdict } -> (
      match verdict with
      | Agent_sm.V_ready ->
          Log.debug (fun m ->
              m "[%a %a] READY T%d (sn %a)" Time.pp (now t) Site.pp t.site gid Sn.pp sn);
          t.stats.prepared <- t.stats.prepared + 1;
          Obs.emit t.obs ~at:(now t) (fun () ->
              Tracer.Prepare_certification { site = t.site; gid; sn; verdict = Tracer.Ready })
      | V_refused_extension { committed_sn } ->
          Obs.emit t.obs ~at:(now t) (fun () ->
              Tracer.Prepare_certification
                { site = t.site; gid; sn; verdict = Tracer.Refused_extension { committed_sn } })
      | V_refused_interval { conflicting_gid; conflicting; candidate } ->
          Obs.emit t.obs ~at:(now t) (fun () ->
              Tracer.Prepare_certification
                {
                  site = t.site;
                  gid;
                  sn;
                  verdict = Tracer.Refused_interval { conflicting_gid; conflicting; candidate };
                })
      | V_refused_dead ->
          Obs.emit t.obs ~at:(now t) (fun () ->
              Tracer.Prepare_certification { site = t.site; gid; sn; verdict = Tracer.Refused_dead }))
  | Ev_refused { gid; refusal } -> (
      Log.info (fun m ->
          m "[%a %a] REFUSE T%d: %a" Time.pp (now t) Site.pp t.site gid Message.pp_refusal refusal);
      match refusal with
      | Message.Extension_refused -> t.stats.refused_extension <- t.stats.refused_extension + 1
      | Message.Interval_refused -> t.stats.refused_interval <- t.stats.refused_interval + 1
      | Message.Dead_refused -> t.stats.refused_dead <- t.stats.refused_dead + 1
      | Message.Wrong_epoch -> t.stats.refused_epoch <- t.stats.refused_epoch + 1
      | Message.Drift_refused -> t.stats.refused_drift <- t.stats.refused_drift + 1
      | Message.Uncertified_refused -> ()
      | Message.Scheduler_refused _ -> ())
  | Ev_commit_delayed { gid; sn; blocking_gid; blocking_sn } ->
      Log.debug (fun m ->
          m "[%a %a] commit certification holds T%d back (smaller SN prepared); retrying" Time.pp
            (now t) Site.pp t.site gid);
      t.stats.commit_retries <- t.stats.commit_retries + 1;
      Obs.emit t.obs ~at:(now t) (fun () ->
          Tracer.Commit_delayed { site = t.site; gid; sn; blocking_gid; blocking_sn })
  | Ev_commit_released { gid; waited; retries } ->
      t.stats.local_commits <- t.stats.local_commits + 1;
      (match t.commit_delay with Some h -> Histogram.record h waited | None -> ());
      Obs.emit t.obs ~at:(now t) (fun () ->
          Tracer.Commit_released { site = t.site; gid; waited; retries })
  | Ev_rollback _ -> t.stats.rollbacks <- t.stats.rollbacks + 1
  | Ev_crash { live; prepared } ->
      Log.info (fun m ->
          m "[%a %a] SITE CRASH: %d live transactions, %d prepared" Time.pp (now t) Site.pp t.site
            live prepared);
      t.stats.crashes <- t.stats.crashes + 1;
      Obs.emit t.obs ~at:(now t) (fun () -> Tracer.Site_crash { site = t.site; live; prepared })
  | Ev_recovered { gid; committed } ->
      t.stats.recovered <- t.stats.recovered + 1;
      Obs.emit t.obs ~at:(now t) (fun () -> Tracer.Recovered { site = t.site; gid });
      Log.info (fun m ->
          m "[%a %a] recovering in-doubt T%d from the Agent log%s" Time.pp (now t) Site.pp t.site
            gid
            (if committed then " (decision known: commit)" else ""));
      t.stats.resubmissions <- t.stats.resubmissions + 1
  | Ev_in_doubt { gid } ->
      t.in_doubt_now <- t.in_doubt_now + 1;
      (match t.in_doubt_gauge with Some g -> Registry.Gauge.set g t.in_doubt_now | None -> ());
      Log.debug (fun m ->
          m "[%a %a] T%d in doubt (%d open window(s))" Time.pp (now t) Site.pp t.site gid
            t.in_doubt_now)
  | Ev_decision { gid; committed; in_doubt } ->
      t.in_doubt_now <- t.in_doubt_now - 1;
      (match t.in_doubt_gauge with Some g -> Registry.Gauge.set g t.in_doubt_now | None -> ());
      (match t.in_doubt_time with Some h -> Histogram.record h in_doubt | None -> ());
      Log.debug (fun m ->
          m "[%a %a] T%d decision %s after %d tick(s) in doubt" Time.pp (now t) Site.pp t.site gid
            (if committed then "commit" else "rollback")
            in_doubt)
  | Ev_decision_inquiry { gid; inquiries } ->
      (match t.obs with
      | Some o when t.termination ->
          Registry.Counter.incr (Registry.counter (Obs.metrics o) ~site:t.site "agent.inquiries")
      | Some _ | None -> ());
      Log.debug (fun m ->
          m "[%a %a] T%d still in doubt: DECISION-REQ #%d to the coordinator" Time.pp (now t)
            Site.pp t.site gid inquiries)
  | Ev_suspicion { gid } ->
      (match t.obs with
      | Some o when t.config.Config.suspicion_timeout > 0 ->
          Registry.Counter.incr (Registry.counter (Obs.metrics o) ~site:t.site "agent.suspicions")
      | Some _ | None -> ());
      Log.info (fun m ->
          m "[%a %a] T%d suspects a gray coordinator: escalating to the termination path" Time.pp
            (now t) Site.pp t.site gid)
  | Ev_equivocation_detected { gid } ->
      (match t.obs with
      | Some o when t.config.Config.decision_certificates ->
          Registry.Counter.incr
            (Registry.counter (Obs.metrics o) ~site:t.site "coord.equivocations_detected")
      | Some _ | None -> ());
      Log.warn (fun m ->
          m "[%a %a] T%d: conflicting bare decision dropped (equivocation detected)" Time.pp
            (now t) Site.pp t.site gid)

let log_write t (r : Agent_sm.record) =
  match r with
  | R_entry { gid; coordinator } -> ignore (Agent_log.entry t.log ~gid ~coordinator)
  | R_command { gid; cmd } -> Agent_log.append_command (entry_exn t gid) cmd
  | R_incarnation { gid; inc } -> Agent_log.note_incarnation (entry_exn t gid) ~inc
  | R_prepare { gid; sn } -> Agent_log.force_prepare t.log (entry_exn t gid) ~sn
  | R_commit { gid } -> Agent_log.force_commit t.log (entry_exn t gid)
  | R_local_commit { gid } -> (entry_exn t gid).Agent_log.locally_committed <- true
  | R_rollback { gid } -> (
      match Agent_log.find t.log ~gid with Some e -> Agent_log.note_rollback e | None -> ())

let record_history t (h : Types.history_event) =
  match h with
  | H_prepare { gid; sn } ->
      Trace.record t.trace ~at:(now t)
        (Op.Prepare { txn = Txn.global gid; site = t.site; sn = Some sn })
  | H_global_commit _ | H_global_abort _ ->
      (* coordinator-side history entries; the agent machine never emits
         them *)
      assert false

let rec feed t input =
  let machine, effects = Agent_sm.step t.config t.machine input in
  t.machine <- machine;
  List.iter (interpret t) effects

and interpret t (eff : Agent_sm.effect) =
  match eff with
  | Types.Send { dst; gid; payload } -> Network.send t.net ~src:(address t) ~dst ~gid payload
  | Types.Arm_timer { timer; delay } -> arm t timer ~delay
  | Types.Cancel_timer timer -> cancel t timer
  | Types.Force_log r -> log_write t r
  | Types.Force_batch rs ->
      (* group commit: every record of the batch lands in the log, but
         only one synchronous force is paid for all of them *)
      List.iter
        (fun (r : Agent_sm.record) ->
          match r with
          | R_prepare { gid; sn } -> Agent_log.stage_prepare (entry_exn t gid) ~sn
          | R_commit { gid } -> Agent_log.stage_commit t.log (entry_exn t gid)
          | r -> log_write t r)
        rs;
      Agent_log.batch_forced t.log
  | Types.Stage_log _ ->
      (* the agent machine batches internally and emits [Force_batch];
         [Stage_log] is the coordinator machine's vocabulary *)
      assert false
  | Types.Ltm_call c -> ltm_call t c
  | Types.Record h -> record_history t h
  | Types.Emit ev -> emit_event t ev
  | Types.Invoke_gate | Types.Decide _ ->
      (* agent machines have no commit gate and decide nothing *)
      assert false

and arm t (timer : Agent_sm.timer) ~delay =
  match timer with
  | T_alive gid ->
      Hashtbl.replace t.alive_timers gid
        (Engine.schedule t.engine ~delay (fun () ->
             feed t (Agent_sm.Alive_fired { env = env t; gid })))
  | T_commit_retry gid ->
      Hashtbl.replace t.retry_timers gid
        (Engine.schedule t.engine ~delay (fun () ->
             feed t (Agent_sm.Retry_fired { env = env t; gid })))
  | T_backoff { gid; inc } ->
      (* deliberately uncancellable (the machine filters stale pops by
         incarnation), matching the historical engine event counts *)
      Engine.schedule_unit t.engine ~delay (fun () ->
          feed t (Agent_sm.Backoff_fired { env = env t; gid; inc }))
  | T_inquiry gid ->
      Hashtbl.replace t.inquiry_timers gid
        (Engine.schedule t.engine ~delay (fun () ->
             feed t (Agent_sm.Inquiry_fired { env = env t; gid })))
  | T_flush ->
      t.flush_timer <-
        Some
          (Engine.schedule t.engine ~delay (fun () ->
               t.flush_timer <- None;
               feed t (Agent_sm.Flush_fired { env = env t })))

and cancel t (timer : Agent_sm.timer) =
  let stop timers gid =
    match Hashtbl.find_opt timers gid with
    | Some tm ->
        Engine.cancel tm;
        Hashtbl.remove timers gid
    | None -> ()
  in
  match timer with
  | T_alive gid -> stop t.alive_timers gid
  | T_commit_retry gid -> stop t.retry_timers gid
  | T_backoff _ -> ()
  | T_inquiry gid -> stop t.inquiry_timers gid
  | T_flush -> (
      match t.flush_timer with
      | Some tm ->
          Engine.cancel tm;
          t.flush_timer <- None
      | None -> ())

and ltm_call t (c : Agent_sm.call) =
  match c with
  | L_begin { gid; inc } ->
      let owner = Txn.Incarnation.make ~txn:(Txn.global gid) ~site:t.site ~inc in
      Hashtbl.replace t.txns gid (Ltm.begin_txn t.ltm ~owner)
  | L_exec { gid; inc; purpose; cmd } ->
      Ltm.exec t.ltm (txn_exn t gid) cmd ~on_done:(fun result ->
          let result =
            match result with
            | Ltm.Done r -> Agent_sm.Done r
            | Ltm.Failed reason -> Agent_sm.Failed (Fmt.str "%a" Ltm.pp_abort_reason reason)
          in
          feed t (Agent_sm.Exec_done { env = env t; gid; inc; purpose; result }))
  | L_commit { gid; inc } ->
      Ltm.commit t.ltm (txn_exn t gid) ~on_done:(fun result ->
          let committed = match result with Ltm.Committed -> true | Ltm.Commit_refused _ -> false in
          feed t (Agent_sm.Commit_done { env = env t; gid; inc; committed }))
  | L_abort { gid } -> Ltm.abort t.ltm (txn_exn t gid)
  | L_abort_all_live ->
      List.iter (fun txn -> ignore (Ltm.unilateral_abort t.ltm txn)) (Ltm.live_txns t.ltm)
  | L_hold_open { gid } -> Ltm.mark_held_open t.ltm (txn_exn t gid) true
  | L_hold_open_batch { gids } ->
      (* one (simulated) lock-manager round-trip for the whole vector *)
      List.iter (fun gid -> Ltm.mark_held_open t.ltm (txn_exn t gid) true) gids
  | L_commit_batch { txns } ->
      List.iter (fun (gid, inc) -> ltm_call t (Agent_sm.L_commit { gid; inc })) txns
  | L_watch_uan { gid; inc } ->
      Ltm.set_uan (txn_exn t gid) (fun () -> feed t (Agent_sm.Uan { env = env t; gid; inc }))
  | L_bind { gid } ->
      let e = entry_exn t gid in
      e.Agent_log.bound <- Ltm.footprint (txn_exn t gid);
      Bound.bind (Ltm.bound_registry t.ltm) e.Agent_log.bound
  | L_rebind { gid } ->
      (* The bound set is logged so it survives a crash. *)
      let e = entry_exn t gid in
      if e.Agent_log.bound <> [] then Bound.unbind (Ltm.bound_registry t.ltm) e.Agent_log.bound;
      e.Agent_log.bound <- Ltm.footprint (txn_exn t gid);
      Bound.bind (Ltm.bound_registry t.ltm) e.Agent_log.bound
  | L_unbind { gid } ->
      let e = entry_exn t gid in
      if e.Agent_log.bound <> [] then begin
        Bound.unbind (Ltm.bound_registry t.ltm) e.Agent_log.bound;
        e.Agent_log.bound <- []
      end
  | L_forget { gid } ->
      Hashtbl.remove t.txns gid;
      Hashtbl.remove t.alive_timers gid;
      Hashtbl.remove t.retry_timers gid;
      Hashtbl.remove t.inquiry_timers gid

(* ------------------------------------------------------------------ *)
(* Inbound boundaries: network, crash, recovery                        *)
(* ------------------------------------------------------------------ *)

let log_view t gid : Agent_sm.log_view =
  match Agent_log.find t.log ~gid with
  | Some e ->
      {
        known = true;
        prepared = e.Agent_log.prepared;
        committed = e.Agent_log.committed;
        locally_committed = e.Agent_log.locally_committed;
        rolled_back = e.Agent_log.rolled_back;
        sn = e.Agent_log.sn;
      }
  | None ->
      { known = false; prepared = false; committed = false; locally_committed = false;
        rolled_back = false; sn = None }

let handle t (msg : Message.t) =
  feed t
    (Agent_sm.Deliver
       {
         env = env t;
         src = msg.Message.src;
         gid = msg.Message.gid;
         payload = msg.Message.payload;
         log = log_view t msg.Message.gid;
       })

let attach t = Network.register t.net (address t) (handle t)

let crash t =
  (* The volatile in-doubt windows close with the crash (the gauge tracks
     volatile state); recovery reopens them from the log. *)
  let in_doubt_lost =
    Agent_sm.Int_map.fold
      (fun _ (sub : Agent_sm.sub) acc ->
        if sub.Agent_sm.state = Agent_sm.Prepared && sub.Agent_sm.decision_at = None then acc + 1
        else acc)
      t.machine.Agent_sm.subs 0
  in
  t.in_doubt_now <- t.in_doubt_now - in_doubt_lost;
  (match t.in_doubt_gauge with Some g -> Registry.Gauge.set g t.in_doubt_now | None -> ());
  feed t (Agent_sm.Crash { live = List.length (Ltm.live_txns t.ltm) });
  (* Drop the dead incarnations' bookkeeping: their scheduled callbacks
     (UANs of the collective abort, in-flight command completions) are
     filtered by the machine's incarnation tags when they pop. *)
  Hashtbl.reset t.txns;
  Hashtbl.reset t.alive_timers;
  Hashtbl.reset t.retry_timers;
  Hashtbl.reset t.inquiry_timers

(* Shard handover: thin shell over the machine's pure export/adopt/drop.
   The Dtm drives these around a reconfiguration — export at the losing
   site, adopt at the gainer before the new epoch serves traffic, drop
   at the gainer once the foreign gid's global decision lands. *)
let export_handover t ~gids = Agent_sm.export_handover t.machine ~gids
let adopt_handover t entries = t.machine <- Agent_sm.adopt_handover t.machine entries
let drop_foreign t ~gid = t.machine <- Agent_sm.drop_foreign t.machine ~gid

let recover t =
  let entries =
    List.map
      (fun (e : Agent_log.entry) ->
        {
          Agent_sm.r_gid = e.Agent_log.gid;
          r_coordinator = Option.get e.Agent_log.coordinator;
          r_inc = e.Agent_log.inc;
          r_sn = e.Agent_log.sn;
          r_commands = Agent_log.commands e;
          r_committed = e.Agent_log.committed;
        })
      (Agent_log.in_doubt t.log)
  in
  feed t (Agent_sm.Recover { env = env t; entries })

(* The 2PC Agent (2PCA) with the Certifier algorithms — the paper's core
   contribution (§2, §4, §5 and the Appendix).

   One agent per site, attached to that site's LTM. It plays the 2PC
   Participant towards the Coordinators and *simulates the prepared state*
   on behalf of an LTM that has none: on READY it simply keeps the local
   subtransaction open (all locks held, uncommitted), and if the LTM
   unilaterally aborts it, the agent creates a new local subtransaction by
   resubmitting the logged commands (subtransaction resubmission).

   The Certifier steps, exactly as in the Appendix:

   A. Alive check — periodically, and on UAN, verify the prepared
      subtransaction is still alive; extend its alive interval on success,
      resubmit on failure (a new interval starts when resubmission
      completes).

   B. Extended prepare certification — on PREPARE: first refuse if an
      "older" (bigger-SN) subtransaction has already committed here
      (§5.3); then the basic certification: the candidate's alive interval
      must intersect the interval of every prepared subtransaction (§4.2,
      sound by the Conflict Detection Basis under rigorousness); then a
      final alive check. On success, force-write the prepare record, bind
      the accessed data (DLU), answer READY.

   C. Commit certification — on COMMIT: the subtransaction may commit
      locally only if no prepared subtransaction at this site has a
      smaller serial number; otherwise retry after a timeout.

   Durability: commands, the prepare record (with the serial number and
   bound-data set), the commit record and the biggest committed serial
   number live in the {!Agent_log} — the stable storage that survives
   [crash]. [recover] rebuilds every in-doubt subtransaction from it by
   resubmission; coordinators retransmit un-acknowledged decisions, and
   re-delivered COMMITs/ROLLBACKs are answered idempotently from the
   log. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Ltm = Hermes_ltm.Ltm
module Bound = Hermes_ltm.Bound
module Trace = Hermes_ltm.Trace
module Op = Hermes_history.Op
module Message = Hermes_net.Message
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram

let src = Logs.Src.create "hermes.agent" ~doc:"2PC Agent / Certifier events"

module Log = (val Logs.src_log src : Logs.LOG)

type sub_state = Active | Prepared

type sub = {
  gid : int;
  entry : Agent_log.entry;  (* this subtransaction's stable-log entry *)
  coordinator : Message.address;
  mutable inc : int;  (* current incarnation index *)
  mutable ltm_txn : Ltm.txn;
  mutable state : sub_state;
  mutable sn : Sn.t option;
  mutable resubmitting : bool;
  mutable committing : bool;  (* local commit in flight (makes duplicate COMMITs harmless) *)
  mutable cancelled : bool;  (* rollback/crash decided; ignore stragglers *)
  mutable decision_commit : bool;  (* COMMIT received, not yet performed *)
  mutable decision_at : Time.t option;  (* when the first COMMIT arrived *)
  mutable sn_retries : int;  (* commit-certification retries of this sub *)
  mutable alive_timer : Engine.timer option;
  mutable retry_timer : Engine.timer option;
}

type stats = {
  mutable prepared : int;
  mutable refused_extension : int;
  mutable refused_interval : int;
  mutable refused_dead : int;
  mutable resubmissions : int;
  mutable commit_retries : int;
  mutable local_commits : int;
  mutable rollbacks : int;
  mutable crashes : int;
  mutable recovered : int;  (* in-doubt subtransactions rebuilt from the log *)
}

type t = {
  site : Site.t;
  engine : Engine.t;
  ltm : Ltm.t;
  net : Network.t;
  trace : Trace.t;
  config : Config.t;
  log : Agent_log.t;  (* stable storage: survives crash *)
  mutable subs : (int, sub) Hashtbl.t;  (* volatile *)
  mutable alive_table : Alive_table.t;  (* volatile *)
  stats : stats;
  obs : Obs.t option;
  commit_delay : Histogram.t option;  (* resolved once: decision-to-local-commit ticks *)
}

let create ~site ~engine ~ltm ~net ~trace ?obs ~config () =
  {
    site;
    engine;
    ltm;
    net;
    trace;
    config;
    log = Agent_log.create ();
    subs = Hashtbl.create 32;
    alive_table = Alive_table.create ();
    stats =
      {
        prepared = 0;
        refused_extension = 0;
        refused_interval = 0;
        refused_dead = 0;
        resubmissions = 0;
        commit_retries = 0;
        local_commits = 0;
        rollbacks = 0;
        crashes = 0;
        recovered = 0;
      };
    obs;
    commit_delay =
      Option.map (fun o -> Registry.histogram (Obs.metrics o) ~site "agent.commit_delay") obs;
  }

let address t = Message.Agent t.site
let stats t = t.stats
let alive_table t = t.alive_table
let agent_log t = t.log
let n_prepared t = Alive_table.size t.alive_table

let reply t sub payload =
  Network.send t.net ~src:(address t) ~dst:sub.coordinator ~gid:sub.gid payload

let now t = Engine.now t.engine

let cancel_timer = function Some timer -> Engine.cancel timer | None -> ()

(* Take the subtransaction out of the agent: timers off, bound data
   released, table entry gone. The stable-log entry remains. *)
let cleanup t sub =
  sub.cancelled <- true;
  cancel_timer sub.alive_timer;
  cancel_timer sub.retry_timer;
  sub.alive_timer <- None;
  sub.retry_timer <- None;
  if t.config.Config.bind_data && sub.entry.Agent_log.bound <> [] then begin
    Bound.unbind (Ltm.bound_registry t.ltm) sub.entry.Agent_log.bound;
    sub.entry.Agent_log.bound <- []
  end;
  Alive_table.remove t.alive_table ~gid:sub.gid;
  Hashtbl.remove t.subs sub.gid

let incarnation sub ~site = Txn.Incarnation.make ~txn:(Txn.global sub.gid) ~site ~inc:sub.inc

(* ------------------------------------------------------------------ *)
(* Resubmission (§2, §3): replay the Agent log as a fresh local
   subtransaction. On completion a new alive interval starts; if the new
   incarnation is itself unilaterally aborted, start over after a small
   backoff. *)
(* ------------------------------------------------------------------ *)

let rec start_resubmission t sub =
  if (not sub.cancelled) && not sub.resubmitting then begin
    sub.resubmitting <- true;
    attempt_resubmission t sub
  end

(* One resubmission attempt; [sub.resubmitting] stays set across backoff
   retries, so the commit path and the alive check keep waiting instead of
   racing a fresh resubmission past the backoff. *)
and attempt_resubmission t sub =
  if not sub.cancelled then begin
    t.stats.resubmissions <- t.stats.resubmissions + 1;
    sub.inc <- sub.inc + 1;
    Obs.emit t.obs ~at:(now t) (fun () ->
        Tracer.Resubmission { site = t.site; gid = sub.gid; inc = sub.inc });
    Log.debug (fun m ->
        m "[%a %a] resubmitting T%d as incarnation %d" Time.pp (now t) Site.pp t.site sub.gid sub.inc);
    Agent_log.note_incarnation sub.entry ~inc:sub.inc;
    let txn = Ltm.begin_txn t.ltm ~owner:(incarnation sub ~site:t.site) in
    sub.ltm_txn <- txn;
    Ltm.mark_held_open t.ltm txn true;
    feed_commands t sub txn
  end

(* Replay the logged commands into [txn] (shared by resubmission and
   crash recovery). *)
and feed_commands t sub txn =
  let rec feed = function
    | [] -> resubmission_complete t sub txn
    | cmd :: rest ->
        Ltm.exec t.ltm txn cmd ~on_done:(fun result ->
            if not sub.cancelled then
              match result with
              | Ltm.Done _ -> feed rest
              | Ltm.Failed _ ->
                  (* The incarnation died (unilateral abort, lock timeout,
                     deadlock victim): try again later. *)
                  Engine.schedule_unit t.engine ~delay:t.config.Config.resubmit_backoff (fun () ->
                      attempt_resubmission t sub))
  in
  feed (Agent_log.commands sub.entry)

and resubmission_complete t sub txn =
  if not sub.cancelled then begin
    sub.resubmitting <- false;
    (* "A new interval is always initiated after the resubmission of all
       the commands is complete." With [max_intervals] > 1, the previous
       incarnations' intervals are remembered too (the §4.2 optimization —
       provably redundant; see EXPERIMENTS.md E9). *)
    Alive_table.push_interval t.alive_table ~gid:sub.gid
      ~max_intervals:t.config.Config.max_intervals (Interval.point (now t));
    Ltm.set_uan txn (fun () -> if not sub.cancelled then start_resubmission t sub);
    (* Re-bind: under CI + DLU the footprint cannot have changed, but
       ablations may violate that, so bind what was actually accessed. The
       bound set is logged so it survives a crash. *)
    if t.config.Config.bind_data then begin
      if sub.entry.Agent_log.bound <> [] then
        Bound.unbind (Ltm.bound_registry t.ltm) sub.entry.Agent_log.bound;
      sub.entry.Agent_log.bound <- Ltm.footprint txn;
      Bound.bind (Ltm.bound_registry t.ltm) sub.entry.Agent_log.bound
    end;
    if sub.decision_commit then try_commit t sub
  end

(* ------------------------------------------------------------------ *)
(* Commit certification (Appendix C)                                   *)
(* ------------------------------------------------------------------ *)

and try_commit t sub =
  if (not sub.cancelled) && sub.decision_commit && not sub.committing then
    if sub.resubmitting then () (* resubmission_complete will call back *)
    else begin
      let sn = Option.get sub.sn in
      let certified =
        (not t.config.Config.commit_certification)
        || Alive_table.min_sn_holds t.alive_table ~gid:sub.gid ~sn
      in
      if not certified then begin
        (* Commit certification failed: retry at a later time. *)
        Log.debug (fun m ->
            m "[%a %a] commit certification holds T%d back (smaller SN prepared); retrying" Time.pp (now t)
              Site.pp t.site sub.gid);
        t.stats.commit_retries <- t.stats.commit_retries + 1;
        sub.sn_retries <- sub.sn_retries + 1;
        Obs.emit t.obs ~at:(now t) (fun () ->
            match Alive_table.min_sn_blocker t.alive_table ~gid:sub.gid ~sn with
            | Some b ->
                Tracer.Commit_delayed
                  { site = t.site; gid = sub.gid; sn; blocking_gid = b.Alive_table.gid;
                    blocking_sn = b.Alive_table.sn }
            | None -> Tracer.Commit_delayed { site = t.site; gid = sub.gid; sn; blocking_gid = sub.gid; blocking_sn = sn });
        cancel_timer sub.retry_timer;
        sub.retry_timer <-
          Some (Engine.schedule t.engine ~delay:t.config.Config.commit_retry_interval (fun () -> try_commit t sub))
      end
      else if not (Ltm.is_alive sub.ltm_txn) then start_resubmission t sub
      else begin
        (* "Write the commit record to the Agent log; commit the local
           subtransaction ..." — the decision is durable before the local
           commit, so a crash in between redoes it at recovery. *)
        sub.committing <- true;
        Agent_log.force_commit t.log sub.entry;
        Ltm.commit t.ltm sub.ltm_txn ~on_done:(fun result ->
            if not sub.cancelled then
              match result with
              | Ltm.Committed ->
                  t.stats.local_commits <- t.stats.local_commits + 1;
                  sub.entry.Agent_log.locally_committed <- true;
                  let waited =
                    match sub.decision_at with Some d -> Time.diff (now t) d | None -> 0
                  in
                  (match t.commit_delay with Some h -> Histogram.record h waited | None -> ());
                  Obs.emit t.obs ~at:(now t) (fun () ->
                      Tracer.Commit_released
                        { site = t.site; gid = sub.gid; waited; retries = sub.sn_retries });
                  reply t sub Message.Commit_ack;
                  cleanup t sub
              | Ltm.Commit_refused _ ->
                  (* Aborted between the alive check and the commit:
                     resubmit and retry. *)
                  sub.committing <- false;
                  start_resubmission t sub)
      end
    end

(* ------------------------------------------------------------------ *)
(* Alive check (Appendix A)                                            *)
(* ------------------------------------------------------------------ *)

let rec schedule_alive_check t sub =
  sub.alive_timer <-
    Some
      (Engine.schedule t.engine ~delay:t.config.Config.alive_check_interval (fun () ->
           if not sub.cancelled then begin
             (if sub.resubmitting then () (* a new interval starts when it completes *)
              else begin
                let alive = Ltm.is_alive sub.ltm_txn in
                Obs.emit t.obs ~at:(now t) (fun () ->
                    Tracer.Alive_check { site = t.site; gid = sub.gid; alive });
                if alive then Alive_table.extend_interval t.alive_table ~gid:sub.gid ~hi:(now t)
                else start_resubmission t sub
              end);
             schedule_alive_check t sub
           end))

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

let handle_begin t ~gid ~coordinator =
  let entry = Agent_log.entry t.log ~gid ~coordinator in
  let sub =
    {
      gid;
      entry;
      coordinator;
      inc = 0;
      ltm_txn = Ltm.begin_txn t.ltm ~owner:(Txn.Incarnation.make ~txn:(Txn.global gid) ~site:t.site ~inc:0);
      state = Active;
      sn = None;
      resubmitting = false;
      committing = false;
      cancelled = false;
      decision_commit = false;
      decision_at = None;
      sn_retries = 0;
      alive_timer = None;
      retry_timer = None;
    }
  in
  Hashtbl.replace t.subs gid sub

let handle_exec t sub ~step cmd =
  (* The step index doubles as the dedup key: a duplicated EXEC carries a
     step below the logged command count (per-link FIFO keeps steps in
     order, so it can never be above). *)
  if step = List.length (Agent_log.commands sub.entry) then begin
    Agent_log.append_command sub.entry cmd;
    Ltm.exec t.ltm sub.ltm_txn cmd ~on_done:(fun result ->
        if not sub.cancelled then
          match result with
          | Ltm.Done r -> reply t sub (Message.Exec_ok { step; result = r })
          | Ltm.Failed reason ->
              reply t sub
                (Message.Exec_failed { step; reason = Fmt.str "%a" Ltm.pp_abort_reason reason }))
  end

let refuse t sub refusal =
  Log.info (fun m ->
      m "[%a %a] REFUSE T%d: %a" Time.pp (now t) Site.pp t.site sub.gid Message.pp_refusal refusal);
  (match refusal with
  | Message.Extension_refused -> t.stats.refused_extension <- t.stats.refused_extension + 1
  | Message.Interval_refused -> t.stats.refused_interval <- t.stats.refused_interval + 1
  | Message.Dead_refused -> t.stats.refused_dead <- t.stats.refused_dead + 1
  | Message.Scheduler_refused _ -> ());
  Ltm.abort t.ltm sub.ltm_txn;
  reply t sub (Message.Refuse refusal);
  cleanup t sub

(* Extended prepare certification (Appendix B). *)
let certify_prepare t sub sn =
  sub.sn <- Some sn;
  let extension_ok =
    (not t.config.Config.certification_extension)
    ||
    match Agent_log.max_committed_sn t.log with Some m -> Sn.(sn > m) | None -> true
  in
  if not extension_ok then begin
    Obs.emit t.obs ~at:(now t) (fun () ->
        Tracer.Prepare_certification
          { site = t.site; gid = sub.gid; sn;
            verdict =
              Tracer.Refused_extension
                { committed_sn = Option.value ~default:sn (Agent_log.max_committed_sn t.log) } });
    refuse t sub Message.Extension_refused
  end
  else begin
    (* Basic prepare certification: refresh the table's intervals with an
       immediate alive check, then test the intersection rule. *)
    if t.config.Config.refresh_on_certify then
      List.iter
        (fun (e : Alive_table.entry) ->
          match Hashtbl.find_opt t.subs e.Alive_table.gid with
          | Some other when (not other.resubmitting) && Ltm.is_alive other.ltm_txn ->
              Alive_table.extend_interval t.alive_table ~gid:e.Alive_table.gid ~hi:(now t)
          | Some _ | None -> ())
        (Alive_table.entries t.alive_table);
    let candidate = Interval.make ~lo:(Ltm.last_op_done sub.ltm_txn) ~hi:(now t) in
    let interval_ok =
      (not t.config.Config.prepare_certification) || Alive_table.all_intersect t.alive_table candidate
    in
    if not interval_ok then begin
      Obs.emit t.obs ~at:(now t) (fun () ->
          let verdict =
            match Alive_table.first_non_intersecting t.alive_table candidate with
            | Some b ->
                Tracer.Refused_interval
                  { conflicting_gid = b.Alive_table.gid;
                    conflicting = Alive_table.current_interval b; candidate }
            | None -> Tracer.Refused_interval { conflicting_gid = sub.gid; conflicting = candidate; candidate }
          in
          Tracer.Prepare_certification { site = t.site; gid = sub.gid; sn; verdict });
      refuse t sub Message.Interval_refused
    end
    else if not (Ltm.is_alive sub.ltm_txn) then begin
      (* CI(2): a unilaterally aborted subtransaction is never prepared. *)
      Obs.emit t.obs ~at:(now t) (fun () ->
          Tracer.Prepare_certification { site = t.site; gid = sub.gid; sn; verdict = Tracer.Refused_dead });
      refuse t sub Message.Dead_refused
    end
    else begin
      (* Force write the prepare record; move to the prepared state. *)
      Log.debug (fun m -> m "[%a %a] READY T%d (sn %a)" Time.pp (now t) Site.pp t.site sub.gid Sn.pp sn);
      t.stats.prepared <- t.stats.prepared + 1;
      Obs.emit t.obs ~at:(now t) (fun () ->
          Tracer.Prepare_certification { site = t.site; gid = sub.gid; sn; verdict = Tracer.Ready });
      sub.state <- Prepared;
      Agent_log.force_prepare t.log sub.entry ~sn;
      Trace.record t.trace ~at:(now t) (Op.Prepare { txn = Txn.global sub.gid; site = t.site; sn = Some sn });
      Alive_table.insert t.alive_table ~gid:sub.gid ~sn ~interval:candidate;
      Ltm.mark_held_open t.ltm sub.ltm_txn true;
      Ltm.set_uan sub.ltm_txn (fun () -> if not sub.cancelled then start_resubmission t sub);
      if t.config.Config.bind_data then begin
        sub.entry.Agent_log.bound <- Ltm.footprint sub.ltm_txn;
        Bound.bind (Ltm.bound_registry t.ltm) sub.entry.Agent_log.bound
      end;
      reply t sub Message.Ready;
      schedule_alive_check t sub
    end
  end

let handle_prepare t sub sn =
  match sub.state with
  | Prepared ->
      (* A retransmitted or duplicated PREPARE: the promise is already on
         disk, so repeat the vote. *)
      reply t sub Message.Ready
  | Active -> certify_prepare t sub sn

let handle_commit t sub =
  if sub.decision_at = None then sub.decision_at <- Some (now t);
  sub.decision_commit <- true;
  try_commit t sub

let handle_rollback t sub =
  t.stats.rollbacks <- t.stats.rollbacks + 1;
  Agent_log.note_rollback sub.entry;
  Ltm.abort t.ltm sub.ltm_txn;
  reply t sub Message.Rollback_ack;
  cleanup t sub

(* Replies for subtransactions the volatile state no longer knows —
   either lost to a crash (active-state work is simply gone; 2PC lets a
   participant abort anything it never promised) or already finished
   (decision retransmissions are answered idempotently from the log). *)
let handle_unknown t ~(msg : Message.t) =
  let answer payload = Network.send t.net ~src:(address t) ~dst:msg.Message.src ~gid:msg.gid payload in
  match msg.Message.payload with
  | Message.Exec { step; cmd } -> (
      match Agent_log.find t.log ~gid:msg.gid with
      | None when step = 0 ->
          (* The BEGIN was lost by the network; the first command implies
             it (later steps after a crash find a logged entry below). *)
          handle_begin t ~gid:msg.gid ~coordinator:msg.Message.src;
          (match Hashtbl.find_opt t.subs msg.gid with
          | Some sub -> handle_exec t sub ~step cmd
          | None -> assert false)
      | _ -> answer (Message.Exec_failed { step; reason = "subtransaction lost in a site crash" }))
  | Message.Prepare _ -> (
      match Agent_log.find t.log ~gid:msg.gid with
      | Some e when e.Agent_log.prepared && not e.Agent_log.rolled_back ->
          (* A retransmitted PREPARE whose READY was lost (or chased a
             crash): the promise is on disk, repeat the vote. *)
          answer Message.Ready
      | Some _ | None -> answer (Message.Refuse Message.Dead_refused))
  | Message.Commit -> (
      match Agent_log.find t.log ~gid:msg.gid with
      | Some e when e.Agent_log.locally_committed -> answer Message.Commit_ack
      | Some e when e.Agent_log.prepared && not e.Agent_log.rolled_back ->
          (* The decision reached a crashed-but-logged subtransaction
             (crash and recovery separated in time): note it durably so
             recovery redoes the local commit and answers the ack then. *)
          if not e.Agent_log.committed then Agent_log.force_commit t.log e
      | Some _ | None ->
          Fmt.failwith "agent %a: COMMIT for unknown, uncommitted T%d" Site.pp t.site msg.gid)
  | Message.Rollback ->
      (match Agent_log.find t.log ~gid:msg.gid with Some e -> Agent_log.note_rollback e | None -> ());
      answer Message.Rollback_ack
  | _ -> Fmt.failwith "agent %a: unexpected message %a" Site.pp t.site Message.pp msg

let handle t (msg : Message.t) =
  match msg.Message.payload with
  | Message.Begin -> (
      match (Hashtbl.mem t.subs msg.gid, Agent_log.find t.log ~gid:msg.gid) with
      | false, None -> handle_begin t ~gid:msg.gid ~coordinator:msg.src
      | _ -> () (* duplicated BEGIN, or one for a gid the log already knows *))
  | Message.Exec { step; cmd } -> (
      match Hashtbl.find_opt t.subs msg.gid with
      | Some sub -> handle_exec t sub ~step cmd
      | None -> handle_unknown t ~msg)
  | Message.Prepare sn -> (
      match Hashtbl.find_opt t.subs msg.gid with
      | Some sub -> handle_prepare t sub sn
      | None -> handle_unknown t ~msg)
  | Message.Commit -> (
      match Hashtbl.find_opt t.subs msg.gid with
      | Some sub -> handle_commit t sub
      | None -> handle_unknown t ~msg)
  | Message.Rollback -> (
      match Hashtbl.find_opt t.subs msg.gid with
      | Some sub -> handle_rollback t sub
      | None -> handle_unknown t ~msg)
  | Message.Exec_ok _ | Message.Exec_failed _ | Message.Ready | Message.Refuse _ | Message.Commit_ack
  | Message.Rollback_ack ->
      Fmt.failwith "agent %a: unexpected message %a" Site.pp t.site Message.pp msg

let attach t = Network.register t.net (address t) (handle t)

(* ------------------------------------------------------------------ *)
(* Crash and recovery                                                  *)
(* ------------------------------------------------------------------ *)

(* An agent (site) crash: all volatile state is lost; only the Agent log
   survives. Prepared subtransactions are silenced first (their timers and
   pending continuations must not fire against the wreckage), then every
   live transaction at the LTM suffers the collective unilateral abort —
   active-state subtransactions reply Exec_failed through their in-flight
   command callbacks, exactly as a single abort would. *)
let crash t =
  Log.info (fun m ->
      m "[%a %a] SITE CRASH: %d live transactions, %d prepared" Time.pp (now t) Site.pp t.site
        (List.length (Ltm.live_txns t.ltm))
        (Alive_table.size t.alive_table));
  t.stats.crashes <- t.stats.crashes + 1;
  Obs.emit t.obs ~at:(now t) (fun () ->
      Tracer.Site_crash
        { site = t.site; live = List.length (Ltm.live_txns t.ltm);
          prepared = Alive_table.size t.alive_table });
  Hashtbl.iter
    (fun _ sub ->
      if sub.state = Prepared then begin
        sub.cancelled <- true;
        cancel_timer sub.alive_timer;
        cancel_timer sub.retry_timer
      end)
    t.subs;
  List.iter (fun txn -> ignore (Ltm.unilateral_abort t.ltm txn)) (Ltm.live_txns t.ltm);
  (* Now silence what remains and drop the volatile state. The DLU
     registry is *not* cleared: the logged bound sets of in-doubt
     subtransactions stay bound across the crash, which is what keeps
     local transactions off their data while recovery runs. *)
  Hashtbl.iter
    (fun _ sub ->
      sub.cancelled <- true;
      cancel_timer sub.alive_timer;
      cancel_timer sub.retry_timer)
    t.subs;
  t.subs <- Hashtbl.create 32;
  t.alive_table <- Alive_table.create ()

(* Rebuild every in-doubt subtransaction from the log: a fresh incarnation
   replays the logged commands; the alive-interval entry restarts; if the
   commit record was already forced, the decision is known and the commit
   is redone locally once the replay completes (the coordinator's
   retransmitted COMMIT is answered idempotently either way). *)
let recover t =
  List.iter
    (fun (e : Agent_log.entry) ->
      t.stats.recovered <- t.stats.recovered + 1;
      Obs.emit t.obs ~at:(now t) (fun () -> Tracer.Recovered { site = t.site; gid = e.Agent_log.gid });
      Log.info (fun m ->
          m "[%a %a] recovering in-doubt T%d from the Agent log%s" Time.pp (now t) Site.pp t.site
            e.Agent_log.gid
            (if e.Agent_log.committed then " (decision known: commit)" else ""));
      let gid = e.Agent_log.gid in
      let inc = e.Agent_log.inc + 1 in
      Agent_log.note_incarnation e ~inc;
      let txn = Ltm.begin_txn t.ltm ~owner:(Txn.Incarnation.make ~txn:(Txn.global gid) ~site:t.site ~inc) in
      Ltm.mark_held_open t.ltm txn true;
      let sub =
        {
          gid;
          entry = e;
          coordinator = Option.get e.Agent_log.coordinator;
          inc;
          ltm_txn = txn;
          state = Prepared;
          sn = e.Agent_log.sn;
          resubmitting = true;
          committing = false;
          cancelled = false;
          decision_commit = e.Agent_log.committed;
          decision_at = (if e.Agent_log.committed then Some (now t) else None);
          sn_retries = 0;
          alive_timer = None;
          retry_timer = None;
        }
      in
      Hashtbl.replace t.subs gid sub;
      Alive_table.insert t.alive_table ~gid ~sn:(Option.get e.Agent_log.sn)
        ~interval:(Interval.point (now t));
      t.stats.resubmissions <- t.stats.resubmissions + 1;
      feed_commands t sub txn;
      schedule_alive_check t sub)
    (Agent_log.in_doubt t.log)

(** The 2PC Agent (2PCA) with the Certifier algorithms — the paper's core
    contribution. One agent per site, attached to that site's LTM; it
    plays the 2PC Participant, simulates the prepared state by keeping the
    local subtransaction open, resubmits from the Agent log after
    unilateral aborts, and runs the three Certifier algorithms of the
    Appendix: the alive check (A), the extended prepare certification (B)
    and the commit certification (C). *)

open Hermes_kernel

type t

type stats = {
  mutable prepared : int;
  mutable refused_extension : int;  (** PREPARE behind a bigger committed SN (§5.3) *)
  mutable refused_interval : int;  (** alive-interval intersection failures (§4.2) *)
  mutable refused_dead : int;  (** subtransaction unilaterally aborted before prepare (CI 2) *)
  mutable refused_epoch : int;  (** BEGIN/EXEC stamped with a superseded placement epoch *)
  mutable refused_drift : int;  (** PREPAREs rejected by the SN staleness bound *)
  mutable resubmissions : int;
  mutable commit_retries : int;
  mutable local_commits : int;
  mutable rollbacks : int;
  mutable crashes : int;
  mutable recovered : int;  (** in-doubt subtransactions rebuilt from the log *)
}

val create :
  site:Site.t ->
  engine:Hermes_sim.Engine.t ->
  ltm:Hermes_ltm.Ltm.t ->
  net:Hermes_net.Network.t ->
  trace:Hermes_ltm.Trace.t ->
  ?obs:Hermes_obs.Obs.t ->
  ?termination:bool ->
  ?epoch:(unit -> int) ->
  config:Config.t ->
  unit ->
  t
(** [?obs] threads the observability context through: certifier decision
    points emit {!Hermes_obs.Tracer} events and the decision-to-commit
    delay is recorded in an [agent.commit_delay] histogram per site.

    [?termination] (default [false]) engages the in-doubt termination
    protocol: while a prepared subtransaction has no decision, an
    inquiry timer periodically sends DECISION-REQ to the coordinator
    (or, under a replicated commit protocol, round-robin to the decision
    register's acceptors), and the blocking window is measured in an
    [agent.in_doubt] gauge plus an [agent.in_doubt_time] histogram.
    The timer arms on any run with coordinator crashes enabled — a
    crash strands in-doubt participants on a perfectly reliable network
    too, so it must not additionally require a lossy one.
    Enabled by {!Dtm} when coordinator crashes are enabled — off, the
    agent arms no extra timers and exports no extra metrics, keeping
    fault-free and PR 3-era runs byte-identical.

    [?epoch] samples the installed placement epoch per input (the {!Dtm}
    owns the shard map); BEGIN/EXEC messages stamped with a different
    epoch are refused WRONG-EPOCH. Defaults to constantly 0 — the static
    map, under which the check never fires. *)

val attach : t -> unit
(** Register the agent's message handler with the network. *)

val address : t -> Hermes_net.Message.address
val stats : t -> stats
val alive_table : t -> Alive_table.t
val agent_log : t -> Agent_log.t
val n_prepared : t -> int

val flush_pending : t -> bool
(** Group commit: whether the machine holds staged-but-unforced records
    or buffered PREPAREs — a quiesced run must report [false]. *)

val crash : t -> unit
(** A site crash: every live transaction at the LTM is collectively
    aborted (paper §1's "collective abort") and all volatile agent state
    is lost; only the {!Agent_log} survives. Follow with {!recover}. *)

val recover : t -> unit
(** Rebuild every in-doubt subtransaction from the log by resubmission;
    decisions already forced to the log are redone, and coordinators'
    retransmitted decisions are answered idempotently. *)

(** {2 Shard handover (online reconfiguration)}

    Driven by {!Dtm.reconfigure} around a shard move: the losing site
    {!export_handover}s the alive-table state (serial number + current
    alive interval) of the moved shard's prepared subtransactions, the
    gaining site {!adopt_handover}s it {e before} the new epoch serves
    traffic, and releases each foreign entry with {!drop_foreign} once
    that gid's global decision lands. Foreign entries participate in
    interval-intersection and min-SN commit certification exactly like
    native ones, conservatively gating new work at the gainer. *)

val export_handover : t -> gids:int list -> Hermes_protocol.Agent_sm.handover_entry list
val adopt_handover : t -> Hermes_protocol.Agent_sm.handover_entry list -> unit
val drop_foreign : t -> gid:int -> unit

(* The Agent log — the 2PC Agent's stable storage.

   The paper's Appendix force-writes two records into it: the *prepare
   record* ("force write the prepare record in the Agent log" before
   READY) and the *commit record* ("write the commit record to the Agent
   log; commit the local subtransaction and the commit record" before
   COMMIT-ACK). Resubmission replays "commands from the Agent log", so
   the commands are appended as they arrive, and the certification
   extension needs "the so-far biggest serial number of a committed
   subtransaction", which therefore also lives here.

   In the simulation the log is an ordinary data structure that *survives
   an agent crash* (it is owned by the site, not by the agent's volatile
   state): [Agent.crash] discards everything except this log, and
   [Agent.recover] rebuilds the prepared subtransactions from it. *)

open Hermes_kernel
module Message = Hermes_net.Message

type entry = {
  gid : int;
  mutable commands : Command.t list;  (* newest first *)
  mutable inc : int;  (* highest incarnation index ever begun *)
  mutable sn : Sn.t option;  (* force-written with the prepare record *)
  mutable coordinator : Message.address option;
  mutable bound : Item.t list;  (* the DLU bound-data set, logged at prepare *)
  mutable prepared : bool;
  mutable committed : bool;  (* the commit record (the decision) is durable *)
  mutable locally_committed : bool;  (* the local commit actually happened *)
  mutable rolled_back : bool;
}

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable max_committed_sn : Sn.t option;
  mutable force_writes : int;  (* how many synchronous log forces were paid *)
}

let create () = { entries = Hashtbl.create 32; max_committed_sn = None; force_writes = 0 }

let entry t ~gid ~coordinator =
  match Hashtbl.find_opt t.entries gid with
  | Some e -> e
  | None ->
      let e =
        {
          gid;
          commands = [];
          inc = 0;
          sn = None;
          coordinator = Some coordinator;
          bound = [];
          prepared = false;
          committed = false;
          locally_committed = false;
          rolled_back = false;
        }
      in
      Hashtbl.replace t.entries gid e;
      e

let find t ~gid = Hashtbl.find_opt t.entries gid

let append_command e cmd = e.commands <- cmd :: e.commands
let commands e = List.rev e.commands

let note_incarnation e ~inc = if inc > e.inc then e.inc <- inc

(* The force-written prepare record (Appendix B). *)
let force_prepare t e ~sn =
  e.sn <- Some sn;
  e.prepared <- true;
  t.force_writes <- t.force_writes + 1

(* The commit record (Appendix C); also advances the biggest committed
   serial number the certification extension checks. Idempotent: a
   decision re-delivered after recovery (retransmission, replayed
   COMMIT) must not pay another synchronous force. *)
let force_commit t e =
  if not e.committed then begin
    e.committed <- true;
    t.force_writes <- t.force_writes + 1;
    match e.sn with
    | Some sn ->
        t.max_committed_sn <-
          Some (match t.max_committed_sn with Some m when Sn.(m > sn) -> m | _ -> sn)
    | None -> ()
  end

(* Group commit: the same two records, written *without* their own
   force — the caller stages a whole batch and pays one [batch_forced]
   for all of it. *)
let stage_prepare e ~sn =
  e.sn <- Some sn;
  e.prepared <- true

let stage_commit t e =
  if not e.committed then begin
    e.committed <- true;
    match e.sn with
    | Some sn ->
        t.max_committed_sn <-
          Some (match t.max_committed_sn with Some m when Sn.(m > sn) -> m | _ -> sn)
    | None -> ()
  end

let batch_forced t = t.force_writes <- t.force_writes + 1

let note_rollback e = e.rolled_back <- true

let max_committed_sn t = t.max_committed_sn
let force_writes t = t.force_writes

(* Entries needing recovery after a crash: prepared (READY promised), not
   rolled back, and not yet *locally* committed — both the classic
   in-doubt case and the commit-record-forced-but-crashed-before-the-
   local-commit case, which recovery must redo. *)
let in_doubt t =
  Hashtbl.fold
    (fun _ e acc ->
      if e.prepared && (not e.locally_committed) && not e.rolled_back then e :: acc else acc)
    t.entries []
  |> List.sort (fun a b -> Int.compare a.gid b.gid)

let n_entries t = Hashtbl.length t.entries

(** The Agent log — the 2PC Agent's stable storage, which survives agent
    crashes: appended commands (for resubmission), the force-written
    prepare record with the serial number (Appendix B), the commit record
    (Appendix C) and the biggest committed serial number (§5.3). *)

open Hermes_kernel

type entry = {
  gid : int;
  mutable commands : Command.t list;  (** newest first; use {!commands} *)
  mutable inc : int;
  mutable sn : Sn.t option;
  mutable coordinator : Hermes_net.Message.address option;
  mutable bound : Item.t list;  (** the DLU bound-data set, logged at prepare *)
  mutable prepared : bool;
  mutable committed : bool;  (** the decision (commit record) is durable *)
  mutable locally_committed : bool;  (** the local commit actually happened *)
  mutable rolled_back : bool;
}

type t

val create : unit -> t

val entry : t -> gid:int -> coordinator:Hermes_net.Message.address -> entry
(** Find or create. *)

val find : t -> gid:int -> entry option
val append_command : entry -> Command.t -> unit
val commands : entry -> Command.t list
val note_incarnation : entry -> inc:int -> unit
val force_prepare : t -> entry -> sn:Sn.t -> unit
val force_commit : t -> entry -> unit
(** Idempotent: re-forcing an already-committed entry (a decision
    replayed after recovery) pays no additional force write. *)

val stage_prepare : entry -> sn:Sn.t -> unit

val stage_commit : t -> entry -> unit
(** {!force_prepare} / {!force_commit} without their own force write:
    group commit stages a whole batch of records and pays a single
    {!batch_forced} for all of it.  [stage_commit] is idempotent like
    {!force_commit} and advances the biggest committed serial number. *)

val batch_forced : t -> unit
(** Account the one synchronous force of a staged batch. *)

val note_rollback : entry -> unit
val max_committed_sn : t -> Sn.t option
val force_writes : t -> int

val in_doubt : t -> entry list
(** Prepared, not rolled back, and not yet locally committed — what
    recovery must restore (redoing the local commit when the commit
    record was already forced), in gid order. *)

val n_entries : t -> int

(* Re-export: the alive interval table moved into the pure protocol
   layer (hermes.protocol) with the state-machine extraction; kept here
   so existing [Hermes_core.Alive_table] callers compile unchanged. *)

include Hermes_protocol.Alive_table

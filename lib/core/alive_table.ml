(* The alive interval table (paper §4.2, Appendix).

   One per 2PC Agent: an entry per global subtransaction currently in the
   (simulated) prepared state at the site, holding its serial number and
   its known alive time intervals. The basic prepare certification tests a
   candidate's interval for intersection with every entry; the commit
   certification asks whether any entry has a smaller serial number; the
   periodic alive check extends the current interval's end.

   The paper: "The easiest way to implement the Certifier is to simply
   store the last alive time interval for each global subtransaction being
   in the prepared state. As an optimization, several of them might be
   stored." Both variants live here: each entry keeps up to [max_intervals]
   intervals (newest first), and the intersection rule is satisfied by
   *any* stored interval — sound because whichever interval witnesses
   simultaneous aliveness proves conflict-freeness of the (stable)
   decompositions, hence of every future incarnation (§4.2). *)

open Hermes_kernel

type entry = { gid : int; sn : Sn.t; mutable intervals : Interval.t list (* newest first, never empty *) }

type t = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }

let insert t ~gid ~sn ~interval =
  if Hashtbl.mem t.entries gid then invalid_arg "Alive_table.insert: duplicate entry";
  Hashtbl.replace t.entries gid { gid; sn; intervals = [ interval ] }

let remove t ~gid = Hashtbl.remove t.entries gid
let find t ~gid = Hashtbl.find_opt t.entries gid
let mem t ~gid = Hashtbl.mem t.entries gid
let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
let size t = Hashtbl.length t.entries

let current_interval e = match e.intervals with i :: _ -> i | [] -> assert false

(* Begin a fresh interval (a resubmission completed), keeping at most
   [max_intervals] per entry. *)
let push_interval t ~gid ~max_intervals interval =
  match Hashtbl.find_opt t.entries gid with
  | Some e ->
      let keep = Stdlib.max 1 max_intervals in
      e.intervals <- interval :: List.filteri (fun i _ -> i < keep - 1) e.intervals
  | None -> ()

(* Replace all knowledge with a single interval — the paper's
   store-only-the-last-interval baseline. *)
let update_interval t ~gid interval =
  match Hashtbl.find_opt t.entries gid with
  | Some e -> e.intervals <- [ interval ]
  | None -> ()

let extend_interval t ~gid ~hi =
  match Hashtbl.find_opt t.entries gid with
  | Some e -> (
      match e.intervals with
      | cur :: rest when Time.(Interval.lo cur <= hi) -> e.intervals <- Interval.extend_to cur ~hi :: rest
      | _ -> ())
  | None -> ()

(* The Alive Time Intersection Rule: the candidate may be prepared only if
   it intersects some stored interval of every entry. *)
let all_intersect t candidate =
  Hashtbl.fold
    (fun _ e acc -> acc && List.exists (Interval.intersects candidate) e.intervals)
    t.entries true

(* Deterministic certification witnesses, for the event trace: which
   entry refused the candidate / holds the commit back. *)
let first_non_intersecting t candidate =
  Hashtbl.fold
    (fun _ e acc ->
      if List.exists (Interval.intersects candidate) e.intervals then acc
      else match acc with Some b when b.gid < e.gid -> acc | _ -> Some e)
    t.entries None

(* Commit certification test (Appendix C): true iff every *other* entry
   has a bigger serial number than [sn]. *)
let min_sn_holds t ~gid ~sn =
  Hashtbl.fold (fun _ e acc -> acc && (e.gid = gid || Sn.(e.sn > sn))) t.entries true

let min_sn_blocker t ~gid ~sn =
  Hashtbl.fold
    (fun _ e acc ->
      if e.gid = gid || Sn.(e.sn > sn) then acc
      else match acc with Some b when Sn.compare b.sn e.sn <= 0 -> acc | _ -> Some e)
    t.entries None

let pp ppf t =
  let pp_entry ppf e =
    Fmt.pf ppf "T%d sn=%a %a" e.gid Sn.pp e.sn Fmt.(list ~sep:comma Interval.pp) e.intervals
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_entry) (entries t)

(* Re-export: the certifier configuration moved into the pure protocol
   layer (hermes.protocol) with the state-machine extraction; kept here
   so existing [Hermes_core.Config] callers compile unchanged. *)

include Hermes_protocol.Config

(** Certifier configuration. Each certification step of the paper can be
    toggled independently — that is how the ablation experiments and the
    baseline variants are expressed. *)

type t = {
  prepare_certification : bool;
      (** §4.2: the basic prepare certification (alive time intersection
          rule). Enforces the Correctness Invariant, preventing global
          view distortion — and, it turns out, resubmission/commit
          deadlocks (see the H1 liveness finding in EXPERIMENTS.md). *)
  certification_extension : bool;
      (** §5.3: refuse a PREPARE whose serial number is smaller than the
          biggest serial number already committed at the site — the guard
          against COMMIT-overtakes-PREPARE races. *)
  commit_certification : bool;
      (** §5.2/Appendix C: release local commits in serial-number order;
          a blocked commit retries after [commit_retry_interval]. *)
  refresh_on_certify : bool;
      (** Run an immediate alive check over the whole alive-interval table
          before the intersection test, so stale intervals of still-alive
          subtransactions cause no unnecessary refusals (realizes the
          paper's idealization that infrequent alive checks "never cause
          aborts"). *)
  bind_data : bool;
      (** Register the prepared subtransaction's footprint as bound data,
          enabling DLU enforcement at the LTM. *)
  alive_check_interval : int;  (** ticks between periodic alive checks (Appendix A). *)
  commit_retry_interval : int;  (** ticks before retrying a blocked commit certification. *)
  resubmit_backoff : int;  (** ticks before restarting a failed resubmission. *)
  sn_at_begin : bool;
      (** Ticket baseline: draw the serial number at BEGIN instead of at
          global commit, forcing all global transactions into begin
          order — the restrictive scheme §5.2 argues against. *)
  max_intervals : int;
      (** Alive intervals remembered per prepared subtransaction; 1 is the
          paper's store-only-the-last baseline, more enables its "several
          of them might be stored" optimization (§4.2). *)
  exec_timeout : int;
      (** Coordinator: ticks to wait for a command reply before aborting —
          a site crash can swallow the reply. *)
  decision_retry_interval : int;
      (** Coordinator: ticks between COMMIT/ROLLBACK retransmissions to
          participants that have not acknowledged (crash recovery relies
          on this; agents answer duplicates idempotently). *)
  prepare_retry_interval : int;
      (** Coordinator: ticks between PREPARE retransmissions to
          participants that have not voted. Armed only when the network
          reports itself {!Hermes_net.Network.lossy} (fault injection or
          down sites), so reliable runs stay byte-identical; [0] disables
          retransmission entirely. *)
}

val full : t
(** The complete 2CM certifier as the paper specifies it. *)

val naive : t
(** Prepared-state simulation and resubmission with no certification — the
    straw man exhibiting both distortion classes under failures. *)

val ticket : t
(** [full] with [sn_at_begin]: the predefined-total-order scheme. *)

val multi_interval : t
(** [full] remembering 4 alive intervals per prepared subtransaction — the
    §4.2 optimization that avoids unnecessary refusals after failures. *)

val without_extension : t
val without_commit_certification : t
val without_prepare_certification : t
val without_dlu : t

val pp : t Fmt.t

(* The Coordinator's effectful shell. The protocol — command-by-command
   execution, the commit gate, PREPARE/vote collection, the decision and
   its acknowledged retransmission (paper §2, §5.2) — lives in the pure
   state machine {!Hermes_protocol.Coordinator_sm}; this module owns the
   machine's state reference and interprets its effect lists against the
   network, the engine's timers, the history trace, the metrics registry
   and the submitter's [on_done].

   Serial numbers are drawn here (the machine is pure; the site clock is
   not): at [start] for the ticket baseline ([Config.sn_at_begin]),
   otherwise when the commit gate proceeds. Interpretation is
   order-faithful to the historical imperative coordinator, keeping runs
   byte-identical at a fixed seed. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Trace = Hermes_ltm.Trace
module Op = Hermes_history.Op
module Message = Hermes_net.Message
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram
module Sm = Hermes_protocol.Coordinator_sm
module Types = Hermes_protocol.Types

let src = Logs.Src.create "hermes.coordinator" ~doc:"2PC Coordinator events"

module Log = (val Logs.src_log src : Logs.LOG)

type reason = Types.reason =
  | Exec_failed of Site.t * string
  | Refused of Site.t * Message.refusal
  | Gate_refused of string  (* a baseline scheduler (e.g. CGM) rejected the commit *)
  | Presumed_abort  (* coordinator crash recovery found no decision record *)
  | Register_abort  (* a recovery ballot of the replicated decision register chose abort *)

let pp_reason = Types.pp_reason

type outcome = Types.outcome = Committed | Aborted of reason

let pp_outcome = Types.pp_outcome

(* A commit gate lets a baseline scheduler (the CGM commit graph) sit
   between execution and the PREPARE phase: it may let the transaction
   proceed now, later, or refuse it. The default gate proceeds
   immediately. *)
type gate = gid:int -> sites:Site.t list -> proceed:(unit -> unit) -> refuse:(string -> unit) -> unit

let open_gate : gate = fun ~gid:_ ~sites:_ ~proceed ~refuse:_ -> proceed ()

type t = {
  gid : int;
  site : Site.t;  (* the coordinating site, whose clock stamps the SN *)
  engine : Engine.t;
  net : Network.t;
  trace : Trace.t;
  config : Sm.config;
  sn_gen : unit -> Sn.t;
  gate : gate;
  obs : Obs.t option;
  on_done : outcome -> unit;
  log : Coordinator_log.t option;  (* the coordinating site's stable log *)
  batcher : Group_commit.t option;  (* the coordinating site's group-commit batcher *)
  mutable epoch : int;
      (* bumped by [crash]: staged-but-unforced writes and withheld
         effects of an older epoch are void — the crash lost them *)
  mutable machine : Sm.state;
  mutable exec_timer : Engine.timer option;
  mutable retransmit_timer : Engine.timer option;  (* decision or PREPARE retransmission *)
  mutable started_at : Time.t;
  mutable finished_at : Time.t;
}

let address t = Message.Coordinator t.gid

let cancel_timer = function Some timer -> Engine.cancel timer | None -> ()

let emit_event t (ev : Sm.event) =
  match ev with
  | All_ready { sn } ->
      Log.debug (fun m ->
          m "[%a] T%d: all READY, committing (sn %a)" Time.pp (Engine.now t.engine) t.gid
            Fmt.(option Sn.pp)
            sn)
  | Deciding_abort reason ->
      Log.info (fun m ->
          m "[%a] T%d: global abort (%a)" Time.pp (Engine.now t.engine) t.gid pp_reason reason)
  | Retransmitting_decision { unacked } ->
      Log.debug (fun m ->
          m "[%a] T%d: retransmitting decision to %d unacknowledged participant(s)" Time.pp
            (Engine.now t.engine) t.gid unacked)
  | Retransmitting_prepare { silent } ->
      Log.debug (fun m ->
          m "[%a] T%d: retransmitting PREPARE to %d silent participant(s)" Time.pp
            (Engine.now t.engine) t.gid silent)
  | Recovered { decision } ->
      (match t.obs with
      | Some o ->
          let name =
            match decision with
            | Some _ -> "coord.recovered_decisions"
            | None -> "coord.presumed_aborts"
          in
          Registry.Counter.incr (Registry.counter (Obs.metrics o) ~site:t.site name)
      | None -> ());
      Log.info (fun m ->
          m "[%a] T%d: coordinator recovered from the log (%s)" Time.pp (Engine.now t.engine) t.gid
            (match decision with
            | Some true -> "re-driving commit"
            | Some false -> "re-driving abort"
            | None -> "no decision record: presumed abort"))
  | Answering_inquiry { asker; committed } ->
      Log.debug (fun m ->
          m "[%a] T%d: DECISION-REQ from %a, answering %s" Time.pp (Engine.now t.engine) t.gid
            Site.pp asker
            (if committed then "commit" else "rollback"))
  | Replicating_decision { acceptors } ->
      Log.debug (fun m ->
          m "[%a] T%d: proposing commit to %d acceptor(s) at ballot 0" Time.pp
            (Engine.now t.engine) t.gid acceptors)
  | Retransmitting_proposal { unacked } ->
      Log.debug (fun m ->
          m "[%a] T%d: re-driving the decision register (%d outstanding)" Time.pp
            (Engine.now t.engine) t.gid unacked)
  | Asking_register { acceptors } ->
      (match t.obs with
      | Some o ->
          Registry.Counter.incr (Registry.counter (Obs.metrics o) ~site:t.site "coord.register_inquiries")
      | None -> ());
      Log.info (fun m ->
          m "[%a] T%d: recovered undecided, asking the %d-acceptor register" Time.pp
            (Engine.now t.engine) t.gid acceptors)
  | Adopted { committed } ->
      (match t.obs with
      | Some o ->
          Registry.Counter.incr (Registry.counter (Obs.metrics o) ~site:t.site "coord.adopted_decisions")
      | None -> ());
      Log.info (fun m ->
          m "[%a] T%d: adopted the register's decision (%s)" Time.pp (Engine.now t.engine) t.gid
            (if committed then "commit" else "rollback"))

let record_history t (h : Types.history_event) =
  match h with
  | H_global_commit { gid } ->
      (* Record the decision in stable storage: the global commit. *)
      Trace.record t.trace ~at:(Engine.now t.engine) (Op.Global_commit (Txn.global gid))
  | H_global_abort { gid } ->
      Trace.record t.trace ~at:(Engine.now t.engine) (Op.Global_abort (Txn.global gid))
  | H_prepare _ -> assert false (* agent-side history entry *)

let decide t outcome =
  t.finished_at <- Engine.now t.engine;
  (match t.obs with
  | Some o ->
      let m = Obs.metrics o in
      let outcome_name =
        match outcome with Committed -> "coord.committed" | Aborted _ -> "coord.aborted"
      in
      Registry.Counter.incr (Registry.counter m ~site:t.site outcome_name);
      let retransmissions = t.machine.Sm.retransmissions in
      if retransmissions > 0 then
        Registry.Counter.add (Registry.counter m ~site:t.site "coord.retransmissions") retransmissions;
      Histogram.record
        (Registry.histogram m ~site:t.site "coord.latency")
        (Time.diff t.finished_at t.started_at)
  | None -> ());
  t.on_done outcome

let rec feed t input =
  let machine, effects = Sm.step t.config t.machine input in
  t.machine <- machine;
  run_effects t effects

(* Walk a step's effects in order. [Stage_log] parks the record and the
   *rest of the step* at the site's batcher — both run only when the
   batch force-writes, and only if this coordinator has not crashed in
   between (the epoch guard): staged-but-unforced state is volatile. *)
and run_effects t = function
  | [] -> ()
  | (Types.Stage_log r : Sm.effect) :: rest -> (
      match t.batcher with
      | None ->
          (* no site batcher wired (direct [start] in tests): degenerate
             to an immediate force *)
          log_force t r;
          run_effects t rest
      | Some b ->
          let epoch = t.epoch in
          Group_commit.stage b
            {
              Group_commit.write = (fun () -> if t.epoch = epoch then log_stage t r);
              release = (fun () -> if t.epoch = epoch then run_effects t rest);
            })
  | eff :: rest ->
      interpret t eff;
      run_effects t rest

and log_force t (r : Sm.record) =
  match t.log with
  | Some log -> (
      match r with
      | Sm.R_begin { participants } -> Coordinator_log.force_begin log ~gid:t.gid ~participants
      | Sm.R_prepared { participants; sn } ->
          Coordinator_log.force_prepared log ~gid:t.gid ~participants ~sn
      | Sm.R_decision { committed } -> Coordinator_log.force_decision log ~gid:t.gid ~committed)
  | None -> () (* log-less coordinators (direct [start] in tests) stay volatile *)

and log_stage t (r : Sm.record) =
  match t.log with
  | Some log -> (
      match r with
      | Sm.R_begin { participants } -> Coordinator_log.stage_begin log ~gid:t.gid ~participants
      | Sm.R_prepared { participants; sn } ->
          Coordinator_log.stage_prepared log ~gid:t.gid ~participants ~sn
      | Sm.R_decision { committed } -> Coordinator_log.stage_decision log ~gid:t.gid ~committed)
  | None -> ()

and interpret t (eff : Sm.effect) =
  match eff with
  | Types.Send { dst; gid; payload } -> Network.send t.net ~src:(address t) ~dst ~gid payload
  | Types.Arm_timer { timer; delay } -> arm t timer ~delay
  | Types.Cancel_timer timer -> (
      match timer with
      | Sm.Exec_timeout ->
          cancel_timer t.exec_timer;
          t.exec_timer <- None
      | Sm.Retransmit | Sm.Prepare_retransmit ->
          cancel_timer t.retransmit_timer;
          t.retransmit_timer <- None)
  | Types.Force_log r -> log_force t r
  | Types.Stage_log _ -> assert false (* consumed by [run_effects] *)
  | Types.Force_batch _ -> assert false (* agent-machine vocabulary *)
  | Types.Ltm_call _ -> . (* no LTM: the payload is empty *)
  | Types.Record h -> record_history t h
  | Types.Emit ev -> emit_event t ev
  | Types.Invoke_gate ->
      (* All commands executed: the application submits the global
         Commit. The gate may answer synchronously (the default gate
         does) — [Invoke_gate] is always the machine's last effect, so
         re-entering [feed] from here is safe. *)
      t.gate ~gid:t.gid ~sites:t.machine.Sm.participants
        ~proceed:(fun () ->
          let sn =
            if t.config.Sm.certifier.Config.sn_at_begin then None else Some (t.sn_gen ())
          in
          feed t (Sm.Gate_opened { sn; lossy = Network.lossy t.net }))
        ~refuse:(fun why -> feed t (Sm.Gate_refused why))
  | Types.Decide outcome -> decide t outcome

and arm t (timer : Sm.timer) ~delay =
  match timer with
  | Sm.Exec_timeout ->
      t.exec_timer <- Some (Engine.schedule t.engine ~delay (fun () -> feed t Sm.Exec_timeout_fired))
  | Sm.Retransmit ->
      t.retransmit_timer <-
        Some (Engine.schedule t.engine ~delay (fun () -> feed t Sm.Retransmit_fired))
  | Sm.Prepare_retransmit ->
      t.retransmit_timer <-
        Some (Engine.schedule t.engine ~delay (fun () -> feed t Sm.Prepare_retransmit_fired))

let handle t (msg : Message.t) =
  match msg.Message.src with
  | Message.Agent src -> feed t (Sm.From_agent { src; payload = msg.Message.payload })
  | Message.Acceptor { idx; _ } -> feed t (Sm.From_acceptor { idx; payload = msg.Message.payload })
  | Message.Coordinator _ -> assert false

let start ?(gate = open_gate) ?obs ?log ?batcher ?(epoch = 0) ~gid ~site ~engine ~net ~trace
    ~config ~sn_gen ~program ~on_done () =
  (* [epoch] is the placement epoch stamped on BEGIN/EXEC — distinct from
     the group-commit crash epoch in [t.epoch] below. *)
  let sm_config = Sm.config ~epoch config in
  let sn = if config.Config.sn_at_begin then Some (sn_gen ()) else None in
  let t =
    {
      gid;
      site;
      engine;
      net;
      trace;
      config = sm_config;
      sn_gen;
      gate;
      obs;
      on_done;
      log;
      batcher;
      epoch = 0;
      machine =
        Sm.init ~gid ~site ~participants:(Program.sites program) ~steps:(Program.steps program) ~sn;
      exec_timer = None;
      retransmit_timer = None;
      started_at = Engine.now engine;
      finished_at = Engine.now engine;
    }
  in
  Network.register net (address t) (handle t);
  feed t Sm.Start;
  t

(* A crash of the coordinating site: the machine's volatile state is
   gone (the Crash input silences the armed timers; the stale machine is
   replaced at [recover]). The network handler stays registered — the
   address is marked down by [Dtm], so deliveries during the outage are
   counted drops, exactly like a crashed agent's. *)
let crash t =
  (* Void this round's staged-but-unforced batcher items (write and
     release closures of the old epoch become no-ops): the crash loses
     exactly the records that were never forced. *)
  t.epoch <- t.epoch + 1;
  feed t Sm.Crash

(* Reboot: rebuild the machine from the site's coordinator log. A
   finished round needs nothing (every participant acknowledged — and
   the still-registered handler keeps answering late DECISION-REQs from
   the durable decision); anything else restarts from its log entry,
   re-driving the logged decision or presuming abort. *)
let recover t =
  if not t.machine.Sm.finished then
    match Option.bind t.log (fun log -> Coordinator_log.find log ~gid:t.gid) with
    | None -> () (* never started (no log): nothing was promised anywhere *)
    | Some e ->
        t.machine <- Sm.init ~gid:t.gid ~site:t.site ~participants:[] ~steps:[] ~sn:None;
        feed t
          (Sm.Recover
             {
               participants = e.Coordinator_log.participants;
               sn = e.Coordinator_log.sn;
               decision = e.Coordinator_log.decision;
             })

let finished t = t.machine.Sm.finished
let latency t = Time.diff t.finished_at t.started_at
let gid t = t.gid
let coordinating_site t = t.site
let retransmissions t = t.machine.Sm.retransmissions

(* The Coordinator (paper §2): decomposes a global transaction into global
   subtransactions, submits the DML commands one by one to the
   participating sites' agents, and on completion drives the standard
   two-phase commit: PREPARE to all, then COMMIT iff every participant
   answered READY, ROLLBACK otherwise.

   The serial number (§5.2) is drawn from the coordinating site's clock
   when the application submits the global Commit — i.e. after the last
   command executed — and travels inside the PREPARE messages. The ticket
   baseline ([Elmagarmid & Du]-style predefined order, which the paper
   argues is too restrictive) draws it at BEGIN instead
   ([Config.sn_at_begin]).

   Failure handling towards crashing agents: a command whose reply never
   arrives (the agent crashed with it in flight) times out and aborts the
   global transaction; COMMIT/ROLLBACK decisions are retransmitted until
   every participant acknowledged — agents answer retransmissions
   idempotently from their logs. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Trace = Hermes_ltm.Trace
module Op = Hermes_history.Op
module Message = Hermes_net.Message
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram

let src = Logs.Src.create "hermes.coordinator" ~doc:"2PC Coordinator events"

module Log = (val Logs.src_log src : Logs.LOG)

type reason =
  | Exec_failed of Site.t * string
  | Refused of Site.t * Message.refusal
  | Gate_refused of string  (* a baseline scheduler (e.g. CGM) rejected the commit *)

let pp_reason ppf = function
  | Exec_failed (s, why) -> Fmt.pf ppf "execution failed at %a: %s" Site.pp s why
  | Refused (s, r) -> Fmt.pf ppf "refused by %a: %a" Site.pp s Message.pp_refusal r
  | Gate_refused why -> Fmt.pf ppf "commit gate refused: %s" why

type outcome = Committed | Aborted of reason

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted (%a)" pp_reason r

type phase = Executing | Preparing | Committing | Aborting of reason

(* A commit gate lets a baseline scheduler (the CGM commit graph) sit
   between execution and the PREPARE phase: it may let the transaction
   proceed now, later, or refuse it. The default gate proceeds
   immediately. *)
type gate = gid:int -> sites:Site.t list -> proceed:(unit -> unit) -> refuse:(string -> unit) -> unit

let open_gate : gate = fun ~gid:_ ~sites:_ ~proceed ~refuse:_ -> proceed ()

type t = {
  gid : int;
  site : Site.t;  (* the coordinating site, whose clock stamps the SN *)
  engine : Engine.t;
  net : Network.t;
  trace : Trace.t;
  config : Config.t;
  sn_gen : unit -> Sn.t;
  gate : gate;
  program : Program.t;
  participants : Site.t list;
  obs : Obs.t option;
  on_done : outcome -> unit;
  mutable phase : phase;
  mutable remaining_steps : (Site.t * int * Command.t) list;  (* (site, per-site step, command) *)
  mutable outstanding : (Site.t * int) option;  (* the command awaiting its reply *)
  mutable sn : Sn.t option;
  mutable voters : Site.Set.t;  (* sites whose READY/REFUSE arrived (duplicates ignored) *)
  mutable refusal : (Site.t * Message.refusal) option;
  mutable acked : Site.Set.t;  (* decision acknowledgements *)
  mutable exec_timer : Engine.timer option;
  mutable retransmit_timer : Engine.timer option;
  mutable started_at : Time.t;
  mutable finished_at : Time.t;
  mutable retransmissions : int;
}

let address t = Message.Coordinator t.gid

let send t ~dst payload = Network.send t.net ~src:(address t) ~dst ~gid:t.gid payload

let send_to_all t payload = List.iter (fun s -> send t ~dst:(Message.Agent s) payload) t.participants

let n_participants t = List.length t.participants

let cancel_timer = function Some timer -> Engine.cancel timer | None -> ()

let decision_message t = match t.phase with Committing -> Message.Commit | _ -> Message.Rollback

(* Retransmit the decision to participants that have not acknowledged —
   an agent may have crashed after receiving it (or its ACK may chase a
   recovery); agents answer duplicates idempotently from their logs. *)
let rec arm_retransmit t =
  cancel_timer t.retransmit_timer;
  t.retransmit_timer <-
    Some
      (Engine.schedule t.engine ~delay:t.config.Config.decision_retry_interval (fun () ->
           t.retransmissions <- t.retransmissions + 1;
           Log.debug (fun m ->
               m "[%a] T%d: retransmitting decision to %d unacknowledged participant(s)" Time.pp
                 (Engine.now t.engine) t.gid
                 (n_participants t - Site.Set.cardinal t.acked));
           List.iter
             (fun s -> if not (Site.Set.mem s t.acked) then send t ~dst:(Message.Agent s) (decision_message t))
             t.participants;
           arm_retransmit t))

(* Retransmit PREPARE to participants that have not voted — only armed on
   a lossy network, where the PREPARE or its vote can be dropped; voting
   agents answer duplicates idempotently (READY again from the prepared
   state or log, REFUSE again for a dead subtransaction). *)
let rec arm_prepare_retransmit t =
  cancel_timer t.retransmit_timer;
  t.retransmit_timer <-
    Some
      (Engine.schedule t.engine ~delay:t.config.Config.prepare_retry_interval (fun () ->
           match t.phase with
           | Preparing ->
               t.retransmissions <- t.retransmissions + 1;
               Log.debug (fun m ->
                   m "[%a] T%d: retransmitting PREPARE to %d silent participant(s)" Time.pp
                     (Engine.now t.engine) t.gid
                     (n_participants t - Site.Set.cardinal t.voters));
               let sn = Option.get t.sn in
               List.iter
                 (fun s ->
                   if not (Site.Set.mem s t.voters) then
                     send t ~dst:(Message.Agent s) (Message.Prepare sn))
                 t.participants;
               arm_prepare_retransmit t
           | Executing | Committing | Aborting _ -> ()))

let start_decision t phase =
  t.phase <- phase;
  t.acked <- Site.Set.empty;
  send_to_all t (decision_message t);
  arm_retransmit t

let start_abort t reason =
  cancel_timer t.exec_timer;
  Log.info (fun m -> m "[%a] T%d: global abort (%a)" Time.pp (Engine.now t.engine) t.gid pp_reason reason);
  Trace.record t.trace ~at:(Engine.now t.engine) (Op.Global_abort (Txn.global t.gid));
  start_decision t (Aborting reason)

(* After the decision completes, stray duplicate acknowledgements may
   still be in flight (a retransmitted COMMIT re-acked by a recovered
   agent); leave a tombstone handler that swallows them. *)
let finish t outcome =
  cancel_timer t.retransmit_timer;
  t.finished_at <- Engine.now t.engine;
  (match t.obs with
  | Some o ->
      let m = Obs.metrics o in
      let outcome_name =
        match outcome with Committed -> "coord.committed" | Aborted _ -> "coord.aborted"
      in
      Registry.Counter.incr (Registry.counter m ~site:t.site outcome_name);
      if t.retransmissions > 0 then
        Registry.Counter.add
          (Registry.counter m ~site:t.site "coord.retransmissions")
          t.retransmissions;
      Histogram.record
        (Registry.histogram m ~site:t.site "coord.latency")
        (Time.diff t.finished_at t.started_at)
  | None -> ());
  Network.register t.net (address t) (fun (msg : Message.t) ->
      match msg.Message.payload with
      | Message.Commit_ack | Message.Rollback_ack | Message.Ready | Message.Refuse _
      | Message.Exec_ok _ | Message.Exec_failed _ ->
          (* Stray duplicates of any agent reply can trail the decision on
             a duplicating network. *)
          ()
      | payload -> Fmt.failwith "finished coordinator T%d: unexpected %a" t.gid Message.pp_payload payload);
  t.on_done outcome

let arm_exec_timeout t site =
  cancel_timer t.exec_timer;
  t.exec_timer <-
    Some
      (Engine.schedule t.engine ~delay:t.config.Config.exec_timeout (fun () ->
           match t.phase with
           | Executing -> start_abort t (Exec_failed (site, "command reply timed out (site crash?)"))
           | Preparing | Committing | Aborting _ -> ()))

let next_step t =
  match t.remaining_steps with
  | (site, step, cmd) :: rest ->
      t.remaining_steps <- rest;
      t.outstanding <- Some (site, step);
      send t ~dst:(Message.Agent site) (Message.Exec { step; cmd });
      arm_exec_timeout t site
  | [] ->
      cancel_timer t.exec_timer;
      t.outstanding <- None;
      (* All commands executed: the application submits the global Commit.
         The gate (a baseline scheduler's hook) may hold or refuse it;
         then draw the serial number (unless the ticket baseline drew it
         at begin) and start phase one of 2PC. *)
      t.gate ~gid:t.gid ~sites:t.participants
        ~proceed:(fun () ->
          t.phase <- Preparing;
          let sn = match t.sn with Some sn when t.config.Config.sn_at_begin -> sn | _ -> t.sn_gen () in
          t.sn <- Some sn;
          send_to_all t (Message.Prepare sn);
          if Network.lossy t.net && t.config.Config.prepare_retry_interval > 0 then
            arm_prepare_retransmit t)
        ~refuse:(fun why -> start_abort t (Gate_refused why))

let is_outstanding t site step =
  match t.outstanding with Some (s, k) -> Site.equal s site && k = step | None -> false

let handle t (msg : Message.t) =
  let from_site = match msg.Message.src with Message.Agent s -> s | Message.Coordinator _ -> assert false in
  match (t.phase, msg.Message.payload) with
  | Executing, Message.Exec_ok { step; _ } when is_outstanding t from_site step ->
      cancel_timer t.exec_timer;
      next_step t
  | Executing, Message.Exec_ok _ ->
      (* A duplicated reply to an already-answered command: ignore. *)
      ()
  | Executing, Message.Exec_failed { step; reason } when is_outstanding t from_site step ->
      start_abort t (Exec_failed (from_site, reason))
  | Executing, Message.Exec_failed _ -> ()
  | Preparing, Message.Ready ->
      if not (Site.Set.mem from_site t.voters) then begin
        t.voters <- Site.Set.add from_site t.voters;
        if Site.Set.cardinal t.voters = n_participants t then
          if t.refusal = None then begin
            (* Record the decision in stable storage: the global commit. *)
            Log.debug (fun m ->
                m "[%a] T%d: all READY, committing (sn %a)" Time.pp (Engine.now t.engine) t.gid
                  Fmt.(option Sn.pp) t.sn);
            Trace.record t.trace ~at:(Engine.now t.engine) (Op.Global_commit (Txn.global t.gid));
            start_decision t Committing
          end
          else
            let site, refusal = Option.get t.refusal in
            start_abort t (Refused (site, refusal))
      end
  | Preparing, Message.Refuse r ->
      if not (Site.Set.mem from_site t.voters) then begin
        t.voters <- Site.Set.add from_site t.voters;
        if t.refusal = None then t.refusal <- Some (from_site, r);
        if Site.Set.cardinal t.voters = n_participants t then
          let site, refusal = Option.get t.refusal in
          start_abort t (Refused (site, refusal))
      end
  | Preparing, (Message.Exec_ok _ | Message.Exec_failed _) ->
      (* Duplicated command replies arriving after the last command was
         first answered: ignore. *)
      ()
  | Committing, Message.Commit_ack ->
      if not (Site.Set.mem from_site t.acked) then begin
        t.acked <- Site.Set.add from_site t.acked;
        if Site.Set.cardinal t.acked = n_participants t then finish t Committed
      end
  | Committing, (Message.Ready | Message.Refuse _ | Message.Exec_ok _ | Message.Exec_failed _) ->
      (* Duplicated votes or command replies trailing the decision: ignore. *)
      ()
  | Aborting reason, Message.Rollback_ack ->
      if not (Site.Set.mem from_site t.acked) then begin
        t.acked <- Site.Set.add from_site t.acked;
        if Site.Set.cardinal t.acked = n_participants t then finish t (Aborted reason)
      end
  | Aborting _, (Message.Exec_ok _ | Message.Exec_failed _ | Message.Ready | Message.Refuse _) ->
      (* Late replies racing the abort decision (e.g. an Exec_ok in flight
         when the exec timeout fired): ignore. *)
      ()
  | _, payload ->
      Fmt.failwith "coordinator T%d: unexpected %a in current phase" t.gid Message.pp_payload payload

(* Tag each command with its per-site step index, so agents and the
   coordinator can recognize (and ignore) duplicated EXECs and replies. *)
let number_steps steps =
  let counts = Hashtbl.create 8 in
  List.map
    (fun (site, cmd) ->
      let k = Option.value (Hashtbl.find_opt counts (Site.to_int site)) ~default:0 in
      Hashtbl.replace counts (Site.to_int site) (k + 1);
      (site, k, cmd))
    steps

let start ?(gate = open_gate) ?obs ~gid ~site ~engine ~net ~trace ~config ~sn_gen ~program ~on_done () =
  let t =
    {
      gid;
      site;
      engine;
      net;
      trace;
      config;
      sn_gen;
      gate;
      program;
      participants = Program.sites program;
      obs;
      on_done;
      phase = Executing;
      remaining_steps = number_steps (Program.steps program);
      outstanding = None;
      sn = None;
      voters = Site.Set.empty;
      refusal = None;
      acked = Site.Set.empty;
      exec_timer = None;
      retransmit_timer = None;
      started_at = Engine.now engine;
      finished_at = Engine.now engine;
      retransmissions = 0;
    }
  in
  if config.Config.sn_at_begin then t.sn <- Some (sn_gen ());
  Network.register net (address t) (handle t);
  List.iter (fun s -> send t ~dst:(Message.Agent s) Message.Begin) t.participants;
  next_step t;
  t

let latency t = Time.diff t.finished_at t.started_at
let gid t = t.gid
let coordinating_site t = t.site
let retransmissions t = t.retransmissions

(** The Coordinator (paper §2): submits a global transaction's commands
    one by one to the participating sites' agents, then drives standard
    two-phase commit. The serial number (§5.2) is drawn from the
    coordinating site's clock at global-commit time (or at BEGIN for the
    ticket baseline) and travels in the PREPARE messages. *)

open Hermes_kernel

type reason =
  | Exec_failed of Site.t * string
  | Refused of Site.t * Hermes_net.Message.refusal
  | Gate_refused of string  (** a baseline scheduler (e.g. CGM) rejected the commit *)

val pp_reason : reason Fmt.t

type outcome = Committed | Aborted of reason

val pp_outcome : outcome Fmt.t

type gate = gid:int -> sites:Site.t list -> proceed:(unit -> unit) -> refuse:(string -> unit) -> unit
(** A commit gate sits between execution and the PREPARE phase; baseline
    schedulers (the CGM commit graph) hook in here. *)

val open_gate : gate
(** The default gate: proceed immediately. *)

type t

val start :
  ?gate:gate ->
  ?obs:Hermes_obs.Obs.t ->
  gid:int ->
  site:Site.t ->
  engine:Hermes_sim.Engine.t ->
  net:Hermes_net.Network.t ->
  trace:Hermes_ltm.Trace.t ->
  config:Config.t ->
  sn_gen:(unit -> Sn.t) ->
  program:Program.t ->
  on_done:(outcome -> unit) ->
  unit ->
  t
(** Registers with the network, sends BEGIN to each participant, and
    starts executing; [on_done] fires after all COMMIT-ACKs or
    ROLLBACK-ACKs. *)

val gid : t -> int
val coordinating_site : t -> Site.t

val latency : t -> int
(** Submission-to-decision ticks (valid once finished). *)

val retransmissions : t -> int
(** Decision retransmission rounds performed (crashed participants). *)

(** The Coordinator (paper §2): submits a global transaction's commands
    one by one to the participating sites' agents, then drives standard
    two-phase commit. The serial number (§5.2) is drawn from the
    coordinating site's clock at global-commit time (or at BEGIN for the
    ticket baseline) and travels in the PREPARE messages. *)

open Hermes_kernel

type reason =
  | Exec_failed of Site.t * string
  | Refused of Site.t * Hermes_net.Message.refusal
  | Gate_refused of string  (** a baseline scheduler (e.g. CGM) rejected the commit *)
  | Presumed_abort
      (** coordinator crash recovery found no decision record for the
          round and terminated it by presuming abort *)
  | Register_abort
      (** replicated commit: a recovery ballot of the decision register
          chose abort and this coordinator adopted it *)

val pp_reason : reason Fmt.t

type outcome = Committed | Aborted of reason

val pp_outcome : outcome Fmt.t

type gate = gid:int -> sites:Site.t list -> proceed:(unit -> unit) -> refuse:(string -> unit) -> unit
(** A commit gate sits between execution and the PREPARE phase; baseline
    schedulers (the CGM commit graph) hook in here. *)

val open_gate : gate
(** The default gate: proceed immediately. *)

type t

val start :
  ?gate:gate ->
  ?obs:Hermes_obs.Obs.t ->
  ?log:Coordinator_log.t ->
  ?batcher:Group_commit.t ->
  ?epoch:int ->
  gid:int ->
  site:Site.t ->
  engine:Hermes_sim.Engine.t ->
  net:Hermes_net.Network.t ->
  trace:Hermes_ltm.Trace.t ->
  config:Config.t ->
  sn_gen:(unit -> Sn.t) ->
  program:Program.t ->
  on_done:(outcome -> unit) ->
  unit ->
  t
(** Registers with the network, sends BEGIN to each participant, and
    starts executing; [on_done] fires after all COMMIT-ACKs or
    ROLLBACK-ACKs. With [log], the machine's force-written records
    (participant set, decision) go to that stable log, making the round
    recoverable across {!crash}/{!recover}. With [batcher] (group
    commit), staged records join the site's shared batch and the rest of
    the staging step is withheld until the batch force-writes; a crash
    in between voids both. [?epoch] (default 0) is the placement epoch
    stamped on every BEGIN/EXEC this round sends; agents holding a
    different installed epoch refuse them WRONG-EPOCH and the round
    aborts for re-resolution. *)

val crash : t -> unit
(** The coordinating site crashed: volatile 2PC state is lost and the
    armed timers are silenced. The handler stays registered — mark the
    address down on the network for the outage. *)

val recover : t -> unit
(** Reboot: rebuild from the stable log. A logged decision is re-driven
    until every participant acknowledges; an undecided entry is presumed
    aborted (ROLLBACK broadcast). No-op for finished rounds or when
    [start] was given no log. *)

val finished : t -> bool
(** The decision is made and every participant acknowledged it. *)

val gid : t -> int
val coordinating_site : t -> Site.t

val latency : t -> int
(** Submission-to-decision ticks (valid once finished). *)

val retransmissions : t -> int
(** Decision retransmission rounds performed (crashed participants). *)

(* The Coordinator log — a coordinating site's stable 2PC storage,
   mirroring {!Agent_log} on the other side of the protocol.

   Three records are force-written by the coordinator machine: the
   *begin record* (the participant set, before the BEGINs leave, so a
   round lost to a crash mid-execution is discoverable), the *prepared
   record* (the participant set and serial number, before the first
   PREPARE leaves — any participant that ever promises is covered by a
   durable record) and the *decision record* (the commit/abort bit, at
   decide time, before the decision is announced).

   Like the Agent log, in the simulation this is an ordinary data
   structure owned by the site, not by any coordinator's volatile state:
   [Dtm.crash_site] discards the coordinators' machines but keeps this
   log, and recovery replays it — re-driving logged decisions and
   presuming abort for entries with none (2PC presumed abort). *)

open Hermes_kernel

type entry = {
  gid : int;
  mutable participants : Site.t list;
  mutable sn : Sn.t option;  (* force-written with the prepared record *)
  mutable prepared : bool;  (* PREPAREs were sent *)
  mutable decision : bool option;  (* [Some committed] once decided *)
}

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable order : int list;  (* gids, newest first (deterministic iteration) *)
  mutable force_writes : int;  (* how many synchronous log forces were paid *)
}

let create () = { entries = Hashtbl.create 16; order = []; force_writes = 0 }

let entry t ~gid =
  match Hashtbl.find_opt t.entries gid with
  | Some e -> e
  | None ->
      let e = { gid; participants = []; sn = None; prepared = false; decision = None } in
      Hashtbl.replace t.entries gid e;
      t.order <- gid :: t.order;
      e

let find t ~gid = Hashtbl.find_opt t.entries gid

let force_begin t ~gid ~participants =
  let e = entry t ~gid in
  e.participants <- participants;
  t.force_writes <- t.force_writes + 1

let force_prepared t ~gid ~participants ~sn =
  let e = entry t ~gid in
  e.participants <- participants;
  e.sn <- Some sn;
  e.prepared <- true;
  t.force_writes <- t.force_writes + 1

(* Idempotent: a recovery-time presumed abort re-forced after a second
   crash keeps the first decision (a decision, once forced, never
   changes). *)
let force_decision t ~gid ~committed =
  let e = entry t ~gid in
  (match e.decision with None -> e.decision <- Some committed | Some _ -> ());
  t.force_writes <- t.force_writes + 1

(* Group commit: the same three records, written *without* their own
   force — the site's batcher pays one [force_tick] per flushed batch. *)
let stage_begin t ~gid ~participants =
  let e = entry t ~gid in
  e.participants <- participants

let stage_prepared t ~gid ~participants ~sn =
  let e = entry t ~gid in
  e.participants <- participants;
  e.sn <- Some sn;
  e.prepared <- true

let stage_decision t ~gid ~committed =
  let e = entry t ~gid in
  match e.decision with None -> e.decision <- Some committed | Some _ -> ()

let force_tick t = t.force_writes <- t.force_writes + 1

let entries t = List.rev_map (fun gid -> Hashtbl.find t.entries gid) t.order

(* What recovery must presume aborted: rounds that started (or even
   prepared) but whose decision record never made it to the log. *)
let undecided t = List.filter (fun e -> e.decision = None) (entries t)

let force_writes t = t.force_writes
let n_entries t = Hashtbl.length t.entries

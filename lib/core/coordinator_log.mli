(** The Coordinator log — a coordinating site's stable 2PC storage,
    mirroring {!Agent_log}: the participant set (forced at BEGIN and
    again, with the serial number, at PREPARE-send) and the global
    decision (forced at decide time). Survives [Dtm.crash_site] on the
    coordinating site; recovery re-drives logged decisions and presumes
    abort for entries with none. *)

open Hermes_kernel

type entry = {
  gid : int;
  mutable participants : Site.t list;
  mutable sn : Sn.t option;  (** force-written with the prepared record *)
  mutable prepared : bool;  (** PREPAREs were sent *)
  mutable decision : bool option;  (** [Some committed] once decided *)
}

type t

val create : unit -> t
val find : t -> gid:int -> entry option
val force_begin : t -> gid:int -> participants:Site.t list -> unit
val force_prepared : t -> gid:int -> participants:Site.t list -> sn:Sn.t -> unit

val force_decision : t -> gid:int -> committed:bool -> unit
(** Idempotent on the decision bit: once forced, a decision never
    changes (later forces still count as force writes). *)

val stage_begin : t -> gid:int -> participants:Site.t list -> unit
val stage_prepared : t -> gid:int -> participants:Site.t list -> sn:Sn.t -> unit

val stage_decision : t -> gid:int -> committed:bool -> unit
(** The force_* records written {e without} their own force: group
    commit stages a batch and the site's batcher pays one {!force_tick}
    per flush.  [stage_decision] is idempotent on the decision bit. *)

val force_tick : t -> unit
(** Account the one synchronous force of a flushed batch. *)

val entries : t -> entry list
(** In first-logged order. *)

val undecided : t -> entry list
(** Entries with no decision record — presumed aborted at recovery. *)

val force_writes : t -> int
val n_entries : t -> int

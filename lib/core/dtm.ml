(* The assembled Distributed Transaction Manager: per-site LDBS (database
   + LTM + failure injector + 2PC Agent) and a coordinator factory. This
   is the "totally decentralized" architecture of Fig. 1 — the only shared
   pieces here are simulation infrastructure (engine, network, trace), not
   protocol state.

   The coordinating site of a global transaction is its first
   participant; serial numbers are stamped by that site's (possibly
   drifting) clock plus a per-site sequence counter, exactly the
   clock-and-site-id scheme of §5.2. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Database = Hermes_store.Database
module Ltm = Hermes_ltm.Ltm
module Failure = Hermes_ltm.Failure
module Trace = Hermes_ltm.Trace
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry

type site_spec = {
  ltm_config : Hermes_ltm.Ltm_config.t;
  clock : Clock.t;
  failure : Failure.config;
}

let default_site_spec =
  { ltm_config = Hermes_ltm.Ltm_config.default; clock = Clock.perfect; failure = Failure.disabled }

type site_ctx = {
  site : Site.t;
  db : Database.t;
  ltm : Ltm.t;
  agent : Agent.t;
  clog : Coordinator_log.t;  (* the site's stable coordinator log *)
  batcher : Group_commit.t option;  (* the site's shared group-commit batcher *)
  clock : Clock.t;
  injector : Failure.t;
  mutable sn_seq : int;
  mutable down : bool;  (* crashed, reboot pending *)
  mutable hosted : Coordinator.t list;  (* coordinators this site ever hosted, newest first *)
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  trace : Trace.t;
  net : Network.t;
  certifier : Config.t;
  obs : Obs.t option;
  crash_coordinators : bool;
      (* [crash_site] also crashes the site's coordinators (and the
         agents run the termination protocol); off by default so earlier
         fault scenarios replay byte-identically *)
  sites : site_ctx array;
  mutable next_gid : int;
  mutable submitted : int;
}

let create ~engine ~rng ~trace ~net_config ~certifier ?obs ?(crash_coordinators = false)
    ~site_specs () =
  let net = Network.create ~engine ~rng:(Rng.split rng ~label:"net") ?obs ~config:net_config () in
  let sites =
    Array.mapi
      (fun i spec ->
        let site = Site.of_int i in
        let db = Database.create ~site in
        let ltm = Ltm.create ~engine ~db ~config:spec.ltm_config ~trace ?obs () in
        let agent =
          Agent.create ~site ~engine ~ltm ~net ~trace ?obs ~termination:crash_coordinators
            ~config:certifier ()
        in
        Agent.attach agent;
        let injector =
          Failure.attach ~engine
            ~rng:(Rng.split rng ~label:(Fmt.str "failure-%d" i))
            ~config:spec.failure ltm
        in
        let clog = Coordinator_log.create () in
        (* Group commit: one batcher per site, shared by every coordinator
           the site hosts; each flush pays a single force on the site's
           coordinator log. *)
        let batcher =
          if Config.group_commit certifier then
            Some
              (Group_commit.create ~engine ~window:certifier.Config.group_commit_window
                 ~max_batch:certifier.Config.max_batch
                 ~on_force:(fun () -> Coordinator_log.force_tick clog))
          else None
        in
        {
          site;
          db;
          ltm;
          agent;
          clog;
          batcher;
          clock = spec.clock;
          injector;
          sn_seq = 0;
          down = false;
          hosted = [];
        })
      site_specs
  in
  { engine; rng; trace; net; certifier; obs; crash_coordinators; sites; next_gid = 1; submitted = 0 }

let n_sites t = Array.length t.sites
let site_ids t = Array.to_list (Array.map (fun c -> c.site) t.sites)
let ctx t site = t.sites.(Site.to_int site)
let ltm t site = (ctx t site).ltm
let database t site = (ctx t site).db
let agent t site = (ctx t site).agent
let coordinator_log t site = (ctx t site).clog
let injector t site = (ctx t site).injector
let network t = t.net
let trace t = t.trace
let submitted t = t.submitted

(* Serial number generation at a site: drifting clock reading + site id +
   per-site sequence (uniqueness even within one tick). *)
let sn_gen t site () =
  let c = ctx t site in
  c.sn_seq <- c.sn_seq + 1;
  Sn.make ~ts:(Clock.read c.clock ~real:(Engine.now t.engine)) ~site:c.site ~seq:c.sn_seq

let submit ?gate t program ~on_done =
  let gid = t.next_gid in
  t.next_gid <- t.next_gid + 1;
  t.submitted <- t.submitted + 1;
  let coord_site =
    match Program.sites program with s :: _ -> s | [] -> assert false (* Program.make forbids [] *)
  in
  let c = ctx t coord_site in
  let coord =
    Coordinator.start ?gate ?obs:t.obs ~log:c.clog ?batcher:c.batcher ~gid ~site:coord_site
      ~engine:t.engine
      ~net:t.net ~trace:t.trace ~config:t.certifier ~sn_gen:(sn_gen t coord_site) ~program
      ~on_done ()
  in
  c.hosted <- coord :: c.hosted;
  gid

(* A site crash: the collective unilateral abort of every live transaction
   at the site plus loss of all volatile agent state, followed by recovery
   from the Agent log.

   With [reboot_delay = 0] (the default, the paper's idealization) the
   reboot is atomic, so no message ever finds the site's handler missing.
   A positive [reboot_delay] keeps the site genuinely down for that many
   ticks: the network counts deliveries to it as drops, and recovery runs
   when it comes back up — the coordinators' retransmissions then carry
   the decisions across the outage.

   With [crash_coordinators] the crash also takes down every coordinator
   the site hosts: their volatile 2PC state is lost and their addresses
   go dark for the outage; at reboot each one rebuilds from the site's
   {!Coordinator_log} — re-driving a logged decision, presuming abort
   otherwise. The snapshot of hosted coordinators is taken at crash time
   so rounds submitted during the outage are untouched by the reboot. *)
let crash_site ?(reboot_delay = 0) t site =
  let c = ctx t site in
  let coords = if t.crash_coordinators then c.hosted else [] in
  if not c.down then
    if reboot_delay <= 0 then begin
      List.iter Coordinator.crash coords;
      Agent.crash c.agent;
      Agent.recover c.agent;
      List.iter Coordinator.recover coords
    end
    else begin
      c.down <- true;
      List.iter
        (fun co ->
          Coordinator.crash co;
          Network.mark_down t.net (Hermes_net.Message.Coordinator (Coordinator.gid co)))
        coords;
      Agent.crash c.agent;
      Network.mark_down t.net (Hermes_net.Message.Agent site);
      Engine.schedule_unit t.engine ~delay:reboot_delay (fun () ->
          Network.mark_up t.net (Hermes_net.Message.Agent site);
          c.down <- false;
          Agent.recover c.agent;
          List.iter
            (fun co ->
              Network.mark_up t.net (Hermes_net.Message.Coordinator (Coordinator.gid co));
              Coordinator.recover co)
            coords)
    end

(* Load a row directly into a site's database (initial state, written by
   the hypothetical initializing transaction T_0). *)
let load t site ~table ~key ~value =
  ignore (Database.write (database t site) ~table ~key (Hermes_store.Row.initial value))

let history t = Trace.history t.trace

(* Aggregate statistics across sites, for the harness. *)
type totals = {
  ltm_committed : int;
  ltm_aborted : int;
  unilateral_aborts : int;
  lock_timeouts : int;
  deadlock_victims : int;
  prepared : int;
  refused_extension : int;
  refused_interval : int;
  refused_dead : int;
  resubmissions : int;
  commit_retries : int;
  dlu_denials : int;
  agent_log_forces : int;
  coord_log_forces : int;
  gc_flushes : int;
  gc_staged : int;
}

let totals t =
  Array.fold_left
    (fun acc c ->
      let ls = Ltm.stats c.ltm in
      let ags = Agent.stats c.agent in
      {
        ltm_committed = acc.ltm_committed + ls.Ltm.committed;
        ltm_aborted = acc.ltm_aborted + ls.Ltm.aborted;
        unilateral_aborts = acc.unilateral_aborts + ls.Ltm.unilateral_aborts;
        lock_timeouts = acc.lock_timeouts + ls.Ltm.lock_timeouts;
        deadlock_victims = acc.deadlock_victims + ls.Ltm.deadlock_victims;
        prepared = acc.prepared + ags.Agent.prepared;
        refused_extension = acc.refused_extension + ags.Agent.refused_extension;
        refused_interval = acc.refused_interval + ags.Agent.refused_interval;
        refused_dead = acc.refused_dead + ags.Agent.refused_dead;
        resubmissions = acc.resubmissions + ags.Agent.resubmissions;
        commit_retries = acc.commit_retries + ags.Agent.commit_retries;
        dlu_denials = acc.dlu_denials + Hermes_ltm.Bound.denials (Ltm.bound_registry c.ltm);
        agent_log_forces = acc.agent_log_forces + Agent_log.force_writes (Agent.agent_log c.agent);
        coord_log_forces = acc.coord_log_forces + Coordinator_log.force_writes c.clog;
        gc_flushes =
          (acc.gc_flushes
          + match c.batcher with Some b -> Group_commit.flushes b | None -> 0);
        gc_staged =
          (acc.gc_staged
          + match c.batcher with Some b -> Group_commit.staged_total b | None -> 0);
      })
    {
      ltm_committed = 0;
      ltm_aborted = 0;
      unilateral_aborts = 0;
      lock_timeouts = 0;
      deadlock_victims = 0;
      prepared = 0;
      refused_extension = 0;
      refused_interval = 0;
      refused_dead = 0;
      resubmissions = 0;
      commit_retries = 0;
      dlu_denials = 0;
      agent_log_forces = 0;
      coord_log_forces = 0;
      gc_flushes = 0;
      gc_staged = 0;
    }
    t.sites

(* End-of-run export: fold the per-site LTM/agent/DLU counters and the
   network totals into a metrics registry, one (name, site) series each.
   Counters are get-or-create, so repeated exports into a shared registry
   (e.g. one registry across a seed sweep) accumulate. *)
let export_metrics t reg =
  let c ~site name v = if v <> 0 then Registry.Counter.add (Registry.counter reg ~site name) v in
  Array.iter
    (fun ctx ->
      let site = ctx.site in
      let ls = Ltm.stats ctx.ltm in
      c ~site "ltm.committed" ls.Ltm.committed;
      c ~site "ltm.aborted" ls.Ltm.aborted;
      c ~site "ltm.unilateral_aborts" ls.Ltm.unilateral_aborts;
      c ~site "ltm.lock_timeouts" ls.Ltm.lock_timeouts;
      c ~site "ltm.deadlock_victims" ls.Ltm.deadlock_victims;
      let ags = Agent.stats ctx.agent in
      c ~site "agent.prepared" ags.Agent.prepared;
      c ~site "agent.refused_extension" ags.Agent.refused_extension;
      c ~site "agent.refused_interval" ags.Agent.refused_interval;
      c ~site "agent.refused_dead" ags.Agent.refused_dead;
      c ~site "agent.resubmissions" ags.Agent.resubmissions;
      c ~site "agent.commit_retries" ags.Agent.commit_retries;
      c ~site "agent.local_commits" ags.Agent.local_commits;
      c ~site "agent.rollbacks" ags.Agent.rollbacks;
      c ~site "agent.crashes" ags.Agent.crashes;
      c ~site "agent.recovered" ags.Agent.recovered;
      (* only meaningful — and only exported — when coordinator crashes
         are on, so PR 3-era metric dumps stay byte-identical *)
      if t.crash_coordinators then
        c ~site "coord.log_force_writes" (Coordinator_log.force_writes ctx.clog);
      (* group-commit force accounting — only exported when batching is
         on, so earlier metric dumps stay byte-identical *)
      if Config.group_commit t.certifier then begin
        c ~site "agent.log_force_writes" (Agent_log.force_writes (Agent.agent_log ctx.agent));
        if not t.crash_coordinators then
          c ~site "coord.log_force_writes" (Coordinator_log.force_writes ctx.clog);
        match ctx.batcher with
        | Some b ->
            c ~site "gc.flushes" (Group_commit.flushes b);
            c ~site "gc.staged" (Group_commit.staged_total b)
        | None -> ()
      end;
      c ~site "dlu.denials" (Hermes_ltm.Bound.denials (Ltm.bound_registry ctx.ltm)))
    t.sites;
  let add name v = if v <> 0 then Registry.Counter.add (Registry.counter reg name) v in
  add "net.sent" (Network.sent t.net);
  add "net.delivered" (Network.delivered t.net);
  add "net.dropped" (Network.dropped t.net);
  add "net.duplicated" (Network.duplicated t.net)

(* The assembled Distributed Transaction Manager: per-site LDBS (database
   + LTM + failure injector + 2PC Agent) and a coordinator factory. This
   is the "totally decentralized" architecture of Fig. 1 — the only shared
   pieces here are simulation infrastructure (engine, network, trace), not
   protocol state.

   The coordinating site of a global transaction is its first
   participant; serial numbers are stamped by that site's (possibly
   drifting) clock plus a per-site sequence counter, exactly the
   clock-and-site-id scheme of §5.2. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Database = Hermes_store.Database
module Ltm = Hermes_ltm.Ltm
module Failure = Hermes_ltm.Failure
module Trace = Hermes_ltm.Trace
module Network = Hermes_net.Network
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry
module Shard_map = Hermes_placement.Shard_map
module Agent_sm = Hermes_protocol.Agent_sm

type site_spec = {
  ltm_config : Hermes_ltm.Ltm_config.t;
  clock : Clock.t;
  failure : Failure.config;
}

let default_site_spec =
  { ltm_config = Hermes_ltm.Ltm_config.default; clock = Clock.perfect; failure = Failure.disabled }

type site_ctx = {
  site : Site.t;
  engine : Engine.t;  (* the engine this site's components schedule on *)
  net : Network.t;  (* the network instance this site sends through *)
  strace : Trace.t;  (* the trace this site's components record into *)
  sobs : Obs.t option;
  db : Database.t;
  ltm : Ltm.t;
  agent : Agent.t;
  clog : Coordinator_log.t;  (* the site's stable coordinator log *)
  acceptors : Acceptor.t option;
      (* host for the decision-register acceptors placed at this site;
         present only under a replicated commit protocol *)
  batcher : Group_commit.t option;  (* the site's shared group-commit batcher *)
  clock : Clock.t;
  injector : Failure.t;
  mutable sn_seq : int;
  mutable down : bool;  (* crashed, reboot pending *)
  mutable hosted : Coordinator.t list;  (* coordinators this site ever hosted, newest first *)
  mutable gid_ctr : int;  (* sharded mode: per-site strided gid counter *)
  mutable submitted : int;
}

type t = {
  engine : Engine.t;  (* legacy: the shared engine; sharded: site 0's *)
  rng : Rng.t;
  trace : Trace.t;  (* legacy: the shared trace; sharded: site 0's *)
  net : Network.t;
  certifier : Config.t;
  obs : Obs.t option;
  crash_coordinators : bool;
      (* [crash_site] also crashes the site's coordinators (and the
         agents run the termination protocol); off by default so earlier
         fault scenarios replay byte-identically *)
  sharded : bool;
      (* one engine/network/trace per site (each site on its own domain):
         gids are strided so the hosting shard is computable from the
         address, and the omniscient history is a merge *)
  gray_sites : int list;
      (* sites whose links the network slows by [gray_factor] (copied
         from the net config): coordinators they host are gray-marked at
         [submit] so their decision traffic crawls too *)
  sites : site_ctx array;
  placement : Shard_map.t ref;
      (* the installed shard map; agents sample its epoch per input and
         coordinators stamp it on BEGIN/EXEC, so a [reconfigure] turns
         every in-flight stale-epoch message into a WRONG-EPOCH refusal *)
  shard_gids : (int, int list) Hashtbl.t;
      (* in-flight gid -> shards it touches (when [submit] was told);
         lets [reconfigure] hand over only the moved shard's state *)
  foreign : (int, Site.t) Hashtbl.t;
      (* gid -> gainer sites holding adopted (foreign) alive-table
         entries for it; released when the gid's decision lands *)
  mutable next_gid : int;
}

(* Assemble one site's LDBS on the given engine/network/trace handles.
   In the legacy (single-engine) mode every site gets the same shared
   handles; in sharded mode each site gets its own. *)
let make_ctx ~engine ~net ~trace ~obs ~rng ~certifier ~crash_coordinators ~epoch i spec =
  let site = Site.of_int i in
  let db = Database.create ~site in
  let ltm = Ltm.create ~engine ~db ~config:spec.ltm_config ~trace ?obs () in
  let agent =
    Agent.create ~site ~engine ~ltm ~net ~trace ?obs ~termination:crash_coordinators ~epoch
      ~config:certifier ()
  in
  Agent.attach agent;
  let injector =
    Failure.attach ~engine
      ~rng:(Rng.split rng ~label:(Fmt.str "failure-%d" i))
      ~config:spec.failure ltm
  in
  let clog = Coordinator_log.create () in
  let acceptors =
    if Config.n_acceptors certifier > 0 then
      Some (Acceptor.create ~site ~engine ~net ?obs ~config:certifier ())
    else None
  in
  (* Group commit: one batcher per site, shared by every coordinator
     the site hosts; each flush pays a single force on the site's
     coordinator log. *)
  let batcher =
    if Config.group_commit certifier then
      Some
        (Group_commit.create ~engine ~window:certifier.Config.group_commit_window
           ~max_batch:certifier.Config.max_batch
           ~on_force:(fun () -> Coordinator_log.force_tick clog))
    else None
  in
  {
    site;
    engine;
    net;
    strace = trace;
    sobs = obs;
    db;
    ltm;
    agent;
    clog;
    acceptors;
    batcher;
    clock = spec.clock;
    injector;
    sn_seq = 0;
    down = false;
    hosted = [];
    gid_ctr = 0;
    submitted = 0;
  }

let create ~engine ~rng ~trace ~net_config ~certifier ?obs ?(crash_coordinators = false) ?n_shards
    ~site_specs () =
  let net = Network.create ~engine ~rng:(Rng.split rng ~label:"net") ?obs ~config:net_config () in
  let placement = ref (Shard_map.static ?n_shards ~n_sites:(Array.length site_specs) ()) in
  let epoch () = Shard_map.epoch !placement in
  let sites =
    Array.mapi
      (fun i spec ->
        make_ctx ~engine ~net ~trace ~obs ~rng ~certifier ~crash_coordinators ~epoch i spec)
      site_specs
  in
  {
    engine;
    rng;
    trace;
    net;
    certifier;
    obs;
    crash_coordinators;
    sharded = false;
    gray_sites = net_config.Network.faults.Network.gray_sites;
    sites;
    placement;
    shard_gids = Hashtbl.create 64;
    foreign = Hashtbl.create 16;
    next_gid = 1;
  }

(* Address-to-shard routing for sharded mode. Agents live at their site;
   a coordinator's hosting site is recoverable from its gid because
   [submit] strides gid allocation: site [s] allocates gids
   [s + 1, s + 1 + n, s + 1 + 2n, ...]. *)
let locate ~n_sites = function
  | Hermes_net.Message.Agent s -> Site.to_int s
  | Hermes_net.Message.Coordinator gid -> (gid - 1) mod n_sites
  | Hermes_net.Message.Acceptor { gid; idx } ->
      (* acceptor idx of gid's register is strided one past the leader's
         site; unreachable today (replicated protocols are sequential-
         engine only) but kept consistent with [submit]'s placement *)
      (gid + idx) mod n_sites

let create_sharded ~engines ~rng ~net_config ~certifier ?obs_of ?(crash_coordinators = false)
    ~fabric_of ~site_specs () =
  let n = Array.length site_specs in
  if Array.length engines <> n then
    invalid_arg "Dtm.create_sharded: one engine per site required";
  if Config.n_acceptors certifier > 0 then
    invalid_arg "Dtm.create_sharded: replicated commit protocols run on the sequential engine only";
  (* Sharded mode runs on the static epoch-0 map: online reconfiguration
     is sequential-engine only (cross-domain handover would need a stop-
     the-world barrier), so the epoch getter is constant. *)
  let placement = ref (Shard_map.static ~n_sites:n ()) in
  let epoch () = 0 in
  let sites =
    Array.mapi
      (fun i spec ->
        let obs = match obs_of with Some f -> f i | None -> None in
        let net =
          Network.create ~engine:engines.(i)
            ~rng:(Rng.split rng ~label:(Fmt.str "net-%d" i))
            ?obs ~fabric:(fabric_of i) ~config:net_config ()
        in
        let trace = Trace.create () in
        make_ctx ~engine:engines.(i) ~net ~trace ~obs ~rng ~certifier ~crash_coordinators ~epoch i
          spec)
      site_specs
  in
  {
    engine = sites.(0).engine;
    rng;
    trace = sites.(0).strace;
    net = sites.(0).net;
    certifier;
    obs = (match obs_of with Some f -> f 0 | None -> None);
    crash_coordinators;
    sharded = true;
    gray_sites = net_config.Network.faults.Network.gray_sites;
    sites;
    placement;
    shard_gids = Hashtbl.create 1;
    foreign = Hashtbl.create 1;
    next_gid = 1;
  }

let n_sites t = Array.length t.sites
let site_ids t = Array.to_list (Array.map (fun c -> c.site) t.sites)
let ctx t site = t.sites.(Site.to_int site)
let ltm t site = (ctx t site).ltm
let database t site = (ctx t site).db
let agent t site = (ctx t site).agent
let coordinator_log t site = (ctx t site).clog
let injector t site = (ctx t site).injector
let network t = t.net
let networks t =
  if t.sharded then Array.to_list (Array.map (fun (c : site_ctx) -> c.net) t.sites)
  else [ t.net ]
let trace t = t.trace
let submitted t = Array.fold_left (fun acc c -> acc + c.submitted) 0 t.sites
let placement t = !(t.placement)

(* Serial number generation at a site: drifting clock reading + site id +
   per-site sequence (uniqueness even within one tick). *)
let sn_gen t site () =
  let c = ctx t site in
  c.sn_seq <- c.sn_seq + 1;
  Sn.make ~ts:(Clock.read c.clock ~real:(Engine.now c.engine)) ~site:c.site ~seq:c.sn_seq

(* The stale-clock adversary: even-gid coordinators draw their serial
   numbers [sn_drift] ticks in the past, slotting the commit below serial
   numbers other sites may already have released. With [sn_drift = 0]
   this is [sn_gen] itself — no wrapper, no perturbation. *)
let adversarial_sn_gen t site ~gid =
  let drift = t.certifier.Config.adversary.Config.sn_drift in
  if drift > 0 && gid mod 2 = 0 then fun () ->
    let sn = sn_gen t site () in
    Sn.make ~ts:(Time.of_int (max 0 (Time.to_int sn.Sn.ts - drift))) ~site:sn.Sn.site ~seq:sn.Sn.seq
  else sn_gen t site

let submit ?gate ?shards t program ~on_done =
  let coord_site =
    match Program.sites program with s :: _ -> s | [] -> assert false (* Program.make forbids [] *)
  in
  let c = ctx t coord_site in
  let gid =
    if t.sharded then begin
      (* Strided: site s allocates s+1, s+1+n, s+1+2n, ... so [locate]
         can route Coordinator addresses without shared state. Only the
         coordinating site's domain touches its own counter. *)
      let g = Site.to_int coord_site + 1 + (Array.length t.sites * c.gid_ctr) in
      c.gid_ctr <- c.gid_ctr + 1;
      g
    end
    else begin
      let g = t.next_gid in
      t.next_gid <- t.next_gid + 1;
      g
    end
  in
  c.submitted <- c.submitted + 1;
  (* Replicated commit: bring up the round's decision register before
     the leader starts — the network fails fast on a send to an
     unregistered address, so every acceptor must exist before the
     leader's first PX-ACCEPT can race it. *)
  let n_acc = Config.n_acceptors t.certifier in
  for idx = 0 to n_acc - 1 do
    let host = t.sites.((gid + idx) mod Array.length t.sites) in
    match host.acceptors with
    | Some a -> Acceptor.host a ~gid ~idx
    | None -> assert false (* every site has a host when the protocol is replicated *)
  done;
  (* Placement bookkeeping — sequential engine only (the hashtables are
     shared, and reconfiguration is rejected in sharded mode anyway). *)
  let on_done =
    if t.sharded then on_done
    else begin
      (match shards with Some ss -> Hashtbl.replace t.shard_gids gid ss | None -> ());
      fun outcome ->
        Hashtbl.remove t.shard_gids gid;
        (match Hashtbl.find_all t.foreign gid with
        | [] -> ()
        | gainers ->
            (* the decision landed: the gainer's adopted entries for this
               gid stop gating certification *)
            List.iter (fun s -> Agent.drop_foreign t.sites.(Site.to_int s).agent ~gid) gainers;
            while Hashtbl.mem t.foreign gid do
              Hashtbl.remove t.foreign gid
            done);
        on_done outcome
    end
  in
  (* Gray coordinator: a coordinator hosted at a gray site inherits the
     site's slow links — its address carries no site id, so the network
     is told explicitly, before the first message leaves. *)
  if List.mem (Site.to_int coord_site) t.gray_sites then
    Network.mark_gray c.net (Hermes_net.Message.Coordinator gid);
  let coord =
    Coordinator.start ?gate ?obs:c.sobs ~log:c.clog ?batcher:c.batcher ~gid ~site:coord_site
      ~engine:c.engine ~net:c.net ~trace:c.strace ~config:t.certifier
      ~epoch:(Shard_map.epoch !(t.placement))
      ~sn_gen:(adversarial_sn_gen t coord_site ~gid)
      ~program ~on_done ()
  in
  c.hosted <- coord :: c.hosted;
  gid

(* Online reconfiguration: move [shard] to [to_] in a new placement
   epoch. Before the new map is installed the losing site hands the moved
   shard's prepared certification state (serial number + current alive
   interval per in-flight gid) to the gainer, which adopts it as
   [foreign] entries — they gate interval-intersection and min-SN
   certification at the gainer exactly like native prepared work, so a
   commit certified under the new epoch still observes transactions
   prepared under the old one (invariant I6(b)). In-flight rounds stamped
   with the old epoch get WRONG-EPOCH refusals and abort; the workload
   driver re-resolves through the new map on resubmission. *)
let reconfigure t ~shard ~to_ =
  if t.sharded then
    invalid_arg "Dtm.reconfigure: online reconfiguration runs on the sequential engine only";
  let map = !(t.placement) in
  let from = Shard_map.owner map ~shard in
  if not (Site.equal from to_) then begin
    let loser = (ctx t from).agent in
    (* Hand over every in-flight gid recorded as touching the moved
       shard; a gid [submit] was not told about is included
       conservatively — over-transfer only costs precision, while a
       missed entry would let the gainer certify blind. *)
    let touches_shard gid =
      match Hashtbl.find_opt t.shard_gids gid with
      | Some shards -> List.mem shard shards
      | None -> true
    in
    let gids =
      Alive_table.entries (Agent.alive_table loser)
      |> List.filter_map (fun e ->
             if touches_shard e.Alive_table.gid then Some e.Alive_table.gid else None)
      |> List.sort compare
    in
    let entries = Agent.export_handover loser ~gids in
    Agent.adopt_handover (ctx t to_).agent entries;
    List.iter (fun (h : Agent_sm.handover_entry) -> Hashtbl.add t.foreign h.h_gid to_) entries;
    (* install only after the handover: the first message the gainer
       serves under the new epoch already sees the adopted intervals *)
    t.placement := Shard_map.move map ~shard ~to_
  end

(* Site churn: a site joins (or rejoins) the serving set, owning nothing
   until a [reconfigure] moves shards onto it. Installing the new epoch is
   enough — there is no state to hand over. *)
let join t ~site =
  if t.sharded then invalid_arg "Dtm.join: online reconfiguration runs on the sequential engine only";
  t.placement := Shard_map.add_site !(t.placement) ~site

(* A site leaves the serving set: its shards redistribute round-robin
   over the survivors ({!Shard_map.remove_site}), and — exactly like a
   [reconfigure] — each gainer adopts the leaver's prepared certification
   state for the shards it inherits before the new epoch serves traffic.
   In-flight rounds stamped with the old epoch get WRONG-EPOCH refusals
   and re-resolve through the new map. *)
let leave t ~site =
  if t.sharded then
    invalid_arg "Dtm.leave: online reconfiguration runs on the sequential engine only";
  let map = !(t.placement) in
  let next = Shard_map.remove_site map ~site in
  let loser = (ctx t site).agent in
  let touches_shard shard gid =
    match Hashtbl.find_opt t.shard_gids gid with
    | Some shards -> List.mem shard shards
    | None -> true
  in
  List.iter
    (fun shard ->
      let to_ = Shard_map.owner next ~shard in
      let gids =
        Alive_table.entries (Agent.alive_table loser)
        |> List.filter_map (fun e ->
               if touches_shard shard e.Alive_table.gid then Some e.Alive_table.gid else None)
        |> List.sort compare
      in
      let entries = Agent.export_handover loser ~gids in
      Agent.adopt_handover (ctx t to_).agent entries;
      List.iter
        (fun (h : Agent_sm.handover_entry) ->
          if not (List.mem to_ (Hashtbl.find_all t.foreign h.h_gid)) then
            Hashtbl.add t.foreign h.h_gid to_)
        entries)
    (Shard_map.shards_of map ~site);
  t.placement := next

(* A site crash: the collective unilateral abort of every live transaction
   at the site plus loss of all volatile agent state, followed by recovery
   from the Agent log.

   With [reboot_delay = 0] (the default, the paper's idealization) the
   reboot is atomic, so no message ever finds the site's handler missing.
   A positive [reboot_delay] keeps the site genuinely down for that many
   ticks: the network counts deliveries to it as drops, and recovery runs
   when it comes back up — the coordinators' retransmissions then carry
   the decisions across the outage.

   With [crash_coordinators] the crash also takes down every coordinator
   the site hosts: their volatile 2PC state is lost and their addresses
   go dark for the outage; at reboot each one rebuilds from the site's
   {!Coordinator_log} — re-driving a logged decision, presuming abort
   otherwise. The snapshot of hosted coordinators is taken at crash time
   so rounds submitted during the outage are untouched by the reboot. *)
let crash_site ?(reboot_delay = 0) t site =
  let c = ctx t site in
  let coords = if t.crash_coordinators then c.hosted else [] in
  if not c.down then
    if reboot_delay <= 0 then begin
      List.iter Coordinator.crash coords;
      Agent.crash c.agent;
      (* hosted acceptors lose their volatile state too and replay from
         their force-written log — before the coordinators recover, so a
         rebooting leader's register inquiry finds them consistent *)
      (match c.acceptors with
      | Some a ->
          Acceptor.crash a;
          Acceptor.recover a
      | None -> ());
      Agent.recover c.agent;
      List.iter Coordinator.recover coords
    end
    else begin
      (* Down-ness is destination-side state, so it lives on the crashed
         site's own network instance — in sharded mode that is exactly
         where every delivery to this site's agent and hosted
         coordinators is scheduled. *)
      c.down <- true;
      List.iter
        (fun co ->
          Coordinator.crash co;
          Network.mark_down c.net (Hermes_net.Message.Coordinator (Coordinator.gid co)))
        coords;
      Agent.crash c.agent;
      Network.mark_down c.net (Hermes_net.Message.Agent site);
      (match c.acceptors with
      | Some a ->
          Acceptor.crash a;
          List.iter (Network.mark_down c.net) (Acceptor.addresses a)
      | None -> ());
      Engine.schedule_unit c.engine ~delay:reboot_delay (fun () ->
          Network.mark_up c.net (Hermes_net.Message.Agent site);
          c.down <- false;
          (match c.acceptors with
          | Some a ->
              List.iter (Network.mark_up c.net) (Acceptor.addresses a);
              Acceptor.recover a
          | None -> ());
          Agent.recover c.agent;
          List.iter
            (fun co ->
              Network.mark_up c.net (Hermes_net.Message.Coordinator (Coordinator.gid co));
              Coordinator.recover co)
            coords)
    end

(* Load a row directly into a site's database (initial state, written by
   the hypothetical initializing transaction T_0). *)
let load t site ~table ~key ~value =
  ignore (Database.write (database t site) ~table ~key (Hermes_store.Row.initial value))

let history t =
  if t.sharded then Trace.merged (Array.to_list (Array.map (fun c -> c.strace) t.sites))
  else Trace.history t.trace

(* Aggregate statistics across sites, for the harness. *)
type totals = {
  ltm_committed : int;
  ltm_aborted : int;
  unilateral_aborts : int;
  lock_timeouts : int;
  deadlock_victims : int;
  prepared : int;
  refused_extension : int;
  refused_interval : int;
  refused_dead : int;
  refused_epoch : int;
  refused_drift : int;
  resubmissions : int;
  commit_retries : int;
  dlu_denials : int;
  agent_log_forces : int;
  coord_log_forces : int;
  gc_flushes : int;
  gc_staged : int;
}

let totals t =
  Array.fold_left
    (fun acc c ->
      let ls = Ltm.stats c.ltm in
      let ags = Agent.stats c.agent in
      {
        ltm_committed = acc.ltm_committed + ls.Ltm.committed;
        ltm_aborted = acc.ltm_aborted + ls.Ltm.aborted;
        unilateral_aborts = acc.unilateral_aborts + ls.Ltm.unilateral_aborts;
        lock_timeouts = acc.lock_timeouts + ls.Ltm.lock_timeouts;
        deadlock_victims = acc.deadlock_victims + ls.Ltm.deadlock_victims;
        prepared = acc.prepared + ags.Agent.prepared;
        refused_extension = acc.refused_extension + ags.Agent.refused_extension;
        refused_interval = acc.refused_interval + ags.Agent.refused_interval;
        refused_dead = acc.refused_dead + ags.Agent.refused_dead;
        refused_epoch = acc.refused_epoch + ags.Agent.refused_epoch;
        refused_drift = acc.refused_drift + ags.Agent.refused_drift;
        resubmissions = acc.resubmissions + ags.Agent.resubmissions;
        commit_retries = acc.commit_retries + ags.Agent.commit_retries;
        dlu_denials = acc.dlu_denials + Hermes_ltm.Bound.denials (Ltm.bound_registry c.ltm);
        agent_log_forces = acc.agent_log_forces + Agent_log.force_writes (Agent.agent_log c.agent);
        coord_log_forces = acc.coord_log_forces + Coordinator_log.force_writes c.clog;
        gc_flushes =
          (acc.gc_flushes
          + match c.batcher with Some b -> Group_commit.flushes b | None -> 0);
        gc_staged =
          (acc.gc_staged
          + match c.batcher with Some b -> Group_commit.staged_total b | None -> 0);
      })
    {
      ltm_committed = 0;
      ltm_aborted = 0;
      unilateral_aborts = 0;
      lock_timeouts = 0;
      deadlock_victims = 0;
      prepared = 0;
      refused_extension = 0;
      refused_interval = 0;
      refused_dead = 0;
      refused_epoch = 0;
      refused_drift = 0;
      resubmissions = 0;
      commit_retries = 0;
      dlu_denials = 0;
      agent_log_forces = 0;
      coord_log_forces = 0;
      gc_flushes = 0;
      gc_staged = 0;
    }
    t.sites

(* End-of-run export: fold the per-site LTM/agent/DLU counters and the
   network totals into a metrics registry, one (name, site) series each.
   Counters are get-or-create, so repeated exports into a shared registry
   (e.g. one registry across a seed sweep) accumulate. *)
let export_metrics t reg =
  let c ~site name v = if v <> 0 then Registry.Counter.add (Registry.counter reg ~site name) v in
  Array.iter
    (fun ctx ->
      let site = ctx.site in
      let ls = Ltm.stats ctx.ltm in
      c ~site "ltm.committed" ls.Ltm.committed;
      c ~site "ltm.aborted" ls.Ltm.aborted;
      c ~site "ltm.unilateral_aborts" ls.Ltm.unilateral_aborts;
      c ~site "ltm.lock_timeouts" ls.Ltm.lock_timeouts;
      c ~site "ltm.deadlock_victims" ls.Ltm.deadlock_victims;
      let ags = Agent.stats ctx.agent in
      c ~site "agent.prepared" ags.Agent.prepared;
      c ~site "agent.refused_extension" ags.Agent.refused_extension;
      c ~site "agent.refused_interval" ags.Agent.refused_interval;
      c ~site "agent.refused_dead" ags.Agent.refused_dead;
      (* zero-skipped, so runs on the static map stay byte-identical *)
      c ~site "agent.refused_epoch" ags.Agent.refused_epoch;
      (* zero-skipped likewise: nonzero only under [sn_drift_rejection] *)
      c ~site "agent.refused_drift" ags.Agent.refused_drift;
      c ~site "agent.resubmissions" ags.Agent.resubmissions;
      c ~site "agent.commit_retries" ags.Agent.commit_retries;
      c ~site "agent.local_commits" ags.Agent.local_commits;
      c ~site "agent.rollbacks" ags.Agent.rollbacks;
      c ~site "agent.crashes" ags.Agent.crashes;
      c ~site "agent.recovered" ags.Agent.recovered;
      (* only meaningful — and only exported — when coordinator crashes
         are on, so PR 3-era metric dumps stay byte-identical *)
      if t.crash_coordinators then
        c ~site "coord.log_force_writes" (Coordinator_log.force_writes ctx.clog);
      (* group-commit force accounting — only exported when batching is
         on, so earlier metric dumps stay byte-identical *)
      if Config.group_commit t.certifier then begin
        c ~site "agent.log_force_writes" (Agent_log.force_writes (Agent.agent_log ctx.agent));
        if not t.crash_coordinators then
          c ~site "coord.log_force_writes" (Coordinator_log.force_writes ctx.clog);
        match ctx.batcher with
        | Some b ->
            c ~site "gc.flushes" (Group_commit.flushes b);
            c ~site "gc.staged" (Group_commit.staged_total b)
        | None -> ()
      end;
      c ~site "dlu.denials" (Hermes_ltm.Bound.denials (Ltm.bound_registry ctx.ltm)))
    t.sites;
  let add name v = if v <> 0 then Registry.Counter.add (Registry.counter reg name) v in
  let sum f = List.fold_left (fun acc net -> acc + f net) 0 (networks t) in
  add "net.sent" (sum Network.sent);
  add "net.delivered" (sum Network.delivered);
  add "net.dropped" (sum Network.dropped);
  add "net.duplicated" (sum Network.duplicated)

(** The assembled Distributed Transaction Manager (Fig. 1): per-site LDBS
    (database + rigorous LTM + failure injector + 2PC Agent) and a
    coordinator factory. Fully decentralized — the only shared pieces are
    simulation infrastructure. *)

open Hermes_kernel

type site_spec = {
  ltm_config : Hermes_ltm.Ltm_config.t;
  clock : Clock.t;  (** drives this site's serial numbers when it coordinates *)
  failure : Hermes_ltm.Failure.config;
}

val default_site_spec : site_spec

type t

val create :
  engine:Hermes_sim.Engine.t ->
  rng:Rng.t ->
  trace:Hermes_ltm.Trace.t ->
  net_config:Hermes_net.Network.config ->
  certifier:Config.t ->
  ?obs:Hermes_obs.Obs.t ->
  ?crash_coordinators:bool ->
  ?n_shards:int ->
  site_specs:site_spec array ->
  unit ->
  t
(** Site [i] of the array becomes {!Site.of_int}[ i]. [?obs] is threaded
    into every component — agents, LTMs, the network, coordinators — so
    their decision points emit trace events and record histograms.

    [?crash_coordinators] (default [false]) makes {!crash_site} also
    crash the coordinators hosted at the site — they reboot from the
    site's {!Coordinator_log} — and enables the agents' in-doubt
    termination protocol (DECISION-REQ inquiries and in-doubt metrics).
    Off, runs are byte-identical to earlier revisions.

    [?n_shards] sizes the initial {!Hermes_placement.Shard_map.static}
    placement (default: one shard per site, shard [i] at site [i]) —
    epoch 0, under which every message passes the epoch check and runs
    replay byte-identically with earlier revisions. *)

val create_sharded :
  engines:Hermes_sim.Engine.t array ->
  rng:Rng.t ->
  net_config:Hermes_net.Network.config ->
  certifier:Config.t ->
  ?obs_of:(int -> Hermes_obs.Obs.t option) ->
  ?crash_coordinators:bool ->
  fabric_of:(int -> Hermes_net.Network.fabric) ->
  site_specs:site_spec array ->
  unit ->
  t
(** Sharded assembly for the parallel execution engine: one engine,
    network instance, trace and (via [obs_of]) observability context per
    site, so each site can run on its own domain. [fabric_of i] wires
    site [i]'s network into the cross-shard inboxes. Gid allocation is
    strided per coordinating site (see {!locate}), so {!submit} touches
    only that site's state and may be called from its domain. The
    omniscient {!history} is the deterministic merge of the per-site
    traces. Construction itself is single-threaded. *)

val locate : n_sites:int -> Hermes_net.Message.address -> int
(** The shard owning an address under {!create_sharded}: an agent lives
    at its site; a coordinator's hosting site is [(gid - 1) mod n_sites]
    by the strided gid allocation. *)

val n_sites : t -> int
val site_ids : t -> Site.t list
val ltm : t -> Site.t -> Hermes_ltm.Ltm.t
val database : t -> Site.t -> Hermes_store.Database.t
val agent : t -> Site.t -> Agent.t

val coordinator_log : t -> Site.t -> Coordinator_log.t
(** The site's stable coordinator log (participant sets and decisions
    force-written by the coordinators the site hosts). *)

val injector : t -> Site.t -> Hermes_ltm.Failure.t

val network : t -> Hermes_net.Network.t
(** The shared network — site 0's instance in sharded mode. *)

val networks : t -> Hermes_net.Network.t list
(** Every network instance: the singleton shared one, or one per site in
    sharded mode (e.g. to sum traffic counters or declare all lossy). *)

val trace : t -> Hermes_ltm.Trace.t
val submitted : t -> int

val placement : t -> Hermes_placement.Shard_map.t
(** The installed shard map. Agents sample its epoch per input and
    coordinators stamp it on BEGIN/EXEC; clients resolve shard-space
    programs through it immediately before each {!submit}. *)

val submit :
  ?gate:Coordinator.gate ->
  ?shards:int list ->
  t ->
  Program.t ->
  on_done:(Coordinator.outcome -> unit) ->
  int
(** Allocate a gid and start a coordinator at the program's first
    participating site. Returns the gid. [?shards] records which shards
    the transaction touches, letting a later {!reconfigure} hand over
    only the moved shard's prepared state; without it the gid is
    conservatively included in every handover. *)

val reconfigure : t -> shard:int -> to_:Site.t -> unit
(** Install {!Hermes_placement.Shard_map.move}[ ~shard ~to_] as a new
    placement epoch. First the losing site exports the moved shard's
    prepared certification state (serial numbers + current alive
    intervals) and the gainer adopts it as foreign alive-table entries —
    conservatively gating certification there until each gid's decision
    lands — then the new map is installed, so the new epoch never serves
    traffic before the handover. Stale-epoch BEGIN/EXEC messages from
    in-flight rounds are refused WRONG-EPOCH and the rounds abort for
    re-resolution. Moving a shard onto its current owner is a no-op
    (the epoch does not advance). Sequential engine only. *)

val join : t -> site:Site.t -> unit
(** Install {!Hermes_placement.Shard_map.add_site} as a new placement
    epoch: [site] (re)joins the serving set, owning nothing until a
    {!reconfigure} moves shards onto it. Raises if already serving.
    Sequential engine only. *)

val leave : t -> site:Site.t -> unit
(** Install {!Hermes_placement.Shard_map.remove_site} as a new placement
    epoch: [site]'s shards redistribute round-robin over the survivors,
    and each gainer first adopts the leaver's prepared certification
    state for the shards it inherits, exactly like a {!reconfigure}
    handover. Raises on the last serving site. Sequential engine only. *)

val load : t -> Site.t -> table:string -> key:int -> value:int -> unit
(** Install an initial row (written by the initializing transaction T_0). *)

val crash_site : ?reboot_delay:int -> t -> Site.t -> unit
(** Site crash: collective abort of every live transaction, loss of all
    volatile agent state, recovery from the Agent log. With
    [reboot_delay = 0] (default) the reboot is instantaneous — the
    paper's idealization. A positive [reboot_delay] keeps the site down
    for that many ticks: the network counts deliveries to it as drops,
    recovery runs when it comes back up, and coordinator retransmissions
    carry the 2PC decisions across the outage. A crash on a site already
    down is ignored.

    When the Dtm was created with [crash_coordinators], the crash also
    takes down every coordinator the site hosts (addresses dark for the
    outage, volatile 2PC state lost); at reboot each rebuilds from the
    site's {!Coordinator_log}, re-driving its logged decision or
    presuming abort. *)

val history : t -> Hermes_history.History.t
(** The trace so far, as a history. *)

(** Aggregate LTM/agent statistics across sites. *)
type totals = {
  ltm_committed : int;
  ltm_aborted : int;
  unilateral_aborts : int;
  lock_timeouts : int;
  deadlock_victims : int;
  prepared : int;
  refused_extension : int;
  refused_interval : int;
  refused_dead : int;
  refused_epoch : int;  (** WRONG-EPOCH refusals of stale-placement BEGIN/EXEC *)
  refused_drift : int;  (** PREPAREs refused by the serial-number staleness bound *)
  resubmissions : int;
  commit_retries : int;
  dlu_denials : int;
  agent_log_forces : int;  (** synchronous Agent-log forces paid, all sites *)
  coord_log_forces : int;  (** synchronous Coordinator-log forces paid, all sites *)
  gc_flushes : int;  (** group-commit batch flushes (0 with batching off) *)
  gc_staged : int;  (** records that went through the coordinator batchers *)
}

val totals : t -> totals

val export_metrics : t -> Hermes_obs.Registry.t -> unit
(** Fold the per-site LTM/agent/DLU counters and network totals into a
    registry as [(name, site)] series — the end-of-run complement of the
    live histograms and trace events. Accumulates on repeated export. *)

(* The per-site group-commit batcher the coordinators share.

   Coordinator machines are per-transaction, so unlike the agent (which
   batches inside its own state machine and emits [Force_batch]), their
   staged records must be coalesced *across* machines to amortize
   anything. Each coordinating site owns one batcher: a [Stage_log]
   effect parks the record's write and the rest of the step's effects
   here; when the batch force-writes — the window timer fires, or the
   fill reaches [max_batch] — every staged record is written, ONE
   synchronous force is paid ([on_force]), and the withheld effects are
   released in staging order.

   Crash semantics are the caller's: the items' closures are expected to
   carry their own epoch guard (see [Coordinator.run_effects]), so a
   coordinator crash turns its staged-but-unforced items into no-ops —
   volatile, exactly like an unforced record should be. *)

module Engine = Hermes_sim.Engine

type item = {
  write : unit -> unit;  (* put the record in the stable log (no force) *)
  release : unit -> unit;  (* run the step's withheld post-force effects *)
}

type t = {
  engine : Engine.t;
  window : int;  (* ticks a staged record may wait for companions *)
  max_batch : int;
  on_force : unit -> unit;  (* pay the batch's one synchronous force *)
  mutable queue : item list;  (* newest first *)
  mutable timer : Engine.timer option;
  mutable flushes : int;  (* batches force-written *)
  mutable staged_total : int;  (* records ever staged (fill statistics) *)
}

let create ~engine ~window ~max_batch ~on_force =
  { engine; window; max_batch; on_force; queue = []; timer = None; flushes = 0; staged_total = 0 }

let pending t = List.length t.queue
let timer_armed t = t.timer <> None
let flushes t = t.flushes
let staged_total t = t.staged_total

let flush t =
  (match t.timer with
  | Some tm ->
      Engine.cancel tm;
      t.timer <- None
  | None -> ());
  match t.queue with
  | [] -> ()
  | q ->
      (* Snapshot-and-clear first: a release may re-enter [stage] (a
         coordinator step released by this flush can immediately stage
         its next record), which then joins a fresh batch. *)
      let items = List.rev q in
      t.queue <- [];
      t.flushes <- t.flushes + 1;
      List.iter (fun i -> i.write ()) items;
      t.on_force ();
      List.iter (fun i -> i.release ()) items

let stage t item =
  t.queue <- item :: t.queue;
  t.staged_total <- t.staged_total + 1;
  if List.length t.queue >= t.max_batch then flush t
  else if t.timer = None then
    t.timer <-
      Some
        (Engine.schedule t.engine ~delay:t.window (fun () ->
             t.timer <- None;
             flush t))

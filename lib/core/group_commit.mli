(** The per-site group-commit batcher the coordinators share.

    A coordinator machine's [Stage_log] effect parks the record's
    (unforced) log write and the rest of the step's effects here; the
    batch force-writes when the window timer fires or the fill reaches
    [max_batch] — every staged record is written, one synchronous force
    is paid, and the withheld effects are released in staging order.

    Crash volatility is the caller's contract: item closures must guard
    themselves (e.g. by coordinator epoch) so that a crash between
    staging and the flush turns them into no-ops. *)

type item = {
  write : unit -> unit;  (** put the record in the stable log (no force) *)
  release : unit -> unit;  (** run the step's withheld post-force effects *)
}

type t

val create :
  engine:Hermes_sim.Engine.t -> window:int -> max_batch:int -> on_force:(unit -> unit) -> t
(** [on_force] pays (accounts) the batch's single synchronous force. *)

val stage : t -> item -> unit
(** Append to the batch; flushes immediately at [max_batch], otherwise
    arms the window timer if the batch was empty. *)

val flush : t -> unit
(** Force the batch now (cancelling the window timer): write every
    record, pay one force, release the withheld effects. Re-entrant:
    releases may stage again, into the next batch. *)

val pending : t -> int
(** Staged-but-unforced items — a quiesced site must report zero. *)

val timer_armed : t -> bool
val flushes : t -> int
val staged_total : t -> int

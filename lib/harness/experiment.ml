(* The experiment suite.

   The paper (ICDE 1992) has no quantitative evaluation — its "evaluation"
   is the anomaly histories H1/H2/H3, the §5.3 message race, the Appendix
   algorithms and the qualitative §6 comparison with CGM. Each experiment
   below operationalizes one of those claims as a measured table; the
   mapping to paper anchors is in DESIGN.md §3 and the results commentary
   in EXPERIMENTS.md. *)

open Hermes_kernel
module T = Table_fmt
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram
module Tracer = Hermes_obs.Tracer
module Config = Hermes_core.Config
module Dtm = Hermes_core.Dtm
module Coordinator = Hermes_core.Coordinator
module Cgm = Hermes_baselines.Cgm
module Failure = Hermes_ltm.Failure
module Network = Hermes_net.Network
module Spec = Hermes_workload.Spec
module Stats = Hermes_workload.Stats
module Driver = Hermes_workload.Driver
module Report = Hermes_history.Report
module Committed = Hermes_history.Committed
module Anomaly = Hermes_history.Anomaly
module View = Hermes_history.View
module History = Hermes_history.History

(* Closed-loop arrival at [mpl] with the suite's standard think time —
   the builder-API spelling of the old [global_mpl] flat field. *)
let closed mpl = Spec.Closed { mpl; think_time_mean = Spec.think_time Spec.default }

(* Shared run parameters: one seed override for the whole suite (each
   experiment keeps its own default), an optional registry every run's
   metrics are absorbed into, and the domain count the seed sweeps fan
   out over. *)
type params = {
  seeds : int option;
  metrics : Registry.t option;
  jobs : int;
  domains : int option;
      (* within-run site parallelism for E16 (the other experiments pin
         the legacy engine for byte-identity); [jobs] above is ACROSS-run
         fan-out of seed sweeps — the two compose *)
}

let default_params = { seeds = None; metrics = None; jobs = 1; domains = None }

let absorb_reg metrics reg = match metrics with Some dst -> Registry.absorb dst reg | None -> ()
let absorb_into metrics obs = absorb_reg metrics (Obs.metrics obs)

(* The certifier variants the scenario experiments compare. *)
let scenario_configs =
  [
    ("naive (no certification)", Config.naive);
    ("basic prepare cert only", { Config.naive with Config.prepare_certification = true; bind_data = true });
    ("commit cert only", { Config.naive with Config.commit_certification = true });
    ("full 2CM certifier", Config.full);
  ]

let verdict (r : Scenario.run) =
  match r.Scenario.report.Report.view with
  | View.Serializable _ -> "VSR"
  | View.Not_serializable -> "NOT VSR"
  | View.Too_large -> if Report.serializable r.Scenario.report then "VSR (criterion)" else "violates criterion"

let outcome_cell o =
  match o with
  | Some Coordinator.Committed -> "committed"
  | Some (Coordinator.Aborted (Coordinator.Refused (_, r))) -> Fmt.str "refused (%a)" Hermes_net.Message.pp_refusal r
  | Some (Coordinator.Aborted _) -> "aborted"
  | None -> "STUCK"

let scenario_table ?metrics ~title ~note ~scenario () =
  let rows =
    List.map
      (fun (name, certifier) ->
        let obs = Obs.create () in
        let r : Scenario.run = scenario ~certifier ~obs in
        absorb_into metrics obs;
        let reg = Obs.metrics obs in
        let outcomes = List.map (fun (l, o) -> Fmt.str "%s %s" l (outcome_cell o)) r.Scenario.outcomes in
        let locals =
          List.map (fun (l, ok) -> Fmt.str "%s %s" l (if ok then "ok" else "failed")) r.Scenario.locals
        in
        [
          name;
          String.concat ", " (outcomes @ locals);
          T.i r.Scenario.resubmissions;
          T.i (List.length r.Scenario.report.Report.global_distortions);
          T.b (r.Scenario.report.Report.cg_cycle <> None);
          verdict r;
          T.i (Tracer.length (Obs.trace obs));
          T.i (Histogram.max_value (Registry.histogram_totals reg "agent.commit_delay"));
        ])
      scenario_configs
  in
  T.make ~title
    ~headers:
      [ "certifier"; "outcomes"; "resubmits"; "global distortions"; "CG cycle"; "verdict";
        "trace events"; "max commit delay" ]
    ~notes:[ note ] rows

(* E1 — history H1: global view distortion (paper §3, §4). *)
let e1_global_view_distortion ?metrics () =
  scenario_table ?metrics ~title:"E1  H1: global view distortion (paper S3/S4)"
    ~note:
      "T1's prepared subtransaction is aborted after the global commit; T2 deletes Y^a and updates X^a. \
       Without basic prepare certification the resubmission gets another view/decomposition; 'commit cert \
       only' livelocks on this history (the basic certification is also a liveness mechanism)."
    ~scenario:(fun ~certifier ~obs -> Scenario.h1 ~certifier ~obs ())
    ()

(* E2 — history H2: local view distortion, direct conflict (paper §5.1). *)
let e2_local_view_distortion ?metrics () =
  scenario_table ?metrics ~title:"E2  H2: local view distortion via a direct conflict (paper S5.1)"
    ~note:
      "T3 reads Z^b from T1 while T1's subtransaction at a is still recovering; without commit \
       certification the local commits at a and b are in opposite orders and L4 reads an impossible view."
    ~scenario:(fun ~certifier ~obs -> Scenario.h2 ~certifier ~obs ())
    ()

(* E3 — history H3: local view distortion through indirect conflicts only
   (paper §5.1): no prepare-order argument applies; the serial numbers
   carry the day. *)
let e3_indirect_distortion ?metrics () =
  scenario_table ?metrics ~title:"E3  H3: local view distortion via indirect conflicts only (paper S5.1)"
    ~note:
      "T5 and T6 touch disjoint items; only local transactions connect them. Commit certification \
       (SN order) aligns the commit orders; the full certifier instead conservatively refuses T6."
    ~scenario:(fun ~certifier ~obs -> Scenario.h3 ~certifier ~obs ())
    ()

(* E4 — the §5.3 COMMIT-overtakes-PREPARE race and the prepare
   certification extension. *)
let e4_overtaking ?(seeds = 2_000) ?(jobs = 1) ?metrics () =
  let jitters = [ 4_000; 8_000; 16_000; 32_000 ] in
  let count certifier jitter =
    (* Seeds fan out over the domain pool; the registries come back in
       seed order and are absorbed on this domain, so the metrics dump is
       independent of [jobs]. *)
    let runs =
      Pool.map ~jobs
        (fun seed ->
          let obs = Obs.create () in
          let r = Scenario.overtake ~certifier ~obs ~jitter ~seed () in
          (r, Obs.metrics obs))
        (List.init seeds (fun i -> i + 1))
    in
    List.fold_left
      (fun (races, cycles, refusals) ((r : Scenario.overtake_result), reg) ->
        absorb_reg metrics reg;
        ( (races + if r.Scenario.overtaken then 1 else 0),
          (cycles + if r.Scenario.o_run.Scenario.report.Report.cg_cycle <> None then 1 else 0),
          refusals + r.Scenario.extension_refusals ))
      (0, 0, 0) runs
  in
  let rows =
    List.map
      (fun jitter ->
        let no_ext = { Config.full with Config.certification_extension = false } in
        let r1, c1, _ = count no_ext jitter in
        let r2, c2, f2 = count Config.full jitter in
        [ T.i jitter; T.i r1; T.i c1; T.i r2; T.i f2; T.i c2 ])
      jitters
  in
  T.make ~title:(Fmt.str "E4  COMMIT overtakes PREPARE (paper S5.3), %d seeds per cell" seeds)
    ~headers:
      [ "jitter (ticks)"; "races (no ext)"; "CG cycles (no ext)"; "races (full)"; "ext refusals (full)";
        "CG cycles (full)" ]
    ~notes:
      [
        "Two non-conflicting global transactions over two sites; network base delay 500 ticks.";
        "The race needs one PREPARE delivery to outlast a competitor's whole prepare-commit round";
        "trip, so it stays rare (<1%) at any jitter — but without the extension every occurrence";
        "becomes a commit-order-graph cycle, and with it, a refusal.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Driver-based experiments                                            *)
(* ------------------------------------------------------------------ *)

let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))
let avg_i xs = avg (List.map float_of_int xs)

type agg = {
  a_committed : float;
  a_abort_rate : float;  (* failed attempts / attempts *)
  a_retries : float;
  a_throughput : float;
  a_mean_latency : float;  (* registry-sourced: workload.commit_latency mean *)
  a_p95 : float;  (* registry-sourced: workload.commit_latency p95 *)
  a_refused_ext : float;  (* registry-sourced: agent.refused_extension *)
  a_refused_int : float;  (* registry-sourced: agent.refused_interval *)
  a_commit_retries : float;  (* registry-sourced: agent.commit_retries *)
  a_resub : float;
  a_distortion_runs : int;  (* runs with >= 1 global view distortion *)
  a_cycle_runs : int;  (* runs with a CG cycle *)
  a_stuck_runs : int;
  a_gate_delays : float;
  a_glock_timeouts : float;
  a_dlu_denials : float;
  a_dropped : float;  (* registry-sourced: net.dropped *)
  a_duplicated : float;  (* registry-sourced: net.duplicated *)
  a_retransmissions : float;  (* registry-sourced: coord.retransmissions *)
}

(* Every run gets its own observability context; the per-run registries
   feed the certification/latency columns and are absorbed into [metrics]
   so a whole sweep exports as one dump. Seeds fan out over the domain
   pool; [Pool.map] preserves seed order and the absorbs happen here on
   the calling domain, so tables and dump are byte-identical for any
   [jobs]. *)
let aggregate ?metrics ?(jobs = 1) ~seeds ~setup_of () =
  let runs =
    Pool.map ~jobs
      (fun i ->
        let obs = Obs.create () in
        let r = Driver.run { (setup_of (i + 1)) with Driver.obs = Some obs } in
        (r, Obs.metrics obs))
      (List.init seeds Fun.id)
  in
  List.iter (fun (_, reg) -> absorb_reg metrics reg) runs;
  let results = List.map fst runs in
  let regs = List.map snd runs in
  let stats f = List.map f results in
  let count f = List.length (List.filter f results) in
  let reg_counter name = avg_i (List.map (fun reg -> Registry.sum_counter reg name) regs) in
  let reg_latency f = avg (List.map (fun reg -> f (Registry.histogram_totals reg "workload.commit_latency")) regs) in
  let analysis =
    List.map
      (fun (r : Driver.result) ->
        let c = Committed.extended r.Driver.history in
        (Anomaly.global_view_distortions c <> [], Anomaly.commit_order_cycle c <> None))
      results
  in
  {
    a_committed = avg_i (stats (fun r -> Stats.committed r.Driver.stats));
    a_abort_rate = avg (stats (fun r -> Stats.abort_rate r.Driver.stats));
    a_retries = avg_i (stats (fun r -> Stats.retries r.Driver.stats));
    a_throughput = avg (stats (fun r -> r.Driver.throughput));
    a_mean_latency = reg_latency Histogram.mean;
    a_p95 = reg_latency (fun h -> float_of_int (Histogram.percentile h 95));
    a_refused_ext = reg_counter "agent.refused_extension";
    a_refused_int = reg_counter "agent.refused_interval";
    a_commit_retries = reg_counter "agent.commit_retries";
    a_resub = avg_i (stats (fun r -> r.Driver.totals.Dtm.resubmissions));
    a_distortion_runs = List.length (List.filter fst analysis);
    a_cycle_runs = List.length (List.filter snd analysis);
    a_stuck_runs = count (fun r -> r.Driver.stuck > 0);
    a_gate_delays =
      avg_i (stats (fun r -> match r.Driver.cgm with Some s -> s.Cgm.gate_delays | None -> 0));
    a_glock_timeouts =
      avg_i (stats (fun r -> match r.Driver.cgm with Some s -> s.Cgm.glock_timeouts | None -> 0));
    a_dlu_denials = avg_i (stats (fun r -> r.Driver.totals.Dtm.dlu_denials));
    a_dropped = reg_counter "net.dropped";
    a_duplicated = reg_counter "net.duplicated";
    a_retransmissions = reg_counter "coord.retransmissions";
  }

(* E5 — §6 restrictiveness, failure-free: "in a failure-free situation
   [2CM] does not abort any transactions", vs CGM's coarse-granularity
   scheduling and the ticket scheme's forced total order. *)
let e5_restrictiveness ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let protocols =
    [
      ("2CM", Driver.Two_pca Config.full);
      ("ticket", Driver.Two_pca Config.ticket);
      ("CGM-site", Driver.Cgm_baseline Cgm.default_config);
      ("CGM-table", Driver.Cgm_baseline { Cgm.default_config with Cgm.granularity = Cgm.Table_level });
    ]
  in
  let rows =
    List.concat_map
      (fun mpl ->
        List.map
          (fun (name, protocol) ->
            let a =
              aggregate ?metrics ~jobs ~seeds
                ~setup_of:(fun seed ->
                  {
                    Driver.default_setup with
                    Driver.protocol;
                    seed;
                    spec = Spec.make ~n_global:120 ~arrival:(closed mpl) ();
                  })
                ()
            in
            [
              T.i mpl; name; T.pct a.a_abort_rate; T.f1 a.a_retries; T.f1 a.a_throughput;
              T.f1 (a.a_p95 /. 1000.0); T.f1 a.a_gate_delays; T.f1 a.a_glock_timeouts;
            ])
          protocols)
      [ 2; 4; 8; 16 ]
  in
  T.make ~title:(Fmt.str "E5  Failure-free restrictiveness (paper S6), %d seeds per cell" seeds)
    ~headers:
      [ "MPL"; "protocol"; "abort rate"; "retries"; "commits/s"; "p95 latency (ms)"; "CGM gate delays";
        "CGM glock timeouts" ]
    ~notes:
      [
        "Paper: failure-free, 2CM aborts nothing; CGM's site-granularity scheduling rejects/delays";
        "histories 2CM accepts, and the ticket scheme forces a total order that conflicts never asked for.";
      ]
    rows

(* E6 — the failure sweep with ablations: which certification step stops
   which anomaly class. *)
let e6_failure_sweep ?(seeds = 5) ?(jobs = 1) ?metrics () =
  let variants =
    [
      ("2CM (full)", Config.full);
      ("naive", Config.naive);
      ("no prepare cert", Config.without_prepare_certification);
      ("no commit cert", Config.without_commit_certification);
      ("no extension", Config.without_extension);
      ("no DLU binding", Config.without_dlu);
    ]
  in
  let spec =
    Spec.make ~n_global:80 ~arrival:(closed 6)
      ~key_dist:(Spec.Zipf { theta = 0.9 })
      ~keys_per_site:12 ~n_tables:2 ~local_write_ratio:0.7 ~local_mpl_per_site:2 ()
  in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun (name, certifier) ->
            let a =
              aggregate ?metrics ~jobs ~seeds
                ~setup_of:(fun seed ->
                  {
                    Driver.default_setup with
                    Driver.protocol = Driver.Two_pca certifier;
                    failure = Failure.prepared_rate p;
                    seed;
                    spec;
                    time_limit = 30_000_000;
                  })
                ()
            in
            [
              Fmt.str "%.2f" p; name; T.f1 a.a_committed; T.f1 a.a_resub;
              T.f1 (a.a_refused_ext +. a.a_refused_int); T.pct a.a_abort_rate;
              Fmt.str "%d/%d" a.a_distortion_runs seeds; Fmt.str "%d/%d" a.a_cycle_runs seeds;
              Fmt.str "%d/%d" a.a_stuck_runs seeds;
            ])
          variants)
      [ 0.0; 0.1; 0.3 ]
  in
  T.make ~title:(Fmt.str "E6  Unilateral-abort sweep with ablations, %d seeds per cell" seeds)
    ~headers:
      [ "P(abort|prepared)"; "certifier"; "commits"; "resubmits"; "cert refusals"; "abort rate";
        "distortion runs"; "CG-cycle runs"; "stuck runs" ]
    ~notes:
      [
        "Full 2CM must show 0 distortion and 0 CG-cycle runs at every failure rate.";
        "'cert refusals' are certification aborts (extension + interval); the residual abort rate is";
        "lock timeouts under this deliberately contended workload, which every S2PL system shares.";
        "CG cycles are the paper's *sufficient* safety criterion: at P=0 the cycles seen without";
        "commit certification involve only non-conflicting transactions (benign message races);";
        "under failures they are the real H2/H3 anomaly. The certifier prevents both.";
        "'no prepare cert' can livelock (stuck runs): prepared subtransactions deadlock through";
        "resubmitted locks — the Correctness Invariant is also what makes recovery live.";
      ]
    rows

(* E7 — §5.2: clock drift causes only unnecessary aborts, never
   incorrectness. *)
let e7_clock_drift ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let spec = Spec.make ~n_global:100 ~arrival:(closed 6) () in
  let rows =
    List.map
      (fun drift ->
        let a =
          aggregate ?metrics ~jobs ~seeds
            ~setup_of:(fun seed ->
              {
                Driver.default_setup with
                Driver.protocol = Driver.Two_pca Config.full;
                failure = Failure.prepared_rate 0.1;
                clock_of_site =
                  (fun i -> Clock.make ~offset:(if i mod 2 = 0 then drift else -drift) ());
                seed;
                spec;
              })
            ()
        in
        [
          T.i drift; T.f1 a.a_committed; T.f1 a.a_refused_ext; T.f1 a.a_retries; T.pct a.a_abort_rate;
          Fmt.str "%d/%d" a.a_distortion_runs seeds; Fmt.str "%d/%d" a.a_cycle_runs seeds;
        ])
      [ 0; 1_000; 10_000; 100_000 ]
  in
  T.make ~title:(Fmt.str "E7  Clock drift (paper S5.2), full 2CM, %d seeds per cell" seeds)
    ~headers:
      [ "drift (+/- ticks)"; "commits"; "ext refusals"; "retries"; "abort rate"; "distortion runs";
        "CG-cycle runs" ]
    ~notes:
      [ "Paper: 'The drift may cause unnecessary aborts, only.' Correctness columns must stay at 0." ]
    rows

(* E8 — Appendix C: commit-certification retry behaviour vs network
   jitter. *)
let e8_commit_retry ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let spec =
    Spec.make ~n_global:100 ~arrival:(closed 8) ~key_dist:(Spec.Zipf { theta = 0.9 }) ()
  in
  let rows =
    List.map
      (fun jitter ->
        let a =
          aggregate ?metrics ~jobs ~seeds
            ~setup_of:(fun seed ->
              {
                Driver.default_setup with
                Driver.protocol = Driver.Two_pca Config.full;
                failure = Failure.prepared_rate 0.1;
                net = { Hermes_net.Network.default_config with base_delay = 500; jitter };
                seed;
                spec;
              })
            ()
        in
        [
          T.i jitter; T.f1 a.a_committed; T.f1 a.a_commit_retries; T.f1 (a.a_mean_latency /. 1000.0);
          T.f1 (a.a_p95 /. 1000.0);
        ])
      [ 0; 1_000; 2_000; 4_000 ]
  in
  T.make ~title:(Fmt.str "E8  Commit-certification retries vs network jitter (Appendix C), %d seeds" seeds)
    ~headers:[ "jitter (ticks)"; "commits"; "commit-cert retries"; "mean latency (ms)"; "p95 (ms)" ]
    ~notes:[ "Retries measure how often a COMMIT had to wait behind a smaller serial number." ]
    rows

(* E9 — the §4.2 suggestion: "As an optimization, several of [the alive
   intervals] might be stored." A reproduction finding: under the paper's
   own definitions the optimization is vacuous. The candidate's interval
   is [last operation, checking moment], so its upper end is *now*;
   intersection with a past entry interval therefore only constrains the
   candidate's lower end against the entry interval's upper end — and the
   newest stored interval always has the largest upper end (a resubmitted
   incarnation's interval begins after the failed one ended). Storing
   older intervals can thus never admit a candidate the newest interval
   refuses. The experiment confirms the equivalence empirically: both
   variants must produce identical numbers. *)
let e9_multi_interval ?(seeds = 5) ?(jobs = 1) ?metrics () =
  let spec =
    Spec.make ~n_global:80 ~arrival:(closed 8)
      ~key_dist:(Spec.Zipf { theta = 0.9 })
      ~keys_per_site:12 ~n_tables:2 ()
  in
  let variants = [ ("1 (paper baseline)", Config.full); ("4 (optimization)", Config.multi_interval) ] in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun (name, certifier) ->
            let a =
              aggregate ?metrics ~jobs ~seeds
                ~setup_of:(fun seed ->
                  {
                    Driver.default_setup with
                    Driver.protocol = Driver.Two_pca certifier;
                    failure = Failure.prepared_rate p;
                    seed;
                    spec;
                  })
                ()
            in
            [
              Fmt.str "%.2f" p; name; T.f1 a.a_committed; T.f1 a.a_refused_int; T.f1 a.a_retries;
              T.pct a.a_abort_rate; Fmt.str "%d/%d" a.a_distortion_runs seeds;
              Fmt.str "%d/%d" a.a_cycle_runs seeds;
            ])
          variants)
      [ 0.1; 0.3; 0.5 ]
  in
  T.make
    ~title:(Fmt.str "E9  Storing several alive intervals (paper S4.2 optimization), %d seeds per cell" seeds)
    ~headers:
      [ "P(abort|prepared)"; "intervals kept"; "commits"; "interval refusals"; "retries"; "abort rate";
        "distortion runs"; "CG-cycle runs" ]
    ~notes:
      [
        "Reproduction finding: the rows must be IDENTICAL pairwise. The candidate's interval always";
        "ends at the checking moment, so only each entry's newest interval endpoint matters — the";
        "paper's suggested optimization cannot change any certification outcome (see EXPERIMENTS.md).";
      ]
    rows

(* E10 — heterogeneity and site crashes. The setting the paper is *for*:
   LDBSs that differ in speed, deadlock handling and failure behaviour
   (§1: heterogeneity means the implementation of the commands differs per
   site and is unknown to the HMDBS builder; §1 also folds site crashes
   into unilateral aborts as "collective abort"). Site 0 is a slow
   mainframe that periodically crashes, site 1 a mid-range system with
   wait-for-graph deadlock detection, site 2 a fast system with single
   aborts; the certifier must keep the mix correct. *)
let e10_heterogeneity ?(seeds = 5) ?(jobs = 1) ?metrics () =
  let module Ltm_config = Hermes_ltm.Ltm_config in
  let mainframe =
    {
      Hermes_core.Dtm.ltm_config =
        { Ltm_config.default with Ltm_config.cmd_latency = 800; op_latency = 150 };
      clock = Clock.make ~offset:3_000 ();
      failure = Failure.crashes ~mean_interval:150_000 ~horizon:2_000_000;
    }
  in
  let midrange =
    {
      Hermes_core.Dtm.ltm_config =
        { Ltm_config.default with Ltm_config.deadlock = Ltm_config.Detection_and_timeout };
      clock = Clock.make ~offset:(-1_000) ();
      failure = Failure.disabled;
    }
  in
  let fast =
    {
      Hermes_core.Dtm.ltm_config = { Ltm_config.default with Ltm_config.cmd_latency = 30; op_latency = 10 };
      clock = Clock.perfect;
      failure = Failure.prepared_rate 0.15;
    }
  in
  let override i = List.nth_opt [ mainframe; midrange; fast ] i in
  let spec = Spec.make ~n_sites:3 ~n_global:100 ~arrival:(closed 6) () in
  let variants = [ ("2CM (full)", Config.full); ("naive", Config.naive) ] in
  let rows =
    List.map
      (fun (name, certifier) ->
        let a =
          aggregate ?metrics ~jobs ~seeds
            ~setup_of:(fun seed ->
              {
                Driver.default_setup with
                Driver.protocol = Driver.Two_pca certifier;
                site_override = Some override;
                seed;
                spec;
              })
            ()
        in
        [
          name; T.f1 a.a_committed; T.f1 a.a_resub; T.pct a.a_abort_rate; T.f1 a.a_throughput;
          Fmt.str "%d/%d" a.a_distortion_runs seeds; Fmt.str "%d/%d" a.a_cycle_runs seeds;
        ])
      variants
  in
  T.make
    ~title:
      (Fmt.str "E10 Heterogeneous sites: slow crashing mainframe + detection-based midrange + fast failing site, %d seeds"
         seeds)
    ~headers:[ "certifier"; "commits"; "resubmits"; "abort rate"; "commits/s"; "distortion runs"; "CG-cycle runs" ]
    ~notes:
      [
        "Site 0: 800-tick commands, +3ms clock, periodic site crashes (collective aborts).";
        "Site 1: wait-for-graph deadlock detection, -1ms clock. Site 2: fast, 15% prepared-abort rate.";
        "The decentralized certifier needs no knowledge of any of this; correctness columns must be 0.";
      ]
    rows

(* E11 — site crashes and 2PC recovery from the Agent log. The paper folds
   site crashes into unilateral aborts ("collective abort"); the Agent
   log's force-written prepare and commit records (Appendix B/C) are what
   make recovery after a *full* agent crash possible: in-doubt
   subtransactions are rebuilt by resubmission, coordinators retransmit
   unacknowledged decisions, and duplicates are answered idempotently. *)
let e11_crash_recovery ?(seeds = 5) ?(jobs = 1) ?metrics () =
  let spec = Spec.make ~n_global:80 ~arrival:(closed 6) () in
  let schedule_of_crashes n =
    (* n crashes spread over the expected run, alternating sites. *)
    List.init n (fun i -> (20_000 + (i * 30_000), i mod 3))
  in
  let rows =
    List.concat_map
      (fun n_crashes ->
        List.map
          (fun (name, certifier) ->
            let a =
              aggregate ?metrics ~jobs ~seeds
                ~setup_of:(fun seed ->
                  {
                    Driver.default_setup with
                    Driver.protocol = Driver.Two_pca certifier;
                    failure = Failure.prepared_rate 0.05;
                    crash_schedule = schedule_of_crashes n_crashes;
                    seed;
                    spec;
                  })
                ()
            in
            [
              T.i n_crashes; name; T.f1 a.a_committed; T.f1 a.a_resub; T.pct a.a_abort_rate;
              Fmt.str "%d/%d" a.a_distortion_runs seeds; Fmt.str "%d/%d" a.a_cycle_runs seeds;
              Fmt.str "%d/%d" a.a_stuck_runs seeds;
            ])
          [ ("2CM (full)", Config.full) ])
      [ 0; 2; 6 ]
  in
  T.make ~title:(Fmt.str "E11 Site crashes + Agent-log recovery, %d seeds per cell" seeds)
    ~headers:
      [ "crashes"; "certifier"; "commits"; "resubmits"; "abort rate"; "distortion runs"; "CG-cycle runs";
        "stuck runs" ]
    ~notes:
      [
        "Full site crashes (volatile agent state lost, Agent log survives) with instant reboot,";
        "plus a 5% prepared-abort rate. Every run must finish (0 stuck) and verify clean.";
      ]
    rows

(* E12 — local deadlock resolution strategies. The paper assumes "timeout
   based deadlock resolution" for 2CM (§6) and contrasts CGM's elaborate
   three-graph machinery; execution autonomy means each LDBS brings its
   own policy anyway. The certifier must stay correct over all of them —
   wounds are just unilateral aborts to it — while throughput and abort
   rates differ. *)
let e12_deadlock_policies ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let module Ltm_config = Hermes_ltm.Ltm_config in
  let policies =
    [
      ("timeout", Ltm_config.Timeout_only);
      ("detection", Ltm_config.Detection_and_timeout);
      ("wait-die", Ltm_config.Wait_die);
      ("wound-wait", Ltm_config.Wound_wait);
    ]
  in
  let spec =
    Spec.make ~n_global:100 ~arrival:(closed 10)
      ~key_dist:(Spec.Zipf { theta = 1.0 })
      ~keys_per_site:10 ~n_tables:1
      ~mix:{ Spec.sites_per_txn = 2; ops_per_site = 3; write_ratio = 0.8 }
      ()
  in
  let rows =
    List.map
      (fun (name, deadlock) ->
        let runs =
          Pool.map ~jobs
            (fun i ->
              let obs = Obs.create () in
              let r =
                Driver.run
                  {
                    Driver.default_setup with
                    Driver.protocol = Driver.Two_pca Config.full;
                    failure = Failure.prepared_rate 0.05;
                    ltm = { Ltm_config.default with Ltm_config.deadlock };
                    seed = i + 1;
                    spec;
                    obs = Some obs;
                  }
              in
              (r, Obs.metrics obs))
            (List.init seeds Fun.id)
        in
        List.iter (fun (_, reg) -> absorb_reg metrics reg) runs;
        let results = List.map fst runs in
        let avg_of f = avg_i (List.map f results) in
        let clean =
          List.for_all
            (fun (r : Driver.result) ->
              let c = Committed.extended r.Driver.history in
              Anomaly.global_view_distortions c = [] && Anomaly.commit_order_cycle c = None)
            results
        in
        [
          name;
          T.f1 (avg_of (fun r -> Stats.committed r.Driver.stats));
          T.f1 (avg_of (fun r -> r.Driver.totals.Dtm.lock_timeouts));
          T.f1 (avg_of (fun r -> r.Driver.totals.Dtm.deadlock_victims));
          T.f1 (avg_of (fun r -> r.Driver.totals.Dtm.unilateral_aborts));
          T.pct (avg (List.map (fun r -> Stats.abort_rate r.Driver.stats) results));
          T.f1 (avg (List.map (fun r -> r.Driver.throughput) results));
          T.b clean;
        ])
      policies
  in
  T.make ~title:(Fmt.str "E12 Local deadlock resolution under contention, %d seeds per cell" seeds)
    ~headers:
      [ "policy"; "commits"; "lock timeouts"; "deadlock victims"; "involuntary aborts"; "abort rate";
        "commits/s"; "clean" ]
    ~notes:
      [
        "Hot-key workload (Zipf 1.0, 10 keys, 80% writes, MPL 10) with a 5% prepared-abort rate.";
        "'involuntary aborts' counts injector aborts plus wound-wait wounds (a wound IS a unilateral";
        "abort to the agent, which simply resubmits). 'clean' = no distortion and acyclic CG anywhere.";
      ]
    rows

(* E13 — the unreliable network. The paper's model assumes messages are
   neither lost nor corrupted (§2); this experiment relaxes exactly that
   assumption and checks that the hardened 2PC layer — PREPARE and
   decision retransmission, set-based vote/ack counting, idempotent
   replay from the Agent log, delivery-time drops for down sites — turns
   an unreliable network back into the reliable one the certifier needs.
   Drops and duplicates at rate p each, plus real reboot windows during
   which a crashed site is unreachable (deliveries become counted drops).
   Full 2CM must stay distortion-free, acyclic and live at every cell;
   the naive certifier is the ablation. *)
let e13_unreliable_net ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let module Network = Hermes_net.Network in
  let spec = Spec.make ~n_global:60 ~arrival:(closed 4) () in
  let crash_schedule = [ (20_000, 0); (60_000, 1); (120_000, 2) ] in
  let rows =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun reboot ->
            List.map
              (fun (name, certifier) ->
                let a =
                  aggregate ?metrics ~jobs ~seeds
                    ~setup_of:(fun seed ->
                      {
                        Driver.default_setup with
                        Driver.protocol = Driver.Two_pca certifier;
                        failure = Failure.prepared_rate 0.1;
                        net =
                          {
                            Network.default_config with
                            faults = { Network.no_faults with Network.drop = rate; dup = rate };
                          };
                        crash_schedule;
                        reboot_delay = reboot;
                        seed;
                        spec;
                        time_limit = 30_000_000;
                      })
                    ()
                in
                [
                  Fmt.str "%.0f%%" (rate *. 100.);
                  T.i reboot;
                  name;
                  T.f1 a.a_committed;
                  T.f1 a.a_dropped;
                  T.f1 a.a_duplicated;
                  T.f1 a.a_retransmissions;
                  T.f1 (a.a_p95 /. 1000.0);
                  Fmt.str "%d/%d" a.a_distortion_runs seeds;
                  Fmt.str "%d/%d" a.a_cycle_runs seeds;
                  Fmt.str "%d/%d" a.a_stuck_runs seeds;
                ])
              [ ("2CM (full)", Config.full); ("naive", Config.naive) ])
          [ 0; 25_000 ])
      [ 0.0; 0.02; 0.05 ]
  in
  T.make ~title:(Fmt.str "E13 Unreliable network: drop/dup faults + reboot windows, %d seeds per cell" seeds)
    ~headers:
      [ "drop/dup"; "reboot"; "certifier"; "commits"; "drops"; "dups"; "retransmits"; "p95 (ms)";
        "distortion runs"; "CG-cycle runs"; "stuck runs" ]
    ~notes:
      [
        "Each message is dropped and (independently) duplicated with probability p; three site";
        "crashes per run, with 'reboot' ticks of real downtime (deliveries to a down site are";
        "counted drops). 2CM rows must show 0 distortion / 0 CG-cycle / 0 stuck runs everywhere:";
        "retransmission plus idempotent replay from the Agent log restores the reliable-network";
        "assumption the certifier is built on. The naive ablation distorts under the same faults.";
      ]
    rows

(* E14 — coordinator durability and in-doubt termination. E11/E13 crash
   the agents but kept the coordinators immortal; here a scheduled crash
   also takes down every coordinator hosted at the site. Each reboots
   from the site's Coordinator_log (force-written participant set +
   decision, Appendix B made symmetric) and re-drives its decision — or
   presumes abort when no decision record exists — while prepared
   participants run the in-doubt termination protocol, asking the
   coordinator with DECISION-REQ on a timer. The sweep varies when the
   crashes start (how much 2PC traffic is in flight) against the message
   drop/duplication rate; the in-doubt columns measure how long
   participants were actually blocked. Every cell must stay live and
   clean — without this machinery the crashed coordinators' prepared
   participants hold their locks forever. *)
let e14_coordinator_crashes ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let module Network = Hermes_net.Network in
  let spec = Spec.make ~n_global:60 ~arrival:(closed 4) () in
  let rows =
    List.concat_map
      (fun first_crash ->
        List.map
          (fun rate ->
            let runs =
              Pool.map ~jobs
                (fun i ->
                  let obs = Obs.create () in
                  let r =
                    Driver.run
                      {
                        Driver.default_setup with
                        Driver.protocol = Driver.Two_pca Config.full;
                        failure = Failure.prepared_rate 0.05;
                        net =
                          {
                            Network.default_config with
                            faults = { Network.no_faults with Network.drop = rate; dup = rate };
                          };
                        crash_schedule = List.init 3 (fun k -> (first_crash + (k * 30_000), k mod 3));
                        reboot_delay = 20_000;
                        crash_coordinators = true;
                        seed = i + 1;
                        spec;
                        time_limit = 30_000_000;
                        obs = Some obs;
                      }
                  in
                  (r, Obs.metrics obs))
                (List.init seeds Fun.id)
            in
            List.iter (fun (_, reg) -> absorb_reg metrics reg) runs;
            let results = List.map fst runs in
            let regs = List.map snd runs in
            let reg_counter name = avg_i (List.map (fun reg -> Registry.sum_counter reg name) regs) in
            (* High-water of the per-site in-doubt gauges: the worst
               simultaneous blocking any single run exhibited. *)
            let in_doubt_high reg =
              List.fold_left
                (fun acc (row : Registry.row) ->
                  match row.Registry.value with
                  | Registry.Gauge_value { high_water; _ } when row.Registry.name = "agent.in_doubt" ->
                      max acc high_water
                  | _ -> acc)
                0 (Registry.rows reg)
            in
            let windows =
              List.map (fun reg -> Registry.histogram_totals reg "agent.in_doubt_time") regs
            in
            let window_p95 = avg (List.map (fun h -> float_of_int (Histogram.percentile h 95)) windows) in
            let clean =
              List.for_all
                (fun (r : Driver.result) ->
                  let c = Committed.extended r.Driver.history in
                  Anomaly.global_view_distortions c = [] && Anomaly.commit_order_cycle c = None)
                results
            in
            let stuck = List.length (List.filter (fun (r : Driver.result) -> r.Driver.stuck > 0) results) in
            [
              T.i first_crash;
              Fmt.str "%.0f%%" (rate *. 100.);
              T.f1 (avg_i (List.map (fun (r : Driver.result) -> Stats.committed r.Driver.stats) results));
              T.f1 (reg_counter "coord.recovered_decisions");
              T.f1 (reg_counter "coord.presumed_aborts");
              T.f1 (reg_counter "agent.inquiries");
              T.i (List.fold_left (fun acc reg -> max acc (in_doubt_high reg)) 0 regs);
              T.f1 (window_p95 /. 1000.0);
              Fmt.str "%d/%d" stuck seeds;
              T.b clean;
            ])
          [ 0.0; 0.05 ])
      [ 10_000; 40_000 ]
  in
  T.make
    ~title:
      (Fmt.str "E14 Coordinator crashes: log recovery + in-doubt termination, %d seeds per cell" seeds)
    ~headers:
      [ "first crash"; "drop/dup"; "commits"; "recovered decisions"; "presumed aborts"; "inquiries";
        "max in-doubt"; "in-doubt p95 (ms)"; "stuck runs"; "clean" ]
    ~notes:
      [
        "Three site crashes per run (20k-tick reboot windows) now ALSO crash the coordinators";
        "hosted there. A rebooted coordinator re-drives the decision from its force-written log,";
        "or presumes abort when it crashed before deciding; prepared participants left in doubt";
        "send DECISION-REQ inquiries. 'max in-doubt' is the gauge high-water (worst simultaneous";
        "blocking); the p95 window is prepare-to-decision time for subtransactions that were in";
        "doubt. Every cell must be live (0 stuck) and clean — the pre-durability coordinator";
        "stranded these participants forever (the explore I5 ablation shows the counterexample).";
      ]
    rows

(* E15 — the certifier hot path under open-loop load: group commit and
   batched certification. The paper's protocol pays two forced log writes
   per participant (prepare + commit records, Appendix B/C) and three per
   coordinator round (begin, prepared, decision) — at saturation the
   force is the bottleneck, not certification. Group commit stages those
   records and pays one synchronous force per batch (bounded by the flush
   window and max_batch), amortizing the alive-interval/min-SN checks and
   the LTM round-trip over the whole batch at flush. The sweep offers an
   open-loop Poisson arrival stream (latency measured from *arrival*, so
   queueing under saturation lands in p99) at increasing rates, with
   batching off and on; correctness columns must stay clean in both. *)
let e15_saturation ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let spec rate =
    Spec.make ~n_global:200 ~keys_per_site:200
      ~arrival:(Spec.Open { rate; max_in_flight = 48 })
      ~key_dist:(Spec.Zipf { theta = 0.6 })
      ~local_long_tail:0.05 ()
  in
  (* The batching variant widens the window past {!Config.grouped}: at
     these arrival rates a 25 ms window is what fills 32-record batches,
     and the open loop means the added force latency costs queueing
     delay, not throughput. *)
  let gc = { Config.full with Config.group_commit_window = 25_000; max_batch = 32 } in
  let variants = [ ("off", Config.full); ("on", gc) ] in
  let rows =
    List.concat_map
      (fun rate ->
        List.map
          (fun (gc_name, certifier) ->
            let runs =
              Pool.map ~jobs
                (fun i ->
                  let obs = Obs.create () in
                  let r =
                    Driver.run
                      {
                        Driver.default_setup with
                        Driver.protocol = Driver.Two_pca certifier;
                        seed = i + 1;
                        spec = spec rate;
                        time_limit = 60_000_000;
                        obs = Some obs;
                      }
                  in
                  (r, Obs.metrics obs))
                (List.init seeds Fun.id)
            in
            List.iter (fun (_, reg) -> absorb_reg metrics reg) runs;
            let results = List.map fst runs in
            let regs = List.map snd runs in
            let p99 =
              avg
                (List.map
                   (fun reg ->
                     float_of_int
                       (Histogram.percentile (Registry.histogram_totals reg "workload.commit_latency") 99))
                   regs)
            in
            let forces_per_commit (r : Driver.result) =
              let t = r.Driver.totals in
              let c = Stats.committed r.Driver.stats in
              if c = 0 then 0.0
              else float_of_int (t.Dtm.agent_log_forces + t.Dtm.coord_log_forces) /. float_of_int c
            in
            let batch_fill (r : Driver.result) =
              let t = r.Driver.totals in
              if t.Dtm.gc_flushes = 0 then 0.0
              else float_of_int t.Dtm.gc_staged /. float_of_int t.Dtm.gc_flushes
            in
            let clean =
              List.for_all
                (fun (r : Driver.result) ->
                  let c = Committed.extended r.Driver.history in
                  Anomaly.global_view_distortions c = [] && Anomaly.commit_order_cycle c = None)
                results
            in
            let stuck = List.length (List.filter (fun (r : Driver.result) -> r.Driver.stuck > 0) results) in
            [
              Fmt.str "%.0f" rate;
              gc_name;
              T.f1 (avg_i (List.map (fun (r : Driver.result) -> Stats.committed r.Driver.stats) results));
              T.f1 (avg (List.map (fun (r : Driver.result) -> r.Driver.throughput) results));
              T.f1 (p99 /. 1000.0);
              Fmt.str "%.2f" (avg (List.map forces_per_commit results));
              T.f1 (avg_i (List.map (fun (r : Driver.result) -> r.Driver.totals.Dtm.gc_flushes) results));
              T.f1 (avg (List.map batch_fill results));
              Fmt.str "%d/%d" stuck seeds;
              T.b clean;
            ])
          variants)
      [ 50.0; 150.0; 500.0; 1_500.0 ]
  in
  T.make
    ~title:(Fmt.str "E15 Open-loop saturation: group commit + batched certification, %d seeds per cell" seeds)
    ~headers:
      [ "offered (txn/s)"; "group commit"; "commits"; "commits/s"; "p99 (ms)"; "forces/commit";
        "coord flushes"; "avg coord batch"; "stuck runs"; "clean" ]
    ~notes:
      [
        "Poisson arrivals (latency from arrival, queueing included), 200 globals per run, 48";
        "in-service cap, 5% long-tail locals, 25 ms window / 32-record batches when on. The top";
        "rates overload the certifier: commits/s plateaus at saturation and p99 absorbs the queue.";
        "'forces/commit' counts every synchronous agent- and coordinator-log force divided by";
        "committed globals: batching must cut it by an order of magnitude while the correctness";
        "columns ('clean', stuck) stay identical to the off rows. 'avg coord batch' is staged";
        "records per coordinator-side flush (agent batches are separate).";
      ]
    rows

(* E16 — the multicore execution engine: wall-clock throughput of the
   sharded conservative-window scheduler as sites and domains grow. Every
   cell at the same (sites, seed) runs the SAME virtual-time schedule —
   the engine is domain-count-invariant — so the committed column must be
   constant down each sites block while wall time falls; 'speedup' is
   wall time at domains=1 over wall time at that row. Speedup above 1
   needs actual cores: on a single-core host the barrier overhead makes
   every parallel row a slight loss, which is why the CI gate asserts
   cleanliness and invariance, not speedup. *)
let e16_multicore ?(seeds = 1) ?(domains = [ 1; 2; 4; 8 ]) ?metrics () =
  let sites_list = [ 4; 16; 64 ] in
  let rows =
    List.concat_map
      (fun n_sites ->
        let spec =
          Spec.make ~n_sites ~n_global:(10 * n_sites)
            ~arrival:(closed (2 * n_sites))
            ~local_txn_cap:(20 * n_sites) ()
        in
        let cell d =
          let runs =
            List.init seeds (fun i ->
                let obs = Obs.create () in
                let r =
                  Driver.run_windowed ~domains:d
                    { Driver.default_setup with Driver.spec; seed = i + 1; obs = Some obs }
                in
                absorb_into metrics obs;
                r)
          in
          let committed = avg_i (List.map (fun (r : Driver.result) -> Stats.committed r.Driver.stats) runs) in
          let wall = List.fold_left (fun acc (r : Driver.result) -> acc +. r.Driver.wall_s) 0.0 runs in
          let stuck = List.length (List.filter (fun (r : Driver.result) -> r.Driver.stuck > 0) runs) in
          let clean =
            List.for_all
              (fun (r : Driver.result) ->
                let c = Committed.extended r.Driver.history in
                Anomaly.global_view_distortions c = [] && Anomaly.commit_order_cycle c = None)
              runs
          in
          (committed, wall, stuck, clean)
        in
        let base_committed, base_wall, base_stuck, base_clean = cell 1 in
        List.map
          (fun d ->
            let committed, wall, stuck, clean =
              if d = 1 then (base_committed, base_wall, base_stuck, base_clean) else cell d
            in
            [
              T.i n_sites;
              T.i d;
              T.f1 committed;
              Fmt.str "%.3f" wall;
              Fmt.str "%.0f" (if wall > 0.0 then committed *. float_of_int seeds /. wall else 0.0);
              Fmt.str "%.2fx" (if wall > 0.0 then base_wall /. wall else 0.0);
              Fmt.str "%d/%d" stuck seeds;
              (if clean then "ok" else "VIOLATION");
            ])
          domains)
      sites_list
  in
  T.make
    ~title:
      (Fmt.str "E16 Multicore engine: sites on domains, conservative windows, %d seed%s per cell"
         seeds
         (if seeds = 1 then "" else "s"))
    ~headers:
      [ "sites"; "domains"; "committed"; "wall (s)"; "wall txns/s"; "speedup"; "stuck runs"; "clean" ]
    ~notes:
      [
        "One engine/network/trace per site, sites round-robin over OCaml domains, cross-site";
        "messages through lock-free inboxes, barriers between lookahead-bounded virtual-time";
        "windows (lookahead = net base delay). The schedule is domain-count-invariant, so";
        "'committed' must be constant down each sites block; 'wall (s)' is the execution phase";
        "only and 'speedup' is against the domains=1 row of the same block. Wall-clock speedup";
        Fmt.str
          "requires real cores (this host advertises %d); correctness columns must hold anywhere."
          (Domain.recommended_domain_count ());
      ]
    rows

(* E17 — commit protocols under coordinator crashes: how long an
   in-doubt participant stays blocked. Under plain 2PC the decision
   lives only at the coordinator, so a participant prepared when the
   coordinator's site goes down inquires into a void until the site
   reboots — its blocking window tracks reboot_delay. Replicating the
   decision register changes that: backup-TM (one acceptor on another
   site) and Paxos Commit (2f+1 acceptors, f=1) let the inquiry reach a
   surviving acceptor, which runs a recovery ballot and answers within
   a couple of inquiry intervals — the window becomes independent of
   how long the crashed site stays down.

   Random crash trains almost never catch the tiny prepared-undecided
   window on a reliable network, so each run STAGES the stranding: one
   global transaction at a time, legs on the two sites that do NOT host
   its coordinator, and a saboteur that crashes the coordinator's site
   the moment a remote participant reports prepared (the scenario
   saboteur idiom). Every staged transaction leaves both participants
   in doubt with the coordinator down, and the in-doubt histogram
   measures exactly how long each protocol pins their locks. *)
let e17_commit_protocols ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let module Engine = Hermes_sim.Engine in
  let module Network = Hermes_net.Network in
  let module Trace = Hermes_ltm.Trace in
  let module Agent = Hermes_core.Agent in
  let module Program = Hermes_core.Program in
  let strandings = 12 in
  let protos =
    [ ("2pc", Config.Two_pc); ("backup-tm", Config.Backup_tm); ("paxos f=1", Config.Paxos { f = 1 }) ]
  in
  let cell_run proto reboot_delay seed =
    let certifier =
      { Config.full with Config.commit_proto = proto; decision_inquiry_interval = 10_000 }
    in
    let obs = Obs.create () in
    let engine = Engine.create () in
    let rng = Rng.create ~seed in
    let trace = Trace.create () in
    let dtm =
      Dtm.create ~engine ~rng ~trace ~net_config:Network.default_config ~certifier ~obs
        ~crash_coordinators:true
        ~site_specs:(Array.make 3 Dtm.default_site_spec)
        ()
    in
    List.iter
      (fun s -> List.iter (fun k -> Dtm.load dtm s ~table:"X" ~key:k ~value:100) (List.init 4 Fun.id))
      (Dtm.site_ids dtm);
    let committed = ref 0 and finished = ref 0 in
    let rec stage k =
      if k < strandings then begin
        (* The coordinator is hosted at the FIRST leg's site, so pinning
           that leg to site 0 pins every round's coordinator there. The
           saboteur crashes site 0 the moment a remote participant
           reports prepared — stranding the survivors at sites 1 and 2,
           whose windows are what the table measures (site 0's own leg
           dies with the crash; its window would just re-measure the
           reboot, identically under every protocol). *)
        let key = k mod 4 in
        let result = ref None in
        ignore
          (Dtm.submit dtm
             (Program.make
                [
                  (Site.of_int 0, Command.Update { table = "X"; key; delta = 2 });
                  (Site.of_int 1, Command.Update { table = "X"; key; delta = -1 });
                  (Site.of_int 2, Command.Update { table = "X"; key; delta = -1 });
                ])
             ~on_done:(fun o ->
               result := Some o;
               incr finished;
               if o = Coordinator.Committed then incr committed;
               (* wait out the reboot so strandings never overlap *)
               Engine.schedule_unit engine ~delay:(reboot_delay + 20_000) (fun () -> stage (k + 1))));
        let agent = Dtm.agent dtm (Site.of_int 1) in
        let sabotaged = ref false in
        let rec poll () =
          if (not !sabotaged) && !result = None && Time.to_int (Engine.now engine) < 20_000_000
          then
            if Agent.n_prepared agent > 0 then begin
              sabotaged := true;
              Dtm.crash_site ~reboot_delay dtm (Site.of_int 0)
            end
            else Engine.schedule_unit engine ~delay:100 poll
        in
        Engine.schedule_unit engine ~delay:100 poll
      end
    in
    stage 0;
    Engine.run engine;
    let clean =
      let cmt = Committed.extended (Dtm.history dtm) in
      Anomaly.global_view_distortions cmt = [] && Anomaly.commit_order_cycle cmt = None
    in
    (* Only the SURVIVING participants' blocking windows: sites 1 and 2. *)
    let reg = Obs.metrics obs in
    let survivor_windows =
      Histogram.merge
        (Registry.histogram reg ~site:(Site.of_int 1) "agent.in_doubt_time")
        (Registry.histogram reg ~site:(Site.of_int 2) "agent.in_doubt_time")
    in
    (!finished, !committed, clean, survivor_windows, reg)
  in
  let rows =
    List.concat_map
      (fun (label, proto) ->
        List.map
          (fun reboot_delay ->
            let runs =
              Pool.map ~jobs (fun i -> cell_run proto reboot_delay (i + 1)) (List.init seeds Fun.id)
            in
            let regs = List.map (fun (_, _, _, _, reg) -> reg) runs in
            List.iter (absorb_reg metrics) regs;
            let reg_counter name = avg_i (List.map (fun reg -> Registry.sum_counter reg name) regs) in
            let windows = List.map (fun (_, _, _, w, _) -> w) runs in
            let window_p50 = avg (List.map (fun h -> float_of_int (Histogram.percentile h 50)) windows) in
            let window_p95 = avg (List.map (fun h -> float_of_int (Histogram.percentile h 95)) windows) in
            let window_max = avg (List.map (fun h -> float_of_int (Histogram.max_value h)) windows) in
            let finished = List.fold_left (fun acc (f, _, _, _, _) -> acc + f) 0 runs in
            let committed = List.fold_left (fun acc (_, c, _, _, _) -> acc + c) 0 runs in
            let clean = List.for_all (fun (_, _, ok, _, _) -> ok) runs in
            ignore committed;
            [
              label;
              T.i (reboot_delay / 1000);
              Fmt.str "%d/%d" finished (strandings * seeds);
              T.f1 (reg_counter "agent.inquiries");
              T.f1 (reg_counter "acceptor.recovery_ballots");
              T.f1 (reg_counter "acceptor.log_force_writes");
              T.f1 (window_p50 /. 1000.0);
              T.f1 (window_p95 /. 1000.0);
              T.f1 (window_max /. 1000.0);
              T.b clean;
            ])
          [ 20_000; 80_000 ])
      protos
  in
  T.make
    ~title:
      (Fmt.str
         "E17 Commit protocols under coordinator crashes: 2PC vs replicated registers, %d staged strandings x %d seeds per cell"
         strandings seeds)
    ~headers:
      [ "protocol"; "reboot (ms)"; "resolved"; "inquiries"; "recovery ballots"; "register forces";
        "in-doubt p50 (ms)"; "in-doubt p95 (ms)"; "in-doubt max (ms)"; "clean" ]
    ~notes:
      [
        "Each staged transaction's coordinator site (site 0, the first leg's host) is crashed";
        "the moment a remote participant is prepared, on a reliable network — the crash alone";
        "does the damage; the windows are those of the two SURVIVING participants, and every";
        "staged round ends in a presumed abort (the coordinator dies before deciding). Under";
        "2pc every window tracks the reboot column: the decision is only at the crashed";
        "coordinator, so DECISION-REQ inquiries fall into a void until it reboots. Under paxos";
        "f=1 an inquiry always reaches a surviving acceptor (2-of-3 quorum through any single";
        "site loss), which runs a recovery ballot and answers within a couple of 10ms inquiry";
        "intervals — p50 through max are flat in the reboot column. backup-tm sits between:";
        "its single acceptor survives two rounds in three (fast p50) but lands on the crashed";
        "site every third gid, and those strandings block until reboot (the max re-discovers";
        "F = 0; the explore kill gates show the same boundary). 'register forces' is the";
        "replication price in forced acceptor-log writes; 'resolved' must reach every staged";
        "transaction in every cell.";
      ]
    rows

(* E18: elasticity. The workload keeps running while shards move between
   sites — each move installs a new placement epoch after the loser hands
   its prepared certification state to the gainer, and in-flight
   old-epoch work bounces off the WRONG-EPOCH check and resubmits
   against the new map. The table sweeps the site count with a static
   baseline (moves = 0, the byte-identical legacy path) against a churn
   cell, and the claim is that churn is a latency/retry price, never a
   correctness one: every cell commits its full quota distortion-free. *)
let e18_elastic ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let sites_list = [ 4; 16; 64 ] in
  let rows =
    List.concat_map
      (fun n_sites ->
        let spec =
          Spec.make ~n_sites ~n_global:(10 * n_sites)
            ~arrival:(closed (2 * n_sites))
            ~local_txn_cap:(20 * n_sites) ()
        in
        List.map
          (fun (label, moves, churn) ->
            (* spread the whole churn across the run's opening stretch so
               every move lands while traffic is still in flight *)
            let reconfigure_at = if moves = 0 then 0 else max 2_000 (40_000 / moves) in
            (* the churn cell retires the last site mid-run and re-admits
               it later: a full remove_site epoch (shards redistributed
               round-robin over the survivors after handover) followed by
               an add_site epoch under which the returnee owns nothing *)
            let leave_schedule = if churn then [ (20_000, n_sites - 1) ] else [] in
            let join_schedule = if churn then [ (60_000, n_sites - 1) ] else [] in
            let runs =
              Pool.map ~jobs
                (fun i ->
                  let obs = Obs.create () in
                  let r =
                    Driver.run
                      {
                        Driver.default_setup with
                        Driver.spec;
                        seed = i + 1;
                        obs = Some obs;
                        moves;
                        reconfigure_at;
                        leave_schedule;
                        join_schedule;
                      }
                  in
                  absorb_into metrics obs;
                  r)
                (List.init seeds Fun.id)
            in
            let clean =
              List.for_all
                (fun (r : Driver.result) ->
                  let c = Committed.extended r.Driver.history in
                  Anomaly.global_view_distortions c = [] && Anomaly.commit_order_cycle c = None)
                runs
            in
            let stuck = List.length (List.filter (fun (r : Driver.result) -> r.Driver.stuck > 0) runs) in
            let p95 =
              avg
                (List.map
                   (fun (r : Driver.result) ->
                     float_of_int (Stats.latency_summary r.Driver.stats).Stats.p95)
                   runs)
            in
            [
              T.i n_sites;
              label;
              T.f1 (avg_i (List.map (fun (r : Driver.result) -> Stats.committed r.Driver.stats) runs));
              T.f1 (avg (List.map (fun (r : Driver.result) -> r.Driver.throughput) runs));
              T.f1 (p95 /. 1000.0);
              T.f1 (avg_i (List.map (fun (r : Driver.result) -> r.Driver.totals.Dtm.refused_epoch) runs));
              T.f1 (avg_i (List.map (fun (r : Driver.result) -> Stats.retries r.Driver.stats) runs));
              Fmt.str "%d/%d" stuck seeds;
              T.b clean;
            ])
          [
            ("static", 0, false);
            (Fmt.str "%d moves" (max 1 (n_sites / 2)), max 1 (n_sites / 2), false);
            ("leave+join", 0, true);
          ])
      sites_list
  in
  T.make
    ~title:(Fmt.str "E18 Elastic placement: online shard moves under load, %d seeds per cell" seeds)
    ~headers:
      [ "sites"; "churn"; "commits"; "commits/s"; "p95 (ms)"; "wrong-epoch"; "retries";
        "stuck runs"; "clean" ]
    ~notes:
      [
        "Closed loop, 2 clients and 10 globals per site, one shard per site on the epoch-0 map.";
        "The churn cell moves n/2 shards while the run is in flight, each move a full epoch";
        "install with prepared-state handover (the I6 obligation the model checker discharges).";
        "'wrong-epoch' counts agent refusals of stale-epoch BEGIN/EXEC traffic; each refused";
        "round re-resolves through the new map and retries without consuming the client's";
        "give-up budget, so the churn price is the 'retries' column and a fatter p95 while";
        "'commits' stays at the full quota and 'clean' certifies the committed projection";
        "distortion- and cycle-free. The static cell replays the legacy static-placement";
        "schedule byte-identically. The leave+join cell retires the last site at t=20ms (its";
        "shards redistribute over the survivors after a prepared-state handover) and re-admits";
        "it at t=60ms owning nothing — full membership churn under the same clean gate.";
      ]
    rows

(* E19: the process-fault adversary suite. Each adversary from
   Config.adversary (lying agent, equivocating coordinator, stale-clock
   serial numbers) plus the gray-site network fault runs once undefended
   and once behind its countermeasure (decision certificates, the SN
   staleness bound, mutual-suspicion timeouts). The claim: every defended
   cell converts silent corruption (distortions, lost local commits,
   unbounded in-doubt waits) into explicit, accounted-for refusals and
   bounded blocking. *)
let e19_adversary ?(seeds = 3) ?(jobs = 1) ?metrics () =
  let spec = Spec.make ~n_global:90 ~arrival:(closed 4) () in
  let gray_factor = 60 in
  let certified c = { c with Config.decision_certificates = true } in
  let lying = { Config.full with Config.adversary = { Config.no_adversary with Config.lying_sites = [ 1 ] } } in
  let equivocating = { Config.full with Config.adversary = { Config.no_adversary with Config.equivocate = true } } in
  (* the drift adversary targets the §5.3 gap, so it runs on the
     extension ablation — the full certifier already refuses stale serial
     numbers as part of certification_extension. The bound must sit below
     the run's horizon: the adversary clamps drifted timestamps at zero,
     so their apparent staleness is the delivery time itself. *)
  let drifting =
    { Config.without_extension with Config.adversary = { Config.no_adversary with Config.sn_drift = 1_000_000 } }
  in
  (* gray rows replicate the decision (Paxos f=1) so a suspicion inquiry
     has a healthy register replica to read; both rows share the
     protocol, the only delta is the suspicion timeout, sized just above
     the gray decision path's typical round trip so healthy rounds never
     trip it *)
  let gray_base = { Config.full with Config.commit_proto = Config.Paxos { f = 1 } } in
  let gray_faults =
    { Network.no_faults with Network.gray_sites = [ 0 ]; gray_factor }
  in
  let cells =
    [
      ("none", "-", Config.full, Network.no_faults);
      ("lying site 1", "off", lying, Network.no_faults);
      ("lying site 1", "certificates", certified lying, Network.no_faults);
      ("equivocate", "off", equivocating, Network.no_faults);
      ( "equivocate",
        "certs+suspicion",
        { (certified equivocating) with Config.suspicion_timeout = 30_000 },
        Network.no_faults );
      ("sn drift", "off", drifting, Network.no_faults);
      ( "sn drift",
        "drift bound",
        { drifting with Config.sn_drift_rejection = true; Config.max_sn_drift = 10_000 },
        Network.no_faults );
      ("gray site 0", "off", gray_base, gray_faults);
      ( "gray site 0",
        "suspicion",
        { gray_base with Config.suspicion_timeout = 90_000 },
        gray_faults );
    ]
  in
  let rows =
    List.map
      (fun (adversary, defense, config, faults) ->
        let runs =
          Pool.map ~jobs
            (fun i ->
              let obs = Obs.create () in
              let r =
                Driver.run
                  {
                    Driver.default_setup with
                    Driver.spec;
                    protocol = Driver.Two_pca config;
                    net = { Driver.default_setup.Driver.net with Network.faults };
                    seed = i + 1;
                    obs = Some obs;
                  }
              in
              (r, Obs.metrics obs))
            (List.init seeds Fun.id)
        in
        let regs = List.map snd runs in
        List.iter (absorb_reg metrics) regs;
        let results = List.map fst runs in
        let reg_counter name = avg_i (List.map (fun reg -> Registry.sum_counter reg name) regs) in
        let p95 =
          avg
            (List.map
               (fun reg -> float_of_int (Histogram.percentile (Registry.histogram_totals reg "workload.commit_latency") 95))
               regs)
        in
        let in_doubt_p99 =
          avg
            (List.map
               (fun reg -> float_of_int (Histogram.percentile (Registry.histogram_totals reg "agent.in_doubt_time") 99))
               regs)
        in
        (* Serializability damage: a view distortion or a commit-order
           cycle in the extended committed projection. *)
        let anomaly_runs =
          List.length
            (List.filter
               (fun (r : Driver.result) ->
                 let ext = Committed.extended r.Driver.history in
                 Anomaly.global_view_distortions ext <> []
                 || Option.is_some (Anomaly.commit_order_cycle ext))
               results)
        in
        (* Atomicity damage: globally committed transactions whose final
           incarnation never locally committed at some involved site — the
           lying agent's dropped commit and the equivocator's rolled-back
           half land here, invisible to the serializability detectors. *)
        let torn_of (r : Driver.result) =
          let h = r.Driver.history in
          List.length
            (List.filter
               (fun t -> History.is_globally_committed h t && not (History.is_complete h t))
               (History.global_txns h))
        in
        let torn_total = List.fold_left (fun acc r -> acc + torn_of r) 0 results in
        let stuck = List.length (List.filter (fun (r : Driver.result) -> r.Driver.stuck > 0) results) in
        let clean = anomaly_runs = 0 && torn_total = 0 && stuck = 0 in
        [
          adversary;
          defense;
          T.f1 (avg_i (List.map (fun (r : Driver.result) -> Stats.committed r.Driver.stats) results));
          T.f1 (avg (List.map (fun (r : Driver.result) -> r.Driver.throughput) results));
          T.f1 (p95 /. 1000.0);
          T.f1 (avg_i (List.map torn_of results));
          Fmt.str "%d/%d" anomaly_runs seeds;
          T.f1 (reg_counter "agent.refused_drift");
          T.f1 (reg_counter "agent.suspicions");
          T.f1 (reg_counter "coord.equivocations_detected");
          T.f1 (in_doubt_p99 /. 1000.0);
          Fmt.str "%d/%d" stuck seeds;
          T.b clean;
        ])
      cells
  in
  T.make
    ~title:
      (Fmt.str "E19 Adversary suite: process faults vs countermeasures, %d seeds per cell" seeds)
    ~headers:
      [ "adversary"; "defense"; "commits"; "commits/s"; "p95 (ms)"; "torn"; "anomalies";
        "drift refusals"; "suspicions"; "equivocations"; "in-doubt p99 (ms)"; "stuck runs"; "clean" ]
    ~notes:
      [
        "Every adversary is deterministic and seed-stable (Config.adversary); with every knob at";
        "its no_adversary value the machines emit the honest effect sequences byte-identically.";
        "'torn' counts globally committed transactions missing a local commit at an involved";
        "site — atomicity damage the serializability detectors cannot see. lying site 1 votes";
        "READY without preparing and drops its local commit: undefended, most commits silently";
        "lose a leg; with decision certificates the uncertified vote is rejected and the round";
        "aborts — corruption becomes explicit unavailability. equivocate sends COMMIT to half";
        "the participants and a bare ROLLBACK to the rest: undefended every commit is torn;";
        "certificates make the forged ROLLBACK detectable ('equivocations') and the suspicion";
        "timeout lets the victims terminate through the decision register. sn drift runs the";
        "stale-clock coordinator on the S5.3 extension ablation, where the zero-clamped serial";
        "numbers certify a non-serializable commit order ('anomalies'); the max_sn_drift bound";
        "refuses the stale PREPAREs ('drift refusals') and the refused rounds retry to a clean";
        "90/90. gray site 0 is alive but 60x slow — never tripping crash detection, so p95";
        "rides the gray decision path; the mutual-suspicion timeout bounds the in-doubt p99 at";
        "timeout + one healthy-quorum round trip, measured against the defended row only (the";
        "undefended row arms no termination timers and so records no in-doubt histogram).";
      ]
    rows
let tables ~seeds_of ?(jobs = 1) ?metrics ?domains () =
  [
    ("e1", fun () -> e1_global_view_distortion ?metrics ());
    ("e2", fun () -> e2_local_view_distortion ?metrics ());
    ("e3", fun () -> e3_indirect_distortion ?metrics ());
    ("e4", fun () -> e4_overtaking ~seeds:(seeds_of 2_000) ~jobs ?metrics ());
    ("e5", fun () -> e5_restrictiveness ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e6", fun () -> e6_failure_sweep ~seeds:(seeds_of 5) ~jobs ?metrics ());
    ("e7", fun () -> e7_clock_drift ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e8", fun () -> e8_commit_retry ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e9", fun () -> e9_multi_interval ~seeds:(seeds_of 5) ~jobs ?metrics ());
    ("e10", fun () -> e10_heterogeneity ~seeds:(seeds_of 5) ~jobs ?metrics ());
    ("e11", fun () -> e11_crash_recovery ~seeds:(seeds_of 5) ~jobs ?metrics ());
    ("e12", fun () -> e12_deadlock_policies ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e13", fun () -> e13_unreliable_net ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e14", fun () -> e14_coordinator_crashes ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e15", fun () -> e15_saturation ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ( "e16",
      fun () ->
        let domain_list =
          match domains with
          | Some d when d > 1 -> [ 1; d ]
          | Some _ -> [ 1 ]
          | None -> [ 1; 2; 4; 8 ]
        in
        e16_multicore ~seeds:(seeds_of 1) ~domains:domain_list ?metrics () );
    ("e17", fun () -> e17_commit_protocols ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e18", fun () -> e18_elastic ~seeds:(seeds_of 3) ~jobs ?metrics ());
    ("e19", fun () -> e19_adversary ~seeds:(seeds_of 3) ~jobs ?metrics ());
  ]

let run_all ?(params = default_params) () =
  List.map
    (fun (name, table) -> (name, table ()))
    (tables
       ~seeds_of:(fun default -> Option.value params.seeds ~default)
       ~jobs:params.jobs ?metrics:params.metrics ?domains:params.domains ())

let all ?(quick = false) () =
  List.map
    (fun (_, table) -> table ())
    (tables ~seeds_of:(fun n -> if quick then max 1 (n / 3) else n) ())

(** The experiment suite: the paper has no quantitative evaluation, so
    each experiment operationalizes one of its qualitative claims as a
    measured table (mapping in DESIGN.md §3, commentary in
    EXPERIMENTS.md). *)

module T := Table_fmt
module Registry := Hermes_obs.Registry

(** Shared run parameters for the suite: [seeds] overrides every
    experiment's own default seed count; [metrics] is a registry every
    run's metrics are absorbed into (one dump for a whole sweep); [jobs]
    is the number of domains the seed sweeps fan out over (ACROSS runs);
    [domains] overrides E16's within-run site-parallelism sweep to
    [[1; d]] — the other experiments pin the legacy sequential engine
    for byte-identity. Results are byte-identical for any [jobs]: runs
    are independent (each owns its observability context) and their
    registries are absorbed in seed order on the calling domain. *)
type params = {
  seeds : int option;
  metrics : Registry.t option;
  jobs : int;
  domains : int option;
}

val default_params : params
(** [{ seeds = None; metrics = None; jobs = 1; domains = None }] —
    per-experiment defaults, no metrics collection, sequential. *)

val run_all : ?params:params -> unit -> (string * T.t) list
(** Every experiment, as [(short name, table)] — ["e1"] .. ["e16"]. *)

val tables :
  seeds_of:(int -> int) ->
  ?jobs:int ->
  ?metrics:Registry.t ->
  ?domains:int ->
  unit ->
  (string * (unit -> T.t)) list
(** The suite as named thunks, for running a subset: [seeds_of] maps each
    experiment's default seed count to the one to use. Forcing a thunk
    runs that experiment, fanning its seed sweep over [jobs] domains
    (default 1; E1-E3 are cheap and always sequential). [domains]
    replaces E16's domain sweep with [[1; domains]]. *)

val e1_global_view_distortion : ?metrics:Registry.t -> unit -> T.t
(** H1 across certifier variants (paper §3/§4). *)

val e2_local_view_distortion : ?metrics:Registry.t -> unit -> T.t
(** H2: direct-conflict local view distortion (§5.1). *)

val e3_indirect_distortion : ?metrics:Registry.t -> unit -> T.t
(** H3: indirect-conflict local view distortion (§5.1). *)

val e4_overtaking : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** The §5.3 race vs network jitter; extension on/off. *)

val e5_restrictiveness : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Failure-free abort rates and throughput: 2CM vs ticket vs CGM (§6). *)

val e6_failure_sweep : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Unilateral-abort sweep with per-step ablations. *)

val e7_clock_drift : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** §5.2: drift causes only unnecessary aborts. *)

val e8_commit_retry : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Appendix C: commit-certification retry behaviour vs jitter. *)

val e9_multi_interval : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** The §4.2 "several intervals might be stored" suggestion vs the
    store-only-the-last baseline — a reproduction finding: they are
    provably (and measurably) equivalent, because the candidate's interval
    always ends at the checking moment. *)

val e10_heterogeneity : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Heterogeneous LDBSs (different speeds, deadlock policies, clocks and
    failure behaviours, including site crashes) under one decentralized
    certifier. *)

val e11_crash_recovery : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Full site crashes with Agent-log recovery: in-doubt subtransactions
    rebuilt by resubmission, decisions retransmitted, duplicates answered
    idempotently. *)

val e12_deadlock_policies : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Timeout vs detection vs wait-die vs wound-wait local deadlock
    resolution under a hot-key workload; the certifier must stay correct
    over all of them. *)

val e13_unreliable_net : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Drop/duplication faults plus real reboot windows: the hardened 2PC
    layer (retransmission, set-based vote counting, idempotent replay
    from the Agent log) must keep full 2CM distortion-free, acyclic and
    live on a network the paper assumes away; naive is the ablation. *)

val e14_coordinator_crashes : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Scheduled crashes also take down the site's coordinators, which
    reboot from the Coordinator log (re-driving the decision or presuming
    abort) while prepared participants run the in-doubt termination
    protocol; measures the in-doubt blocking window. *)

val e15_saturation : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Open-loop Poisson arrival sweep over increasing offered load with
    group commit off and on: saturation throughput, p99 latency from
    arrival (queueing included) and synchronous log forces per committed
    global; batching must cut forces/commit by an order of magnitude with
    the correctness columns unchanged. *)

val e16_multicore :
  ?seeds:int -> ?domains:int list -> ?metrics:Registry.t -> unit -> T.t
(** Multicore scaling of the conservative windowed engine
    ({!Hermes_workload.Driver.run_windowed}): sites 4/16/64 at fixed
    per-site load, each block swept over [domains] (default
    [[1; 2; 4; 8]]). Columns report committed count, wall-clock seconds,
    wall-clock txns/s, speedup vs the block's [domains = 1] cell, stuck
    runs and a correctness verdict (distortion-free + acyclic). The
    merged history is domain-count-invariant, so every cell of a block
    commits the same transactions. *)

val e18_elastic : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** Elastic placement: online shard moves while the closed-loop workload
    runs, swept over 4/16/64 sites with a static-map baseline against an
    n/2-move churn cell. Each move installs a new placement epoch with
    prepared-state handover; stale-epoch traffic is refused (WRONG-EPOCH)
    and resubmitted against the new map. Columns report commits,
    throughput, p95 latency, wrong-epoch refusals, resubmissions, stuck
    runs and the distortion-free verdict — churn must cost retries, not
    correctness. A third cell per site count exercises membership churn:
    the last site leaves mid-run (shards redistributed over the
    survivors after handover) and rejoins later owning nothing. *)

val e19_adversary : ?seeds:int -> ?jobs:int -> ?metrics:Registry.t -> unit -> T.t
(** The process-fault adversary suite: each {!Hermes_core.Config.adversary}
    misbehaviour (lying agent, equivocating coordinator, stale-clock
    serial numbers) plus the gray-site network fault, run undefended and
    behind its countermeasure (decision certificates, the [max_sn_drift]
    staleness bound, mutual-suspicion timeouts). Columns report commits,
    throughput, p95 latency, distorted runs, drift refusals, suspicion and
    equivocation-detection counters, and the in-doubt p99 — which the
    suspicion timeout must bound for the gray coordinator. *)

val all : ?quick:bool -> unit -> T.t list
(** The tables of {!run_all} without names; [quick] divides each seed
    default by 3 (back-compat convenience). *)

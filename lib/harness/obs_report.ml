(* ASCII summary of a metrics registry, one row per (name, site) series.
   The row order is the registry's deterministic export order, so the
   printed table of a same-seed run never changes. *)

module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram
module T = Table_fmt

let site_cell = function None -> "-" | Some s -> string_of_int s

let row (r : Registry.row) =
  match r.Registry.value with
  | Registry.Counter_value v ->
      [ r.Registry.name; site_cell r.Registry.site; "counter"; "-"; T.i v; "-"; "-"; "-"; "-" ]
  | Registry.Gauge_value { last; high_water } ->
      [ r.Registry.name; site_cell r.Registry.site; "gauge"; "-"; T.i last; "-"; "-"; "-"; T.i high_water ]
  | Registry.Histogram_value h ->
      [
        r.Registry.name;
        site_cell r.Registry.site;
        "histogram";
        T.i (Histogram.count h);
        T.i (Histogram.sum h);
        T.f1 (Histogram.mean h);
        T.i (Histogram.percentile h 50);
        T.i (Histogram.percentile h 95);
        T.i (Histogram.max_value h);
      ]

let table ?(title = "Metrics") reg =
  T.make ~title
    ~headers:[ "name"; "site"; "kind"; "count"; "sum/last"; "mean"; "p50"; "p95"; "max" ]
    (List.map row (Registry.rows reg))

let print ?title reg = T.print (table ?title reg)

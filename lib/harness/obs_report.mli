(** ASCII rendering of a metrics registry: one {!Table_fmt} row per
    metric, in the registry's deterministic (name, site) order. *)

val table : ?title:string -> Hermes_obs.Registry.t -> Table_fmt.t
(** Columns: name, site, kind, count, sum/last, mean, p50, p95, max.
    Counter rows show their value under [sum/last]; gauges show the last
    value and the high-water mark under [max]. *)

val print : ?title:string -> Hermes_obs.Registry.t -> unit

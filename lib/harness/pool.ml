(* Work-stealing-free domain pool: an atomic index dispenses list items
   to [jobs] domains (the caller acts as one of them), results land in a
   slot array by index. Determinism story: the *computation* of each item
   is pure with respect to shared state (every run builds its own Obs
   context), so only the order results are *consumed* in matters — and
   [map] returns them in input order. *)

let map ~jobs f xs =
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let rec worker () =
      (* Stop dispensing once a worker has recorded an exception: the map
         is going to re-raise anyway, so don't burn cores finishing the
         remaining items. *)
      if Atomic.get error = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try out.(i) <- Some (f input.(i))
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          worker ()
        end
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list (Array.map Option.get out)
  end

(** A fixed pool of OCaml 5 domains for fanning independent simulation
    runs out over cores.

    [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (the calling domain included). The result order always matches the
    input order, so callers that fold run results — or absorb per-run
    metrics registries — in input order get byte-identical output
    regardless of [jobs]. [f] must not touch shared mutable state; every
    run owns its observability context. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Degenerates to [List.map] when [jobs <= 1] or fewer than two items.
    If any application raises, the first exception recorded is re-raised
    after all domains have been joined; items not yet dispensed at that
    point are skipped rather than computed. *)

(* Deterministic protocol-level replays of the paper's histories.

   Unlike the literal history encodings in the test suite, these scenarios
   drive the *actual protocol stack* — coordinators, agents, LTMs, the
   network — into the paper's anomalies: a saboteur unilaterally aborts a
   chosen prepared subtransaction inside the right window (after the
   global commit record, before the local commit), competitors are
   submitted while the victim's locks are briefly free, and local
   transactions probe the views. Run with [Config.naive] the anomalies
   appear; with the corresponding certification step enabled they don't.

   The network is configured jitter-free, so every scenario is exactly
   reproducible. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Ltm = Hermes_ltm.Ltm
module Failure = Hermes_ltm.Failure
module Trace = Hermes_ltm.Trace
module Network = Hermes_net.Network
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module History = Hermes_history.History
module Report = Hermes_history.Report

let site_a = Site.of_int 0
let site_b = Site.of_int 1

type world = { engine : Engine.t; trace : Trace.t; dtm : Dtm.t; obs : Hermes_obs.Obs.t option }

let make_world ?obs ~certifier ~seed () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace
      ~net_config:{ Network.default_config with base_delay = 500; jitter = 0 }
      ~certifier ?obs
      ~site_specs:(Array.make 2 Dtm.default_site_spec)
      ()
  in
  { engine; trace; dtm; obs }

(* The saboteur: unilaterally abort the subtransaction of global [gid] at
   [site], once per element of [graces], each strike [grace] ticks after
   (re)observing an active, held-open incarnation. A first grace of ~700
   with the 500-tick network lands after the coordinator's commit record
   but before the COMMIT message reaches the site — the paper's A^a-after-C
   ordering; a grace of 0 strikes a fresh resubmission before it can
   finish. *)
let sabotage w ~site ~gid ~graces =
  let ltm = Dtm.ltm w.dtm site in
  let remaining = ref graces in
  let armed_at = ref None in
  let deadline = 2_000_000 in
  let find_victim () =
    List.find_opt
      (fun txn ->
        let owner = Ltm.owner txn in
        Txn.equal owner.Txn.Incarnation.txn (Txn.global gid) && Ltm.is_active txn && Ltm.is_held_open txn)
      (Ltm.live_txns ltm)
  in
  let rec poll () =
    match !remaining with
    | [] -> ()
    | grace :: rest ->
        if Time.to_int (Engine.now w.engine) < deadline then begin
          (match find_victim () with
          | None -> armed_at := None
          | Some txn -> (
              match !armed_at with
              | None -> armed_at := Some (Engine.now w.engine)
              | Some t0 ->
                  if Time.diff (Engine.now w.engine) t0 >= grace then begin
                    if Ltm.unilateral_abort ltm txn then remaining := rest;
                    armed_at := None
                  end));
          Engine.schedule_unit w.engine ~delay:50 poll
        end
  in
  Engine.schedule_unit w.engine ~delay:50 poll

(* Run a local transaction's commands at [site], starting at absolute
   simulated time [at]; reports whether it committed. *)
let run_local w ~site ~n ~at commands ~on_done =
  let ltm = Dtm.ltm w.dtm site in
  Engine.schedule_unit w.engine
    ~delay:(max 0 (at - Time.to_int (Engine.now w.engine)))
    (fun () ->
      let owner = Txn.Incarnation.make ~txn:(Txn.local ~site ~n) ~site ~inc:0 in
      let txn = Ltm.begin_txn ltm ~owner in
      let rec step = function
        | [] -> Ltm.commit ltm txn ~on_done:(fun r -> on_done (r = Ltm.Committed))
        | cmd :: rest ->
            Ltm.exec ltm txn cmd ~on_done:(function
              | Ltm.Done _ -> step rest
              | Ltm.Failed _ -> on_done false)
      in
      step commands)

let submit_at w ~at program ~on_done =
  Engine.schedule_unit w.engine
    ~delay:(max 0 (at - Time.to_int (Engine.now w.engine)))
    (fun () -> ignore (Dtm.submit w.dtm program ~on_done))

type run = {
  name : string;
  outcomes : (string * Coordinator.outcome option) list;
      (* labelled global transactions; [None] = never finished (a sound
         protocol must not leave any — the commit-certification-only
         ablation livelocks on H1, which is itself a result: the basic
         prepare certification is also a *liveness* mechanism) *)
  locals : (string * bool) list;  (* labelled local transactions: committed? *)
  resubmissions : int;
  history : History.t;
  report : Report.t;
}

let pp_outcome_opt ppf = function
  | Some o -> Coordinator.pp_outcome ppf o
  | None -> Fmt.string ppf "STUCK (never finished)"

(* Scenarios run under a generous time cap instead of draining the queue:
   unsound ablations can livelock (see [run.outcomes]). *)
let collect w ~name ~outcomes ~locals =
  Engine.run ~until:(Time.of_int 3_000_000) w.engine;
  Engine.halt w.engine;
  Option.iter (fun o -> Dtm.export_metrics w.dtm (Hermes_obs.Obs.metrics o)) w.obs;
  let history = Dtm.history w.dtm in
  {
    name;
    outcomes = List.map (fun (l, r) -> (l, !r)) outcomes;
    locals = List.map (fun (l, r) -> (l, Option.value ~default:false !r)) locals;
    resubmissions = (Dtm.totals w.dtm).Dtm.resubmissions;
    history;
    report = Report.analyze history;
  }

(* ------------------------------------------------------------------ *)
(* H1 — global view distortion (paper §3).

   T1 reads X^a and updates Y^a and Z^b. Its prepared subtransaction at a
   is aborted just after the global commit record. T2, already waiting on
   the locks, deletes Y^a and updates X^a and Z^b, and commits. T1's
   resubmission is sabotaged once more, so its final incarnation replays
   after T2: it reads X^a from T2 and its decomposition has lost the Y^a
   update — both faces of the H1 anomaly. *)
(* ------------------------------------------------------------------ *)

let h1 ?(certifier = Config.naive) ?(seed = 1) ?obs () =
  let certifier = { certifier with Config.resubmit_backoff = 5_000 } in
  let w = make_world ?obs ~certifier ~seed () in
  (* a: key 0 = X^a, key 1 = Y^a;  b: key 0 = Z^b *)
  Dtm.load w.dtm site_a ~table:"X" ~key:0 ~value:100;
  Dtm.load w.dtm site_a ~table:"X" ~key:1 ~value:200;
  Dtm.load w.dtm site_b ~table:"X" ~key:0 ~value:300;
  let t1_outcome = ref None and t2_outcome = ref None in
  let t1 =
    Program.make
      [
        (site_a, Command.Select { table = "X"; keys = [ 0 ] });
        (site_a, Command.Update { table = "X"; key = 1; delta = 10 });
        (site_b, Command.Update { table = "X"; key = 0; delta = 10 });
      ]
  in
  let t2 =
    Program.make
      [
        (site_a, Command.Delete { table = "X"; key = 1 });
        (site_a, Command.Update { table = "X"; key = 0; delta = 1 });
        (site_b, Command.Update { table = "X"; key = 0; delta = 1 });
      ]
  in
  submit_at w ~at:0 t1 ~on_done:(fun o -> t1_outcome := Some o);
  (* T2 arrives while T1 is still executing/prepared, and queues on T1's
     locks at a. *)
  submit_at w ~at:2_000 t2 ~on_done:(fun o -> t2_outcome := Some o);
  sabotage w ~site:site_a ~gid:1 ~graces:[ 700; 0 ];
  collect w ~name:"H1" ~outcomes:[ ("T1", t1_outcome); ("T2", t2_outcome) ] ~locals:[]

(* ------------------------------------------------------------------ *)
(* H2 — local view distortion through a direct conflict (paper §5.1).

   T1 (X^a, Y^a, Z^b) commits globally; its subtransaction at a is
   sabotaged twice, so its local commit at a is late. T3 reads Z^b from T1
   and updates Q^a; without commit certification it commits at a while T1
   is still recovering — local commits in opposite orders at a and b. The
   local transaction L4 then reads Q^a (from T3) and Y^a (from T_0): a
   view no serial order can produce. *)
(* ------------------------------------------------------------------ *)

let h2 ?(certifier = Config.naive) ?(seed = 1) ?obs () =
  let certifier = { certifier with Config.resubmit_backoff = 20_000 } in
  let w = make_world ?obs ~certifier ~seed () in
  (* a: 0 = X^a, 1 = Y^a, 2 = Q^a;  b: 0 = Z^b *)
  Dtm.load w.dtm site_a ~table:"X" ~key:0 ~value:100;
  Dtm.load w.dtm site_a ~table:"X" ~key:1 ~value:200;
  Dtm.load w.dtm site_a ~table:"X" ~key:2 ~value:400;
  Dtm.load w.dtm site_b ~table:"X" ~key:0 ~value:300;
  let t1_outcome = ref None and t3_outcome = ref None and l4_ok = ref None in
  let t1 =
    Program.make
      [
        (site_a, Command.Select { table = "X"; keys = [ 0 ] });
        (site_a, Command.Update { table = "X"; key = 1; delta = 10 });
        (site_b, Command.Update { table = "X"; key = 0; delta = 10 });
      ]
  in
  let t3 =
    Program.make
      [
        (site_b, Command.Select { table = "X"; keys = [ 0 ] });
        (site_a, Command.Update { table = "X"; key = 2; delta = 5 });
      ]
  in
  submit_at w ~at:0 t1 ~on_done:(fun o -> t1_outcome := Some o);
  sabotage w ~site:site_a ~gid:1 ~graces:[ 700; 0 ];
  (* T3 starts after T1's crash at a; it reads Z^b from the committed
     subtransaction at b. *)
  submit_at w ~at:7_000 t3 ~on_done:(fun o -> t3_outcome := Some o);
  (* L4 probes after T3 would have committed at a (naive case). *)
  run_local w ~site:site_a ~n:4 ~at:14_000
    [ Command.Select { table = "X"; keys = [ 2 ] }; Command.Select { table = "X"; keys = [ 1 ] };
      Command.Insert { table = "X"; key = 3; value = 7 } ]
    ~on_done:(fun ok -> l4_ok := Some ok);
  collect w ~name:"H2"
    ~outcomes:[ ("T1", t1_outcome); ("T3", t3_outcome) ]
    ~locals:[ ("L4", l4_ok) ]

(* ------------------------------------------------------------------ *)
(* H3 — local view distortion through *indirect* conflicts only (paper
   §5.1): T5 and T6 touch disjoint items, so no prepare-order argument
   applies; only the serial-number commit certification keeps the commit
   orders aligned. L8 sees T5-but-not-T6 at b; L7 sees T6-but-not-T5 at a
   (because T5's recovery at a is slow) — jointly unserializable. *)
(* ------------------------------------------------------------------ *)

let h3 ?(certifier = Config.naive) ?(seed = 1) ?obs () =
  let certifier = { certifier with Config.resubmit_backoff = 30_000 } in
  let w = make_world ?obs ~certifier ~seed () in
  (* a: 0 = X^a, 2 = Y^a;  b: 1 = U^b, 3 = V^b *)
  Dtm.load w.dtm site_a ~table:"X" ~key:0 ~value:100;
  Dtm.load w.dtm site_a ~table:"X" ~key:2 ~value:200;
  Dtm.load w.dtm site_b ~table:"X" ~key:1 ~value:300;
  Dtm.load w.dtm site_b ~table:"X" ~key:3 ~value:400;
  let t5_outcome = ref None and t6_outcome = ref None in
  let l7_ok = ref None and l8_ok = ref None in
  let t5 =
    Program.make
      [
        (site_a, Command.Update { table = "X"; key = 0; delta = 1 });
        (site_b, Command.Update { table = "X"; key = 1; delta = 1 });
      ]
  in
  let t6 =
    Program.make
      [
        (site_a, Command.Update { table = "X"; key = 2; delta = 1 });
        (site_b, Command.Update { table = "X"; key = 3; delta = 1 });
      ]
  in
  submit_at w ~at:0 t5 ~on_done:(fun o -> t5_outcome := Some o);
  sabotage w ~site:site_a ~gid:1 ~graces:[ 700; 0 ];
  (* L8 reads U^b (from T5's committed subtransaction) and V^b (still
     T_0 — T6 has not run). *)
  run_local w ~site:site_b ~n:8 ~at:5_500
    [ Command.Select { table = "X"; keys = [ 1 ] }; Command.Select { table = "X"; keys = [ 3 ] } ]
    ~on_done:(fun ok -> l8_ok := Some ok);
  submit_at w ~at:8_000 t6 ~on_done:(fun o -> t6_outcome := Some o);
  (* L7 reads Y^a (from T6, in the naive case) and X^a (T_0: T5's write
     was undone and not yet resubmitted). *)
  run_local w ~site:site_a ~n:7 ~at:16_000
    [ Command.Select { table = "X"; keys = [ 2 ] }; Command.Select { table = "X"; keys = [ 0 ] } ]
    ~on_done:(fun ok -> l7_ok := Some ok);
  collect w ~name:"H3"
    ~outcomes:[ ("T5", t5_outcome); ("T6", t6_outcome) ]
    ~locals:[ ("L7", l7_ok); ("L8", l8_ok) ]

(* ------------------------------------------------------------------ *)
(* The §5.3 overtaking race: two non-conflicting global transactions
   across a and b; with network jitter, T_k's COMMIT can reach b before
   T_j's PREPARE does. Returns whether the trace shows the overtake, plus
   the analysis. Randomized — callers sweep seeds/jitter. *)
(* ------------------------------------------------------------------ *)

type overtake_result = {
  o_run : run;
  overtaken : bool;  (* C^b_k preceded P^b_j in the trace *)
  extension_refusals : int;
}

let overtake ?(certifier = Config.naive) ?obs ~jitter ~seed () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace
      ~net_config:{ Network.default_config with base_delay = 500; jitter }
      ~certifier ?obs
      ~site_specs:(Array.make 2 Dtm.default_site_spec)
      ()
  in
  let w = { engine; trace; dtm; obs } in
  List.iter (fun k -> Dtm.load w.dtm site_a ~table:"X" ~key:k ~value:0) [ 0; 2 ];
  List.iter (fun k -> Dtm.load w.dtm site_b ~table:"X" ~key:k ~value:0) [ 1; 3 ];
  let tj_outcome = ref None and tk_outcome = ref None in
  let prog k0 k1 =
    Program.make
      [
        (site_a, Command.Update { table = "X"; key = k0; delta = 1 });
        (site_b, Command.Update { table = "X"; key = k1; delta = 1 });
      ]
  in
  submit_at w ~at:0 (prog 0 1) ~on_done:(fun o -> tj_outcome := Some o);
  submit_at w ~at:200 (prog 2 3) ~on_done:(fun o -> tk_outcome := Some o);
  let run = collect w ~name:"overtake" ~outcomes:[ ("Tj", tj_outcome); ("Tk", tk_outcome) ] ~locals:[] in
  (* The dangerous race of §5.3: SN(Tj) < SN(Tk) — Tj reached its global
     commit first — yet at site b, Tk's local commit precedes Tj's prepare
     (which the extension may have refused outright). A reordering where
     Tj's SN is already the bigger one is harmless. *)
  let module Op = Hermes_history.Op in
  let pos f =
    let found = ref None in
    History.iteri (fun i op -> if !found = None && f op then found := Some i) run.history;
    !found
  in
  let sn_of gid =
    History.fold
      (fun acc op ->
        match op with
        | Op.Prepare { txn = Txn.Global g; sn = Some sn; _ } when g = gid -> Some sn
        | _ -> acc)
      None run.history
  in
  let prepare_at ~gid ~site =
    pos (function
      | Op.Prepare { txn = Txn.Global g; site = s; _ } -> g = gid && Site.equal s site
      | _ -> false)
  in
  let commit_at ~gid ~site =
    pos (function
      | Op.Local_commit { Txn.Incarnation.txn = Txn.Global g; site = s; _ } -> g = gid && Site.equal s site
      | _ -> false)
  in
  let refusals = (Dtm.totals w.dtm).Dtm.refused_extension in
  (* Either transaction may end up with the smaller SN; the race is: the
     smaller-SN transaction's prepare at some site lands after (or is
     refused behind) the bigger-SN transaction's local commit there. *)
  let race_between ~small ~big =
    let at site =
      match (prepare_at ~gid:small ~site, commit_at ~gid:big ~site) with
      | Some p, Some c -> c < p
      | None, Some _ -> refusals > 0
      | _ -> false
    in
    at site_a || at site_b
  in
  let overtaken =
    match (sn_of 1, sn_of 2) with
    | Some s1, Some s2 when Sn.(s1 < s2) -> race_between ~small:1 ~big:2
    | Some _, Some _ -> race_between ~small:2 ~big:1
    | Some _, None -> refusals > 0
    | None, Some _ -> refusals > 0
    | None, None -> false
  in
  { o_run = run; overtaken; extension_refusals = refusals }

(** Deterministic protocol-level replays of the paper's anomaly histories:
    a saboteur unilaterally aborts a chosen prepared subtransaction inside
    the right window, competitors are submitted while its locks are free,
    and local transactions probe the resulting views. Run with
    [Config.naive] the anomalies appear; with the right certification step
    they do not. *)

module Config := Hermes_core.Config
module Coordinator := Hermes_core.Coordinator

type run = {
  name : string;
  outcomes : (string * Coordinator.outcome option) list;
      (** labelled global transactions; [None] = never finished (the
          commit-certification-only ablation livelocks on H1 — the basic
          prepare certification is also a liveness mechanism) *)
  locals : (string * bool) list;  (** labelled local transactions: committed? *)
  resubmissions : int;
  history : Hermes_history.History.t;
  report : Hermes_history.Report.t;
}

val pp_outcome_opt : Coordinator.outcome option Fmt.t

val h1 : ?certifier:Config.t -> ?seed:int -> ?obs:Hermes_obs.Obs.t -> unit -> run
(** History H1 (paper §3): global view distortion — the resubmission reads
    X^a from T2 and loses the Y^a update from its decomposition. *)

val h2 : ?certifier:Config.t -> ?seed:int -> ?obs:Hermes_obs.Obs.t -> unit -> run
(** History H2 (paper §5.1): local view distortion through a direct
    T1–T3 conflict; L4 observes the impossible view. *)

val h3 : ?certifier:Config.t -> ?seed:int -> ?obs:Hermes_obs.Obs.t -> unit -> run
(** History H3 (paper §5.1): local view distortion through *indirect*
    conflicts only — T5 and T6 touch disjoint items. *)

type overtake_result = {
  o_run : run;
  overtaken : bool;
      (** the smaller-SN transaction's PREPARE landed after (or was refused
          behind) the bigger-SN transaction's local commit at some site *)
  extension_refusals : int;
}

val overtake :
  ?certifier:Config.t -> ?obs:Hermes_obs.Obs.t -> jitter:int -> seed:int -> unit -> overtake_result
(** The §5.3 COMMIT-overtakes-PREPARE race; randomized — sweep seeds. *)

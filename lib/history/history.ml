(* Linear histories: a total order of operations (paper §3, the shuffle of
   the transaction histories). The simulator produces one by tracing; tests
   also build them literally, e.g. the paper's H1, H2, H3.

   The container carries a lazily-built per-transaction index (transaction
   -> operation positions, plus the first-appearance order) so the
   per-transaction accessors — [ops_of_txn], [sites_of_txn],
   [incarnations_at], [txns] — cost O(ops of that transaction) instead of
   a scan of the whole history. The index is built on first use and cached;
   it is derived state only, so histories stay values for every other
   purpose. Builders ([of_ops], [filter], [append], ...) return unindexed
   histories; nothing is paid until a per-transaction query happens. *)

open Hermes_kernel

type event = { op : Op.t; at : Time.t; seq : int }

type index = {
  order : Txn.t list;  (* first-appearance order *)
  positions : (Txn.t, int array) Hashtbl.t;  (* ascending op positions *)
}

type t = { ops : Op.t array; mutable index : index option }

let of_ops ops = { ops = Array.of_list ops; index = None }

let of_events events =
  let events =
    List.sort
      (fun a b ->
        match Time.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c)
      events
  in
  of_ops (List.map (fun e -> e.op) events)

let ops t = Array.to_list t.ops
let length t = Array.length t.ops
let get t i = t.ops.(i)
let append a b = { ops = Array.append a.ops b.ops; index = None }
let concat ts = { ops = Array.concat (List.map (fun t -> t.ops) ts); index = None }
let filter f t = { ops = Array.of_list (List.filter f (ops t)); index = None }

let fold f init t = Array.fold_left f init t.ops
let iteri f t = Array.iteri f t.ops
let exists f t = Array.exists f t.ops

(* One pass over the history: first-appearance order and the positions of
   every transaction's operations. *)
let build_index t =
  let positions_rev : (Txn.t, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun i op ->
      let x = Op.txn op in
      match Hashtbl.find_opt positions_rev x with
      | Some l -> l := i :: !l
      | None ->
          Hashtbl.add positions_rev x (ref [ i ]);
          order := x :: !order)
    t.ops;
  let positions = Hashtbl.create (Hashtbl.length positions_rev) in
  Hashtbl.iter
    (fun x l -> Hashtbl.replace positions x (Array.of_list (List.rev !l)))
    positions_rev;
  { order = List.rev !order; positions }

let index t =
  match t.index with
  | Some idx -> idx
  | None ->
      let idx = build_index t in
      t.index <- Some idx;
      idx

(* Transactions in order of first appearance. *)
let txns t = (index t).order

let global_txns t = List.filter Txn.is_global (txns t)
let local_txns t = List.filter Txn.is_local (txns t)

let positions_of_txn t x =
  match Hashtbl.find_opt (index t).positions x with Some ps -> ps | None -> [||]

let fold_ops_of_txn t x f init =
  Array.fold_left (fun acc i -> f acc t.ops.(i)) init (positions_of_txn t x)

let ops_of_txn t x = List.rev (fold_ops_of_txn t x (fun acc op -> op :: acc) [])

let sites_of_txn t x =
  fold_ops_of_txn t x
    (fun acc op -> match Op.site op with Some s -> Site.Set.add s acc | None -> acc)
    Site.Set.empty
  |> Site.Set.elements

(* Incarnation indices of [x] at [site], ascending. *)
let incarnations_at t x ~site =
  fold_ops_of_txn t x
    (fun acc op ->
      match Op.incarnation op with
      | Some inc when Txn.equal inc.Txn.Incarnation.txn x && Site.equal inc.site site ->
          if List.mem inc.inc acc then acc else inc.inc :: acc
      | _ -> acc)
    []
  |> List.sort Int.compare

let final_incarnation_at t x ~site =
  match List.rev (incarnations_at t x ~site) with
  | [] -> None
  | k :: _ -> Some (Txn.Incarnation.make ~txn:x ~site ~inc:k)

let is_globally_committed t x =
  match x with
  | Txn.Global _ ->
      fold_ops_of_txn t x
        (fun acc op -> acc || match op with Op.Global_commit y -> Txn.equal x y | _ -> false)
        false
  | Txn.Local _ ->
      fold_ops_of_txn t x
        (fun acc op ->
          acc || match op with Op.Local_commit inc -> Txn.equal inc.Txn.Incarnation.txn x | _ -> false)
        false

let locally_committed t inc =
  fold_ops_of_txn t inc.Txn.Incarnation.txn
    (fun acc op -> acc || match op with Op.Local_commit j -> Txn.Incarnation.equal inc j | _ -> false)
    false

(* A transaction is committed *and complete* (paper §3) when it is globally
   committed and its final incarnation has locally committed at every site
   it operated at. Local transactions are complete iff committed. *)
let is_complete t x =
  is_globally_committed t x
  && List.for_all
       (fun site ->
         match final_incarnation_at t x ~site with
         | None -> true
         | Some inc -> locally_committed t inc)
       (sites_of_txn t x)

let pp ppf t = Fmt.pf ppf "@[<hov>%a@]" Fmt.(list ~sep:sp Op.pp) (ops t)
let pp_with_from ppf t = Fmt.pf ppf "@[<hov>%a@]" Fmt.(list ~sep:sp Op.pp_with_from) (ops t)
let show t = Fmt.str "%a" pp t

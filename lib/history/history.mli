(** Linear histories: a total order of operations (paper §3). *)

open Hermes_kernel

type event = { op : Op.t; at : Time.t; seq : int }
(** [seq] is the explicit tie-break for simultaneous events: producers
    assign a monotonically increasing sequence number, so trace->history
    construction is deterministic by contract, not by sort stability. *)

type t

val of_ops : Op.t list -> t
val of_events : event list -> t
(** Sorts by [(at, seq)] — a total, explicit order. *)

val ops : t -> Op.t list
val length : t -> int
val get : t -> int -> Op.t
val append : t -> t -> t
val concat : t list -> t
val filter : (Op.t -> bool) -> t -> t
val fold : ('a -> Op.t -> 'a) -> 'a -> t -> 'a
val iteri : (int -> Op.t -> unit) -> t -> unit
val exists : (Op.t -> bool) -> t -> bool

val txns : t -> Txn.t list
(** In order of first appearance. *)

val global_txns : t -> Txn.t list
val local_txns : t -> Txn.t list

val ops_of_txn : t -> Txn.t -> Op.t list
(** O(ops of the transaction) after a one-off O(history) index build that
    is cached on the history (as are the other per-transaction
    accessors). The cached index makes per-transaction queries cheap but
    is built unsynchronized: share a history across domains only after
    forcing it once (e.g. by calling [txns]). *)

val sites_of_txn : t -> Txn.t -> Site.t list

val incarnations_at : t -> Txn.t -> site:Site.t -> int list
(** Incarnation indices of the transaction's subtransaction at [site],
    ascending. *)

val final_incarnation_at : t -> Txn.t -> site:Site.t -> Txn.Incarnation.t option

val is_globally_committed : t -> Txn.t -> bool
(** Global transactions: has a [Global_commit]. Local transactions: has a
    [Local_commit]. *)

val locally_committed : t -> Txn.Incarnation.t -> bool

val is_complete : t -> Txn.t -> bool
(** Committed *and complete* (paper §3): globally committed, and the final
    incarnation locally committed at every involved site. *)

val pp : t Fmt.t
val pp_with_from : t Fmt.t
val show : t -> string

(* The combined verification report for a recorded history.

   [analyze] computes the extended committed projection and runs every
   checker the theory provides. For histories small enough, view
   serializability is decided exactly; otherwise correctness is judged by
   the paper's sufficient criterion (Theorem 19 of the companion report,
   restated in §5.1): local rigorousness + no global view distortion +
   acyclic CG(C(H)) imply view serializability of H. *)

open Hermes_kernel

type t = {
  n_txns : int;
  n_global : int;
  n_local : int;
  n_ops : int;
  rigorous_violations : (Site.t * Rigorous.violation list) list;
  sg_cycle : Txn.t list option;
  cg_cycle : Txn.t list option;
  global_distortions : Anomaly.global_distortion list;
  view : View.decision;
  quasi : Quasi.verdict;
  value_mismatches : Values.mismatch list;  (* trace-vs-execution cross-check *)
}

let analyze ?(vsr_limit = 10) h =
  let c = Committed.extended h in
  {
    n_txns = List.length (History.txns c);
    n_global = List.length (History.global_txns c);
    n_local = List.length (History.local_txns c);
    n_ops = History.length c;
    rigorous_violations = Rigorous.check_all_sites h;
    sg_cycle = Serialization_graph.find_cycle c;
    cg_cycle = Commit_order_graph.find_cycle c;
    global_distortions = Anomaly.global_view_distortions c;
    view = View.view_serializable ~limit:vsr_limit c;
    quasi = Quasi.check c;
    value_mismatches = Values.check h;
  }

let rigorous t = List.for_all (fun (_, vs) -> vs = []) t.rigorous_violations

(* Is the history certainly view serializable? Either decided exactly, or
   established via the paper's sufficient criterion. *)
let serializable t =
  match t.view with
  | View.Serializable _ -> true
  | View.Not_serializable -> false
  | View.Too_large -> rigorous t && t.global_distortions = [] && t.cg_cycle = None

let ok t =
  serializable t && t.global_distortions = [] && t.cg_cycle = None && rigorous t
  && t.value_mismatches = []

let pp ppf t =
  Fmt.pf ppf "@[<v>committed projection: %d txns (%d global, %d local), %d ops@," t.n_txns t.n_global
    t.n_local t.n_ops;
  (if rigorous t then Fmt.pf ppf "local histories: rigorous at all sites@,"
   else
     List.iter
       (fun (s, vs) ->
         if vs <> [] then
           Fmt.pf ppf "site %a: %d rigorousness violations (first: %a)@," Site.pp s (List.length vs)
             Rigorous.pp_violation (List.hd vs))
       t.rigorous_violations);
  (match t.sg_cycle with
  | None -> Fmt.pf ppf "SG(C(H)): acyclic@,"
  | Some c -> Fmt.pf ppf "SG(C(H)): cycle %a@," Fmt.(list ~sep:(any " -> ") Txn.pp) c);
  (match t.cg_cycle with
  | None -> Fmt.pf ppf "CG(C(H)): acyclic@,"
  | Some c -> Fmt.pf ppf "CG(C(H)): cycle %a  [local view distortion possible]@," Fmt.(list ~sep:(any " -> ") Txn.pp) c);
  (match t.global_distortions with
  | [] -> Fmt.pf ppf "global view distortions: none@,"
  | ds -> List.iter (fun d -> Fmt.pf ppf "%a@," Anomaly.pp_global d) ds);
  (match t.value_mismatches with
  | [] -> Fmt.pf ppf "value consistency: trace and execution agree@,"
  | ms -> Fmt.pf ppf "value consistency: %d MISMATCHES (first: %a)@," (List.length ms) Values.pp_mismatch (List.hd ms));
  Fmt.pf ppf "related-work criterion: %a@," Quasi.pp_verdict t.quasi;
  Fmt.pf ppf "verdict: %a@]" View.pp_decision t.view

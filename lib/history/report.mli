(** Combined verification of a recorded history: rigorousness per site,
    SG/CG cycles, global view distortions, and a view-serializability
    verdict (exact for small histories; by the paper's sufficient
    criterion otherwise). *)

open Hermes_kernel

type t = {
  n_txns : int;
  n_global : int;
  n_local : int;
  n_ops : int;
  rigorous_violations : (Site.t * Rigorous.violation list) list;
  sg_cycle : Txn.t list option;
  cg_cycle : Txn.t list option;
  global_distortions : Anomaly.global_distortion list;
  view : View.decision;
  quasi : Quasi.verdict;  (** the related-work [11] criterion, for contrast *)
  value_mismatches : Values.mismatch list;  (** trace-vs-execution cross-check *)
}

val analyze : ?vsr_limit:int -> History.t -> t
(** Computes the extended committed projection internally; [vsr_limit]
    bounds the exact view-serializability search (default 10 transactions). *)

val rigorous : t -> bool
val serializable : t -> bool
val ok : t -> bool
val pp : t Fmt.t

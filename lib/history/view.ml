(* View equivalence and view serializability (paper §3, in the spirit of
   Bernstein/Hadzilacos/Goodman, adapted to incarnations).

   Two histories over the same transactions are view equivalent iff every
   read observes the same (transaction-level) writer and the final writes
   are by the same transactions. The serial yardstick for a history with
   resubmissions places each transaction's complete history H(T_k) —
   including its unilaterally aborted incarnations, which the extended
   committed projection retains — as one contiguous block; the replay
   semantics then resolves what every incarnation would have read.

   Deciding view serializability is NP-complete in general. The exact
   decider is a prefix-pruned DFS over serial orders: a transaction's
   reads in a serial history depend only on the block prefix before it,
   so a prefix whose last block already reads differently from the target
   can never be completed into a witness — the whole subtree is pruned.
   Each extension replays just the added block against an undoable store
   (journal + rollback), instead of re-running the full replay per
   candidate order. Two fast paths short-circuit the search: a
   conflict-serializable history's topological order is tried first
   (almost always a witness, confirmed by replay), and pruning at depth 0
   catches most non-serializable histories early. The blind permutation
   search survives as [view_serializable_naive] — the reference the
   property tests and benchmarks compare against. *)

open Hermes_kernel

let serial_of_order h order =
  History.concat (List.map (fun x -> History.of_ops (History.ops_of_txn h x)) order)

(* Canonical view data: logical reads sorted by reader/item/occurrence and
   transaction-level final writes. Everything inside is ints, strings and
   plain variants, so structural equality is sound. *)
type view_data = {
  reads : (Txn.Incarnation.t * Item.t * int * Txn.t option) list;
  final : (Item.t * Txn.t option) list;
}

let view_data h =
  let outcome = Replay.run h in
  let reads =
    Replay.logical_reads outcome
    |> List.map (fun (r : Replay.logical_read) -> (r.l_reader, r.l_item, r.l_occurrence, r.l_from))
    |> List.sort Stdlib.compare
  in
  let final = Item.Map.bindings (Replay.logical_final outcome) in
  { reads; final }

let view_equivalent h1 h2 = Stdlib.( = ) (view_data h1) (view_data h2)

type decision =
  | Serializable of Txn.t list  (* a witness serial order *)
  | Not_serializable
  | Too_large  (* beyond the exact-decision limit *)

let equal_decision a b = Stdlib.( = ) a b

let pp_decision ppf = function
  | Serializable order -> Fmt.pf ppf "view serializable as %a" Fmt.(list ~sep:sp Txn.pp) order
  | Not_serializable -> Fmt.string ppf "NOT view serializable"
  | Too_large -> Fmt.string ppf "undecided (too many transactions for exact search)"

(* ------------------------------------------------------------------ *)
(* The naive reference decider: enumerate permutations lazily, replaying
   the whole serial history per candidate, stopping at the first witness. *)
(* ------------------------------------------------------------------ *)

let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: rest as l -> (x :: l) :: List.map (fun r -> y :: r) (insertions x rest)

let rec permutations = function
  | [] -> Seq.return []
  | x :: rest -> Seq.concat_map (fun p -> List.to_seq (insertions x p)) (permutations rest)

let view_serializable_naive ?(limit = 8) h =
  let txns = History.txns h in
  if txns = [] then Serializable []
  else if List.length txns > limit then Too_large
  else begin
    let target = view_data h in
    let witness =
      Seq.find (fun order -> Stdlib.( = ) (view_data (serial_of_order h order)) target) (permutations txns)
    in
    match witness with Some order -> Serializable order | None -> Not_serializable
  end

(* ------------------------------------------------------------------ *)
(* The pruned-DFS decider                                               *)
(* ------------------------------------------------------------------ *)

(* An undoable replay store: the same semantics as {!Replay.run}, but
   blocks (one transaction's complete ops) are replayed one at a time and
   every store mutation is journalled so a block can be rolled back when
   the DFS backtracks. Undo logs and read-occurrence counters never cross
   block boundaries — a serial block contains all of its transaction's
   operations, so any Local_abort's restores happen inside the block. *)
module Prefix_replay = struct
  type t = {
    state : (Item.t, Txn.Incarnation.t option) Hashtbl.t;
    mutable journal : (Item.t * Txn.Incarnation.t option * bool (* fresh binding *)) list;
  }

  let create () = { state = Hashtbl.create 64; journal = [] }

  let set t item w =
    (match Hashtbl.find_opt t.state item with
    | Some prev -> t.journal <- (item, prev, false) :: t.journal
    | None -> t.journal <- (item, None, true) :: t.journal);
    Hashtbl.replace t.state item w

  (* Replay one block; returns the block's logical reads, sorted with the
     same comparison as {!view_data}. The journal for the block is
     whatever got appended to [t.journal] since the caller's mark. *)
  let replay_block t (block : Op.t array) =
    let undos : (Txn.Incarnation.t, (Item.t * Txn.Incarnation.t option) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let occurrences : (Txn.Incarnation.t * Item.t, int) Hashtbl.t = Hashtbl.create 16 in
    let reads = ref [] in
    let writer item = match Hashtbl.find_opt t.state item with Some w -> w | None -> None in
    Array.iter
      (fun op ->
        match op with
        | Op.Dml { kind = Op.Read; inc; item; _ } ->
            let occ = Option.value ~default:0 (Hashtbl.find_opt occurrences (inc, item)) in
            Hashtbl.replace occurrences (inc, item) (occ + 1);
            reads :=
              (inc, item, occ, Option.map (fun (w : Txn.Incarnation.t) -> w.txn) (writer item)) :: !reads
        | Op.Dml { kind = Op.Write; inc; item; _ } ->
            let u =
              match Hashtbl.find_opt undos inc with
              | Some u -> u
              | None ->
                  let u = ref [] in
                  Hashtbl.replace undos inc u;
                  u
            in
            u := (item, writer item) :: !u;
            set t item (Some inc)
        | Op.Local_abort inc -> (
            match Hashtbl.find_opt undos inc with
            | None -> ()
            | Some u ->
                List.iter (fun (item, before) -> set t item before) !u;
                Hashtbl.remove undos inc)
        | Op.Local_commit inc -> Hashtbl.remove undos inc
        | Op.Prepare _ | Op.Global_commit _ | Op.Global_abort _ -> ())
      block;
    List.sort Stdlib.compare !reads

  let mark t = t.journal

  (* Roll the store back to a previous [mark]. *)
  let rollback t mark =
    let rec undo j =
      if j != mark then
        match j with
        | [] -> ()
        | (item, prev, fresh) :: rest ->
            if fresh then Hashtbl.remove t.state item else Hashtbl.replace t.state item prev;
            undo rest
    in
    undo t.journal;
    t.journal <- mark
end

let view_serializable ?(limit = 12) h =
  let txns = History.txns h in
  let n = List.length txns in
  if txns = [] then Serializable []
  else if n > limit then Too_large
  else begin
    let target = view_data h in
    (* Fast path: if SG(H) is acyclic, its topological order is the
       canonical witness candidate — conflict serializability implies view
       serializability for single-incarnation histories, and the replay
       check below confirms (or refutes) it in the incarnation setting. *)
    let matches order = Stdlib.( = ) (view_data (serial_of_order h order)) target in
    let topo =
      match Serialization_graph.G.topological_sort (Serialization_graph.build h) with
      | Some order when matches order -> Some order
      | _ -> None
    in
    match topo with
    | Some order -> Serializable order
    | None ->
        (* Pruned DFS over serial orders. *)
        let blocks = List.map (fun x -> (x, Array.of_list (History.ops_of_txn h x))) txns in
        let target_reads : (Txn.t, (Txn.Incarnation.t * Item.t * int * Txn.t option) list) Hashtbl.t =
          Hashtbl.create 16
        in
        List.iter
          (fun ((reader : Txn.Incarnation.t), _, _, _ as rd) ->
            let key = reader.txn in
            let prev = Option.value ~default:[] (Hashtbl.find_opt target_reads key) in
            Hashtbl.replace target_reads key (rd :: prev))
          (List.rev target.reads);
        (* target.reads is sorted; per-transaction sublists stay sorted. *)
        let target_reads_of x = Option.value ~default:[] (Hashtbl.find_opt target_reads x) in
        let target_final : (Item.t, Txn.t option) Hashtbl.t = Hashtbl.create 16 in
        List.iter (fun (item, w) -> Hashtbl.replace target_final item w) target.final;
        let store = Prefix_replay.create () in
        let final_matches () =
          Hashtbl.length store.Prefix_replay.state = Hashtbl.length target_final
          && Hashtbl.fold
               (fun item w acc ->
                 acc
                 && Hashtbl.find_opt target_final item
                    = Some (Option.map (fun (i : Txn.Incarnation.t) -> i.txn) w))
               store.Prefix_replay.state true
        in
        let rec dfs placed_rev remaining =
          match remaining with
          | [] -> if final_matches () then Some (List.rev placed_rev) else None
          | _ ->
              let rec try_each before_rev = function
                | [] -> None
                | ((x, block) as cand) :: after ->
                    let mark = Prefix_replay.mark store in
                    let reads = Prefix_replay.replay_block store block in
                    let res =
                      if Stdlib.( = ) reads (target_reads_of x) then
                        dfs (x :: placed_rev) (List.rev_append before_rev after)
                      else None
                    in
                    (match res with
                    | Some _ -> res
                    | None ->
                        Prefix_replay.rollback store mark;
                        try_each (cand :: before_rev) after)
              in
              try_each [] remaining
        in
        (match dfs [] blocks with Some order -> Serializable order | None -> Not_serializable)
  end

let conflict_serializable h = Serialization_graph.is_acyclic h

(** View equivalence and view serializability — the paper's ultimate
    correctness criterion for C(H) (§3). Exact decisions by a prefix-pruned
    DFS over serial orders (with a conflict-serializable fast path) for
    scenario-size histories; the blind permutation search is kept as the
    reference implementation. *)

open Hermes_kernel

val serial_of_order : History.t -> Txn.t list -> History.t
(** The serial history placing each transaction's complete history
    (including aborted incarnations) as one contiguous block, in the given
    order. *)

type view_data = {
  reads : (Txn.Incarnation.t * Item.t * int * Txn.t option) list;
  final : (Item.t * Txn.t option) list;
}

val view_data : History.t -> view_data
val view_equivalent : History.t -> History.t -> bool

type decision =
  | Serializable of Txn.t list
  | Not_serializable
  | Too_large

val equal_decision : decision -> decision -> bool
val pp_decision : decision Fmt.t

val view_serializable : ?limit:int -> History.t -> decision
(** Exact decision when the history has at most [limit] (default 12)
    transactions; [Too_large] otherwise. Prefix-pruned DFS: a serial
    prefix is extended only if the appended transaction's replayed reads
    match the target view, each extension replaying just the added block
    against a journalled (undoable) store. When SG(H) is acyclic its
    topological order is tried first and confirmed by a single replay. *)

val view_serializable_naive : ?limit:int -> History.t -> decision
(** The pre-optimization reference: lazy permutation enumeration, full
    replay per candidate order, default [limit] 8. Same decisions as
    {!view_serializable} (witness orders may differ); kept for the
    equivalence property tests and the M9 benchmark baseline. *)

val conflict_serializable : History.t -> bool
(** SG(H) acyclicity. *)

(* Wire vocabulary of the distributed transaction manager.

   The 2PC vocabulary is exactly the paper's (§2): the Coordinator sends
   BEGIN, data-manipulation commands, PREPARE and COMMIT/ROLLBACK; the
   Participant (a 2PC Agent) answers READY or REFUSE to PREPARE and
   acknowledges decisions with COMMIT-ACK/ROLLBACK-ACK. Command submission
   and results ride the same network.

   Lives in the kernel so the pure protocol machines (hermes.protocol)
   can speak the wire types without depending on the simulated network;
   [Hermes_net.Message] re-exports it for transport-side callers. *)

type address = Coordinator of int | Agent of Site.t | Acceptor of { gid : int; idx : int }

let pp_address ppf = function
  | Coordinator gid -> Fmt.pf ppf "coord(T%d)" gid
  | Agent s -> Fmt.pf ppf "agent(%a)" Site.pp s
  | Acceptor { gid; idx } -> Fmt.pf ppf "acceptor(T%d.%d)" gid idx

let equal_address a b =
  match (a, b) with
  | Coordinator x, Coordinator y -> Int.equal x y
  | Agent x, Agent y -> Site.equal x y
  | Acceptor x, Acceptor y -> Int.equal x.gid y.gid && Int.equal x.idx y.idx
  | (Coordinator _ | Agent _ | Acceptor _), _ -> false

(* Why a Participant refused PREPARE (or a scheduler refused service). *)
type refusal =
  | Extension_refused  (* an "older" (bigger-SN) subtransaction already committed: §5.3 *)
  | Interval_refused  (* alive time intersection failed: §4.2 *)
  | Dead_refused  (* the subtransaction was unilaterally aborted: CI(2) *)
  | Scheduler_refused of string  (* baseline schedulers (CGM, ticket order) *)
  | Wrong_epoch  (* the message's placement epoch is behind the agent's installed map *)
  | Drift_refused  (* the PREPARE's serial number is stale beyond the drift bound *)
  | Uncertified_refused  (* a bare vote/decision where a certificate was required *)

let pp_refusal ppf = function
  | Extension_refused -> Fmt.string ppf "prepare-out-of-order"
  | Interval_refused -> Fmt.string ppf "alive-interval"
  | Dead_refused -> Fmt.string ppf "unilaterally-aborted"
  | Scheduler_refused s -> Fmt.pf ppf "scheduler(%s)" s
  | Wrong_epoch -> Fmt.string ppf "wrong-epoch"
  | Drift_refused -> Fmt.string ppf "sn-drift"
  | Uncertified_refused -> Fmt.string ppf "uncertified"

type payload =
  | Begin of { epoch : int }
      (* carries the coordinator's placement epoch; 0 = the static map *)
  | Exec of { step : int; cmd : Command.t; epoch : int }
  | Exec_ok of { step : int; result : Command.result }
  | Exec_failed of { step : int; reason : string }
  | Prepare of Sn.t
  | Ready
  | Ready_certified of { sn : Sn.t }
      (* the vote carries the PREPARE's serial number it answers — the
         prepare certificate. Unforgeable by fiat: an adversarial agent
         only ever sends the bare [Ready]. *)
  | Refuse of refusal
  | Commit
  | Commit_certified of { voters : Site.t list }
      (* the decision carries the vote set it was derived from — the
         decision certificate. Unforgeable by fiat: an equivocating
         coordinator can only send certificates for decisions its durable
         log actually holds, so its forged branch is always bare. *)
  | Rollback
  | Rollback_certified
  | Commit_ack
  | Rollback_ack
  | Decision_req  (* termination protocol: an in-doubt participant asks for the outcome *)
  | Decision_resp of { committed : bool }
  (* Paxos Commit (Gray & Lamport): the decision register's ballot
     traffic between the leader (the coordinator) and its acceptors.
     Ballot 0 is the leader's fast path; recovery ballots are run by
     acceptors prodded with DECISION-REQ and are spread over disjoint
     ballot spaces (round * n + idx + 1). *)
  | Px_accept of { ballot : int; committed : bool }  (* phase 2a: accept this decision *)
  | Px_accepted of { ballot : int; idx : int }  (* phase 2b: acceptor [idx] accepted *)
  | Px_query of { ballot : int }  (* phase 1a: recovery leader solicits promises *)
  | Px_promise of { ballot : int; promised : int; accepted : (int * bool) option; idx : int }
      (* phase 1b: promise ([promised = ballot]) or nack ([promised > ballot]),
         carrying the highest (ballot, decision) the acceptor has accepted *)
  | Px_decision of { committed : bool }  (* learn: the register's chosen value *)

(* Epoch 0 (the static map) prints exactly as before the placement layer
   existed — the golden trace digests depend on it. *)
let pp_payload ppf = function
  | Begin { epoch = 0 } -> Fmt.string ppf "BEGIN"
  | Begin { epoch } -> Fmt.pf ppf "BEGIN @e%d" epoch
  | Exec { step; cmd; epoch = 0 } -> Fmt.pf ppf "EXEC #%d %a" step Command.pp cmd
  | Exec { step; cmd; epoch } -> Fmt.pf ppf "EXEC @e%d #%d %a" epoch step Command.pp cmd
  | Exec_ok { step; result } -> Fmt.pf ppf "OK #%d %a" step Command.pp_result result
  | Exec_failed { step; reason } -> Fmt.pf ppf "FAILED #%d %s" step reason
  | Prepare sn -> Fmt.pf ppf "PREPARE sn=%a" Sn.pp sn
  | Ready -> Fmt.string ppf "READY"
  | Ready_certified { sn } -> Fmt.pf ppf "READY cert(sn=%a)" Sn.pp sn
  | Refuse r -> Fmt.pf ppf "REFUSE %a" pp_refusal r
  | Commit -> Fmt.string ppf "COMMIT"
  | Commit_certified { voters } ->
      Fmt.pf ppf "COMMIT cert(%a)" (Fmt.list ~sep:Fmt.comma Site.pp) voters
  | Rollback -> Fmt.string ppf "ROLLBACK"
  | Rollback_certified -> Fmt.string ppf "ROLLBACK cert"
  | Commit_ack -> Fmt.string ppf "COMMIT-ACK"
  | Rollback_ack -> Fmt.string ppf "ROLLBACK-ACK"
  | Decision_req -> Fmt.string ppf "DECISION-REQ"
  | Decision_resp { committed } ->
      Fmt.pf ppf "DECISION-RESP %s" (if committed then "commit" else "rollback")
  | Px_accept { ballot; committed } ->
      Fmt.pf ppf "PX-ACCEPT b=%d %s" ballot (if committed then "commit" else "rollback")
  | Px_accepted { ballot; idx } -> Fmt.pf ppf "PX-ACCEPTED b=%d a%d" ballot idx
  | Px_query { ballot } -> Fmt.pf ppf "PX-QUERY b=%d" ballot
  | Px_promise { ballot; promised; accepted; idx } ->
      Fmt.pf ppf "PX-PROMISE b=%d promised=%d a%d%a" ballot promised idx
        (Fmt.option (fun ppf (b, c) ->
             Fmt.pf ppf " accepted=(%d,%s)" b (if c then "commit" else "rollback")))
        accepted
  | Px_decision { committed } ->
      Fmt.pf ppf "PX-DECISION %s" (if committed then "commit" else "rollback")

type t = { src : address; dst : address; gid : int; payload : payload }

let pp ppf m =
  Fmt.pf ppf "%a -> %a [T%d] %a" pp_address m.src pp_address m.dst m.gid pp_payload m.payload

(** Messages of the DTM — the paper's 2PC vocabulary (§2): BEGIN, command
    submission, PREPARE, READY/REFUSE, COMMIT/ROLLBACK and their ACKs.

    Kernel-resident so the pure protocol layer can use the wire types
    without a network dependency; {!Hermes_net.Message} re-exports it. *)

type address =
  | Coordinator of int
  | Agent of Site.t
  | Acceptor of { gid : int; idx : int }
      (** replicated-commit protocols: acceptor [idx] of transaction
          [gid]'s decision register *)

val pp_address : address Fmt.t
val equal_address : address -> address -> bool

(** Why a Participant refused PREPARE (or a baseline scheduler refused
    service). *)
type refusal =
  | Extension_refused  (** a bigger-SN subtransaction already committed (§5.3) *)
  | Interval_refused  (** alive time intersection failed (§4.2) *)
  | Dead_refused  (** the subtransaction was unilaterally aborted (CI 2) *)
  | Scheduler_refused of string  (** baseline schedulers *)
  | Wrong_epoch
      (** the message carried a placement epoch behind the agent's
          installed shard map; the client must re-resolve and resubmit *)
  | Drift_refused
      (** the PREPARE's serial number is stale beyond the configured
          drift bound *)
  | Uncertified_refused
      (** a bare vote or decision arrived where a certificate was
          required *)

val pp_refusal : refusal Fmt.t

type payload =
  | Begin of { epoch : int }
      (** [epoch] is the coordinator's placement epoch; 0 = static map *)
  | Exec of { step : int; cmd : Command.t; epoch : int }
      (** [step] is the per-site command index, so a duplicated EXEC (or
          its reply) can be recognized and ignored *)
  | Exec_ok of { step : int; result : Command.result }
  | Exec_failed of { step : int; reason : string }
  | Prepare of Sn.t
  | Ready
  | Ready_certified of { sn : Sn.t }
      (** the vote carries the serial number of the PREPARE it answers —
          the prepare certificate; unforgeable by fiat (an adversarial
          agent only ever sends bare [Ready]) *)
  | Refuse of refusal
  | Commit
  | Commit_certified of { voters : Site.t list }
      (** the decision carries the vote set it was derived from — the
          decision certificate; unforgeable by fiat (an equivocating
          coordinator's forged branch is always bare) *)
  | Rollback
  | Rollback_certified
  | Commit_ack
  | Rollback_ack
  | Decision_req
      (** termination protocol: an in-doubt participant asks the
          coordinator for the outcome of its round *)
  | Decision_resp of { committed : bool }
  | Px_accept of { ballot : int; committed : bool }
      (** Paxos Commit phase 2a: a (leader or recovery) proposer asks an
          acceptor to accept this decision at [ballot] *)
  | Px_accepted of { ballot : int; idx : int }  (** phase 2b *)
  | Px_query of { ballot : int }  (** recovery phase 1a *)
  | Px_promise of { ballot : int; promised : int; accepted : (int * bool) option; idx : int }
      (** recovery phase 1b: a promise when [promised = ballot], a nack
          when [promised > ballot]; carries the highest accepted
          (ballot, decision), which the recovery leader must re-propose *)
  | Px_decision of { committed : bool }
      (** learn: the register's chosen value, acceptor-to-acceptor *)

val pp_payload : payload Fmt.t

type t = { src : address; dst : address; gid : int; payload : payload }

val pp : t Fmt.t

(** Messages of the DTM — the paper's 2PC vocabulary (§2): BEGIN, command
    submission, PREPARE, READY/REFUSE, COMMIT/ROLLBACK and their ACKs.

    Kernel-resident so the pure protocol layer can use the wire types
    without a network dependency; {!Hermes_net.Message} re-exports it. *)

type address = Coordinator of int | Agent of Site.t

val pp_address : address Fmt.t
val equal_address : address -> address -> bool

(** Why a Participant refused PREPARE (or a baseline scheduler refused
    service). *)
type refusal =
  | Extension_refused  (** a bigger-SN subtransaction already committed (§5.3) *)
  | Interval_refused  (** alive time intersection failed (§4.2) *)
  | Dead_refused  (** the subtransaction was unilaterally aborted (CI 2) *)
  | Scheduler_refused of string  (** baseline schedulers *)

val pp_refusal : refusal Fmt.t

type payload =
  | Begin
  | Exec of { step : int; cmd : Command.t }
      (** [step] is the per-site command index, so a duplicated EXEC (or
          its reply) can be recognized and ignored *)
  | Exec_ok of { step : int; result : Command.result }
  | Exec_failed of { step : int; reason : string }
  | Prepare of Sn.t
  | Ready
  | Refuse of refusal
  | Commit
  | Rollback
  | Commit_ack
  | Rollback_ack
  | Decision_req
      (** termination protocol: an in-doubt participant asks the
          coordinator for the outcome of its round *)
  | Decision_resp of { committed : bool }

val pp_payload : payload Fmt.t

type t = { src : address; dst : address; gid : int; payload : payload }

val pp : t Fmt.t

(* The Local Transaction Manager: the transactional face of one LDBS.

   The LTM realizes the paper's assumptions about local systems:

   - DDF: commands decompose deterministically against the current state
     ({!Decompose});
   - RR:  aborts restore before images ({!Hermes_store.Undo});
   - RTT: execution is a pure function of state and command (no hidden
     time dependence);
   - SRS: strict two-phase locking — every lock is held until the
     transaction terminates — yields rigorous histories (checked
     independently by {!Hermes_history.Rigorous} in the test suite);
   - UAN: any involuntary abort invokes the registered notification
     callback;
   - TW:  commit of a live transaction always succeeds (the failure
     injector separately bounds aborts per subtransaction).

   Everything is asynchronous against the discrete-event engine: [exec]
   acquires locks (possibly waiting), spends simulated latency, applies
   the elementary operations, and calls back. Unilateral aborts can strike
   at any point; every continuation re-checks the transaction state.

   The LTM knows nothing about the DTM: global subtransaction incarnations
   are ordinary transactions to it, distinguished only by the owner tag
   they carry for tracing. *)

open Hermes_kernel
open Hermes_store
module Op = Hermes_history.Op
module Engine = Hermes_sim.Engine
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer

let src = Logs.Src.create "hermes.ltm" ~doc:"Local transaction manager events"

module Log = (val Logs.src_log src : Logs.LOG)

type abort_reason = Lock_timeout | Deadlock_victim | Dlu_denied | Unilateral | Owner_abort

let pp_abort_reason ppf r =
  Fmt.string ppf
    (match r with
    | Lock_timeout -> "lock timeout"
    | Deadlock_victim -> "deadlock victim"
    | Dlu_denied -> "DLU denied"
    | Unilateral -> "unilateral abort"
    | Owner_abort -> "owner abort")

type exec_result = Done of Command.result | Failed of abort_reason

type commit_result = Committed | Commit_refused of abort_reason

type state = Active | Committed_state | Aborted_state of abort_reason

type txn = {
  id : int;
  owner : Txn.Incarnation.t;
  undo : Undo.t;
  mutable state : state;
  mutable busy : bool;  (* a command is in flight *)
  mutable footprint : Item.Set.t;  (* items accessed so far *)
  mutable uan : (unit -> unit) option;  (* unilateral abort notification *)
  mutable pending : (exec_result -> unit) option;  (* in-flight exec's callback *)
  mutable wait_timer : Engine.timer option;
  mutable last_op_done : Time.t;
  mutable held_open : bool;  (* agent keeps it open in (simulated) prepared state *)
  mutable n_commands : int;
}

type stats = {
  mutable begun : int;
  mutable committed : int;
  mutable aborted : int;
  mutable unilateral_aborts : int;
  mutable lock_timeouts : int;
  mutable deadlock_victims : int;
  mutable commands : int;
}

type t = {
  engine : Engine.t;
  db : Database.t;
  config : Ltm_config.t;
  trace : Trace.t;
  locks : Lock.t;
  bound : Bound.t;
  txns : (int, txn) Hashtbl.t;
  mutable next_id : int;
  stats : stats;
  mutable on_begin : (txn -> unit) option;  (* failure-injector hook *)
  mutable on_held_open : (txn -> unit) option;  (* failure-injector hook *)
  obs : Obs.t option;
}

let create ~engine ~db ~config ~trace ?obs () =
  {
    engine;
    db;
    config;
    trace;
    locks = Lock.create ();
    bound = Bound.create ();
    txns = Hashtbl.create 64;
    next_id = 0;
    stats =
      {
        begun = 0;
        committed = 0;
        aborted = 0;
        unilateral_aborts = 0;
        lock_timeouts = 0;
        deadlock_victims = 0;
        commands = 0;
      };
    on_begin = None;
    on_held_open = None;
    obs;
  }

let site t = Database.site t.db
let stats t = t.stats
let bound_registry t = t.bound
let database t = t.db

let owner txn = txn.owner
let last_op_done txn = txn.last_op_done
let is_alive txn = txn.state = Active && not txn.busy
let is_active txn = txn.state = Active
let is_held_open txn = txn.held_open

let mark_held_open t txn v =
  txn.held_open <- v;
  if v then match t.on_held_open with Some hook -> hook txn | None -> ()

let set_begin_hook t hook = t.on_begin <- Some hook
let set_held_open_hook t hook = t.on_held_open <- Some hook
let set_uan txn cb = txn.uan <- Some cb

let begin_txn t ~owner =
  let txn =
    {
      id = t.next_id;
      owner;
      undo = Undo.create ();
      state = Active;
      busy = false;
      footprint = Item.Set.empty;
      uan = None;
      pending = None;
      wait_timer = None;
      last_op_done = Engine.now t.engine;
      held_open = false;
      n_commands = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.stats.begun <- t.stats.begun + 1;
  Hashtbl.replace t.txns txn.id txn;
  (match t.on_begin with Some hook -> hook txn | None -> ());
  txn

let footprint txn = Item.Set.elements txn.footprint

let live_txns t =
  Hashtbl.fold (fun _ txn acc -> if txn.state = Active then txn :: acc else acc) t.txns []
  |> List.sort (fun a b -> Int.compare a.id b.id)

(* Grant callbacks from the lock table run inside release/cancel; each is
   an engine-deferring closure, so calling them synchronously is safe. *)
let run_grants cbs = List.iter (fun cb -> cb ()) cbs

let cancel_wait_timer txn =
  match txn.wait_timer with
  | Some timer ->
      Engine.cancel timer;
      txn.wait_timer <- None
  | None -> ()

(* The single abort path. Order matters: cancel waits, roll back the
   store, trace the abort, then release locks (strictness: the undo is in
   place before anyone else can touch the data). *)
let abort_internal t txn reason ~notify =
  if txn.state = Active then begin
    Log.debug (fun m ->
        m "[%a %a] abort %a: %a" Time.pp (Engine.now t.engine) Site.pp (site t) Txn.Incarnation.pp txn.owner
          pp_abort_reason reason);
    txn.state <- Aborted_state reason;
    t.stats.aborted <- t.stats.aborted + 1;
    (match reason with
    | Unilateral -> t.stats.unilateral_aborts <- t.stats.unilateral_aborts + 1
    | Lock_timeout -> t.stats.lock_timeouts <- t.stats.lock_timeouts + 1
    | Deadlock_victim -> t.stats.deadlock_victims <- t.stats.deadlock_victims + 1
    | Dlu_denied | Owner_abort -> ());
    (match reason with
    | Unilateral | Lock_timeout | Deadlock_victim ->
        Obs.emit t.obs ~at:(Engine.now t.engine) (fun () ->
            Tracer.Txn_aborted
              { site = site t; owner = Fmt.str "%a" Txn.Incarnation.pp txn.owner;
                reason = Fmt.str "%a" pp_abort_reason reason })
    | Dlu_denied | Owner_abort -> ());
    cancel_wait_timer txn;
    run_grants (Lock.cancel_waits t.locks ~owner:txn.id);
    Undo.rollback txn.undo t.db;
    Trace.record t.trace ~at:(Engine.now t.engine) (Op.Local_abort txn.owner);
    run_grants (Lock.release_all t.locks ~owner:txn.id);
    (match txn.pending with
    | Some cb ->
        txn.pending <- None;
        txn.busy <- false;
        Engine.schedule_unit t.engine ~delay:0 (fun () -> cb (Failed reason))
    | None -> ());
    if notify then
      match txn.uan with
      | Some cb -> Engine.schedule_unit t.engine ~delay:0 cb
      | None -> ()
  end

let abort t txn = abort_internal t txn Owner_abort ~notify:false

(* The failure injector's entry point: a spontaneous, LDBS-internal abort
   (log overflow, system bug, ... — paper §1). Notifies via UAN. *)
let unilateral_abort t txn =
  if txn.state = Active then begin
    abort_internal t txn Unilateral ~notify:true;
    true
  end
  else false

let commit t txn ~on_done =
  match txn.state with
  | Aborted_state reason -> Engine.schedule_unit t.engine ~delay:0 (fun () -> on_done (Commit_refused reason))
  | Committed_state -> Engine.schedule_unit t.engine ~delay:0 (fun () -> on_done Committed)
  | Active ->
      if txn.busy then invalid_arg "Ltm.commit: command still in flight";
      Log.debug (fun m ->
          m "[%a %a] commit %a" Time.pp (Engine.now t.engine) Site.pp (site t) Txn.Incarnation.pp txn.owner);
      txn.state <- Committed_state;
      t.stats.committed <- t.stats.committed + 1;
      Undo.discard txn.undo;
      Trace.record t.trace ~at:(Engine.now t.engine) (Op.Local_commit txn.owner);
      run_grants (Lock.release_all t.locks ~owner:txn.id);
      Engine.schedule_unit t.engine ~delay:0 (fun () -> on_done Committed)

(* ------------------------------------------------------------------ *)
(* Command execution                                                   *)
(* ------------------------------------------------------------------ *)

(* Apply the elementary operations of [cmd] with all planned locks held:
   read rows (tracing reads-from), update/insert/delete with undo
   logging. Returns the command result. *)
let apply t txn cmd ~planned =
  let table = Command.table cmd in
  let now = Engine.now t.engine in
  let touch key = txn.footprint <- Item.Set.add (Database.item t.db ~table ~key) txn.footprint in
  let trace_read key row =
    touch key;
    Trace.record t.trace ~at:now
      (Op.read ~value:(Row.value row) ~inc:txn.owner ~item:(Database.item t.db ~table ~key)
         ~from:(Row.writer row) ())
  in
  let trace_write ?value key =
    touch key;
    Trace.record t.trace ~at:now (Op.write ?value ~inc:txn.owner ~item:(Database.item t.db ~table ~key) ())
  in
  let write key value =
    let before = Database.write t.db ~table ~key (Row.make ~value ~writer:txn.owner) in
    Undo.record txn.undo ~table ~key ~before;
    trace_write ~value key
  in
  match cmd with
  | Command.Select { keys; _ } ->
      let rows =
        List.filter_map
          (fun k ->
            match Database.read t.db ~table ~key:k with
            | Some row ->
                trace_read k row;
                Some (k, Row.value row)
            | None -> None)
          (List.sort_uniq Int.compare keys)
      in
      Command.Rows rows
  | Command.Select_range _ ->
      let rows =
        List.filter_map
          (fun k ->
            match Database.read t.db ~table ~key:k with
            | Some row ->
                trace_read k row;
                Some (k, Row.value row)
            | None -> None)
          planned
      in
      Command.Rows rows
  | Command.Update_range { delta; _ } ->
      let n =
        List.fold_left
          (fun n k ->
            match Database.read t.db ~table ~key:k with
            | Some row ->
                trace_read k row;
                write k (Row.value row + delta);
                n + 1
            | None -> n)
          0 planned
      in
      Command.Count n
  | Command.Update { key; delta; _ } -> (
      match Database.read t.db ~table ~key with
      | Some row ->
          trace_read key row;
          write key (Row.value row + delta);
          Command.Count 1
      | None -> Command.Count 0)
  | Command.Assign { key; value; _ } ->
      if Database.mem t.db ~table ~key then begin
        write key value;
        Command.Count 1
      end
      else Command.Count 0
  | Command.Insert { key; value; _ } ->
      write key value;
      Command.Count 1
  | Command.Delete { key; _ } -> (
      match Database.delete t.db ~table ~key with
      | Some _ as before ->
          Undo.record txn.undo ~table ~key ~before;
          trace_write key;
          Command.Count 1
      | None -> Command.Count 0)

(* DLU (checked inside [exec], both before lock acquisition and again at
   apply time — the item may have become bound while the command waited):
   a *local* transaction may not update bound data. *)
let exec t txn cmd ~on_done =
  match txn.state with
  | Aborted_state reason -> Engine.schedule_unit t.engine ~delay:0 (fun () -> on_done (Failed reason))
  | Committed_state -> invalid_arg "Ltm.exec: transaction already committed"
  | Active ->
      if txn.busy then invalid_arg "Ltm.exec: previous command still in flight";
      txn.busy <- true;
      txn.pending <- Some on_done;
      txn.n_commands <- txn.n_commands + 1;
      t.stats.commands <- t.stats.commands + 1;
      let table = Command.table cmd in
      let targets = Decompose.plan t.db cmd in
      let planned = List.map fst targets in
      let is_local = Txn.is_local txn.owner.Txn.Incarnation.txn in
      let dlu_blocked () =
        (match t.config.Ltm_config.dlu with Ltm_config.Ignore -> false | Ltm_config.Deny | Ltm_config.Block -> true)
        && is_local
        && List.exists
             (fun (key, mode) -> mode = Lock.Exclusive && Bound.is_bound t.bound ~table ~key)
             targets
      in
      (* DLU gate: Deny aborts immediately; Block polls until the data are
         unbound, with the lock timeout as the total wait budget (a local
         transaction already holding locks could otherwise stall a
         recovering subtransaction's resubmission forever). *)
      let dlu_budget = ref t.config.Ltm_config.lock_timeout in
      let rec dlu_gate k =
        if not (dlu_blocked ()) then k ()
        else if t.config.Ltm_config.dlu = Ltm_config.Block && !dlu_budget > 0 then begin
          dlu_budget := !dlu_budget - t.config.Ltm_config.dlu_retry_interval;
          Engine.schedule_unit t.engine ~delay:t.config.Ltm_config.dlu_retry_interval (fun () ->
              if txn.state = Active then dlu_gate k)
        end
        else begin
          Bound.note_denial t.bound;
          abort_internal t txn Dlu_denied ~notify:false
        end
      in
      let finish_ok () =
        (* Spend command + per-op latency, then apply. *)
        let n_ops = max 1 (List.length (Decompose.elementary_planned t.db cmd ~planned)) in
        let dur = t.config.Ltm_config.cmd_latency + (t.config.Ltm_config.op_latency * n_ops) in
        Engine.schedule_unit t.engine ~delay:dur (fun () ->
            if txn.state = Active then
              (* The item may have become bound while the command waited. *)
              dlu_gate (fun () ->
                  let result = apply t txn cmd ~planned in
                  txn.last_op_done <- Engine.now t.engine;
                  txn.busy <- false;
                  txn.pending <- None;
                  if not t.config.Ltm_config.rigorous then
                    run_grants (Lock.release_shared t.locks ~owner:txn.id);
                  on_done (Done result)))
      in
      let rec acquire = function
        | [] -> finish_ok ()
        | (key, mode) :: rest -> (
            let lkey = (table, key) in
            let wait_started = Engine.now t.engine in
            let continue () =
              if txn.state = Active then begin
                cancel_wait_timer txn;
                Obs.emit t.obs ~at:(Engine.now t.engine) (fun () ->
                    Tracer.Lock_wait
                      { site = site t; owner = Fmt.str "%a" Txn.Incarnation.pp txn.owner; table; key;
                        waited = Time.diff (Engine.now t.engine) wait_started });
                acquire rest
              end
            in
            let on_grant () = Engine.schedule_unit t.engine ~delay:0 continue in
            match Lock.acquire t.locks lkey ~owner:txn.id ~mode ~on_grant with
            | Lock.Granted -> acquire rest
            | Lock.Waiting ->
                (* Deadlock handling per policy; the lock-wait timeout is
                   always armed as a backstop (FIFO queue-order waits are
                   invisible to every strategy below). *)
                let arm_timeout () =
                  txn.wait_timer <-
                    Some
                      (Engine.schedule t.engine ~delay:t.config.Ltm_config.lock_timeout (fun () ->
                           if txn.state = Active then abort_internal t txn Lock_timeout ~notify:false))
                in
                let conflicting_holders () =
                  List.filter_map (fun id -> Hashtbl.find_opt t.txns id)
                    (Lock.blockers t.locks lkey ~owner:txn.id ~mode)
                in
                (match t.config.Ltm_config.deadlock with
                | Ltm_config.Timeout_only -> arm_timeout ()
                | Ltm_config.Detection_and_timeout ->
                    if Deadlock.would_deadlock t.locks ~waiter:txn.id ~key:lkey ~mode then begin
                      Obs.emit t.obs ~at:(Engine.now t.engine) (fun () ->
                          Tracer.Deadlock_resolved
                            { site = site t; victim = Fmt.str "%a" Txn.Incarnation.pp txn.owner;
                              policy = "detection" });
                      abort_internal t txn Deadlock_victim ~notify:false
                    end
                    else arm_timeout ()
                | Ltm_config.Wait_die ->
                    (* Non-preemptive: a requester younger (bigger id,
                       begun later) than any conflicting holder dies. *)
                    if List.exists (fun holder -> holder.id < txn.id) (conflicting_holders ()) then begin
                      Obs.emit t.obs ~at:(Engine.now t.engine) (fun () ->
                          Tracer.Deadlock_resolved
                            { site = site t; victim = Fmt.str "%a" Txn.Incarnation.pp txn.owner;
                              policy = "wait-die" });
                      abort_internal t txn Deadlock_victim ~notify:false
                    end
                    else arm_timeout ()
                | Ltm_config.Wound_wait ->
                    (* Preemptive: an older requester wounds every younger
                       conflicting holder — an involuntary abort, so it
                       goes through the unilateral path (UAN fires; a
                       wounded prepared subtransaction just resubmits). *)
                    List.iter
                      (fun holder ->
                        if holder.id > txn.id then begin
                          Obs.emit t.obs ~at:(Engine.now t.engine) (fun () ->
                              Tracer.Deadlock_resolved
                                { site = site t; victim = Fmt.str "%a" Txn.Incarnation.pp holder.owner;
                                  policy = "wound-wait" });
                          ignore (unilateral_abort t holder)
                        end)
                      (conflicting_holders ());
                    arm_timeout ()))
      in
      dlu_gate (fun () -> acquire targets)

(** The Local Transaction Manager: the transactional face of one LDBS,
    realizing the paper's assumptions — DDF, RR, RTT, SRS (strict 2PL,
    hence rigorous histories), UAN and TW. Incarnations of global
    subtransactions are ordinary transactions to it.

    Everything is asynchronous against the discrete-event engine;
    unilateral aborts may strike at any point and surface through the
    in-flight command's callback and/or the UAN callback. *)

open Hermes_kernel

type t
type txn

type abort_reason = Lock_timeout | Deadlock_victim | Dlu_denied | Unilateral | Owner_abort

val pp_abort_reason : abort_reason Fmt.t

type exec_result = Done of Command.result | Failed of abort_reason
type commit_result = Committed | Commit_refused of abort_reason

type stats = {
  mutable begun : int;
  mutable committed : int;
  mutable aborted : int;
  mutable unilateral_aborts : int;
  mutable lock_timeouts : int;
  mutable deadlock_victims : int;
  mutable commands : int;
}

val create :
  engine:Hermes_sim.Engine.t ->
  db:Hermes_store.Database.t ->
  config:Ltm_config.t ->
  trace:Trace.t ->
  ?obs:Hermes_obs.Obs.t ->
  unit ->
  t
(** With [?obs], lock waits, deadlock resolutions and involuntary aborts
    emit {!Hermes_obs.Tracer} events. *)

val site : t -> Site.t
val stats : t -> stats
val bound_registry : t -> Bound.t
val database : t -> Hermes_store.Database.t

val begin_txn : t -> owner:Txn.Incarnation.t -> txn

val exec : t -> txn -> Command.t -> on_done:(exec_result -> unit) -> unit
(** Acquire the command's locks (possibly waiting; lock timeouts and
    deadlock resolution abort the transaction), spend simulated latency,
    apply the elementary operations, call back. At most one command in
    flight per transaction. *)

val commit : t -> txn -> on_done:(commit_result -> unit) -> unit
(** Commits a live transaction (releasing all locks); reports
    [Commit_refused] if it was already aborted. *)

val abort : t -> txn -> unit
(** Owner-initiated rollback (no UAN). Idempotent on terminated txns. *)

val unilateral_abort : t -> txn -> bool
(** The failure injector's entry point: spontaneous LDBS-internal abort.
    Fires UAN. Returns false if the transaction already terminated. *)

val owner : txn -> Txn.Incarnation.t
val last_op_done : txn -> Time.t

val is_alive : txn -> bool
(** The paper's aliveness: all submitted commands completely executed and
    neither committed nor aborted. *)

val is_active : txn -> bool

val mark_held_open : t -> txn -> bool -> unit
(** Tag set by the 2PC Agent while it simulates the prepared state; the
    failure injector can target held-open transactions (it is told through
    the held-open hook). *)

val set_begin_hook : t -> (txn -> unit) -> unit
(** Failure-injector hook, fired on every [begin_txn]. *)

val set_held_open_hook : t -> (txn -> unit) -> unit
(** Failure-injector hook, fired when a transaction is marked held-open. *)

val set_uan : txn -> (unit -> unit) -> unit
(** Register the Unilateral Abort Notification callback (the UAN
    assumption). *)

val footprint : txn -> Item.t list
(** Items the transaction has accessed — the bound-data set at prepare. *)

val live_txns : t -> txn list
val is_held_open : txn -> bool

(* The global trace: every component appends timestamped history
   operations (elementary reads/writes from the LTMs, local terminations,
   Prepare records from the 2PC Agents, global decisions from the
   Coordinators). The offline checkers consume the resulting history.

   One trace is shared by the whole simulated HMDBS — it is the omniscient
   observer's view, which no component in the system itself has. *)

open Hermes_history

type t = { mutable events : History.event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t ~at op =
  t.events <- { History.op; at; seq = t.count } :: t.events;
  t.count <- t.count + 1

let count t = t.count

(* Events are appended in nondecreasing time order (the engine fires in
   order), so a reverse is enough; [of_events] re-sorts by (time, seq)
   anyway — the recording order is the explicit tie-break. *)
let history t = History.of_events (List.rev t.events)

(* The global trace: every component appends timestamped history
   operations (elementary reads/writes from the LTMs, local terminations,
   Prepare records from the 2PC Agents, global decisions from the
   Coordinators). The offline checkers consume the resulting history.

   One trace is shared by the whole simulated HMDBS — it is the omniscient
   observer's view, which no component in the system itself has. *)

open Hermes_history

type t = { mutable events : History.event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t ~at op =
  t.events <- { History.op; at; seq = t.count } :: t.events;
  t.count <- t.count + 1

let count t = t.count

(* Events are appended in nondecreasing time order (the engine fires in
   order), so a reverse is enough; [of_events] re-sorts by (time, seq)
   anyway — the recording order is the explicit tie-break. *)
let history t = History.of_events (List.rev t.events)

(* Sharded execution keeps one trace per site; the omniscient history is
   their merge. Re-tag seq as [seq * shards + shard] — per-shard recording
   order is preserved and same-instant events across shards interleave by
   shard index, a deterministic (if arbitrary) tie-break; [of_events]
   then re-sorts by (time, seq). *)
let merged ts =
  let n = List.length ts in
  let events =
    List.concat
      (List.mapi
         (fun shard t ->
           List.rev_map
             (fun (e : History.event) -> { e with History.seq = (e.seq * n) + shard })
             t.events)
         ts)
  in
  History.of_events events

(** The shared global trace: timestamped history operations appended by
    LTMs, 2PC Agents and Coordinators; consumed by the offline checkers. *)

open Hermes_kernel
open Hermes_history

type t

val create : unit -> t
val record : t -> at:Time.t -> Op.t -> unit
val count : t -> int
val history : t -> History.t

val merged : t list -> History.t
(** Merge per-site traces from a sharded run into one omniscient history:
    sequence numbers are re-tagged ([seq * shards + shard]) so per-site
    recording order is preserved and same-instant cross-site events get a
    deterministic tie-break. *)

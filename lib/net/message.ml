(* Transport-side alias for the kernel wire vocabulary: the message types
   live in [Hermes_kernel.Wire] so the pure protocol machines can speak
   them without depending on the network. *)

include Hermes_kernel.Wire

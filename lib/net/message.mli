(** Transport-side alias for {!Hermes_kernel.Wire}: the DTM's 2PC wire
    vocabulary (BEGIN, EXEC, PREPARE, READY/REFUSE, COMMIT/ROLLBACK and
    ACKs). The types live in the kernel so the pure protocol layer can
    use them without a network dependency. *)

include module type of Hermes_kernel.Wire
(** @inline *)

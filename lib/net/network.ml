(* The simulated network.

   The paper assumes messages are not corrupted, lost or reordered; by
   default we keep per-(src, dst) FIFO order and reliability, but delays
   between *different* links are independent — so a COMMIT from one
   coordinator can overtake a PREPARE from another at the same agent, the
   race §5.3's prepare-certification extension exists to survive.

   Opt-in fault injection relaxes the reliability assumption: messages
   can be dropped or duplicated (per-message coin flips), hit a delay
   spike, or fall into a partition window on their link; a destination
   can be marked down so deliveries to it are counted drops instead of
   reaching a handler. All faults are driven by the network's own seeded
   RNG — and every fault coin is guarded by its probability being
   positive, so a fault-free configuration draws exactly the pre-fault
   sequence and runs are byte-identical to a build without this file's
   fault paths. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram

let src = Logs.Src.create "hermes.net" ~doc:"Simulated network traffic"

module Log = (val Logs.src_log src : Logs.LOG)

type endpoint = Any_addr | Addr of Message.address

type partition = {
  between : endpoint * endpoint;  (* matched in either direction *)
  window : int * int;  (* [lo, hi) in ticks: sends inside it are dropped *)
}

type faults = {
  drop : float;  (* per-message drop probability *)
  dup : float;  (* per-message duplication probability *)
  spike_p : float;  (* per-message delay-spike probability *)
  spike_factor : int;  (* delay multiplier when a spike hits *)
  partitions : partition list;
  gray_sites : int list;
      (* gray-failed sites: every message to or from their agent runs
         [gray_factor] times slower, but nothing is ever lost — the
         failure detector never fires, only timeouts can save you *)
  gray_factor : int;  (* delay multiplier on gray-site links *)
}

let no_faults =
  {
    drop = 0.;
    dup = 0.;
    spike_p = 0.;
    spike_factor = 1;
    partitions = [];
    gray_sites = [];
    gray_factor = 1;
  }

type config = {
  base_delay : int;  (* ticks every message takes *)
  jitter : int;  (* additional uniform [0, jitter] ticks *)
  faults : faults;
}

let default_config = { base_delay = 500; jitter = 200; faults = no_faults }

type fabric = {
  here : int;  (* this network instance's shard *)
  locate : Message.address -> int;  (* owning shard of an address *)
  forward : shard:int -> arrival:Time.t -> Message.t -> unit;
      (* hand a message to a remote shard's inbox; the owning shard calls
         [deliver_remote] on its own network when it drains *)
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  fabric : fabric option;
  handlers : (Message.address, Message.t -> unit) Hashtbl.t;
  last_delivery : (Message.address * Message.address, Time.t) Hashtbl.t;
  in_flight : (Message.address, (Time.t * int) list) Hashtbl.t;
      (* per destination: every in-flight (arrival, gid), purged on
         delivery, for overtaking detection (the §5.3 race is cross-link,
         so per-link FIFO does not prevent it) *)
  down : (Message.address, unit) Hashtbl.t;
  gray : (Message.address, unit) Hashtbl.t;
      (* dynamically gray-marked addresses (e.g. coordinators hosted at a
         gray site, whose address carries no site id); agent addresses
         are matched statically against [faults.gray_sites] *)
  obs : Obs.t option;
  delay_hist : Histogram.t option;
  overtakes : Registry.Counter.t option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable lossy : bool;
      (* sticky: true once messages can fail to be delivered, so protocol
         layers know to arm loss-recovery timers (which would perturb
         determinism on a reliable run) *)
}

let config_lossy faults = faults.drop > 0. || faults.partitions <> []

let create ~engine ~rng ?obs ?fabric ~config () = {
  engine;
  rng;
  config;
  fabric;
  handlers = Hashtbl.create 32;
  last_delivery = Hashtbl.create 64;
  in_flight = Hashtbl.create 32;
  down = Hashtbl.create 4;
  gray = Hashtbl.create 4;
  obs;
  delay_hist = Option.map (fun o -> Registry.histogram (Obs.metrics o) "net.delay") obs;
  overtakes = Option.map (fun o -> Registry.counter (Obs.metrics o) "net.overtakes") obs;
  sent = 0;
  delivered = 0;
  dropped = 0;
  duplicated = 0;
  lossy = config_lossy config.faults;
}

let register t addr handler = Hashtbl.replace t.handlers addr handler
let unregister t addr = Hashtbl.remove t.handlers addr

let assume_lossy t = t.lossy <- true
let lossy t = t.lossy

let mark_down t addr =
  t.lossy <- true;
  Hashtbl.replace t.down addr ()

let mark_up t addr = Hashtbl.remove t.down addr
let is_down t addr = Hashtbl.mem t.down addr

(* Gray failure: [addr]'s links slow down by [gray_factor] but nothing is
   lost, so — unlike [mark_down] — the network stays non-lossy and no
   loss-recovery timers arm. *)
let mark_gray t addr = Hashtbl.replace t.gray addr ()

let is_gray t addr =
  Hashtbl.mem t.gray addr
  ||
  match addr with
  | Message.Agent s -> List.mem (Site.to_int s) t.config.faults.gray_sites
  | _ -> false

let count_drop t ~at ~dst ~gid ~reason =
  t.dropped <- t.dropped + 1;
  Obs.emit t.obs ~at (fun () ->
      Tracer.Message_dropped { dst = Fmt.str "%a" Message.pp_address dst; gid; reason })

let endpoint_matches ep addr = match ep with Any_addr -> true | Addr a -> a = addr

let partitioned t ~src ~dst ~now =
  List.exists
    (fun { between = a, b; window = lo, hi } ->
      let tick = Time.to_int now in
      tick >= lo && tick < hi
      && ((endpoint_matches a src && endpoint_matches b dst)
         || (endpoint_matches a dst && endpoint_matches b src)))
    t.config.faults.partitions

(* Remove one in-flight record (the delivered copy); identical tuples are
   interchangeable, so removing the first match is enough. *)
let purge_in_flight t dst entry =
  match Hashtbl.find_opt t.in_flight dst with
  | None -> ()
  | Some l ->
      let rec drop_one = function
        | [] -> []
        | e :: rest when e = entry -> rest
        | e :: rest -> e :: drop_one rest
      in
      (match drop_one l with
      | [] -> Hashtbl.remove t.in_flight dst
      | l' -> Hashtbl.replace t.in_flight dst l')

(* Destination-side intake: account overtaking against every in-flight
   message to the same destination and schedule the delivery (which
   re-checks the down set — a message in flight when its destination goes
   down is lost). Runs on the destination's engine: directly from
   [transmit] when the destination is local, via [deliver_remote] when it
   arrived over the fabric. *)
let intake t msg ~arrival =
  let { Message.dst; gid; _ } = msg in
  let now = Engine.now t.engine in
  let inbound = Option.value (Hashtbl.find_opt t.in_flight dst) ~default:[] in
  List.iter
    (fun (behind_arrival, behind_gid) ->
      if Time.(behind_arrival > arrival) then begin
        (match t.overtakes with Some c -> Registry.Counter.incr c | None -> ());
        Obs.emit t.obs ~at:now (fun () ->
            Tracer.Overtaking { dst = Fmt.str "%a" Message.pp_address dst; gid; behind_gid })
      end)
    inbound;
  Hashtbl.replace t.in_flight dst ((arrival, gid) :: inbound);
  Log.debug (fun m -> m "[%a] %a (delivery %a)" Time.pp now Message.pp msg Time.pp arrival);
  Engine.schedule_unit t.engine ~delay:(Time.diff arrival now) (fun () ->
      purge_in_flight t dst (arrival, gid);
      if is_down t dst then count_drop t ~at:arrival ~dst ~gid ~reason:"down"
      else begin
        t.delivered <- t.delivered + 1;
        match Hashtbl.find_opt t.handlers dst with
        | Some handler -> handler msg
        | None ->
            Fmt.failwith "Network.send: no handler for %a (message %a)" Message.pp_address dst
              Message.pp msg
      end)

let deliver_remote t ~arrival msg = intake t msg ~arrival

(* Put one copy of [msg] on the wire: draw its delay, clamp to per-link
   FIFO, then either hand it to the local intake or forward it to the
   destination's shard. Sender-side state (the delay RNG and the FIFO
   clamp) is keyed on this instance, so it stays shard-exclusive under
   the fabric. *)
let transmit t msg ~now =
  let { Message.src; dst; _ } = msg in
  let faults = t.config.faults in
  let delay =
    t.config.base_delay + if t.config.jitter > 0 then Rng.int t.rng ~bound:(t.config.jitter + 1) else 0
  in
  let delay =
    if faults.spike_p > 0. && Rng.bool t.rng ~p:faults.spike_p then delay * faults.spike_factor
    else delay
  in
  (* Gray links: a deterministic multiplier, no extra RNG draw — a
     gray-free configuration transmits byte-identically. *)
  let delay =
    if faults.gray_factor > 1 && (is_gray t src || is_gray t dst) then delay * faults.gray_factor
    else delay
  in
  (* Per-link FIFO: never deliver before the link's previous message. *)
  let arrival =
    let earliest = Time.add now delay in
    match Hashtbl.find_opt t.last_delivery (src, dst) with
    | Some last when Time.(last >= earliest) -> Time.add last 1
    | _ -> earliest
  in
  Hashtbl.replace t.last_delivery (src, dst) arrival;
  (match t.delay_hist with Some h -> Histogram.record h (Time.diff arrival now) | None -> ());
  match t.fabric with
  | Some f when f.locate dst <> f.here ->
      Log.debug (fun m ->
          m "[%a] %a (forward to shard %d, delivery %a)" Time.pp now Message.pp msg (f.locate dst)
            Time.pp arrival);
      f.forward ~shard:(f.locate dst) ~arrival msg
  | _ -> intake t msg ~arrival

let send t ~src ~dst ~gid payload =
  let msg = { Message.src; dst; gid; payload } in
  t.sent <- t.sent + 1;
  let now = Engine.now t.engine in
  let faults = t.config.faults in
  if partitioned t ~src ~dst ~now then count_drop t ~at:now ~dst ~gid ~reason:"partition"
  else if faults.drop > 0. && Rng.bool t.rng ~p:faults.drop then
    count_drop t ~at:now ~dst ~gid ~reason:"drop"
  else begin
    transmit t msg ~now;
    if faults.dup > 0. && Rng.bool t.rng ~p:faults.dup then begin
      t.duplicated <- t.duplicated + 1;
      Obs.emit t.obs ~at:now (fun () ->
          Tracer.Message_duplicated { dst = Fmt.str "%a" Message.pp_address dst; gid });
      (* The copy rides the same per-link FIFO, so it arrives after the
         original (fresh delay draw, clamped past it). *)
      transmit t msg ~now
    end
  end

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let duplicated t = t.duplicated

(* The simulated network.

   The paper assumes messages are not corrupted, lost or reordered; we
   keep per-(src, dst) FIFO order and reliability, but delays between
   *different* links are independent — so a COMMIT from one coordinator
   can overtake a PREPARE from another at the same agent, the race §5.3's
   prepare-certification extension exists to survive. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer
module Registry = Hermes_obs.Registry
module Histogram = Hermes_obs.Histogram

let src = Logs.Src.create "hermes.net" ~doc:"Simulated network traffic"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  base_delay : int;  (* ticks every message takes *)
  jitter : int;  (* additional uniform [0, jitter] ticks *)
}

let default_config = { base_delay = 500; jitter = 200 }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  handlers : (Message.address, Message.t -> unit) Hashtbl.t;
  last_delivery : (Message.address * Message.address, Time.t) Hashtbl.t;
  latest_inbound : (Message.address, Time.t * int) Hashtbl.t;
      (* per destination: the in-flight message with the latest arrival, for
         overtaking detection (the §5.3 race is cross-link, so per-link FIFO
         does not prevent it) *)
  obs : Obs.t option;
  delay_hist : Histogram.t option;
  overtakes : Registry.Counter.t option;
  mutable sent : int;
  mutable delivered : int;
}

let create ~engine ~rng ?obs ~config () = {
  engine;
  rng;
  config;
  handlers = Hashtbl.create 32;
  last_delivery = Hashtbl.create 64;
  latest_inbound = Hashtbl.create 32;
  obs;
  delay_hist = Option.map (fun o -> Registry.histogram (Obs.metrics o) "net.delay") obs;
  overtakes = Option.map (fun o -> Registry.counter (Obs.metrics o) "net.overtakes") obs;
  sent = 0;
  delivered = 0;
}

let register t addr handler = Hashtbl.replace t.handlers addr handler
let unregister t addr = Hashtbl.remove t.handlers addr

let send t ~src ~dst ~gid payload =
  let msg = { Message.src; dst; gid; payload } in
  t.sent <- t.sent + 1;
  let delay =
    t.config.base_delay + if t.config.jitter > 0 then Rng.int t.rng ~bound:(t.config.jitter + 1) else 0
  in
  let now = Engine.now t.engine in
  (* Per-link FIFO: never deliver before the link's previous message. *)
  let arrival =
    let earliest = Time.add now delay in
    match Hashtbl.find_opt t.last_delivery (src, dst) with
    | Some last when Time.(last >= earliest) -> Time.add last 1
    | _ -> earliest
  in
  Hashtbl.replace t.last_delivery (src, dst) arrival;
  (match t.delay_hist with Some h -> Histogram.record h (Time.diff arrival now) | None -> ());
  (* Overtaking: this message will arrive before one sent earlier (over a
     different link) to the same destination. *)
  (match Hashtbl.find_opt t.latest_inbound dst with
  | Some (latest, behind_gid) when Time.(latest > arrival) ->
      (match t.overtakes with Some c -> Registry.Counter.incr c | None -> ());
      Obs.emit t.obs ~at:now (fun () ->
          Tracer.Overtaking { dst = Fmt.str "%a" Message.pp_address dst; gid; behind_gid })
  | Some (latest, _) when Time.(latest < arrival) -> Hashtbl.replace t.latest_inbound dst (arrival, gid)
  | Some _ -> ()
  | None -> Hashtbl.replace t.latest_inbound dst (arrival, gid));
  Log.debug (fun m -> m "[%a] %a (delivery %a)" Time.pp now Message.pp msg Time.pp arrival);
  Engine.schedule_unit t.engine ~delay:(Time.diff arrival now) (fun () ->
      t.delivered <- t.delivered + 1;
      match Hashtbl.find_opt t.handlers dst with
      | Some handler -> handler msg
      | None -> Fmt.failwith "Network.send: no handler for %a (message %a)" Message.pp_address dst Message.pp msg)

let sent t = t.sent
let delivered t = t.delivered

(** The simulated network: per-link FIFO, with configurable base delay
    and jitter. Delays on different links are independent, so a COMMIT
    can overtake a PREPARE from a different sender (§5.3).

    Reliable by default; {!faults} opts into seed-deterministic message
    loss, duplication, delay spikes and partition windows, and
    {!mark_down} makes a destination unreachable (deliveries to it are
    counted drops). With {!no_faults} and no down sites, runs are
    byte-identical to the fault-free network at the same seed. *)

type endpoint =
  | Any_addr  (** matches every address (e.g. to isolate one site) *)
  | Addr of Message.address

type partition = {
  between : endpoint * endpoint;  (** matched in either direction *)
  window : int * int;  (** [\[lo, hi)] in ticks: sends inside it are dropped *)
}

type faults = {
  drop : float;  (** per-message drop probability *)
  dup : float;  (** per-message duplication probability *)
  spike_p : float;  (** per-message delay-spike probability *)
  spike_factor : int;  (** delay multiplier when a spike hits *)
  partitions : partition list;
  gray_sites : int list;
      (** gray-failed sites: alive and reachable, but every message to or
          from their agent runs [gray_factor] times slower — slow enough
          to strand in-doubt participants, never slow enough to trip
          crash detection. Does not make the network {!lossy}. *)
  gray_factor : int;  (** delay multiplier on gray-site links *)
}

val no_faults : faults
(** All probabilities zero, no partitions, no gray sites: the reliable
    network. *)

type config = { base_delay : int; jitter : int; faults : faults }

val default_config : config
(** [{ base_delay = 500; jitter = 200; faults = no_faults }] *)

type t

type fabric = {
  here : int;  (** this network instance's shard *)
  locate : Message.address -> int;  (** owning shard of an address *)
  forward : shard:int -> arrival:Hermes_kernel.Time.t -> Message.t -> unit;
      (** hand the message to the destination shard's inbox; that shard
          later calls {!deliver_remote} on its own network instance *)
}
(** Sharded execution (one network instance per site, each on its own
    domain): a send whose destination lives on another shard draws its
    delay and per-link FIFO clamp locally — that state is keyed by
    sender, so it stays shard-exclusive — then crosses via [forward]
    instead of being scheduled on the local engine. *)

val create :
  engine:Hermes_sim.Engine.t ->
  rng:Hermes_kernel.Rng.t ->
  ?obs:Hermes_obs.Obs.t ->
  ?fabric:fabric ->
  config:config ->
  unit ->
  t
(** With [?obs]: per-message delays feed a [net.delay] histogram; a
    message due to arrive before an earlier-sent one to the same
    destination (the §5.3 cross-link race) bumps [net.overtakes] and
    emits an {!Hermes_obs.Tracer.Overtaking} event per overtaken
    message; drops and duplicates emit
    {!Hermes_obs.Tracer.Message_dropped} /
    {!Hermes_obs.Tracer.Message_duplicated}. *)

val deliver_remote : t -> arrival:Hermes_kernel.Time.t -> Message.t -> unit
(** Destination-side intake for a message forwarded over the {!fabric}:
    registers it in flight (overtake accounting is against this shard's
    inbound traffic only) and schedules its delivery at [arrival] on this
    instance's engine. Call only from the owning shard, with [arrival] not
    in this engine's past — guaranteed by the conservative window bound. *)

val register : t -> Message.address -> (Message.t -> unit) -> unit
val unregister : t -> Message.address -> unit

val send : t -> src:Message.address -> dst:Message.address -> gid:int -> Message.payload -> unit
(** Raises if the destination has no registered handler at delivery time
    — unless it is {!mark_down}, in which case the delivery is a counted
    drop. *)

val mark_down : t -> Message.address -> unit
(** Make [addr] unreachable: messages delivered to it (including ones
    already in flight) are counted drops. Marks the network {!lossy}. *)

val mark_up : t -> Message.address -> unit

val is_down : t -> Message.address -> bool

val mark_gray : t -> Message.address -> unit
(** Gray-fail [addr]: its links slow down by [faults.gray_factor] but
    deliver everything, so the network stays non-{!lossy} and crash
    detection never fires. Used for addresses whose hosting site is not
    static — e.g. a coordinator hosted at a gray site. Agent addresses
    listed in [faults.gray_sites] are gray without marking. *)

val assume_lossy : t -> unit
(** Declare that deliveries may fail even though the static fault config
    says otherwise (e.g. sites will be marked down later in the run). *)

val lossy : t -> bool
(** True once messages can fail to be delivered: the fault config drops
    or partitions, a site has been {!mark_down}, or {!assume_lossy} was
    called. Protocol layers consult this before arming loss-recovery
    timers, so reliable runs stay byte-identical. *)

val sent : t -> int
val delivered : t -> int

val dropped : t -> int
(** Messages lost to the drop coin, a partition window, or delivery to a
    down destination. *)

val duplicated : t -> int

(** The simulated network: reliable, per-link FIFO, with configurable base
    delay and jitter. Delays on different links are independent, so a
    COMMIT can overtake a PREPARE from a different sender (§5.3). *)

type config = { base_delay : int; jitter : int }

val default_config : config

type t

val create :
  engine:Hermes_sim.Engine.t ->
  rng:Hermes_kernel.Rng.t ->
  ?obs:Hermes_obs.Obs.t ->
  config:config ->
  unit ->
  t
(** With [?obs]: per-message delays feed a [net.delay] histogram, and a
    message due to arrive before an earlier-sent one to the same
    destination (the §5.3 cross-link race) bumps [net.overtakes] and
    emits an {!Hermes_obs.Tracer.Overtaking} event. *)

val register : t -> Message.address -> (Message.t -> unit) -> unit
val unregister : t -> Message.address -> unit

val send : t -> src:Message.address -> dst:Message.address -> gid:int -> Message.payload -> unit
(** Raises if the destination has no registered handler at delivery time. *)

val sent : t -> int
val delivered : t -> int

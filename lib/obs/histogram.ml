(* Fixed-bucket log2 histogram: O(1) record, exact merge. *)

let n_buckets = 63 (* bucket 62 tops out above 2^61, plenty for tick counts *)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;  (* valid when count > 0 *)
  mutable max_v : int;
}

let create () = { buckets = Array.make n_buckets 0; count = 0; sum = 0; min_v = 0; max_v = 0 }

let copy t =
  { buckets = Array.copy t.buckets; count = t.count; sum = t.sum; min_v = t.min_v; max_v = t.max_v }

(* 0 -> 0; v >= 1 -> position of the highest set bit, plus one. *)
let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let bucket_bounds i =
  if i <= 0 then (0, 0)
  else if i >= n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let record t v =
  let v = max 0 v in
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.sum <- t.sum + v;
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v

let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = max 0 (min 100 p) in
    (* Rank of the requested sample, matching the classic sorted-array
       indexing arr.(p*n/100). *)
    let rank = min t.count ((p * t.count / 100) + 1) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < n_buckets do
      seen := !seen + t.buckets.(!i);
      if !seen < rank then incr i
    done;
    let _, hi = bucket_bounds !i in
    max t.min_v (min t.max_v hi)
  end

let nonzero_buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, t.buckets.(i)) :: !acc
  done;
  !acc

let absorb dst src =
  if src.count > 0 then begin
    Array.iteri (fun i c -> if c > 0 then dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets;
    if dst.count = 0 then begin
      dst.min_v <- src.min_v;
      dst.max_v <- src.max_v
    end
    else begin
      if src.min_v < dst.min_v then dst.min_v <- src.min_v;
      if src.max_v > dst.max_v then dst.max_v <- src.max_v
    end;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum
  end

let merge a b =
  let t = copy a in
  absorb t b;
  t

let equal a b =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && a.buckets = b.buckets

let to_json t =
  let buckets =
    Array.to_list t.buckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
  in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("buckets", Json.List buckets);
    ]

let of_json j =
  let t = create () in
  t.count <- Json.to_int (Json.member "count" j);
  t.sum <- Json.to_int (Json.member "sum" j);
  t.min_v <- Json.to_int (Json.member "min" j);
  t.max_v <- Json.to_int (Json.member "max" j);
  (match Json.member "buckets" j with
  | Json.List pairs ->
      List.iter
        (function
          | Json.List [ Json.Int i; Json.Int c ] when i >= 0 && i < n_buckets -> t.buckets.(i) <- c
          | _ -> raise (Json.Parse_error "bad histogram bucket"))
        pairs
  | _ -> raise (Json.Parse_error "bad histogram buckets"));
  t

let pp ppf t =
  if t.count = 0 then Fmt.string ppf "(empty)"
  else
    Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p95=%d max=%d" t.count (mean t) (min_value t)
      (percentile t 50) (percentile t 95) (max_value t)

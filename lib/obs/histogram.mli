(** A fixed-bucket log2 histogram of non-negative integer samples (tick
    durations, queue depths, ...).

    Bucket 0 holds the value 0; bucket [i >= 1] holds the half-open
    power-of-two range [2^(i-1), 2^i). Recording is O(1) and allocation
    free, histograms merge exactly (bucket-wise addition), and [count],
    [sum], [min]/[max] are exact — only the interior of a bucket is
    approximated, so percentiles are reported as the upper bound of the
    bucket containing the requested rank, clamped to the exact extrema. *)

type t

val create : unit -> t
val copy : t -> t

val record : t -> int -> unit
(** Record one sample; negative samples count as 0. *)

val count : t -> int
val sum : t -> int
val mean : t -> float

val min_value : t -> int
(** Exact smallest recorded sample; 0 when empty. *)

val max_value : t -> int
(** Exact largest recorded sample; 0 when empty. *)

val percentile : t -> int -> int
(** [percentile t p] for [p] in [0, 100]: the upper bound of the bucket
    holding the p-th percentile sample, clamped to
    [[min_value t, max_value t]]. 0 when empty. *)

val bucket_index : int -> int
(** The bucket a value falls into (exposed for tests). *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket. *)

val nonzero_buckets : t -> (int * int * int) list
(** [(lo, hi, count)] of every non-empty bucket, in value order. *)

val absorb : t -> t -> unit
(** [absorb dst src] adds [src]'s samples into [dst]. *)

val merge : t -> t -> t
(** Pure merge: a fresh histogram holding both sample sets. Associative
    and commutative. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
val of_json : Json.t -> t
(** Raises {!Json.Parse_error} on a value not produced by {!to_json}. *)

val pp : t Fmt.t

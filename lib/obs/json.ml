(* A minimal JSON value, printer and parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g survives a round trip through float_of_string. *)
      if Float.is_integer f && Float.abs f < 1e15 then Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while c.pos < String.length c.s && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  if c.pos + String.length word <= String.length c.s && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if c.pos >= String.length c.s then fail c "unterminated escape";
        let e = c.s.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char buf e;
            go ()
        | 'n' ->
            Buffer.add_char buf '\n';
            go ()
        | 'r' ->
            Buffer.add_char buf '\r';
            go ()
        | 't' ->
            Buffer.add_char buf '\t';
            go ()
        | 'u' ->
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.s c.pos 4) in
            c.pos <- c.pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else fail c "non-ASCII \\u escape unsupported";
            go ()
        | _ -> fail c "unknown escape")
    | ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.s start (c.pos - start) in
  if String.contains text '.' || String.contains text 'e' || String.contains text 'E' then
    match float_of_string_opt text with Some f -> Float f | None -> fail c "bad float"
  else match int_of_string_opt text with Some i -> Int i | None -> fail c "bad int"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        members []
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member k = function Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null) | _ -> Null
let to_int = function Int i -> i | _ -> raise (Parse_error "expected an integer")

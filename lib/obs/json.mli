(** A minimal JSON value: just enough for the metrics/trace exporters and
    their round-trip tests — no external dependency, deterministic output
    (member order is preserved, floats print with full precision). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact, deterministic rendering (no whitespace). *)

val of_string : string -> t
(** Inverse of {!to_string} (accepts arbitrary whitespace between
    tokens). Raises {!Parse_error} on malformed input. *)

val member : string -> t -> t
(** [member k (Obj _)] is the value bound to [k], or [Null]. *)

val to_int : t -> int
(** Raises {!Parse_error} if the value is not an [Int]. *)

(* The observability context. *)

type t = { metrics : Registry.t; trace : Tracer.t }

let create () = { metrics = Registry.create (); trace = Tracer.create () }
let metrics t = t.metrics
let trace t = t.trace

let emit o ~at ev = match o with None -> () | Some ctx -> Tracer.emit ctx.trace ~at (ev ())

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let is_csv path = Filename.check_suffix path ".csv"

let write_metrics t path =
  write_file path (if is_csv path then Registry.to_csv t.metrics else Registry.to_json t.metrics)

let write_trace t path =
  write_file path (if is_csv path then Tracer.to_csv t.trace else Tracer.to_json_lines t.trace)

(** The observability context: one metrics {!Registry} plus one event
    {!Tracer}, threaded through the protocol stack (agents, LTMs, the
    network, the workload driver). Components accept it as an optional
    argument; when absent, instrumentation is skipped at zero cost. *)

open Hermes_kernel

type t = { metrics : Registry.t; trace : Tracer.t }

val create : unit -> t
val metrics : t -> Registry.t
val trace : t -> Tracer.t

val emit : t option -> at:Time.t -> (unit -> Tracer.event) -> unit
(** Emit an event if observability is on; the thunk keeps event
    construction off the hot path when it is not. *)

val write_metrics : t -> string -> unit
(** Dump the registry to a file — JSON, or CSV when the path ends in
    [.csv]. *)

val write_trace : t -> string -> unit
(** Dump the trace to a file — JSON lines, or CSV when the path ends in
    [.csv]. *)

(* The metrics registry: (name, site)-keyed counters, gauges and
   histograms, with deterministic exports. *)

open Hermes_kernel

module Counter = struct
  type t = { mutable n : int }

  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
end

module Gauge = struct
  type t = { mutable last : int; mutable high : int }

  let set t v =
    t.last <- v;
    if v > t.high then t.high <- v

  let value t = t.last
  let high_water t = t.high
end

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

type t = { table : (string * int option, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }
let is_empty t = Hashtbl.length t.table = 0

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let get t ~site ~name ~make ~check =
  let key = (name, Option.map Site.to_int site) in
  match Hashtbl.find_opt t.table key with
  | Some m -> check m
  | None ->
      let m = make () in
      Hashtbl.add t.table key m;
      m

let wrong name m want =
  invalid_arg (Fmt.str "Obs.Registry: %S is a %s, not a %s" name (kind_name m) want)

let counter t ?site name =
  match
    get t ~site ~name ~make:(fun () -> C { Counter.n = 0 }) ~check:(fun m -> m)
  with
  | C c -> c
  | m -> wrong name m "counter"

let gauge t ?site name =
  match get t ~site ~name ~make:(fun () -> G { Gauge.last = 0; high = 0 }) ~check:(fun m -> m) with
  | G g -> g
  | m -> wrong name m "gauge"

let histogram t ?site name =
  match get t ~site ~name ~make:(fun () -> H (Histogram.create ())) ~check:(fun m -> m) with
  | H h -> h
  | m -> wrong name m "histogram"

type value =
  | Counter_value of int
  | Gauge_value of { last : int; high_water : int }
  | Histogram_value of Histogram.t

type row = { name : string; site : int option; value : value }

let value_of = function
  | C c -> Counter_value (Counter.value c)
  | G g -> Gauge_value { last = Gauge.value g; high_water = Gauge.high_water g }
  | H h -> Histogram_value (Histogram.copy h)

let compare_key (n1, s1) (n2, s2) =
  match String.compare n1 n2 with
  | 0 -> ( match (s1, s2) with
      | None, None -> 0
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some a, Some b -> Int.compare a b)
  | c -> c

let rows t =
  Hashtbl.fold (fun key m acc -> (key, m) :: acc) t.table []
  |> List.sort (fun (k1, _) (k2, _) -> compare_key k1 k2)
  |> List.map (fun ((name, site), m) -> { name; site; value = value_of m })

let sum_counter t name =
  Hashtbl.fold
    (fun (n, _) m acc -> match m with C c when n = name -> acc + Counter.value c | _ -> acc)
    t.table 0

let histogram_totals t name =
  Hashtbl.fold
    (fun (n, _) m acc ->
      match m with
      | H h when n = name -> Histogram.merge acc h
      | _ -> acc)
    t.table (Histogram.create ())

let absorb dst src =
  Hashtbl.iter
    (fun (name, site) m ->
      let site = Option.map Site.of_int site in
      match m with
      | C c -> Counter.add (counter dst ?site name) (Counter.value c)
      | G g ->
          let d = gauge dst ?site name in
          Gauge.set d (Gauge.high_water g);
          Gauge.set d (Gauge.value g)
      | H h -> Histogram.absorb (histogram dst ?site name) h)
    src.table

let merge a b =
  let t = create () in
  absorb t a;
  absorb t b;
  t

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let row_to_json { name; site; value } =
  let site_json = match site with None -> Json.Null | Some s -> Json.Int s in
  let fields =
    match value with
    | Counter_value v -> [ ("kind", Json.String "counter"); ("value", Json.Int v) ]
    | Gauge_value { last; high_water } ->
        [ ("kind", Json.String "gauge"); ("value", Json.Int last); ("high_water", Json.Int high_water) ]
    | Histogram_value h -> [ ("kind", Json.String "histogram"); ("histogram", Histogram.to_json h) ]
  in
  Json.Obj (("name", Json.String name) :: ("site", site_json) :: fields)

let to_json t =
  Json.to_string (Json.List (List.map row_to_json (rows t))) ^ "\n"

let of_json s =
  let t = create () in
  (match Json.of_string s with
  | Json.List items ->
      List.iter
        (fun item ->
          let name =
            match Json.member "name" item with
            | Json.String n -> n
            | _ -> raise (Json.Parse_error "metric without a name")
          in
          let site =
            match Json.member "site" item with
            | Json.Null -> None
            | Json.Int s -> Some (Site.of_int s)
            | _ -> raise (Json.Parse_error "bad site")
          in
          match Json.member "kind" item with
          | Json.String "counter" ->
              Counter.add (counter t ?site name) (Json.to_int (Json.member "value" item))
          | Json.String "gauge" ->
              let g = gauge t ?site name in
              Gauge.set g (Json.to_int (Json.member "high_water" item));
              Gauge.set g (Json.to_int (Json.member "value" item))
          | Json.String "histogram" ->
              Histogram.absorb (histogram t ?site name) (Histogram.of_json (Json.member "histogram" item))
          | _ -> raise (Json.Parse_error "unknown metric kind"))
        items
  | _ -> raise (Json.Parse_error "expected a metric array"));
  t

let csv_cell_of_row { name; site; value } =
  let site_s = match site with None -> "" | Some s -> string_of_int s in
  match value with
  | Counter_value v -> Fmt.str "%s,%s,counter,%d,%d,%d.0,,," name site_s v v v
  | Gauge_value { last; high_water } ->
      Fmt.str "%s,%s,gauge,%d,%d,%d.0,,,%d" name site_s last last last high_water
  | Histogram_value h ->
      Fmt.str "%s,%s,histogram,%d,%d,%.3f,%d,%d,%d" name site_s (Histogram.count h) (Histogram.sum h)
        (Histogram.mean h) (Histogram.percentile h 50) (Histogram.percentile h 95)
        (Histogram.max_value h)

let to_csv t =
  let header = "name,site,kind,count,sum,mean,p50,p95,max" in
  String.concat "\n" (header :: List.map csv_cell_of_row (rows t)) ^ "\n"

let pp ppf t =
  List.iter
    (fun ({ name; site; value } as _row) ->
      let site_s = match site with None -> "-" | Some s -> Site.name (Site.of_int s) in
      match value with
      | Counter_value v -> Fmt.pf ppf "%-36s %4s %d@." name site_s v
      | Gauge_value { last; high_water } -> Fmt.pf ppf "%-36s %4s %d (high %d)@." name site_s last high_water
      | Histogram_value h -> Fmt.pf ppf "%-36s %4s %a@." name site_s Histogram.pp h)
    (rows t)

(** The metrics registry: named counters, gauges and log2-bucket
    histograms, keyed by [(name, site)]. Metrics are created on first
    access, all operations are O(1), and registries merge exactly — the
    per-site halves of a decentralized run (or the runs of a sweep) can
    be combined without losing anything but bucket interiors.

    Exports are deterministic: rows are sorted by name, then site, so two
    runs with the same seed produce byte-identical dumps. *)

open Hermes_kernel

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val value : t -> int

  val high_water : t -> int
  (** The largest value ever set. *)
end

type t

val create : unit -> t

val counter : t -> ?site:Site.t -> string -> Counter.t
(** Get or create. Raises [Invalid_argument] if [(name, site)] already
    names a metric of another kind. *)

val gauge : t -> ?site:Site.t -> string -> Gauge.t
val histogram : t -> ?site:Site.t -> string -> Histogram.t
val is_empty : t -> bool

(** A read-only snapshot row. *)
type value =
  | Counter_value of int
  | Gauge_value of { last : int; high_water : int }
  | Histogram_value of Histogram.t

type row = { name : string; site : int option; value : value }

val rows : t -> row list
(** Sorted by name, then site (global [None] first). *)

val sum_counter : t -> string -> int
(** Sum of a counter over every site (plus the global instance). 0 when
    absent. *)

val histogram_totals : t -> string -> Histogram.t
(** A fresh histogram merging the metric's per-site instances. *)

val absorb : t -> t -> unit
(** [absorb dst src]: add every metric of [src] into [dst] (counters add,
    gauges keep the latest [last] and the larger high-water mark,
    histograms merge). *)

val merge : t -> t -> t
(** Pure merge into a fresh registry; associative and commutative up to
    gauge [last] values (high-water marks merge exactly). *)

val to_json : t -> string
(** The full registry as a deterministic JSON document (ends with a
    newline). *)

val of_json : string -> t
(** Inverse of {!to_json}. Raises {!Json.Parse_error} on malformed
    input. *)

val to_csv : t -> string
(** One row per metric: [name,site,kind,count,sum,mean,p50,p95,max]. *)

val pp : t Fmt.t

(* The structured event trace. *)

open Hermes_kernel

type verdict =
  | Ready
  | Refused_extension of { committed_sn : Sn.t }
  | Refused_interval of { conflicting_gid : int; conflicting : Interval.t; candidate : Interval.t }
  | Refused_dead

type event =
  | Alive_check of { site : Site.t; gid : int; alive : bool }
  | Prepare_certification of { site : Site.t; gid : int; sn : Sn.t; verdict : verdict }
  | Commit_delayed of { site : Site.t; gid : int; sn : Sn.t; blocking_gid : int; blocking_sn : Sn.t }
  | Commit_released of { site : Site.t; gid : int; waited : int; retries : int }
  | Resubmission of { site : Site.t; gid : int; inc : int }
  | Recovered of { site : Site.t; gid : int }
  | Site_crash of { site : Site.t; live : int; prepared : int }
  | Lock_wait of { site : Site.t; owner : string; table : string; key : int; waited : int }
  | Deadlock_resolved of { site : Site.t; victim : string; policy : string }
  | Txn_aborted of { site : Site.t; owner : string; reason : string }
  | Overtaking of { dst : string; gid : int; behind_gid : int }
  | Message_dropped of { dst : string; gid : int; reason : string }
  | Message_duplicated of { dst : string; gid : int }

type t = { mutable items : (Time.t * event) list; mutable len : int }

let create () = { items = []; len = 0 }

let emit t ~at event =
  t.items <- (at, event) :: t.items;
  t.len <- t.len + 1

let length t = t.len
let events t = List.rev t.items

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let sn_json sn = Json.String (Sn.show sn)
let interval_json i = Json.List [ Json.Int (Time.to_int (Interval.lo i)); Json.Int (Time.to_int (Interval.hi i)) ]
let site_json s = Json.Int (Site.to_int s)

let fields_of = function
  | Alive_check { site; gid; alive } ->
      ("alive_check", [ ("site", site_json site); ("gid", Json.Int gid); ("alive", Json.Bool alive) ])
  | Prepare_certification { site; gid; sn; verdict } ->
      let verdict_fields =
        match verdict with
        | Ready -> [ ("verdict", Json.String "ready") ]
        | Refused_extension { committed_sn } ->
            [ ("verdict", Json.String "refused_extension"); ("committed_sn", sn_json committed_sn) ]
        | Refused_interval { conflicting_gid; conflicting; candidate } ->
            [
              ("verdict", Json.String "refused_interval");
              ("conflicting_gid", Json.Int conflicting_gid);
              ("conflicting", interval_json conflicting);
              ("candidate", interval_json candidate);
            ]
        | Refused_dead -> [ ("verdict", Json.String "refused_dead") ]
      in
      ( "prepare_certification",
        [ ("site", site_json site); ("gid", Json.Int gid); ("sn", sn_json sn) ] @ verdict_fields )
  | Commit_delayed { site; gid; sn; blocking_gid; blocking_sn } ->
      ( "commit_delayed",
        [
          ("site", site_json site); ("gid", Json.Int gid); ("sn", sn_json sn);
          ("blocking_gid", Json.Int blocking_gid); ("blocking_sn", sn_json blocking_sn);
        ] )
  | Commit_released { site; gid; waited; retries } ->
      ( "commit_released",
        [
          ("site", site_json site); ("gid", Json.Int gid); ("waited", Json.Int waited);
          ("retries", Json.Int retries);
        ] )
  | Resubmission { site; gid; inc } ->
      ("resubmission", [ ("site", site_json site); ("gid", Json.Int gid); ("inc", Json.Int inc) ])
  | Recovered { site; gid } -> ("recovered", [ ("site", site_json site); ("gid", Json.Int gid) ])
  | Site_crash { site; live; prepared } ->
      ("site_crash", [ ("site", site_json site); ("live", Json.Int live); ("prepared", Json.Int prepared) ])
  | Lock_wait { site; owner; table; key; waited } ->
      ( "lock_wait",
        [
          ("site", site_json site); ("owner", Json.String owner); ("table", Json.String table);
          ("key", Json.Int key); ("waited", Json.Int waited);
        ] )
  | Deadlock_resolved { site; victim; policy } ->
      ( "deadlock_resolved",
        [ ("site", site_json site); ("victim", Json.String victim); ("policy", Json.String policy) ] )
  | Txn_aborted { site; owner; reason } ->
      ( "txn_aborted",
        [ ("site", site_json site); ("owner", Json.String owner); ("reason", Json.String reason) ] )
  | Overtaking { dst; gid; behind_gid } ->
      ("overtaking", [ ("dst", Json.String dst); ("gid", Json.Int gid); ("behind_gid", Json.Int behind_gid) ])
  | Message_dropped { dst; gid; reason } ->
      ( "message_dropped",
        [ ("dst", Json.String dst); ("gid", Json.Int gid); ("reason", Json.String reason) ] )
  | Message_duplicated { dst; gid } ->
      ("message_duplicated", [ ("dst", Json.String dst); ("gid", Json.Int gid) ])

let event_to_json at event =
  let name, fields = fields_of event in
  Json.Obj ((("at", Json.Int (Time.to_int at)) :: ("event", Json.String name) :: fields))

let to_json_lines t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (at, ev) ->
      Buffer.add_string buf (Json.to_string (event_to_json at ev));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "at,event,site,detail\n";
  List.iter
    (fun (at, ev) ->
      let name, fields = fields_of ev in
      let site =
        match List.assoc_opt "site" fields with Some (Json.Int s) -> string_of_int s | _ -> ""
      in
      let detail =
        fields
        |> List.filter (fun (k, _) -> k <> "site")
        |> List.map (fun (k, v) -> Fmt.str "%s=%s" k (Json.to_string v))
        |> String.concat " "
      in
      Buffer.add_string buf
        (Fmt.str "%d,%s,%s,%s\n" (Time.to_int at) name site (String.map (function ',' -> ';' | c -> c) detail)))
    (events t);
  Buffer.contents buf

let pp_event ppf ev = Fmt.string ppf (Json.to_string (Json.Obj (snd (fields_of ev))))

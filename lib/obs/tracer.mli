(** The structured event trace: typed protocol decisions stamped with
    simulated time. Where the metrics registry counts, the tracer
    explains — which interval refused a PREPARE, which serial number held
    a COMMIT back, which victim a deadlock policy chose. Runs stay
    deterministic: events are emitted from engine callbacks, so two
    same-seed runs produce byte-identical dumps. *)

open Hermes_kernel

(** The outcome of one extended prepare certification (Appendix B). *)
type verdict =
  | Ready
  | Refused_extension of { committed_sn : Sn.t }
      (** a bigger serial number already committed here (§5.3) *)
  | Refused_interval of { conflicting_gid : int; conflicting : Interval.t; candidate : Interval.t }
      (** the alive-time intersection rule failed (§4.2) *)
  | Refused_dead  (** the subtransaction was unilaterally aborted (CI 2) *)

type event =
  | Alive_check of { site : Site.t; gid : int; alive : bool }  (** Appendix A *)
  | Prepare_certification of { site : Site.t; gid : int; sn : Sn.t; verdict : verdict }
  | Commit_delayed of { site : Site.t; gid : int; sn : Sn.t; blocking_gid : int; blocking_sn : Sn.t }
      (** commit certification held a COMMIT behind a smaller SN (Appendix C) *)
  | Commit_released of { site : Site.t; gid : int; waited : int; retries : int }
      (** the local commit finally ran, [waited] ticks after the decision arrived *)
  | Resubmission of { site : Site.t; gid : int; inc : int }
  | Recovered of { site : Site.t; gid : int }  (** rebuilt from the Agent log *)
  | Site_crash of { site : Site.t; live : int; prepared : int }
  | Lock_wait of { site : Site.t; owner : string; table : string; key : int; waited : int }
  | Deadlock_resolved of { site : Site.t; victim : string; policy : string }
  | Txn_aborted of { site : Site.t; owner : string; reason : string }
  | Overtaking of { dst : string; gid : int; behind_gid : int }
      (** a message arrived before an earlier-sent message to the same
          destination (the §5.3 race) *)
  | Message_dropped of { dst : string; gid : int; reason : string }
      (** fault injection lost a message ([reason] is ["drop"],
          ["partition"] or ["down"]) *)
  | Message_duplicated of { dst : string; gid : int }  (** fault injection duplicated a message *)

type t

val create : unit -> t
val emit : t -> at:Time.t -> event -> unit
val length : t -> int
val events : t -> (Time.t * event) list
(** In emission order. *)

val event_to_json : Time.t -> event -> Json.t

val to_json_lines : t -> string
(** One JSON object per line, in emission order. *)

val to_csv : t -> string
(** [at,event,site,detail] rows. *)

val pp_event : event Fmt.t

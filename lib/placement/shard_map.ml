(* The epoch-versioned shard map: key -> shard -> site.

   Placement is a pure value. Every transition (move / add_site /
   remove_site) returns a NEW map with the epoch incremented — installed
   maps are never mutated, so a reader holding an old map simply holds a
   stale epoch, and the wire-level epoch check turns that staleness into
   a WRONG-EPOCH refusal plus re-resolution instead of a misrouted
   subtransaction.

   The static map at epoch 0 — one shard per site, shard [i] owned by
   site [i mod n_sites] — is the legacy placement every earlier revision
   hard-coded; runs that never reconfigure stay on it and replay
   byte-identically. *)

open Hermes_kernel

type t = {
  epoch : int;
  owner : Site.t array;  (* owner.(shard); total by construction *)
  sites : Site.t list;  (* serving sites, ascending; owners come from here *)
}

let epoch t = t.epoch
let n_shards t = Array.length t.owner
let sites t = t.sites

let static ?n_shards ~n_sites () =
  if n_sites <= 0 then invalid_arg "Shard_map.static: n_sites must be positive";
  let n_shards = Option.value ~default:n_sites n_shards in
  if n_shards <= 0 then invalid_arg "Shard_map.static: n_shards must be positive";
  {
    epoch = 0;
    owner = Array.init n_shards (fun i -> Site.of_int (i mod n_sites));
    sites = List.init n_sites Site.of_int;
  }

let owner t ~shard =
  if shard < 0 || shard >= Array.length t.owner then
    invalid_arg (Fmt.str "Shard_map.owner: shard %d out of range [0, %d)" shard (Array.length t.owner));
  t.owner.(shard)

let shard_of_key t ~key =
  let n = Array.length t.owner in
  ((key mod n) + n) mod n

let resolve t ~key = t.owner.(shard_of_key t ~key)

let shards_of t ~site =
  let acc = ref [] in
  Array.iteri (fun shard s -> if Site.equal s site then acc := shard :: !acc) t.owner;
  List.rev !acc

let mem_site t site = List.exists (Site.equal site) t.sites

let move t ~shard ~to_ =
  if shard < 0 || shard >= Array.length t.owner then
    invalid_arg (Fmt.str "Shard_map.move: shard %d out of range" shard);
  if not (mem_site t to_) then
    invalid_arg (Fmt.str "Shard_map.move: site %a is not serving" Site.pp to_);
  let owner = Array.copy t.owner in
  owner.(shard) <- to_;
  { epoch = t.epoch + 1; owner; sites = t.sites }

let add_site t ~site =
  if mem_site t site then invalid_arg (Fmt.str "Shard_map.add_site: site %a already serving" Site.pp site);
  {
    epoch = t.epoch + 1;
    owner = Array.copy t.owner;
    sites = List.sort Site.compare (site :: t.sites);
  }

let remove_site t ~site =
  if not (mem_site t site) then
    invalid_arg (Fmt.str "Shard_map.remove_site: site %a is not serving" Site.pp site);
  let survivors = List.filter (fun s -> not (Site.equal s site)) t.sites in
  (match survivors with
  | [] -> invalid_arg "Shard_map.remove_site: cannot remove the last serving site"
  | _ -> ());
  let survivors_arr = Array.of_list survivors in
  (* Orphaned shards redistribute round-robin over the survivors, in
     shard order — deterministic, and coverage stays total. *)
  let next = ref 0 in
  let owner =
    Array.map
      (fun s ->
        if Site.equal s site then begin
          let s' = survivors_arr.(!next mod Array.length survivors_arr) in
          incr next;
          s'
        end
        else s)
      t.owner
  in
  { epoch = t.epoch + 1; owner; sites = survivors }

let pp ppf t =
  Fmt.pf ppf "epoch %d: %a" t.epoch
    Fmt.(brackets (list ~sep:(any "; ") (pair ~sep:(any "->") int Site.pp)))
    (Array.to_list (Array.mapi (fun i s -> (i, s)) t.owner))

(** The epoch-versioned shard map: [key -> shard -> site].

    Placement is a pure value; every transition returns a new map with
    the epoch incremented. Installed maps are never mutated, so a stale
    reader holds a stale {e epoch} — and the wire-level epoch check turns
    that into a WRONG-EPOCH refusal plus re-resolution rather than a
    misrouted subtransaction.

    Invariants, preserved by every transition: ownership is {e total}
    (every shard has an owner) and {e disjoint} (exactly one owner per
    shard per epoch) — invariant I6(a) of the model checker. *)

open Hermes_kernel

type t

val static : ?n_shards:int -> n_sites:int -> unit -> t
(** The epoch-0 map every earlier revision hard-coded: [n_shards]
    (default one per site) with shard [i] owned by site [i mod n_sites].
    Runs that never reconfigure stay on it and replay byte-identically. *)

val epoch : t -> int
val n_shards : t -> int
val sites : t -> Site.t list
(** Serving sites, ascending. *)

val owner : t -> shard:int -> Site.t
(** Raises [Invalid_argument] on an out-of-range shard. *)

val shard_of_key : t -> key:int -> int
(** [key mod n_shards], non-negative. *)

val resolve : t -> key:int -> Site.t
(** [owner (shard_of_key key)]. *)

val shards_of : t -> site:Site.t -> int list
(** The shards [site] currently owns, ascending. *)

val move : t -> shard:int -> to_:Site.t -> t
(** Reassign one shard; epoch + 1. [to_] must be serving. *)

val add_site : t -> site:Site.t -> t
(** A new serving site joins (owning nothing until a {!move}); epoch + 1.
    Raises if already serving. *)

val remove_site : t -> site:Site.t -> t
(** A serving site leaves; its shards redistribute round-robin over the
    survivors in shard order; epoch + 1. Raises on the last site. *)

val pp : t Fmt.t

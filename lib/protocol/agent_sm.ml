(* The 2PC Agent (2PCA) with the Certifier algorithms, as a pure state
   machine — the paper's core contribution (§2, §4, §5 and the Appendix)
   with every side effect factored out into the returned effect list.
   See [Agent] in hermes.core for the effectful adapter.

   The machine plays the 2PC Participant towards the Coordinators and
   *simulates the prepared state* on behalf of an LTM that has none: on
   READY it keeps the local subtransaction open (all locks held,
   uncommitted), and if the LTM unilaterally aborts it, a new local
   subtransaction replays the logged commands (subtransaction
   resubmission).

   The Certifier steps, exactly as in the Appendix:

   A. Alive check — periodically, and on UAN, verify the prepared
      subtransaction is still alive; extend its alive interval on
      success, resubmit on failure.
   B. Extended prepare certification — on PREPARE: first refuse if an
      "older" (bigger-SN) subtransaction has already committed here
      (§5.3); then the basic certification: the candidate's alive
      interval must intersect the interval of every prepared
      subtransaction (§4.2); then a final alive check.
   C. Commit certification — on COMMIT: commit locally only if no
      prepared subtransaction at this site has a smaller serial number;
      otherwise retry after a timeout.

   Purity contract: [step] never mutates its input state (the alive
   table, the one imperative structure, is copied on entry) and performs
   no effect — everything external arrives pre-sampled in the input
   ([env] snapshots, log views, recovery entries) and everything
   outbound leaves as an ordered effect list. Effect order is the old
   imperative call order, which is what keeps adapter-driven runs
   byte-identical (engine event sequence numbers, RNG draw order, trace
   append order).

   Volatility: the machine state is exactly the agent's *volatile* state
   — a crash input empties it. The stable Agent log lives outside (the
   adapter owns it); the machine reads it through [log_view] /
   [recover_entry] snapshots and writes it through [Force_log] effects,
   mirroring just enough (the command list) to dedup EXECs and replay
   commands without a query effect. *)

open Hermes_kernel
open Types
module Int_map = Map.Make (Int)

type sub_state = Active | Prepared

(* One global subtransaction at this site (volatile image). *)
type sub = {
  gid : int;
  coordinator : Wire.address;
  inc : int;  (* current incarnation index *)
  commands_rev : Command.t list;  (* newest first; mirrors the stable log *)
  state : sub_state;
  sn : Sn.t option;
  resubmitting : bool;
  to_feed : Command.t list;  (* commands still to replay in this resubmission *)
  committing : bool;  (* local commit in flight (makes duplicate COMMITs harmless) *)
  decision_commit : bool;  (* COMMIT received, not yet performed *)
  decision_at : Time.t option;  (* when the first COMMIT arrived *)
  prepared_at : Time.t option;  (* when READY was sent (the in-doubt window opens) *)
  sn_retries : int;  (* commit-certification retries *)
  inquiries : int;  (* DECISION-REQs sent for this subtransaction *)
  alive_armed : bool;
  retry_armed : bool;
  inquiry_armed : bool;  (* termination-protocol inquiry timer *)
}

(* Read-only snapshot of one LTM transaction, sampled by the adapter
   when it builds the input (safe: the old code always read these before
   performing any LTM-mutating effect within a transition). *)
type view = { alive : bool; last_op_done : Time.t }

type env = {
  now : Time.t;
  views : (int * view) list;  (* by gid; a gid without a view is a just-begun (alive) txn *)
  max_committed_sn : Sn.t option;  (* the stable log's biggest committed SN *)
  epoch : int;
      (* the agent's installed placement epoch; a BEGIN/EXEC stamped with
         an older epoch is refused WRONG-EPOCH (the client re-resolves
         through the new map and resubmits — the paper's resubmission
         machinery). 0 everywhere until a reconfiguration happens. *)
  inquiry : bool;
      (* whether the termination protocol is engaged: the adapter samples
         this as "coordinator crashes enabled for this run", so runs
         without coordinator crashes arm no inquiry timers and stay
         byte-identical.  (It is deliberately NOT gated on network
         lossiness: a coordinator crash loses in-flight decisions even
         when no message is ever dropped.) *)
}

(* What the stable log knows about a gid (for messages about
   subtransactions the volatile state has lost). *)
type log_view = {
  known : bool;
  prepared : bool;
  committed : bool;  (* commit record forced *)
  locally_committed : bool;
  rolled_back : bool;
  sn : Sn.t option;  (* the force-written prepare record's serial number,
                        for re-voting with a certificate after a crash *)
}

(* One in-doubt stable-log entry handed to [Recover]. *)
type recover_entry = {
  r_gid : int;
  r_coordinator : Wire.address;
  r_inc : int;  (* last logged incarnation *)
  r_sn : Sn.t option;
  r_commands : Command.t list;  (* oldest first *)
  r_committed : bool;  (* decision known: commit *)
}

type purpose = Reply of int (* step index to answer *) | Feed  (* resubmission replay *)
type exec_result = Done of Command.result | Failed of string

type input =
  | Deliver of { env : env; src : Wire.address; gid : int; payload : Wire.payload; log : log_view }
  | Alive_fired of { env : env; gid : int }
  | Retry_fired of { env : env; gid : int }
  | Backoff_fired of { env : env; gid : int; inc : int }
  | Uan of { env : env; gid : int; inc : int }  (* unilateral-abort notification *)
  | Exec_done of { env : env; gid : int; inc : int; purpose : purpose; result : exec_result }
  | Commit_done of { env : env; gid : int; inc : int; committed : bool }
  | Inquiry_fired of { env : env; gid : int }
  | Flush_fired of { env : env }
      (* group commit: the batch window elapsed — vector-certify the
         buffered PREPAREs and force the staged records with one I/O *)
  | Crash of { live : int }  (* live LTM transactions, for the crash event *)
  | Recover of { env : env; entries : recover_entry list }

type timer =
  | T_alive of int
  | T_commit_retry of int
  | T_backoff of { gid : int; inc : int }
      (* armed as an uncancellable one-shot (the adapter never cancels
         it); staleness is filtered by the incarnation tag instead *)
  | T_inquiry of int
      (* termination protocol: while prepared and undecided, periodically
         ask the coordinator — and, under a replicated commit protocol,
         the acceptors — for the outcome; armed only when [env.inquiry]
         holds (coordinator crashes enabled) *)
  | T_flush
      (* group commit: one per agent, armed when the first record (or
         PREPARE) is staged into an empty batch, cancelled when the batch
         forces early on [Config.max_batch] *)

(* Stable-log writes. Not all are forced to disk — [R_local_commit],
   [R_rollback] and [R_incarnation] are bookkeeping notes, matching
   [Agent_log]'s distinction. *)
type record =
  | R_entry of { gid : int; coordinator : Wire.address }
  | R_command of { gid : int; cmd : Command.t }
  | R_incarnation of { gid : int; inc : int }
  | R_prepare of { gid : int; sn : Sn.t }
  | R_commit of { gid : int }
  | R_local_commit of { gid : int }
  | R_rollback of { gid : int }

type call =
  | L_begin of { gid : int; inc : int }  (* begin a fresh local txn for this incarnation *)
  | L_exec of { gid : int; inc : int; purpose : purpose; cmd : Command.t }
  | L_commit of { gid : int; inc : int }
  | L_abort of { gid : int }
  | L_abort_all_live  (* the site crash: every live local txn unilaterally aborts *)
  | L_hold_open of { gid : int }  (* simulate the prepared state: keep locks, stay open *)
  | L_hold_open_batch of { gids : int list }
      (* group commit: one LTM round-trip holds open a whole vector of
         freshly certified subtransactions *)
  | L_commit_batch of { txns : (int * int) list }
      (* group commit: (gid, inc) pairs whose local commits release
         together after the batch force — one lock-manager round-trip *)
  | L_watch_uan of { gid : int; inc : int }  (* subscribe to the unilateral-abort notification *)
  | L_bind of { gid : int }  (* DLU: bind the txn's footprint *)
  | L_rebind of { gid : int }  (* DLU: release the logged bound set, bind the new footprint *)
  | L_unbind of { gid : int }  (* DLU: release the logged bound set *)
  | L_forget of { gid : int }  (* drop adapter bookkeeping (txn handle, timers) for this gid *)

type verdict =
  | V_ready
  | V_refused_extension of { committed_sn : Sn.t }
  | V_refused_interval of { conflicting_gid : int; conflicting : Interval.t; candidate : Interval.t }
  | V_refused_dead

type event =
  | Ev_alive_check of { gid : int; alive : bool }
  | Ev_resubmission of { gid : int; inc : int }
  | Ev_prepare_certification of { gid : int; sn : Sn.t; verdict : verdict }
  | Ev_refused of { gid : int; refusal : Wire.refusal }
  | Ev_commit_delayed of { gid : int; sn : Sn.t; blocking_gid : int; blocking_sn : Sn.t }
  | Ev_commit_released of { gid : int; waited : int; retries : int }
  | Ev_rollback of { gid : int }
  | Ev_crash of { live : int; prepared : int }
  | Ev_recovered of { gid : int; committed : bool }
  | Ev_in_doubt of { gid : int }
      (* the in-doubt window opened: prepared (or recovered prepared)
         with no decision yet; the adapter's gauge counts these *)
  | Ev_decision of { gid : int; committed : bool; in_doubt : int }
      (* the in-doubt window closed after [in_doubt] ticks: the first
         COMMIT/ROLLBACK/DECISION-RESP for a prepared subtransaction *)
  | Ev_decision_inquiry of { gid : int; inquiries : int }
  | Ev_equivocation_detected of { gid : int }
      (* decision certificates: a bare (uncertified) COMMIT/ROLLBACK
         reached a prepared participant — only an equivocating or
         compromised coordinator sends those, so the decision is ignored
         and the termination protocol resolves the round instead *)
  | Ev_suspicion of { gid : int }
      (* mutual suspicion: the suspicion timeout elapsed with the
         coordinator still silent — escalate to the inquiry path *)

type effect = (timer, record, call, event) Types.effect

(* Group commit (Config.group_commit): a PREPARE buffered for the next
   vectorized certification pass... *)
type pending = { p_gid : int; p_sn : Sn.t }

(* ... and a staged log record together with the effects withheld until
   the batch is force-written. *)
type staged = { s_gid : int; s_record : record; s_deps : effect list }

type state = {
  site : Site.t;
  subs : sub Int_map.t;
  table : Alive_table.t;
  pending : pending list;  (* buffered PREPAREs, newest first *)
  batch : staged list;  (* staged-but-unforced records, newest first *)
  flush_armed : bool;
}

let init ~site =
  {
    site;
    subs = Int_map.empty;
    table = Alive_table.create ();
    pending = [];
    batch = [];
    flush_armed = false;
  }

let n_prepared st = Alive_table.size st.table

(* Group-commit introspection (hygiene checks, tests): how much work is
   waiting for the next flush. A quiesced run must report zero. *)
let staged_records st = List.length st.batch
let buffered_prepares st = List.length st.pending
let flush_pending st = st.batch <> [] || st.pending <> []
let flush_armed st = st.flush_armed
let batch_fill st = List.length st.batch + List.length st.pending

let gc (config : Config.t) = Config.group_commit config

(* Split a step's effect list at its force point — the first batchable
   [Force_log] (READY and decision records only; command/incarnation
   bookkeeping is never staged) — so the record can be staged and the
   post-force effects withheld until the batch force. *)
let split_force effs =
  let rec go pre = function
    | Force_log ((R_prepare _ | R_commit _) as r) :: post -> Some (List.rev pre, r, post)
    | e :: rest -> go (e :: pre) rest
    | [] -> None
  in
  go [] effs

let record_gid = function
  | R_prepare { gid; _ }
  | R_commit { gid }
  | R_entry { gid; _ }
  | R_command { gid; _ }
  | R_incarnation { gid; _ }
  | R_local_commit { gid }
  | R_rollback { gid } ->
      gid

(* Coalesce the withheld per-gid LTM calls of a flushed batch into single
   batch calls (positioned at the first occurrence), amortizing the lock
   round-trip over the vector of gids. *)
let coalesce_calls effs =
  let holds =
    List.filter_map (function Ltm_call (L_hold_open { gid }) -> Some gid | _ -> None) effs
  in
  let commits =
    List.filter_map (function Ltm_call (L_commit { gid; inc }) -> Some (gid, inc) | _ -> None) effs
  in
  if List.length holds <= 1 && List.length commits <= 1 then effs
  else
    let seen_hold = ref false and seen_commit = ref false in
    List.filter_map
      (function
        | Ltm_call (L_hold_open _) ->
            if !seen_hold then None
            else begin
              seen_hold := true;
              Some (Ltm_call (L_hold_open_batch { gids = holds }))
            end
        | Ltm_call (L_commit _) ->
            if !seen_commit then None
            else begin
              seen_commit := true;
              Some (Ltm_call (L_commit_batch { txns = commits }))
            end
        | e -> Some e)
      effs

(* Is this agent one of the configured liars (Byzantine vote denial)? *)
let lying (config : Config.t) (st : state) = Config.lying config ~site:(Site.to_int st.site)

(* Mutual suspicion: the inquiry timer arms whenever the ordinary
   termination protocol is engaged OR a suspicion timeout is configured —
   the latter bounds the in-doubt window against a gray (alive-but-slow)
   coordinator that ordinary crash detection never flags. *)
let inquiry_engaged (config : Config.t) env =
  (env.inquiry && config.Config.decision_inquiry_interval > 0)
  || config.Config.suspicion_timeout > 0

let inquiry_delay (config : Config.t) env =
  if config.Config.suspicion_timeout > 0 then
    if env.inquiry && config.Config.decision_inquiry_interval > 0 then
      min config.Config.suspicion_timeout config.Config.decision_inquiry_interval
    else config.Config.suspicion_timeout
  else config.Config.decision_inquiry_interval

let view env gid = List.assoc_opt gid env.views
let view_alive env gid = match view env gid with Some v -> v.alive | None -> true
let update st (sub : sub) = { st with subs = Int_map.add sub.gid sub st.subs }
let send (sub : sub) payload = Send { dst = sub.coordinator; gid = sub.gid; payload }

let unexpected (st : state) ~src ~gid ~payload =
  Fmt.failwith "agent %a: unexpected message %a" Site.pp st.site Wire.pp
    { Wire.src; dst = Wire.Agent st.site; gid; payload }

(* Take the subtransaction out of the agent: timers off, bound data
   released, table entry gone, adapter bookkeeping dropped. The
   stable-log entry remains. *)
let cleanup (config : Config.t) st (sub : sub) =
  let cancels =
    (if sub.alive_armed then [ Cancel_timer (T_alive sub.gid) ] else [])
    @ (if sub.retry_armed then [ Cancel_timer (T_commit_retry sub.gid) ] else [])
    @ if sub.inquiry_armed then [ Cancel_timer (T_inquiry sub.gid) ] else []
  in
  let unbind = if config.Config.bind_data then [ Ltm_call (L_unbind { gid = sub.gid }) ] else [] in
  Alive_table.remove st.table ~gid:sub.gid;
  ( {
      st with
      subs = Int_map.remove sub.gid st.subs;
      (* a buffered PREPARE of a finished subtransaction is dropped: the
         coordinator already decided, nothing is owed a vote *)
      pending = List.filter (fun p -> p.p_gid <> sub.gid) st.pending;
    },
    cancels @ unbind @ [ Ltm_call (L_forget { gid = sub.gid }) ] )

(* Refresh the table's intervals with an immediate alive check, so the
   intersection test never consults stale liveness information. Shared
   by per-message certification and the vectorized flush pass (which
   runs it once for the whole vector). *)
let refresh_table st env =
  List.iter
    (fun (e : Alive_table.entry) ->
      match Int_map.find_opt e.Alive_table.gid st.subs with
      | Some other when (not other.resubmitting) && view_alive env e.Alive_table.gid ->
          Alive_table.extend_interval st.table ~gid:e.Alive_table.gid ~hi:env.now
      | Some _ | None -> ())
    (Alive_table.entries st.table)

(* ------------------------------------------------------------------ *)
(* Resubmission (§2, §3): replay the logged commands as a fresh local
   subtransaction. On completion a new alive interval starts; if the new
   incarnation is itself unilaterally aborted mid-replay, start over
   after a small backoff. *)
(* ------------------------------------------------------------------ *)

let rec start_resubmission config st env (sub : sub) =
  if sub.resubmitting then (st, [])
  else
    (* A unilateral abort can race an in-flight [L_commit]: the LTM's
       [Commit_done] for the dead incarnation is dropped by its [inc]
       guard, so [committing] must be voided here or the fresh
       incarnation's commit path stays blocked forever. *)
    attempt_resubmission config st env { sub with resubmitting = true; committing = false }

(* One resubmission attempt; [resubmitting] stays set across backoff
   retries, so the commit path and the alive check keep waiting instead
   of racing a fresh resubmission past the backoff. *)
and attempt_resubmission (config : Config.t) st env (sub : sub) =
  let sub = { sub with inc = sub.inc + 1 } in
  let head =
    [
      Emit (Ev_resubmission { gid = sub.gid; inc = sub.inc });
      Force_log (R_incarnation { gid = sub.gid; inc = sub.inc });
      Ltm_call (L_begin { gid = sub.gid; inc = sub.inc });
      Ltm_call (L_hold_open { gid = sub.gid });
    ]
  in
  let sub = { sub with to_feed = List.rev sub.commands_rev } in
  let st, feed_effs = feed_next config st env sub in
  (st, head @ feed_effs)

(* Replay the next logged command into the fresh incarnation (shared by
   resubmission and crash recovery); when none remain, the resubmission
   is complete. *)
and feed_next config st env (sub : sub) =
  match sub.to_feed with
  | cmd :: rest ->
      let sub = { sub with to_feed = rest } in
      (update st sub, [ Ltm_call (L_exec { gid = sub.gid; inc = sub.inc; purpose = Feed; cmd }) ])
  | [] -> resubmission_complete config st env sub

and resubmission_complete (config : Config.t) st env (sub : sub) =
  let sub = { sub with resubmitting = false } in
  (* "A new interval is always initiated after the resubmission of all
     the commands is complete." With [max_intervals] > 1, the previous
     incarnations' intervals are remembered too (the §4.2 optimization). *)
  Alive_table.push_interval st.table ~gid:sub.gid ~max_intervals:config.Config.max_intervals
    (Interval.point env.now);
  let effs =
    Ltm_call (L_watch_uan { gid = sub.gid; inc = sub.inc })
    ::
    (* Re-bind: under CI + DLU the footprint cannot have changed, but
       ablations may violate that, so bind what was actually accessed. *)
    (if config.Config.bind_data then [ Ltm_call (L_rebind { gid = sub.gid }) ] else [])
  in
  let st = update st sub in
  if sub.decision_commit then
    let st, commit_effs = try_commit config st env sub in
    (st, effs @ commit_effs)
  else (st, effs)

(* Commit certification (Appendix C). The caller must already have
   [sub] stored in [st]. *)
and try_commit (config : Config.t) st env (sub : sub) =
  if (not sub.decision_commit) || sub.committing then (st, [])
  else if sub.resubmitting then (st, []) (* resubmission_complete will call back *)
  else
    match sub.sn with
    | None when gc config ->
        (* Group commit: the PREPARE is still buffered (a decision can
           only overtake its own PREPARE on a duplicating network under
           the Counted-quorum bug); the coordinator's decision
           retransmission retries after the flush has certified it. *)
        (st, [])
    | None ->
        (* Without batching a COMMIT for an uncertified subtransaction is
           unreachable on a correct coordinator; keep the historical
           hard failure so the model checker surfaces quorum bugs. *)
        try_commit_certified config st env sub (Option.get sub.sn)
    | Some sn -> try_commit_certified config st env sub sn

and try_commit_certified (config : Config.t) st env (sub : sub) sn =
    let certified =
      (not config.Config.commit_certification)
      || Alive_table.min_sn_holds st.table ~gid:sub.gid ~sn
      || (gc config
         (* Vectorized commit certification: under group commit an entry
            whose own decision is already staged ([committing] — its
            [L_commit] sits earlier in the batch, or already ran) no
            longer blocks. Local commits apply in staging order, so the
            SN order of commit application — the property the min-SN rule
            protects — is preserved without paying a full batch window
            per transaction in the commit chain. *)
         && List.for_all
              (fun (e : Alive_table.entry) ->
                e.Alive_table.gid = sub.gid
                || Sn.(e.Alive_table.sn > sn)
                ||
                match Int_map.find_opt e.Alive_table.gid st.subs with
                | Some s -> s.committing
                | None -> true)
              (Alive_table.entries st.table))
    in
    if not certified then
      (* Commit certification failed: retry at a later time. *)
      let blocking_gid, blocking_sn =
        match Alive_table.min_sn_blocker st.table ~gid:sub.gid ~sn with
        | Some b -> (b.Alive_table.gid, b.Alive_table.sn)
        | None -> (sub.gid, sn)
      in
      let cancels = if sub.retry_armed then [ Cancel_timer (T_commit_retry sub.gid) ] else [] in
      let sub = { sub with sn_retries = sub.sn_retries + 1; retry_armed = true } in
      ( update st sub,
        Emit (Ev_commit_delayed { gid = sub.gid; sn; blocking_gid; blocking_sn })
        :: cancels
        @ [
            Arm_timer
              { timer = T_commit_retry sub.gid; delay = config.Config.commit_retry_interval };
          ] )
    else if not (view_alive env sub.gid) then start_resubmission config st env sub
    else
      (* "Write the commit record to the Agent log; commit the local
         subtransaction ..." — the decision is durable before the local
         commit, so a crash in between redoes it at recovery. Under group
         commit the record is staged and the local commit withheld until
         the batch force, so the decision is still durable first. *)
      let sub = { sub with committing = true } in
      let st = update st sub in
      let effs =
        [ Force_log (R_commit { gid = sub.gid }); Ltm_call (L_commit { gid = sub.gid; inc = sub.inc }) ]
      in
      if gc config then stage_effects config st env effs else (st, effs)

(* Group commit: stage a step's force point into the batch, withholding
   the post-force effects; pre-force effects are emitted immediately.
   Fills to [Config.max_batch] force the batch inside the same step. *)
and stage_effects config st env effs =
  match split_force effs with
  | None -> (st, effs)
  | Some (pre, r, post) ->
      let st = { st with batch = { s_gid = record_gid r; s_record = r; s_deps = post } :: st.batch } in
      if batch_fill st >= config.Config.max_batch then
        let st, flush_effs = flush config st env ~fired:false in
        (st, pre @ flush_effs)
      else if st.flush_armed then (st, pre)
      else
        ( { st with flush_armed = true },
          pre @ [ Arm_timer { timer = T_flush; delay = config.Config.group_commit_window } ] )

(* The group-commit flush: vector-certify the buffered PREPAREs — one
   alive-table refresh and one sampled environment amortized over the
   whole vector — then force every staged record with a single I/O
   ([Force_batch]) and release the withheld effects, oldest first, with
   the per-gid LTM calls coalesced into batch calls. *)
and flush config st env ~fired =
  let cancel = if (not fired) && st.flush_armed then [ Cancel_timer T_flush ] else [] in
  let st = { st with flush_armed = false } in
  let pending = List.rev st.pending in
  let st = { st with pending = [] } in
  if config.Config.refresh_on_certify && pending <> [] then refresh_table st env;
  (* Staged decision records count as committed for the extension check:
     a buffered PREPARE behind a staged commit's SN must be refused
     exactly as if the commit had already been forced — the release its
     withheld [L_commit] performs right after this flush would otherwise
     slip past the min-SN rule. *)
  let env =
    let bigger a = match a with Some m -> fun sn -> Sn.(sn > m) | None -> fun _ -> true in
    let staged_commit_sn =
      List.fold_left
        (fun acc s ->
          match s.s_record with
          | R_commit { gid } -> (
              match Int_map.find_opt gid st.subs with
              | Some { sn = Some sn; _ } when bigger acc sn -> Some sn
              | Some _ | None -> acc)
          | _ -> acc)
        None st.batch
    in
    match staged_commit_sn with
    | Some sn when bigger env.max_committed_sn sn -> { env with max_committed_sn = Some sn }
    | Some _ | None -> env
  in
  let st, cert_pre =
    List.fold_left
      (fun (st, acc) p ->
        match Int_map.find_opt p.p_gid st.subs with
        | Some sub when sub.state = Active -> (
            let st, effs = certify_prepare ~refresh:false config st env sub p.p_sn in
            match split_force effs with
            | None -> (st, acc @ effs) (* a refusal: nothing to force *)
            | Some (pre, r, post) ->
                ( { st with batch = { s_gid = p.p_gid; s_record = r; s_deps = post } :: st.batch },
                  acc @ pre ))
        | Some _ | None ->
            (* the subtransaction finished (rollback, crash) while its
               PREPARE waited; the coordinator has its answer already *)
            (st, acc))
      (st, []) pending
  in
  match List.rev st.batch with
  | [] -> (st, cancel @ cert_pre)
  | staged ->
      let records = List.map (fun s -> s.s_record) staged in
      let deps = coalesce_calls (List.concat_map (fun s -> s.s_deps) staged) in
      ({ st with batch = [] }, cancel @ cert_pre @ (Force_batch records :: deps))

(* ------------------------------------------------------------------ *)
(* Prepare certification (Appendix B) and the other message rules       *)
(* ------------------------------------------------------------------ *)

and refuse config st (sub : sub) refusal =
  let st, cleanup_effs = cleanup config st sub in
  ( st,
    Emit (Ev_refused { gid = sub.gid; refusal })
    :: Ltm_call (L_abort { gid = sub.gid })
    :: send sub (Wire.Refuse refusal)
    :: cleanup_effs )

(* Extended prepare certification (Appendix B). [refresh] is false when
   the flush pass has already refreshed the table once for the whole
   vector of buffered PREPAREs. *)
and certify_prepare ?(refresh = true) (config : Config.t) st env (sub : sub) sn =
  let sub = { sub with sn = Some sn } in
  let st = update st sub in
  let drift_ok =
    (not config.Config.sn_drift_rejection)
    || Time.diff env.now (Sn.ts sn) <= config.Config.max_sn_drift
  in
  let extension_ok =
    (not config.Config.certification_extension)
    || match env.max_committed_sn with Some m -> Sn.(sn > m) | None -> true
  in
  if not drift_ok then
    (* The serial number was drawn from a clock further in the past than
       the drift bound allows: a stale-clock coordinator could slot the
       commit below serial numbers this site has already released, so the
       PREPARE is refused outright. *)
    refuse config st sub Wire.Drift_refused
  else if not extension_ok then
    (* §5.3: an "older" (bigger-SN) subtransaction already committed
       here; preparing this one would certify a non-serializable order. *)
    let committed_sn = Option.value ~default:sn env.max_committed_sn in
    let st, effs = refuse config st sub Wire.Extension_refused in
    ( st,
      Emit
        (Ev_prepare_certification { gid = sub.gid; sn; verdict = V_refused_extension { committed_sn } })
      :: effs )
  else begin
    (* Basic prepare certification: refresh the table's intervals with an
       immediate alive check, then test the intersection rule. *)
    if config.Config.refresh_on_certify && refresh then refresh_table st env;
    let last = (Option.get (view env sub.gid)).last_op_done in
    let candidate = Interval.make ~lo:last ~hi:env.now in
    let interval_ok =
      (not config.Config.prepare_certification) || Alive_table.all_intersect st.table candidate
    in
    if not interval_ok then
      let verdict =
        match Alive_table.first_non_intersecting st.table candidate with
        | Some b ->
            V_refused_interval
              { conflicting_gid = b.Alive_table.gid;
                conflicting = Alive_table.current_interval b;
                candidate }
        | None -> V_refused_interval { conflicting_gid = sub.gid; conflicting = candidate; candidate }
      in
      let st, effs = refuse config st sub Wire.Interval_refused in
      (st, Emit (Ev_prepare_certification { gid = sub.gid; sn; verdict }) :: effs)
    else if not (view_alive env sub.gid) then
      (* CI(2): a unilaterally aborted subtransaction is never prepared. *)
      let st, effs = refuse config st sub Wire.Dead_refused in
      (st, Emit (Ev_prepare_certification { gid = sub.gid; sn; verdict = V_refused_dead }) :: effs)
    else begin
      (* Force write the prepare record; move to the prepared state. The
         in-doubt window opens here; with the termination protocol
         engaged (or a suspicion timeout set) the inquiry timer bounds
         it. *)
      let inq = inquiry_engaged config env in
      let sub =
        {
          sub with
          state = Prepared;
          alive_armed = true;
          prepared_at = Some env.now;
          inquiry_armed = inq;
        }
      in
      Alive_table.insert st.table ~gid:sub.gid ~sn ~interval:candidate;
      ( update st sub,
        [
          Emit (Ev_prepare_certification { gid = sub.gid; sn; verdict = V_ready });
          Force_log (R_prepare { gid = sub.gid; sn });
          Record (H_prepare { gid = sub.gid; sn });
          Ltm_call (L_hold_open { gid = sub.gid });
          Ltm_call (L_watch_uan { gid = sub.gid; inc = sub.inc });
        ]
        @ (if config.Config.bind_data then [ Ltm_call (L_bind { gid = sub.gid }) ] else [])
        @ [
            send sub
              (if config.Config.decision_certificates then Wire.Ready_certified { sn }
               else Wire.Ready);
            Arm_timer { timer = T_alive sub.gid; delay = config.Config.alive_check_interval };
          ]
        @ Emit (Ev_in_doubt { gid = sub.gid })
          ::
          (if inq then
             [ Arm_timer { timer = T_inquiry sub.gid; delay = inquiry_delay config env } ]
           else []) )
    end
  end

let handle_begin st ~gid ~coordinator =
  let sub =
    {
      gid;
      coordinator;
      inc = 0;
      commands_rev = [];
      state = Active;
      sn = None;
      resubmitting = false;
      to_feed = [];
      committing = false;
      decision_commit = false;
      decision_at = None;
      prepared_at = None;
      sn_retries = 0;
      inquiries = 0;
      alive_armed = false;
      retry_armed = false;
      inquiry_armed = false;
    }
  in
  (update st sub, [ Force_log (R_entry { gid; coordinator }); Ltm_call (L_begin { gid; inc = 0 }) ])

let handle_exec st (sub : sub) ~step cmd =
  (* The step index doubles as the dedup key: a duplicated EXEC carries a
     step below the logged command count (per-link FIFO keeps steps in
     order, so it can never be above). *)
  if step = List.length sub.commands_rev then
    let sub = { sub with commands_rev = cmd :: sub.commands_rev } in
    ( update st sub,
      [
        Force_log (R_command { gid = sub.gid; cmd });
        Ltm_call (L_exec { gid = sub.gid; inc = sub.inc; purpose = Reply step; cmd });
      ] )
  else (st, [])

(* The COMMIT decision for a tracked subtransaction: close the in-doubt
   window on the first decision, note it, run commit certification.
   Shared verbatim by COMMIT, COMMIT-certified and DECISION-RESP(commit)
   — the inquiry answer must bypass the certificate gate, it is the
   participant's own solicited decision. *)
let handle_commit config st env (sub : sub) =
  let first = sub.decision_at = None in
  let decision_effs =
    if first && sub.state = Prepared then
      (match sub.prepared_at with
      | Some p ->
          [
            Emit
              (Ev_decision { gid = sub.gid; committed = true; in_doubt = Time.diff env.now p });
          ]
      | None -> [])
      @ (if sub.inquiry_armed then [ Cancel_timer (T_inquiry sub.gid) ] else [])
    else []
  in
  let sub =
    {
      sub with
      decision_at = (if first then Some env.now else sub.decision_at);
      decision_commit = true;
      inquiry_armed = false;
    }
  in
  let st = update st sub in
  let st, commit_effs = try_commit config st env sub in
  (st, decision_effs @ commit_effs)

(* The lying agent's commit path: acknowledge the decision, silently
   abort the local subtransaction instead of committing it. Nothing is
   logged — the denial survives crash and replay. *)
let handle_commit_lying config st (sub : sub) =
  let st, cleanup_effs = cleanup config st sub in
  ( st,
    Ltm_call (L_abort { gid = sub.gid })
    :: send sub Wire.Commit_ack
    :: cleanup_effs )

let handle_rollback config st env (sub : sub) =
  (* A ROLLBACK for a prepared subtransaction closes its in-doubt window. *)
  let decision =
    match (sub.state, sub.prepared_at) with
    | Prepared, Some p when sub.decision_at = None ->
        [ Emit (Ev_decision { gid = sub.gid; committed = false; in_doubt = Time.diff env.now p }) ]
    | _ -> []
  in
  let st, cleanup_effs = cleanup config st sub in
  ( st,
    Emit (Ev_rollback { gid = sub.gid })
    :: (decision
       @ Force_log (R_rollback { gid = sub.gid })
         :: Ltm_call (L_abort { gid = sub.gid })
         :: send sub Wire.Rollback_ack
         :: cleanup_effs) )

(* Replies for subtransactions the volatile state no longer knows —
   either lost to a crash (active-state work is simply gone; 2PC lets a
   participant abort anything it never promised) or already finished
   (decision retransmissions are answered idempotently from the log). *)
let handle_unknown (config : Config.t) st env ~src ~gid ~payload ~(log : log_view) =
  ignore env;
  let answer payload = Send { dst = src; gid; payload } in
  match payload with
  | Wire.Exec { step; cmd; epoch = _ } ->
      if (not log.known) && step = 0 then
        (* The BEGIN was lost by the network; the first command implies
           it (later steps after a crash find a logged entry below). *)
        let st, begin_effs = handle_begin st ~gid ~coordinator:src in
        let sub = Int_map.find gid st.subs in
        let st, exec_effs = handle_exec st sub ~step cmd in
        (st, begin_effs @ exec_effs)
      else (st, [ answer (Wire.Exec_failed { step; reason = "subtransaction lost in a site crash" }) ])
  | Wire.Prepare _ ->
      if log.known && log.prepared && not log.rolled_back then
        (* A retransmitted PREPARE whose READY was lost (or chased a
           crash): the promise is on disk, repeat the vote. *)
        let vote =
          match log.sn with
          | Some sn when config.Config.decision_certificates -> Wire.Ready_certified { sn }
          | _ -> Wire.Ready
        in
        (st, [ answer vote ])
      else
        (* Either the subtransaction really was lost to a crash, or this
           is a lying agent denying the promise it never made durable —
           from here the two are indistinguishable. *)
        (st, [ answer (Wire.Refuse Wire.Dead_refused) ])
  | Wire.Commit ->
      if log.known && log.locally_committed then (st, [ answer Wire.Commit_ack ])
      else if log.known && log.prepared && not log.rolled_back then
        (* The decision reached a crashed-but-logged subtransaction
           (crash and recovery separated in time): note it durably so
           recovery redoes the local commit and answers the ack then. *)
        if not log.committed then (st, [ Force_log (R_commit { gid }) ]) else (st, [])
      else if lying config st then
        (* The liar logged no prepare and dropped its local commit; it
           keeps acknowledging so the round quiesces. *)
        (st, [ answer Wire.Commit_ack ])
      else Fmt.failwith "agent %a: COMMIT for unknown, uncommitted T%d" Site.pp st.site gid
  | Wire.Rollback when config.Config.decision_certificates ->
      (* Certificates on: honest decisions are always certified, so a
         bare ROLLBACK chasing a finished subtransaction is forged — an
         equivocating coordinator's retransmission hunting for a stale
         participant. Note the conflict; never obey or acknowledge it. *)
      (st, [ Emit (Ev_equivocation_detected { gid }) ])
  | Wire.Rollback | Wire.Rollback_certified ->
      ((if log.known then [ Force_log (R_rollback { gid }) ] else []) |> fun note ->
       (st, note @ [ answer Wire.Rollback_ack ]))
  | _ -> unexpected st ~src ~gid ~payload

let deliver config st env ~src ~gid ~payload ~(log : log_view) =
  match payload with
  | Wire.Decision_resp { committed } -> (
      (* The termination protocol's answer carries exactly the decision;
         it dispatches to the decision handlers directly — never through
         the certificate gate, which only guards unsolicited decisions. *)
      match Int_map.find_opt gid st.subs with
      | Some sub -> if committed then handle_commit config st env sub else handle_rollback config st env sub
      | None ->
          handle_unknown config st env ~src ~gid
            ~payload:
              (if committed then Wire.Commit
               else if config.Config.decision_certificates then Wire.Rollback_certified
               else Wire.Rollback)
            ~log)
  | Wire.Begin { epoch } when epoch <> env.epoch ->
      (* The coordinator resolved through a placement map this agent has
         since superseded: refuse before any work starts. The sender
         aborts, the client re-resolves through the new map and
         resubmits. *)
      ( st,
        [
          Emit (Ev_refused { gid; refusal = Wire.Wrong_epoch });
          Send { dst = src; gid; payload = Wire.Refuse Wire.Wrong_epoch };
        ] )
  | Wire.Begin _ ->
      if Int_map.mem gid st.subs || log.known then
        (st, []) (* duplicated BEGIN, or one for a gid the log already knows *)
      else handle_begin st ~gid ~coordinator:src
  | Wire.Exec { epoch; _ } when epoch <> env.epoch -> (
      (* A command resolved under a superseded map. If the BEGIN landed
         before the reconfiguration the subtransaction exists: abort it
         and refuse, so the whole global transaction restarts under the
         new placement rather than half-executing across epochs. *)
      match Int_map.find_opt gid st.subs with
      | Some sub -> refuse config st sub Wire.Wrong_epoch
      | None ->
          ( st,
            [
              Emit (Ev_refused { gid; refusal = Wire.Wrong_epoch });
              Send { dst = src; gid; payload = Wire.Refuse Wire.Wrong_epoch };
            ] ))
  | Wire.Exec { step; cmd; epoch = _ } -> (
      match Int_map.find_opt gid st.subs with
      | Some sub -> handle_exec st sub ~step cmd
      | None -> handle_unknown config st env ~src ~gid ~payload ~log)
  | Wire.Prepare sn -> (
      match Int_map.find_opt gid st.subs with
      | Some sub -> (
          match sub.state with
          | Prepared ->
              (* A retransmitted or duplicated PREPARE: the promise is
                 already on disk, so repeat the vote. *)
              let vote =
                match sub.sn with
                | Some sn when config.Config.decision_certificates -> Wire.Ready_certified { sn }
                | _ -> Wire.Ready
              in
              (st, [ send sub vote ])
          | Active when lying config st ->
              (* Vote denial: promise READY with nothing behind it — no
                 certification, no force-written prepare record, no
                 held-open locks. The vote is necessarily bare: the liar
                 holds no prepare record to certify it with. *)
              (update st { sub with sn = Some sn }, [ send sub Wire.Ready ])
          | Active ->
              if gc config then
                (* Group commit: buffer the PREPARE for the vectorized
                   certification pass at the next flush. A retransmission
                   of an already-buffered PREPARE is absorbed (the flush
                   will answer it). *)
                if List.exists (fun p -> p.p_gid = gid) st.pending then (st, [])
                else
                  let st = { st with pending = { p_gid = gid; p_sn = sn } :: st.pending } in
                  if batch_fill st >= config.Config.max_batch then flush config st env ~fired:false
                  else if st.flush_armed then (st, [])
                  else
                    ( { st with flush_armed = true },
                      [ Arm_timer { timer = T_flush; delay = config.Config.group_commit_window } ] )
              else certify_prepare config st env sub sn)
      | None -> handle_unknown config st env ~src ~gid ~payload ~log)
  | Wire.Commit -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when lying config st -> handle_commit_lying config st sub
      | Some sub when config.Config.decision_certificates && sub.state = Prepared ->
          (* Certificate gate: a bare COMMIT reached a prepared
             participant although honest coordinators certify every
             decision — ignore it and let the inquiry path resolve the
             round from the durable log. *)
          (st, [ Emit (Ev_equivocation_detected { gid }) ])
      | Some sub -> handle_commit config st env sub
      | None -> handle_unknown config st env ~src ~gid ~payload ~log)
  | Wire.Commit_certified _ -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when lying config st -> handle_commit_lying config st sub
      | Some sub -> handle_commit config st env sub
      | None -> handle_unknown config st env ~src ~gid ~payload:Wire.Commit ~log)
  | Wire.Rollback -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when config.Config.decision_certificates && sub.state = Prepared ->
          (* The bare half of an equivocating coordinator's split (or a
             forged abort): refuse to roll back a promised subtransaction
             on an uncertified decision. *)
          (st, [ Emit (Ev_equivocation_detected { gid }) ])
      | Some sub -> handle_rollback config st env sub
      | None -> handle_unknown config st env ~src ~gid ~payload ~log)
  | Wire.Rollback_certified -> (
      match Int_map.find_opt gid st.subs with
      | Some sub -> handle_rollback config st env sub
      | None -> handle_unknown config st env ~src ~gid ~payload:Wire.Rollback ~log)
  | Wire.Exec_ok _ | Wire.Exec_failed _ | Wire.Ready | Wire.Ready_certified _ | Wire.Refuse _
  | Wire.Commit_ack | Wire.Rollback_ack | Wire.Decision_req
  (* Paxos Commit traffic flows between the leader and its acceptors
     only; a participant never sees it. *)
  | Wire.Px_accept _ | Wire.Px_accepted _ | Wire.Px_query _ | Wire.Px_promise _
  | Wire.Px_decision _ ->
      unexpected st ~src ~gid ~payload

let step (config : Config.t) (st : state) (input : input) : state * effect list =
  (* Copy-on-step: the table is the one imperative structure in the
     state; copying it up front keeps the input state intact for callers
     that branch from it (the model checker's DFS). *)
  let st = { st with table = Alive_table.copy st.table } in
  match input with
  | Deliver { env; src; gid; payload; log } -> deliver config st env ~src ~gid ~payload ~log
  | Alive_fired { env; gid } -> (
      (* Alive check (Appendix A). The timer re-arms itself — always the
         last effect, as the old code re-scheduled after the check. *)
      match Int_map.find_opt gid st.subs with
      | None -> (st, [])
      | Some sub ->
          let rearm =
            [ Arm_timer { timer = T_alive gid; delay = config.Config.alive_check_interval } ]
          in
          if sub.resubmitting then (st, rearm) (* a new interval starts when it completes *)
          else
            let alive = view_alive env gid in
            if alive then begin
              Alive_table.extend_interval st.table ~gid ~hi:env.now;
              (st, Emit (Ev_alive_check { gid; alive }) :: rearm)
            end
            else
              let st, effs = start_resubmission config st env sub in
              (st, (Emit (Ev_alive_check { gid; alive }) :: effs) @ rearm))
  | Flush_fired { env } ->
      (* Group commit: the window elapsed. The timer already fired, so no
         cancel effect; [flush] clears the armed flag. *)
      flush config st env ~fired:true
  | Retry_fired { env; gid } -> (
      match Int_map.find_opt gid st.subs with
      | None -> (st, [])
      | Some sub ->
          let sub = { sub with retry_armed = false } in
          let st = update st sub in
          try_commit config st env sub)
  | Inquiry_fired { env; gid } -> (
      (* Termination protocol: still prepared with no decision — ask the
         coordinator (or its rebooted incarnation) for the outcome and
         re-arm. Under a replicated commit protocol the inquiry also
         probes the decision register: a decided acceptor answers, and an
         undecided one starts a recovery ballot — this is what makes the
         round terminate even if the coordinator never reboots. The probe
         targets ONE acceptor per firing, round-robin, not all of them:
         a fan-out would start up to 2F+1 duelling recovery ballots at
         once, while successive probes walk the replica set and reach a
         live acceptor within F+1 firings regardless of which F died.
         Once any decision has arrived the timer dies out. *)
      ignore env;
      match Int_map.find_opt gid st.subs with
      | Some sub when sub.state = Prepared && sub.decision_at = None && not sub.decision_commit ->
          let probe =
            let n_acc = Config.n_acceptors config in
            if n_acc = 0 then []
            else
              [
                Send
                  {
                    dst = Wire.Acceptor { gid; idx = sub.inquiries mod n_acc };
                    gid;
                    payload = Wire.Decision_req;
                  };
              ]
          in
          let sub = { sub with inquiries = sub.inquiries + 1; inquiry_armed = true } in
          let suspicion =
            if config.Config.suspicion_timeout > 0 then [ Emit (Ev_suspicion { gid }) ] else []
          in
          ( update st sub,
            suspicion
            @ Emit (Ev_decision_inquiry { gid; inquiries = sub.inquiries })
              :: send sub Wire.Decision_req
              :: probe
            @ [ Arm_timer { timer = T_inquiry gid; delay = inquiry_delay config env } ] )
      | Some sub when sub.inquiry_armed -> (update st { sub with inquiry_armed = false }, [])
      | Some _ | None -> (st, []))
  | Backoff_fired { env; gid; inc } -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when sub.inc = inc -> attempt_resubmission config st env sub
      | _ -> (st, []) (* a stale backoff of a finished/superseded incarnation *))
  | Uan { env; gid; inc } -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when sub.inc = inc -> start_resubmission config st env sub
      | _ -> (st, []))
  | Exec_done { env; gid; inc; purpose; result } -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when sub.inc = inc -> (
          match (purpose, result) with
          | Reply step, Done r -> (st, [ send sub (Wire.Exec_ok { step; result = r }) ])
          | Reply step, Failed reason -> (st, [ send sub (Wire.Exec_failed { step; reason }) ])
          | Feed, Done _ -> feed_next config st env sub
          | Feed, Failed _ ->
              (* The incarnation died (unilateral abort, lock timeout,
                 deadlock victim): try again later. *)
              ( st,
                [
                  Arm_timer
                    { timer = T_backoff { gid; inc }; delay = config.Config.resubmit_backoff };
                ] ))
      | _ -> (st, []))
  | Commit_done { env; gid; inc; committed } -> (
      match Int_map.find_opt gid st.subs with
      | Some sub when sub.inc = inc ->
          if committed then
            let waited = match sub.decision_at with Some d -> Time.diff env.now d | None -> 0 in
            let st, cleanup_effs = cleanup config st sub in
            ( st,
              Emit (Ev_commit_released { gid; waited; retries = sub.sn_retries })
              :: Force_log (R_local_commit { gid })
              :: send sub Wire.Commit_ack
              :: cleanup_effs )
          else
            (* Aborted between the alive check and the commit: resubmit
               and retry. *)
            let sub = { sub with committing = false } in
            let st = update st sub in
            start_resubmission config st env sub
      | _ -> (st, []))
  | Crash { live } ->
      (* All volatile state is lost; only the Agent log survives.
         Prepared subtransactions' timers are silenced (active ones have
         none), then every live local transaction suffers the collective
         unilateral abort. The DLU bound sets are *not* released: the
         logged bindings keep local transactions off in-doubt data while
         recovery runs. *)
      let prepared = Alive_table.size st.table in
      let cancels =
        Int_map.fold
          (fun gid (sub : sub) acc ->
            if sub.state = Prepared then
              acc
              @ (if sub.alive_armed then [ Cancel_timer (T_alive gid) ] else [])
              @ (if sub.retry_armed then [ Cancel_timer (T_commit_retry gid) ] else [])
              @ (if sub.inquiry_armed then [ Cancel_timer (T_inquiry gid) ] else [])
            else acc)
          st.subs []
      in
      let cancels = cancels @ if st.flush_armed then [ Cancel_timer T_flush ] else [] in
      (* Staged-but-unforced records and buffered PREPAREs are volatile:
         the crash loses them, exactly the durability the protocol
         expects of an unforced record. *)
      ( {
          st with
          subs = Int_map.empty;
          table = Alive_table.create ();
          pending = [];
          batch = [];
          flush_armed = false;
        },
        (Emit (Ev_crash { live; prepared }) :: cancels) @ [ Ltm_call L_abort_all_live ] )
  | Recover { env; entries } ->
      (* Rebuild every in-doubt subtransaction from the log: a fresh
         incarnation replays the logged commands; the alive-interval
         entry restarts; if the commit record was already forced the
         decision is known and the commit is redone locally once the
         replay completes. *)
      List.fold_left
        (fun (st, effs) (e : recover_entry) ->
          let inc = e.r_inc + 1 in
          (* A recovered entry with no decision record is still in doubt:
             its in-doubt window restarts at recovery time (the pre-crash
             stretch is not measurable from the log) and, with the
             termination protocol engaged, the inquiry timer restarts
             with it. *)
          let inq = (not e.r_committed) && inquiry_engaged config env in
          let sub =
            {
              gid = e.r_gid;
              coordinator = e.r_coordinator;
              inc;
              commands_rev = List.rev e.r_commands;
              state = Prepared;
              sn = e.r_sn;
              resubmitting = true;
              to_feed = [];
              committing = false;
              decision_commit = e.r_committed;
              decision_at = (if e.r_committed then Some env.now else None);
              prepared_at = Some env.now;
              sn_retries = 0;
              inquiries = 0;
              alive_armed = true;
              retry_armed = false;
              inquiry_armed = inq;
            }
          in
          Alive_table.insert st.table ~gid:sub.gid ~sn:(Option.get e.r_sn)
            ~interval:(Interval.point env.now);
          let head =
            [
              Emit (Ev_recovered { gid = sub.gid; committed = e.r_committed });
              Force_log (R_incarnation { gid = sub.gid; inc });
              Ltm_call (L_begin { gid = sub.gid; inc });
              Ltm_call (L_hold_open { gid = sub.gid });
            ]
          in
          let sub = { sub with to_feed = e.r_commands } in
          let st, feed_effs = feed_next config st env sub in
          ( st,
            effs @ head @ feed_effs
            @ [ Arm_timer { timer = T_alive sub.gid; delay = config.Config.alive_check_interval } ]
            @ (if e.r_committed then [] else [ Emit (Ev_in_doubt { gid = sub.gid }) ])
            @
            if inq then
              [ Arm_timer { timer = T_inquiry sub.gid; delay = inquiry_delay config env } ]
            else [] ))
        (st, []) entries

(* ------------------------------------------------------------------ *)
(* Shard handover (placement reconfiguration). When a shard moves, the
   losing site's certification state for its prepared subtransactions —
   the alive-table entries, i.e. serial numbers and alive intervals —
   must reach the gaining site BEFORE the new epoch serves traffic
   there, or the gainer would certify new PREPAREs against an empty
   table and admit orders the loser already ruled out. The adopted
   entries are *foreign*: the gainer holds no local subtransaction for
   them, but they participate in interval intersection and min-SN commit
   certification exactly like native ones, conservatively gating new
   work until their global decisions arrive and [drop_foreign] releases
   them. All three operations are pure (copy-on-write on the table). *)
(* ------------------------------------------------------------------ *)

type handover_entry = { h_gid : int; h_sn : Sn.t; h_interval : Interval.t }

let export_handover st ~gids =
  List.filter_map
    (fun gid ->
      match Alive_table.find st.table ~gid with
      | Some e ->
          Some { h_gid = gid; h_sn = e.Alive_table.sn; h_interval = Alive_table.current_interval e }
      | None -> None)
    gids

let adopt_handover st entries =
  let st = { st with table = Alive_table.copy st.table } in
  List.iter
    (fun h ->
      (* Skip gids this agent participates in natively: its own prepare
         inserts (or already inserted) the entry, and an adopted copy
         would collide with that insert. *)
      if not (Int_map.mem h.h_gid st.subs) && not (Alive_table.mem st.table ~gid:h.h_gid) then
        Alive_table.insert st.table ~gid:h.h_gid ~sn:h.h_sn ~interval:h.h_interval)
    entries;
  st

let drop_foreign st ~gid =
  (* Only foreign entries are released this way: a native subtransaction
     (present in [subs]) owns its entry through its own 2PC lifecycle. *)
  if Int_map.mem gid st.subs || not (Alive_table.mem st.table ~gid) then st
  else begin
    let st = { st with table = Alive_table.copy st.table } in
    Alive_table.remove st.table ~gid;
    st
  end

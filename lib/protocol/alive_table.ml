(* The alive interval table (paper §4.2, Appendix).

   One per 2PC Agent: an entry per global subtransaction currently in the
   (simulated) prepared state at the site, holding its serial number and
   its known alive time intervals. The basic prepare certification tests a
   candidate's interval for intersection with every entry; the commit
   certification asks whether any entry has a smaller serial number; the
   periodic alive check extends the current interval's end.

   The paper: "The easiest way to implement the Certifier is to simply
   store the last alive time interval for each global subtransaction being
   in the prepared state. As an optimization, several of them might be
   stored." Both variants live here: each entry keeps up to [max_intervals]
   intervals (newest first), and the intersection rule is satisfied by
   *any* stored interval — sound because whichever interval witnesses
   simultaneous aliveness proves conflict-freeness of the (stable)
   decompositions, hence of every future incarnation (§4.2).

   These are the certifier's two hottest paths (every PREPARE scans the
   table, every COMMIT folds over it), so the table maintains incremental
   aggregates next to the entry map:

   - a (max-lo, min-hi) intersection window over every entry's *current*
     interval, kept as two time-keyed multisets. A candidate inside the
     window intersects the newest interval of every entry — an O(log n)
     accept fast path for [all_intersect]; when no entry stores more than
     one interval (the paper's baseline, and the common case) a window
     miss is also an exact reject, so the fold never runs.
   - a map sorted by (serial number, gid), making [min_sn_holds] and
     [min_sn_blocker] O(log n) instead of a fold per COMMIT attempt, with
     the gid tie-break deterministic by construction.

   The fold-based implementations survive with a [_fold] suffix as the
   reference the property tests and benchmarks compare against. *)

open Hermes_kernel

type entry = { gid : int; sn : Sn.t; mutable intervals : Interval.t list (* newest first, never empty *) }

module Sn_map = Map.Make (struct
  type t = Sn.t * int

  let compare (s1, g1) (s2, g2) =
    match Sn.compare s1 s2 with 0 -> Int.compare g1 g2 | c -> c
end)

(* A multiset of times: time -> multiplicity. *)
module Time_bag = struct
  module M = Map.Make (Time)

  type t = int M.t

  let empty = M.empty
  let add x t = M.update x (fun n -> Some (Option.value ~default:0 n + 1)) t

  let remove x t =
    M.update x (function Some n when n > 1 -> Some (n - 1) | _ -> None) t

  let min t = Option.map fst (M.min_binding_opt t)
  let max t = Option.map fst (M.max_binding_opt t)
end

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable by_sn : entry Sn_map.t;
  mutable lo_bag : Time_bag.t;  (* current-interval lower ends *)
  mutable hi_bag : Time_bag.t;  (* current-interval upper ends *)
  mutable multi : int;  (* entries storing more than one interval *)
}

let create () =
  { entries = Hashtbl.create 16; by_sn = Sn_map.empty; lo_bag = Time_bag.empty;
    hi_bag = Time_bag.empty; multi = 0 }

let current_interval e = match e.intervals with i :: _ -> i | [] -> assert false

(* Aggregate bookkeeping around any change to an entry's interval list. *)
let untrack_intervals t e =
  let cur = current_interval e in
  t.lo_bag <- Time_bag.remove (Interval.lo cur) t.lo_bag;
  t.hi_bag <- Time_bag.remove (Interval.hi cur) t.hi_bag;
  if List.length e.intervals > 1 then t.multi <- t.multi - 1

let track_intervals t e =
  let cur = current_interval e in
  t.lo_bag <- Time_bag.add (Interval.lo cur) t.lo_bag;
  t.hi_bag <- Time_bag.add (Interval.hi cur) t.hi_bag;
  if List.length e.intervals > 1 then t.multi <- t.multi + 1

let insert t ~gid ~sn ~interval =
  if Hashtbl.mem t.entries gid then invalid_arg "Alive_table.insert: duplicate entry";
  let e = { gid; sn; intervals = [ interval ] } in
  Hashtbl.replace t.entries gid e;
  t.by_sn <- Sn_map.add (sn, gid) e t.by_sn;
  track_intervals t e

let remove t ~gid =
  match Hashtbl.find_opt t.entries gid with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.entries gid;
      t.by_sn <- Sn_map.remove (e.sn, gid) t.by_sn;
      untrack_intervals t e

let find t ~gid = Hashtbl.find_opt t.entries gid

(* An independent copy (entry records are duplicated, so mutating one
   table never touches the other) — the pure state machines hand tables
   from state to state, and the model checker branches from a state many
   times. *)
let copy t =
  let c = create () in
  Hashtbl.iter
    (fun gid e ->
      let e' = { gid = e.gid; sn = e.sn; intervals = e.intervals } in
      Hashtbl.replace c.entries gid e';
      c.by_sn <- Sn_map.add (e'.sn, gid) e' c.by_sn;
      track_intervals c e')
    t.entries;
  c
let mem t ~gid = Hashtbl.mem t.entries gid
let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
let size t = Hashtbl.length t.entries

(* Begin a fresh interval (a resubmission completed), keeping at most
   [max_intervals] per entry. *)
let push_interval t ~gid ~max_intervals interval =
  match Hashtbl.find_opt t.entries gid with
  | Some e ->
      let keep = Stdlib.max 1 max_intervals in
      untrack_intervals t e;
      e.intervals <- interval :: List.filteri (fun i _ -> i < keep - 1) e.intervals;
      track_intervals t e
  | None -> ()

(* Replace all knowledge with a single interval — the paper's
   store-only-the-last-interval baseline. *)
let update_interval t ~gid interval =
  match Hashtbl.find_opt t.entries gid with
  | Some e ->
      untrack_intervals t e;
      e.intervals <- [ interval ];
      track_intervals t e
  | None -> ()

let extend_interval t ~gid ~hi =
  match Hashtbl.find_opt t.entries gid with
  | Some e -> (
      match e.intervals with
      | cur :: rest when Time.(Interval.lo cur <= hi) ->
          untrack_intervals t e;
          e.intervals <- Interval.extend_to cur ~hi :: rest;
          track_intervals t e
      | _ -> ())
  | None -> ()

(* The Alive Time Intersection Rule, fold reference: the candidate may be
   prepared only if it intersects some stored interval of every entry. *)
let all_intersect_fold t candidate =
  Hashtbl.fold
    (fun _ e acc -> acc && List.exists (Interval.intersects candidate) e.intervals)
    t.entries true

(* Fast path: the candidate intersects every entry's *current* interval
   iff it reaches past the largest lower end and starts before the
   smallest upper end. Sufficient always; exact when every entry stores a
   single interval (multi = 0). *)
let all_intersect t candidate =
  match (Time_bag.max t.lo_bag, Time_bag.min t.hi_bag) with
  | None, _ | _, None -> true  (* empty table *)
  | Some max_lo, Some min_hi ->
      if Time.(Interval.lo candidate <= min_hi) && Time.(max_lo <= Interval.hi candidate) then true
      else if t.multi = 0 then false
      else all_intersect_fold t candidate

(* Deterministic certification witnesses, for the event trace: which
   entry refused the candidate / holds the commit back. *)
let first_non_intersecting t candidate =
  Hashtbl.fold
    (fun _ e acc ->
      if List.exists (Interval.intersects candidate) e.intervals then acc
      else match acc with Some b when b.gid < e.gid -> acc | _ -> Some e)
    t.entries None

(* The sorted map minus the candidate's own entry: the smallest
   (serial number, gid) among the *other* entries, if any. *)
let min_other t ~gid =
  let m =
    match Hashtbl.find_opt t.entries gid with
    | Some e -> Sn_map.remove (e.sn, gid) t.by_sn
    | None -> t.by_sn
  in
  Sn_map.min_binding_opt m

(* Commit certification test (Appendix C): true iff every *other* entry
   has a bigger serial number than [sn]. *)
let min_sn_holds t ~gid ~sn =
  match min_other t ~gid with None -> true | Some ((s, _), _) -> Sn.(s > sn)

let min_sn_holds_fold t ~gid ~sn =
  Hashtbl.fold (fun _ e acc -> acc && (e.gid = gid || Sn.(e.sn > sn))) t.entries true

let min_sn_blocker t ~gid ~sn =
  match min_other t ~gid with
  | Some ((s, _), e) when not Sn.(s > sn) -> Some e
  | _ -> None

(* Fold reference; equal serial numbers break ties on the smaller gid, like
   {!first_non_intersecting}, so the witness is fold-order independent. *)
let min_sn_blocker_fold t ~gid ~sn =
  Hashtbl.fold
    (fun _ e acc ->
      if e.gid = gid || Sn.(e.sn > sn) then acc
      else
        match acc with
        | Some b when Sn.compare b.sn e.sn < 0 || (Sn.compare b.sn e.sn = 0 && b.gid < e.gid) -> acc
        | _ -> Some e)
    t.entries None

let pp ppf t =
  let pp_entry ppf e =
    Fmt.pf ppf "T%d sn=%a %a" e.gid Sn.pp e.sn Fmt.(list ~sep:comma Interval.pp) e.intervals
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_entry) (entries t)

(** The alive interval table (paper §4.2, Appendix): one entry per global
    subtransaction in the (simulated) prepared state at a site, holding
    its serial number and last known alive time interval.

    The table maintains incremental aggregates — a (max-lo, min-hi)
    window over current intervals and a map sorted by (serial number,
    gid) — so [all_intersect] has an O(log n) accept fast path and
    [min_sn_holds]/[min_sn_blocker] are O(log n) rather than a fold per
    COMMIT attempt. The fold-based reference implementations are exposed
    with a [_fold] suffix for property tests and benchmarks.

    [entry.intervals] must not be mutated from outside this module: the
    aggregates are maintained by [push_interval]/[update_interval]/
    [extend_interval] and would be silently invalidated. *)

open Hermes_kernel

type entry = { gid : int; sn : Sn.t; mutable intervals : Interval.t list (** newest first; never empty *) }
type t

val create : unit -> t

val insert : t -> gid:int -> sn:Sn.t -> interval:Interval.t -> unit
(** Raises [Invalid_argument] on duplicate gids. *)

val remove : t -> gid:int -> unit
val find : t -> gid:int -> entry option

val copy : t -> t
(** An independent copy: mutations of either table never touch the
    other. Used by the pure state machines (whose [step] never mutates
    its input state) and the model checker's DFS. *)

val mem : t -> gid:int -> bool
val entries : t -> entry list
val size : t -> int
val current_interval : entry -> Interval.t

val push_interval : t -> gid:int -> max_intervals:int -> Interval.t -> unit
(** Begin a fresh interval after a completed resubmission, keeping at most
    [max_intervals] intervals per entry — the paper's "several of them
    might be stored" optimization. No-op on absent gids. *)

val update_interval : t -> gid:int -> Interval.t -> unit
(** Replace all knowledge with a single interval — the paper's
    store-only-the-last-interval baseline. No-op on absent gids. *)

val extend_interval : t -> gid:int -> hi:Time.t -> unit
(** Move the current interval's upper end (a successful alive check).
    No-op on absent gids or when [hi] precedes the interval. *)

val all_intersect : t -> Interval.t -> bool
(** The Alive Time Intersection Rule: may the candidate be prepared? The
    candidate must intersect some stored interval of every entry (sound
    for any stored interval, §4.2: decompositions are stable under CI and
    DLU, so past simultaneous aliveness proves future conflict-freeness).
    O(log n) when the candidate sits inside the (max-lo, min-hi) window
    or when every entry stores a single interval; falls back to
    {!all_intersect_fold} only on a window miss with multi-interval
    entries present. *)

val all_intersect_fold : t -> Interval.t -> bool
(** Fold-over-all-entries reference for {!all_intersect}; same answers. *)

val first_non_intersecting : t -> Interval.t -> entry option
(** A deterministic witness for a failed intersection rule: the
    smallest-gid entry none of whose intervals meets the candidate. *)

val min_sn_holds : t -> gid:int -> sn:Sn.t -> bool
(** Commit certification test (Appendix C): does every *other* entry have
    a bigger serial number? O(log n) via the sorted-by-SN map. *)

val min_sn_holds_fold : t -> gid:int -> sn:Sn.t -> bool
(** Fold-over-all-entries reference for {!min_sn_holds}; same answers. *)

val min_sn_blocker : t -> gid:int -> sn:Sn.t -> entry option
(** A deterministic witness for a failed commit certification: the entry
    with the smallest (serial number, gid) at or below [sn]. O(log n). *)

val min_sn_blocker_fold : t -> gid:int -> sn:Sn.t -> entry option
(** Fold reference for {!min_sn_blocker}; equal serial numbers break ties
    on the smaller gid, so the witness is fold-order independent and
    agrees with the map-based version. *)

val pp : t Fmt.t

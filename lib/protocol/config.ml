(* Certifier configuration: each certification step of the paper can be
   toggled independently, which is how the ablation experiments (and the
   naive resubmitting agent of [Barker & Özsu]-style systems) are
   expressed. *)

(* How the coordinator's commit/abort decision is made durable.
   [Two_pc] is the paper's protocol: the decision lives in the
   coordinator's own force-written log, so a crashed coordinator blocks
   in-doubt participants until its site reboots.  [Backup_tm] and
   [Paxos] replicate the decision into a register spread over acceptor
   processes on other sites (Gray & Lamport, "Consensus on Transaction
   Commit"): the leader announces COMMIT only after a write quorum of
   acceptors has accepted it, and any in-doubt party can drive a
   recovery ballot against a read quorum, so the decision survives F
   replica failures with no blocking.  [Backup_tm] is the degenerate
   single-acceptor exemplar (the t2pc ENABLEBTM shape): one backup TM
   on the next site, non-blocking under exactly one failure. *)
type commit_proto = Two_pc | Backup_tm | Paxos of { f : int }

(* The process-fault adversary (Zhao, "A Byzantine Fault Tolerant
   Distributed Commit Protocol"): deterministic misbehaviours injected
   inside otherwise-honest machines. Everything defaults off, and with
   every knob at zero the machines emit exactly the honest effect
   sequences — the golden digests depend on it.

   - [lying_sites]: agents at these sites vote READY *without* preparing
     (no force-written prepare record, no certification, no held-open
     locks) and answer any later replay or DECISION-REQ-driven decision
     with "never prepared"; their local commit silently never happens.
   - [equivocate]: coordinators send COMMIT to the first half of the
     participant list and a bare ROLLBACK to the rest (and keep the
     split on retransmission).
   - [sn_drift]: even-gid coordinators draw serial numbers from a clock
     [sn_drift] ticks in the past — the stale-clock assignment the
     [max_sn_drift] bound exists to reject. *)
type adversary = { lying_sites : int list; equivocate : bool; sn_drift : int }

let no_adversary = { lying_sites = []; equivocate = false; sn_drift = 0 }

type t = {
  prepare_certification : bool;  (* §4.2: alive time intersection rule *)
  certification_extension : bool;  (* §5.3: refuse PREPARE behind a bigger committed SN *)
  commit_certification : bool;  (* §5.2: release local commits in SN order *)
  refresh_on_certify : bool;  (* run an alive check over the table before the intersection test *)
  bind_data : bool;  (* register bound data for DLU enforcement *)
  alive_check_interval : int;  (* ticks between periodic alive checks (Appendix A) *)
  commit_retry_interval : int;  (* ticks before retrying a blocked commit certification (Appendix C) *)
  resubmit_backoff : int;  (* ticks to wait before restarting a failed resubmission *)
  sn_at_begin : bool;  (* ticket baseline: draw the SN at BEGIN instead of at global commit *)
  max_intervals : int;  (* alive intervals kept per prepared subtransaction (paper: "several
                           of them might be stored"); 1 = the store-only-the-last baseline *)
  exec_timeout : int;  (* coordinator: ticks to wait for a command reply before aborting
                          (covers replies swallowed by a site crash) *)
  decision_retry_interval : int;  (* coordinator: ticks between COMMIT/ROLLBACK retransmissions
                                     to unacknowledged participants *)
  prepare_retry_interval : int;  (* coordinator: ticks between PREPARE retransmissions to
                                    participants that have not voted; armed only on a lossy
                                    network (Network.lossy), so reliable runs are unchanged *)
  decision_inquiry_interval : int;  (* agent: ticks an in-doubt (prepared, undecided)
                                       subtransaction waits before asking the coordinator (and,
                                       under a replicated commit protocol, the acceptors) for
                                       the outcome (DECISION-REQ); armed whenever the
                                       termination protocol is on (coordinator crashes
                                       enabled), reliable network or not — a crashed
                                       coordinator loses in-flight decisions even when no
                                       message is ever dropped *)
  group_commit_window : int;  (* group commit: ticks a staged log record may wait for
                                 companions before the batch is force-written; 0 disables
                                 group commit entirely (every force is immediate, and the
                                 machines emit exactly the historical effect sequences) *)
  max_batch : int;  (* group commit: force the batch as soon as this many records
                       (and, at the agent, buffered PREPAREs) are staged, even if the
                       window has not elapsed *)
  commit_proto : commit_proto;  (* how the decision is made durable; [Two_pc] (the default)
                                   keeps every pre-replication run byte-identical *)
  adversary : adversary;  (* injected process faults; [no_adversary] keeps runs honest *)
  decision_certificates : bool;  (* countermeasure: READY carries its PREPARE's serial number
                                    and COMMIT carries the vote set; agents, coordinators and
                                    the Paxos register reject bare (uncertified) votes and
                                    decisions, making vote-denial and equivocation detectable
                                    at the receiver *)
  sn_drift_rejection : bool;  (* countermeasure: refuse a PREPARE whose serial number is more
                                 than [max_sn_drift] ticks behind the agent's clock *)
  max_sn_drift : int;  (* the staleness bound [sn_drift_rejection] enforces *)
  suspicion_timeout : int;  (* countermeasure against gray (alive-but-slow) coordinators:
                               ticks an in-doubt participant waits before escalating to the
                               inquiry/recovery path even on runs where the ordinary
                               termination protocol is not armed; 0 = off *)
}

let group_commit t = t.group_commit_window > 0

(* Is the agent at (integer) site id [site] a configured liar? *)
let lying t ~site = List.mem site t.adversary.lying_sites

(* Replica-set geometry of the decision register.  2PC has no acceptors
   (the coordinator log is the register); backup-TM has one; Paxos
   Commit has 2f+1 with matching f+1 read/write quorums, so any read
   quorum intersects any write quorum. *)
let n_acceptors t =
  match t.commit_proto with Two_pc -> 0 | Backup_tm -> 1 | Paxos { f } -> (2 * f) + 1

let replica_quorum t =
  match t.commit_proto with Two_pc -> 0 | Backup_tm -> 1 | Paxos { f } -> f + 1

let pp_commit_proto ppf = function
  | Two_pc -> Fmt.string ppf "2pc"
  | Backup_tm -> Fmt.string ppf "backup-tm"
  | Paxos { f } -> Fmt.pf ppf "paxos(f=%d)" f

(* The full 2CM certifier as the paper specifies it. *)
let full =
  {
    prepare_certification = true;
    certification_extension = true;
    commit_certification = true;
    refresh_on_certify = true;
    bind_data = true;
    alive_check_interval = 5_000;
    commit_retry_interval = 2_000;
    resubmit_backoff = 1_000;
    sn_at_begin = false;
    max_intervals = 1;
    exec_timeout = 150_000;
    decision_retry_interval = 40_000;
    prepare_retry_interval = 40_000;
    decision_inquiry_interval = 60_000;
    group_commit_window = 0;
    max_batch = 8;
    commit_proto = Two_pc;
    adversary = no_adversary;
    decision_certificates = false;
    sn_drift_rejection = false;
    max_sn_drift = 500_000;
    suspicion_timeout = 0;
  }

(* The naive 2PC agent: simulated prepared state and resubmission, but no
   certification at all — the straw man that exhibits both global and
   local view distortions under failures. *)
let naive =
  {
    full with
    prepare_certification = false;
    certification_extension = false;
    commit_certification = false;
    bind_data = false;
  }

(* The predefined-total-order ("ticket") scheme the paper argues against
   in §5.2: serial numbers drawn at BEGIN, so *all* global transactions
   must commit in begin order whether they conflict or not. *)
let ticket = { full with sn_at_begin = true }

(* The §4.2 optimization: remember several alive intervals per prepared
   subtransaction, so a candidate that overlapped any *past* incarnation
   of a since-failed neighbour still certifies. *)
let multi_interval = { full with max_intervals = 4 }

(* Group commit: stage READY and decision records and force them once per
   batch (window- and size-bounded), amortizing the log force and the LTM
   round-trip over a vector of gids. A 10 ms window is wide enough to
   fill batches at a few hundred transactions per second; latency-
   sensitive setups should shrink it. *)
let grouped = { full with group_commit_window = 10_000; max_batch = 32 }

(* Named ablations for the experiment harness. *)
let without_extension = { full with certification_extension = false }
let without_commit_certification = { full with commit_certification = false }
let without_prepare_certification = { full with prepare_certification = false }
let without_dlu = { full with bind_data = false }

let pp ppf t =
  Fmt.pf ppf "{prep=%b ext=%b commit=%b refresh=%b dlu=%b ticket=%b}" t.prepare_certification
    t.certification_extension t.commit_certification t.refresh_on_certify t.bind_data t.sn_at_begin

(** Certifier configuration.

    Every certification step of the paper (and every timer the protocol
    machines arm) is an independent knob, which is how the ablation
    experiments — and the naive resubmitting agent the paper argues
    against — are expressed.  A configuration is pure data: the same
    record drives the pure state machines, the effectful adapters and
    the {!Explore} model checker. *)

type commit_proto =
  | Two_pc
      (** The paper's protocol: the decision lives only in the
          coordinator's force-written log, so a crashed coordinator
          blocks in-doubt participants until its site reboots. *)
  | Backup_tm
      (** One backup acceptor on the next site (the t2pc [ENABLEBTM]
          exemplar): the degenerate single-replica register, non-blocking
          under exactly one failure. *)
  | Paxos of { f : int }
      (** Gray & Lamport's Paxos Commit: the decision is a
          Paxos-replicated register over [2f+1] acceptors with [f+1]
          read/write quorums — commit survives [f] replica failures with
          zero blocking. *)

(** The process-fault adversary: deterministic misbehaviours injected
    inside otherwise-honest machines.  With every knob at its
    {!no_adversary} value the machines emit exactly the honest effect
    sequences — the golden digests depend on it. *)
type adversary = {
  lying_sites : int list;
      (** agents at these (integer) sites vote READY without preparing
          — no force-written prepare record, no certification — answer
          later replays with "never prepared", and silently drop their
          local commit *)
  equivocate : bool;
      (** coordinators send COMMIT to the first half of the participant
          list and a bare ROLLBACK to the rest, keeping the split on
          retransmission *)
  sn_drift : int;
      (** even-gid coordinators draw serial numbers from a clock this
          many ticks in the past — the stale-clock assignment
          [max_sn_drift] exists to reject *)
}

val no_adversary : adversary

type t = {
  prepare_certification : bool;
      (** §4.2: refuse a PREPARE whose alive interval does not intersect
          every concurrently prepared subtransaction's interval. *)
  certification_extension : bool;
      (** §5.3: additionally refuse a PREPARE that arrives behind an
          already-committed larger serial number. *)
  commit_certification : bool;
      (** §5.2 / Appendix C: release local commits in global serial-number
          order (the min-SN rule). *)
  refresh_on_certify : bool;
      (** Run an alive check over the table before the intersection test,
          so certification never consults stale liveness information. *)
  bind_data : bool;  (** Register bound data for DLU enforcement. *)
  alive_check_interval : int;
      (** Ticks between periodic alive checks (Appendix A). *)
  commit_retry_interval : int;
      (** Ticks before retrying a blocked commit certification
          (Appendix C). *)
  resubmit_backoff : int;
      (** Ticks to wait before restarting a failed resubmission. *)
  sn_at_begin : bool;
      (** Ticket baseline: draw the serial number at BEGIN instead of at
          global commit, forcing commit order = begin order. *)
  max_intervals : int;
      (** Alive intervals kept per prepared subtransaction (the paper:
          "several of them might be stored"); [1] is the
          store-only-the-last baseline. *)
  exec_timeout : int;
      (** Coordinator: ticks to wait for a command reply before aborting
          (covers replies swallowed by a site crash). *)
  decision_retry_interval : int;
      (** Coordinator: ticks between COMMIT/ROLLBACK retransmissions to
          unacknowledged participants. *)
  prepare_retry_interval : int;
      (** Coordinator: ticks between PREPARE retransmissions to
          participants that have not voted; armed only on a lossy
          network, so reliable runs are unchanged. *)
  decision_inquiry_interval : int;
      (** Agent: ticks an in-doubt (prepared, undecided) subtransaction
          waits before asking the coordinator — and, under a replicated
          commit protocol, the acceptors — for the outcome
          (DECISION-REQ). Armed whenever the termination protocol is on
          (coordinator crashes enabled), on reliable networks too: a
          coordinator crash loses in-flight decisions even when no
          message is ever dropped. *)
  group_commit_window : int;
      (** Group commit: ticks a staged log record may wait for companions
          before the batch is force-written.  [0] disables group commit:
          every force is immediate and the machines emit exactly the
          historical (pre-group-commit) effect sequences, byte-identical
          at a fixed seed.  When positive, the agent buffers incoming
          PREPAREs and stages READY / decision records, forcing them once
          per batch ({!Types.effect}, [Force_batch]), and the coordinator
          stages its records for the per-site batcher
          ({!Types.effect}, [Stage_log]). *)
  max_batch : int;
      (** Group commit: force the batch as soon as this many records
          (and, at the agent, buffered PREPAREs) are staged, even if
          [group_commit_window] has not elapsed. *)
  commit_proto : commit_proto;
      (** How the commit/abort decision is made durable. [Two_pc] (the
          default everywhere) keeps every pre-replication run
          byte-identical. *)
  adversary : adversary;
      (** Injected process faults; {!no_adversary} keeps runs honest. *)
  decision_certificates : bool;
      (** Countermeasure: READY carries its PREPARE's serial number and
          COMMIT carries the vote set; agents, coordinators and the
          Paxos register reject bare (uncertified) votes and decisions,
          making vote-denial and equivocation detectable at the
          receiver. *)
  sn_drift_rejection : bool;
      (** Countermeasure: refuse a PREPARE whose serial number is more
          than [max_sn_drift] ticks behind the agent's clock. *)
  max_sn_drift : int;
      (** The staleness bound [sn_drift_rejection] enforces. *)
  suspicion_timeout : int;
      (** Countermeasure against gray (alive-but-slow) coordinators:
          ticks an in-doubt participant waits before escalating to the
          inquiry/recovery path even on runs where the ordinary
          termination protocol is not armed; [0] = off. *)
}

val group_commit : t -> bool
(** [group_commit t] is [t.group_commit_window > 0]: whether staged
    (batched) forcing is in effect. *)

val lying : t -> site:int -> bool
(** Is the agent at (integer) site id [site] a configured liar? *)

val n_acceptors : t -> int
(** Acceptors of the decision register: 0 for {!Two_pc}, 1 for
    {!Backup_tm}, [2f+1] for {!Paxos}. *)

val replica_quorum : t -> int
(** Read = write quorum of the register: 0 / 1 / [f+1]. Any read quorum
    intersects any write quorum, which is what makes the register
    write-once. *)

val pp_commit_proto : commit_proto Fmt.t

val full : t
(** The full 2CM certifier as the paper specifies it (group commit off). *)

val naive : t
(** The naive 2PC agent: simulated prepared state and resubmission but no
    certification at all — the straw man that exhibits both global and
    local view distortions under failures. *)

val ticket : t
(** The predefined-total-order ("ticket") scheme the paper argues against
    in §5.2: serial numbers drawn at BEGIN. *)

val multi_interval : t
(** The §4.2 optimization: remember several alive intervals per prepared
    subtransaction. *)

val grouped : t
(** {!full} with group commit enabled (10 ms window, batches of 32):
    READY and decision records are staged and force-written once per
    batch, and PREPARE/COMMIT certification is vectorized over the
    batch. *)

val without_extension : t
val without_commit_certification : t
val without_prepare_certification : t
val without_dlu : t

val pp : t Fmt.t

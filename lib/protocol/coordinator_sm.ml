(* The Coordinator, as a pure state machine (paper §2): executes the
   decomposed commands one by one, then drives standard two-phase commit
   — PREPARE to all, COMMIT iff every participant answered READY,
   ROLLBACK otherwise. See [Coordinator] in hermes.core for the
   effectful adapter; this module is transition rules only.

   Behaviour notes that the effect lists encode (and that the adapter
   relies on for byte-identical replays of the historical imperative
   implementation):
   - the serial number is *drawn by the adapter* (it reads the site
     clock) — at [init] for the ticket baseline ([Config.sn_at_begin]),
     otherwise at the commit gate's proceed, delivered via
     {!Gate_opened};
   - [Invoke_gate] and [Decide] are always the last effect of their
     step, so a synchronous gate (or a submitter resubmitting from
     [on_done]) may re-enter immediately;
   - timers are armed/cancelled exactly where the imperative code
     scheduled/cancelled them, so engine event statistics are
     unchanged. *)

open Hermes_kernel
open Types

type quorum =
  | Dedup  (* votes and acks deduplicated per site (correct) *)
  | Counted
      (* votes as a raw counter, duplicates included — the PR 3
         duplicate-READY fake-quorum bug, kept as a test-local
         configuration so the model checker can demonstrate it *)

type config = {
  certifier : Config.t;
  quorum : quorum;
  epoch : int;
      (* the placement epoch the round was resolved under; stamped into
         every BEGIN/EXEC so an agent holding a newer shard map refuses
         WRONG-EPOCH instead of executing misplaced work. 0 = static map. *)
}

let config ?(quorum = Dedup) ?(epoch = 0) certifier = { certifier; quorum; epoch }

(* Group commit: when enabled, log records are staged for the site's
   shared batcher ([Stage_log]) instead of individually forced — the
   adapter withholds the rest of the step until the batch is
   force-written with one I/O. Recovery's presumed-abort record is never
   staged (see [Recover]): recovery is rare and must terminate even if
   no further traffic ever fills a batch. *)
let force config r = if Config.group_commit config.certifier then Stage_log r else Force_log r

type phase =
  | Executing
  | Preparing
  | Replicating of { proposing : bool }
      (* replicated commit only: every participant voted READY and the
         leader is writing [commit] into the decision register at ballot
         0 ([proposing = true]), or a rebooted undecided leader is asking
         the register for the outcome ([proposing = false]); COMMIT
         leaves only once a write quorum has accepted *)
  | Committing
  | Aborting of reason

type event =
  | All_ready of { sn : Sn.t option }  (* every participant voted READY *)
  | Deciding_abort of reason
  | Retransmitting_decision of { unacked : int }
  | Retransmitting_prepare of { silent : int }
  | Recovered of { decision : bool option }
      (* the machine was rebuilt from the coordinator log after a site
         crash; [None] means no decision record survived (presumed abort) *)
  | Answering_inquiry of { asker : Site.t; committed : bool }
  | Replicating_decision of { acceptors : int }
      (* ballot-0 proposal of [commit] sent to the register *)
  | Retransmitting_proposal of { unacked : int }
  | Asking_register of { acceptors : int }
      (* crash recovery found no decision record: under a replicated
         protocol the register, not presumed abort, owns the outcome *)
  | Adopted of { committed : bool }  (* the register's recovery decision, learned *)

type timer = Exec_timeout | Retransmit | Prepare_retransmit

(* Stable coordinator-log writes, all forced: the begin record makes an
   in-flight round discoverable at recovery (so a crash mid-execution is
   terminated by presumed abort instead of leaving participants holding
   locks forever), the prepared record pins the participant set the
   PREPAREs went to, and the decision record is what recovery re-drives. *)
type record =
  | R_begin of { participants : Site.t list }
  | R_prepared of { participants : Site.t list; sn : Sn.t }
  | R_decision of { committed : bool }

type state = {
  gid : int;
  site : Site.t;  (* the coordinating site, whose clock stamps the SN *)
  participants : Site.t list;
  phase : phase;
  remaining_steps : (Site.t * int * Command.t) list;  (* (site, per-site step, command) *)
  outstanding : (Site.t * int) option;  (* the command awaiting its reply *)
  sn : Sn.t option;
  voters : Site.Set.t;  (* sites whose READY/REFUSE arrived *)
  votes : int;  (* raw vote count — what a [Counted] quorum decides on *)
  refusal : (Site.t * Wire.refusal) option;
  acked : Site.Set.t;  (* decision acknowledgements *)
  replica_acks : int list;  (* acceptor idxs whose ballot-0 PX-ACCEPTED arrived *)
  retransmissions : int;
  exec_armed : bool;
  retransmit_armed : bool;
  prepare_retransmit_armed : bool;
  finished : bool;  (* decided and acknowledged; swallow stray duplicates *)
}

type input =
  | Start
  | From_agent of { src : Site.t; payload : Wire.payload }
  | From_acceptor of { idx : int; payload : Wire.payload }
      (* replicated commit only: register traffic — ballot-0 PX-ACCEPTED
         acks, and DECISION-RESP when a recovery ballot decided for us *)
  | Exec_timeout_fired
  | Retransmit_fired
  | Prepare_retransmit_fired
  | Gate_opened of { sn : Sn.t option; lossy : bool }
      (* [sn] is a fresh serial number the adapter drew iff the config
         does not use [sn_at_begin]; [lossy] is the network's current
         lossiness, deciding whether PREPARE retransmission is armed *)
  | Gate_refused of string
  | Crash
      (* the coordinating site crashed: volatile state is lost (the
         adapter discards the machine); the returned effects silence the
         armed timers *)
  | Recover of { participants : Site.t list; sn : Sn.t option; decision : bool option }
      (* rebuild from the coordinator log after the site reboots (fed to
         a fresh [init]): a logged decision is re-driven until every
         participant acknowledges; an undecided entry is presumed
         aborted *)

type effect = (timer, record, never, event) Types.effect

(* Tag each command with its per-site step index, so agents and the
   coordinator can recognize (and ignore) duplicated EXECs and replies. *)
let number_steps steps =
  let counts = Hashtbl.create 8 in
  List.map
    (fun (site, cmd) ->
      let k = Option.value (Hashtbl.find_opt counts (Site.to_int site)) ~default:0 in
      Hashtbl.replace counts (Site.to_int site) (k + 1);
      (site, k, cmd))
    steps

let init ~gid ~site ~participants ~steps ~sn =
  {
    gid;
    site;
    participants;
    phase = Executing;
    remaining_steps = number_steps steps;
    outstanding = None;
    sn;
    voters = Site.Set.empty;
    votes = 0;
    refusal = None;
    acked = Site.Set.empty;
    replica_acks = [];
    retransmissions = 0;
    exec_armed = false;
    retransmit_armed = false;
    prepare_retransmit_armed = false;
    finished = false;
  }

let n_participants st = List.length st.participants

let send st ~dst payload = Send { dst; gid = st.gid; payload }

let send_to_all st payload = List.map (fun s -> send st ~dst:(Wire.Agent s) payload) st.participants

(* Replicated-commit geometry (0 acceptors under plain 2PC). *)
let n_acceptors config = Config.n_acceptors config.certifier
let replica_quorum config = Config.replica_quorum config.certifier
let replicated config = n_acceptors config > 0

let send_to_acceptors config st payload =
  List.init (n_acceptors config) (fun idx ->
      send st ~dst:(Wire.Acceptor { gid = st.gid; idx }) payload)

let decision_message config st =
  match st.phase with
  | Committing ->
      if config.certifier.Config.decision_certificates then
        Wire.Commit_certified { voters = st.participants }
      else Wire.Commit
  | _ ->
      if config.certifier.Config.decision_certificates then Wire.Rollback_certified
      else Wire.Rollback

(* The per-participant decision payloads, in participant-list order. An
   equivocating coordinator that decided COMMIT tells the first half of
   its participants the truth and sends the rest a forged ROLLBACK —
   necessarily bare, since its durable log holds commit and certificates
   cannot be forged. An abort is never equivocated: there is nothing to
   gain by telling a voter the truth it already fears. *)
let decision_sends config st =
  let honest = decision_message config st in
  let n = n_participants st in
  let equivocating =
    config.certifier.Config.adversary.Config.equivocate && st.phase = Committing && n > 1
  in
  List.mapi
    (fun i s -> (s, if equivocating && i * 2 >= n then Wire.Rollback else honest))
    st.participants

(* Start broadcasting the decision; decision retransmission replaces any
   armed PREPARE retransmission. *)
let start_decision config st phase =
  let st = { st with phase; acked = Site.Set.empty } in
  let cancels = if st.prepare_retransmit_armed then [ Cancel_timer Prepare_retransmit ] else [] in
  let st = { st with prepare_retransmit_armed = false; retransmit_armed = true } in
  ( st,
    List.map (fun (s, payload) -> send st ~dst:(Wire.Agent s) payload) (decision_sends config st)
    @ cancels
    @ [ Arm_timer { timer = Retransmit; delay = config.certifier.Config.decision_retry_interval } ] )

let start_abort config st reason =
  let cancels = if st.exec_armed then [ Cancel_timer Exec_timeout ] else [] in
  let st = { st with exec_armed = false } in
  let st, effs = start_decision config st (Aborting reason) in
  ( st,
    cancels
    @ [
        Emit (Deciding_abort reason);
        force config (R_decision { committed = false });
        Record (H_global_abort { gid = st.gid });
      ]
    @ effs )

(* After the decision completes, stray duplicate acknowledgements may
   still be in flight (a retransmitted COMMIT re-acked by a recovered
   agent); the [finished] state swallows them. *)
let finish st outcome =
  let cancels = if st.retransmit_armed then [ Cancel_timer Retransmit ] else [] in
  ({ st with retransmit_armed = false; finished = true }, cancels @ [ Decide outcome ])

let next_step config st =
  match st.remaining_steps with
  | (site, step, cmd) :: rest ->
      let cancels = if st.exec_armed then [ Cancel_timer Exec_timeout ] else [] in
      ( { st with remaining_steps = rest; outstanding = Some (site, step); exec_armed = true },
        [ send st ~dst:(Wire.Agent site) (Wire.Exec { step; cmd; epoch = config.epoch }) ]
        @ cancels
        @ [ Arm_timer { timer = Exec_timeout; delay = config.certifier.Config.exec_timeout } ] )
  | [] ->
      let cancels = if st.exec_armed then [ Cancel_timer Exec_timeout ] else [] in
      (* All commands executed: the application submits the global Commit.
         The gate (a baseline scheduler's hook) may hold or refuse it;
         the adapter answers with [Gate_opened] or [Gate_refused]. *)
      ({ st with exec_armed = false; outstanding = None }, cancels @ [ Invoke_gate ])

let is_outstanding st site step =
  match st.outstanding with Some (s, k) -> Site.equal s site && k = step | None -> false

(* One vote arrived. Under [Dedup] a repeated voter is ignored; under
   [Counted] the raw count decides — two copies of one READY then look
   like a quorum (the historical fake-quorum bug). *)
let note_vote config st src =
  match config.quorum with
  | Dedup ->
      if Site.Set.mem src st.voters then None
      else
        let st = { st with voters = Site.Set.add src st.voters; votes = st.votes + 1 } in
        Some (st, Site.Set.cardinal st.voters = n_participants st)
  | Counted ->
      let st = { st with voters = Site.Set.add src st.voters; votes = st.votes + 1 } in
      Some (st, st.votes = n_participants st)

(* The commit point. Under plain 2PC the leader's own forced decision
   record *is* the commit point; under a replicated protocol this runs
   only once a write quorum of acceptors has accepted the ballot-0
   proposal (the leader's log entry is then a local convenience, the
   register is authoritative). *)
let commit_point config st =
  let st, effs = start_decision config st Committing in
  ( st,
    force config (R_decision { committed = true })
    :: Record (H_global_commit { gid = st.gid })
    :: effs )

let all_ready config st =
  if st.refusal = None then
    if replicated config then
      (* Propose [commit] at ballot 0 and wait for a write quorum; the
         retransmission timer re-drives the proposal against slow or
         rebooting acceptors. A fast ABORT never needs the register: a
         recovery ballot that sees no accepted value aborts too. *)
      let cancels = if st.prepare_retransmit_armed then [ Cancel_timer Prepare_retransmit ] else [] in
      let st =
        { st with
          phase = Replicating { proposing = true };
          replica_acks = [];
          prepare_retransmit_armed = false;
          retransmit_armed = true;
        }
      in
      ( st,
        Emit (All_ready { sn = st.sn })
        :: Emit (Replicating_decision { acceptors = n_acceptors config })
        :: send_to_acceptors config st (Wire.Px_accept { ballot = 0; committed = true })
        @ cancels
        @ [ Arm_timer { timer = Retransmit; delay = config.certifier.Config.decision_retry_interval } ]
      )
    else
      let st, effs = commit_point config st in
      (st, Emit (All_ready { sn = st.sn }) :: effs)
  else
    let site, refusal = Option.get st.refusal in
    start_abort config st (Refused (site, refusal))

(* The termination protocol's server side: an in-doubt participant asks
   for the outcome; any coordinator that has decided (including a
   finished one, and a rebooted incarnation replaying its log) answers
   from its durable decision. *)
let answer_inquiry st src =
  let committed = match st.phase with Committing -> true | _ -> false in
  ( st,
    [
      Emit (Answering_inquiry { asker = src; committed });
      send st ~dst:(Wire.Agent src) (Wire.Decision_resp { committed });
    ] )

(* The register decided without us (a recovery ballot ran while we were
   proposing, crashed, or rebooting): adopt its outcome. The decision
   record is forced directly even under group commit — like recovery's
   presumed abort, adoption is rare and must terminate even if no
   further traffic ever fills a batch. *)
let adopt config st committed =
  let cancels = if st.retransmit_armed then [ Cancel_timer Retransmit ] else [] in
  let st = { st with retransmit_armed = false } in
  if committed then
    let st, effs = start_decision config st Committing in
    ( st,
      Emit (Adopted { committed })
      :: Force_log (R_decision { committed = true })
      :: Record (H_global_commit { gid = st.gid })
      :: cancels
      @ effs )
  else
    let st, effs = start_decision config st (Aborting Register_abort) in
    ( st,
      Emit (Adopted { committed })
      :: Emit (Deciding_abort Register_abort)
      :: Force_log (R_decision { committed = false })
      :: Record (H_global_abort { gid = st.gid })
      :: cancels
      @ effs )

let handle_from_agent config st src payload =
  if st.finished then
    match payload with
    | Wire.Commit_ack | Wire.Rollback_ack | Wire.Ready | Wire.Ready_certified _ | Wire.Refuse _
    | Wire.Exec_ok _ | Wire.Exec_failed _ ->
        (* Stray duplicates of any agent reply can trail the decision on
           a duplicating network. *)
        (st, [])
    | Wire.Decision_req ->
        (* A DECISION-REQ that raced the last acknowledgement: the
           decision is long since durable, repeat it. *)
        answer_inquiry st src
    | payload -> Fmt.failwith "finished coordinator T%d: unexpected %a" st.gid Wire.pp_payload payload
  else
    match (st.phase, payload) with
    | (Committing | Aborting _), Wire.Decision_req -> answer_inquiry st src
    | (Executing | Preparing | Replicating _), Wire.Decision_req ->
        (* Undecided: stay silent, the asker's inquiry timer re-asks once
           a decision exists (under a replicated protocol the inquiry
           also fans out to the acceptors, which run recovery). *)
        (st, [])
    | Executing, Wire.Exec_ok { step; _ } when is_outstanding st src step ->
        let cancels = if st.exec_armed then [ Cancel_timer Exec_timeout ] else [] in
        let st, effs = next_step config { st with exec_armed = false } in
        (st, cancels @ effs)
    | Executing, Wire.Exec_ok _ ->
        (* A duplicated reply to an already-answered command: ignore. *)
        (st, [])
    | Executing, Wire.Exec_failed { step; reason } when is_outstanding st src step ->
        start_abort config st (Exec_failed (src, reason))
    | Executing, Wire.Exec_failed _ -> (st, [])
    | Executing, Wire.Refuse r ->
        (* A WRONG-EPOCH refusal of BEGIN/EXEC: the round was resolved
           under a superseded placement map. Abort it; the submitter's
           resubmission re-resolves through the installed map. *)
        start_abort config st (Refused (src, r))
    | Preparing, Wire.Ready when config.certifier.Config.decision_certificates -> (
        (* A bare vote where a certificate is required: the voter holds
           no durable prepare record behind its promise (a liar, or a
           forgery) — count it as a refusal, so the round aborts instead
           of committing on a vote nobody can stand behind. *)
        match note_vote config st src with
        | None -> (st, [])
        | Some (st, complete) ->
            let st =
              if st.refusal = None then { st with refusal = Some (src, Wire.Uncertified_refused) }
              else st
            in
            if complete then
              let site, refusal = Option.get st.refusal in
              start_abort config st (Refused (site, refusal))
            else (st, []))
    | Preparing, (Wire.Ready | Wire.Ready_certified _) -> (
        match note_vote config st src with
        | None -> (st, [])
        | Some (st, complete) -> if complete then all_ready config st else (st, []))
    | Preparing, Wire.Refuse r -> (
        match note_vote config st src with
        | None -> (st, [])
        | Some (st, complete) ->
            let st = if st.refusal = None then { st with refusal = Some (src, r) } else st in
            if complete then
              let site, refusal = Option.get st.refusal in
              start_abort config st (Refused (site, refusal))
            else (st, []))
    | Preparing, (Wire.Exec_ok _ | Wire.Exec_failed _) ->
        (* Duplicated command replies arriving after the last command was
           first answered: ignore. *)
        (st, [])
    | Committing, Wire.Commit_ack ->
        if Site.Set.mem src st.acked then (st, [])
        else
          let st = { st with acked = Site.Set.add src st.acked } in
          if Site.Set.cardinal st.acked = n_participants st then finish st Committed else (st, [])
    | Committing, Wire.Rollback_ack when config.certifier.Config.adversary.Config.equivocate ->
        (* The forged-ROLLBACK half acknowledges the lie; the equivocator
           counts it like any other acknowledgement so the round
           quiesces. *)
        if Site.Set.mem src st.acked then (st, [])
        else
          let st = { st with acked = Site.Set.add src st.acked } in
          if Site.Set.cardinal st.acked = n_participants st then finish st Committed else (st, [])
    | Committing, (Wire.Ready | Wire.Ready_certified _ | Wire.Refuse _ | Wire.Exec_ok _
      | Wire.Exec_failed _) ->
        (* Duplicated votes or command replies trailing the decision: ignore. *)
        (st, [])
    | Aborting reason, Wire.Rollback_ack ->
        if Site.Set.mem src st.acked then (st, [])
        else
          let st = { st with acked = Site.Set.add src st.acked } in
          if Site.Set.cardinal st.acked = n_participants st then finish st (Aborted reason)
          else (st, [])
    | Aborting _, (Wire.Exec_ok _ | Wire.Exec_failed _ | Wire.Ready | Wire.Ready_certified _
      | Wire.Refuse _) ->
        (* Late replies racing the abort decision (e.g. an Exec_ok in
           flight when the exec timeout fired): ignore. *)
        (st, [])
    | Preparing, Wire.Rollback_ack when replicated config ->
        (* Under a replicated protocol an in-doubt participant's inquiry
           can prod a recovery ballot into presuming abort before our
           ballot-0 proposal ever starts; the participant rolls back and
           acknowledges a ROLLBACK we never sent.  The register has
           decided against us: adopt the abort (the broadcast collects
           this participant's acknowledgement again). *)
        adopt config st false
    | ( Replicating _,
        ( Wire.Ready | Wire.Ready_certified _ | Wire.Refuse _ | Wire.Exec_ok _ | Wire.Exec_failed _
        | Wire.Commit_ack | Wire.Rollback_ack ) ) ->
        (* Duplicated votes or replies trailing the proposal — and early
           decision acks from participants that already learned the
           outcome from a recovery ballot's DECISION-RESP; the decision
           broadcast (and its retransmission) will collect them again. *)
        (st, [])
    | _, payload ->
        Fmt.failwith "coordinator T%d: unexpected %a in current phase" st.gid Wire.pp_payload payload

let handle_from_acceptor config st idx payload =
  if st.finished then (st, [])
  else
    match (st.phase, payload) with
    | Replicating { proposing = true }, Wire.Px_accepted { ballot = 0; idx = _ } ->
        if List.mem idx st.replica_acks then (st, [])
        else
          let st = { st with replica_acks = idx :: st.replica_acks } in
          if List.length st.replica_acks >= replica_quorum config then
            (* Write quorum reached: the register holds [commit]; announce. *)
            let cancels = if st.retransmit_armed then [ Cancel_timer Retransmit ] else [] in
            let st = { st with retransmit_armed = false } in
            let st, effs = commit_point config st in
            (st, cancels @ effs)
          else (st, [])
    | Replicating _, Wire.Decision_resp { committed } -> adopt config st committed
    | _, (Wire.Px_accepted _ | Wire.Decision_resp _) ->
        (* Stale register traffic: acks for an already-reached quorum,
           extra recovery answers trailing an adopted decision. *)
        (st, [])
    | _, payload ->
        Fmt.failwith "coordinator T%d: unexpected %a from acceptor %d" st.gid Wire.pp_payload
          payload idx

let step config st input : state * effect list =
  match input with
  | Start ->
      let begins = send_to_all st (Wire.Begin { epoch = config.epoch }) in
      let st, effs = next_step config st in
      (st, (force config (R_begin { participants = st.participants }) :: begins) @ effs)
  | From_agent { src; payload } -> handle_from_agent config st src payload
  | From_acceptor { idx; payload } -> handle_from_acceptor config st idx payload
  | Exec_timeout_fired -> (
      let st = { st with exec_armed = false } in
      match (st.phase, st.outstanding) with
      | Executing, Some (site, _) ->
          start_abort config st (Exec_failed (site, "command reply timed out (site crash?)"))
      | _ -> (st, []))
  | Retransmit_fired -> (
      match st.phase with
      | Committing | Aborting _ ->
          let st = { st with retransmissions = st.retransmissions + 1 } in
          let resend =
            List.filter_map
              (fun (s, payload) ->
                if Site.Set.mem s st.acked then None
                else Some (send st ~dst:(Wire.Agent s) payload))
              (decision_sends config st)
          in
          ( st,
            Emit (Retransmitting_decision { unacked = n_participants st - Site.Set.cardinal st.acked })
            :: resend
            @ [ Arm_timer
                  { timer = Retransmit; delay = config.certifier.Config.decision_retry_interval };
              ] )
      | Replicating { proposing } ->
          (* Re-drive the register: the ballot-0 proposal against
             acceptors that have not acked, or (when recovering) the
             outcome inquiry.  The inquiry probes ONE acceptor per fire,
             round-robin — prodding every undecided acceptor at once
             would start up to [n_acceptors] duelling recovery ballots;
             successive fires walk the replica set, so a live acceptor is
             reached within F+1 fires. *)
          let st = { st with retransmissions = st.retransmissions + 1 } in
          let resend, unacked =
            if proposing then
              ( List.filter_map
                  (fun idx ->
                    if List.mem idx st.replica_acks then None
                    else
                      Some
                        (send st
                           ~dst:(Wire.Acceptor { gid = st.gid; idx })
                           (Wire.Px_accept { ballot = 0; committed = true })))
                  (List.init (n_acceptors config) Fun.id),
                n_acceptors config - List.length st.replica_acks )
            else
              ( [ send st
                    ~dst:(Wire.Acceptor { gid = st.gid; idx = st.retransmissions mod n_acceptors config })
                    Wire.Decision_req ],
                1 )
          in
          ( st,
            Emit (Retransmitting_proposal { unacked })
            :: resend
            @ [ Arm_timer
                  { timer = Retransmit; delay = config.certifier.Config.decision_retry_interval };
              ] )
      | Executing | Preparing -> ({ st with retransmit_armed = false }, []))
  | Prepare_retransmit_fired -> (
      match st.phase with
      | Preparing ->
          let st = { st with retransmissions = st.retransmissions + 1 } in
          let sn = Option.get st.sn in
          let resend =
            List.filter_map
              (fun s ->
                if Site.Set.mem s st.voters then None
                else Some (send st ~dst:(Wire.Agent s) (Wire.Prepare sn)))
              st.participants
          in
          ( st,
            Emit (Retransmitting_prepare { silent = n_participants st - Site.Set.cardinal st.voters })
            :: resend
            @ [ Arm_timer
                  { timer = Prepare_retransmit; delay = config.certifier.Config.prepare_retry_interval };
              ] )
      | Executing | Replicating _ | Committing | Aborting _ ->
          ({ st with prepare_retransmit_armed = false }, []))
  | Gate_opened { sn; lossy } when st.phase = Executing && not st.finished ->
      (* The application's global Commit passed the gate: draw the serial
         number (the ticket baseline drew it at BEGIN) and start phase
         one of 2PC. The participant set is forced to the coordinator log
         before the first PREPARE leaves, so any participant that ever
         promises is discoverable at crash recovery. *)
      let sn = if config.certifier.Config.sn_at_begin then st.sn else sn in
      let st = { st with phase = Preparing; sn } in
      let retx =
        lossy && config.certifier.Config.prepare_retry_interval > 0
      in
      let st = { st with prepare_retransmit_armed = retx } in
      ( st,
        force config (R_prepared { participants = st.participants; sn = Option.get sn })
        :: send_to_all st (Wire.Prepare (Option.get sn))
        @
        if retx then
          [ Arm_timer
              { timer = Prepare_retransmit; delay = config.certifier.Config.prepare_retry_interval };
          ]
        else [] )
  | Gate_refused why when st.phase = Executing && not st.finished ->
      start_abort config st (Gate_refused why)
  | Gate_opened _ | Gate_refused _ ->
      (* A gate answer held across a coordinator crash: the recovered
         machine already carries a (presumed or logged) decision. *)
      (st, [])
  | Crash ->
      let cancels =
        (if st.exec_armed then [ Cancel_timer Exec_timeout ] else [])
        @ (if st.retransmit_armed then [ Cancel_timer Retransmit ] else [])
        @ if st.prepare_retransmit_armed then [ Cancel_timer Prepare_retransmit ] else []
      in
      ( { st with exec_armed = false; retransmit_armed = false; prepare_retransmit_armed = false },
        cancels )
  | Recover { participants; sn; decision } -> (
      (* Fed to a fresh [init] after the site reboots. A logged decision
         is re-driven (broadcast + acknowledged retransmission); an entry
         with no decision record is presumed aborted — that abort decision
         is only now being made, so it is forced and recorded here. *)
      let st = { st with participants; sn } in
      match decision with
      | Some true ->
          let st, effs = start_decision config st Committing in
          (st, Emit (Recovered { decision }) :: effs)
      | Some false ->
          let st, effs = start_decision config st (Aborting Presumed_abort) in
          (st, Emit (Recovered { decision }) :: effs)
      | None when replicated config && sn <> None ->
          (* Undecided past the prepare point under a replicated
             protocol: presuming abort would be unsound — a recovery
             ballot may already have chosen commit.  Ask the register and
             adopt whatever it answers; the inquiry itself prods
             undecided acceptors into running recovery.  (Before the
             prepare point no participant can hold a vote and the
             register can only ever choose abort, so plain presumed
             abort below stays correct.)  Like the participants' inquiry,
             the ask probes one acceptor at a time, round-robin via the
             retransmission counter. *)
          let st = { st with phase = Replicating { proposing = false }; retransmit_armed = true } in
          ( st,
            [
              Emit (Asking_register { acceptors = n_acceptors config });
              send st ~dst:(Wire.Acceptor { gid = st.gid; idx = 0 }) Wire.Decision_req;
              Arm_timer
                { timer = Retransmit; delay = config.certifier.Config.decision_retry_interval };
            ] )
      | None ->
          let st, effs = start_decision config st (Aborting Presumed_abort) in
          ( st,
            Emit (Recovered { decision })
            :: Force_log (R_decision { committed = false })
            :: Record (H_global_abort { gid = st.gid })
            :: effs ))

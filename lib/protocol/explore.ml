(* Bounded model checker for the pure protocol machines.

   The simulator (hermes.sim + hermes.core) runs *one* schedule per
   seed; this module runs *all* schedules of a small scenario. A global
   state is the product of every coordinator machine, every agent
   machine, and pure models of everything the adapters own imperatively:
   the network (a message multiset — delivery in any order, optional
   drops and duplications under a budget), the LTMs (transaction status
   + in-flight command count per site), the stable Agent logs, and the
   armed-timer sets. An enabled action applies one machine step (or one
   fault) and yields a successor; a DFS with a visited set enumerates
   the reachable space exhaustively, within the fault budgets.

   Faults are budgeted rather than probabilistic: a budget of one drop
   explores *every* schedule in which any single message is lost. Time
   is logical — the clock only advances when a timer fires or a fault
   happens, so commuting deliveries reconverge to the same state and the
   visited set collapses the interleaving diamond.

   Violations are of two kinds:
   - machine exceptions: the machines [failwith] on protocol-impossible
     inputs (e.g. a COMMIT for an unknown, uncommitted subtransaction),
     so any schedule that provokes one is a counterexample;
   - invariant checks, tested on every transition or at terminal states:
     I1  no site both locally commits and rolls back a gid, and no local
         commit (rollback) of a globally aborted (committed) gid;
     I2  a global commit is only decided once every participant sent
         READY — the all-READY rule, and the direct detector for the
         duplicate-READY fake-quorum bug under [Counted] quorum;
     I3  commit certification: a local commit is only released while no
         smaller-SN subtransaction is prepared at the site (Appendix C);
     I4  at terminal states, a decided gid is locally committed at every
         participant (commit) or at none (abort);
     I5  (termination, checked in coordinator-crash scenarios) at
         terminal states, no prepared-but-undecided log entry is left
         without any armed recovery mechanism — neither a decision/
         PREPARE retransmission at its coordinator nor a decision
         inquiry at the participant. A violation is a participant
         blocked forever on an in-doubt subtransaction;
     plus timer hygiene: an armed alive-check, commit-retry or inquiry
     timer always belongs to a live subtransaction (terminal transitions
     must cancel their timers).

   Coordinator crashes ([coord_crashes] budget) model the coordinating
   site losing its volatile 2PC state. With [termination] on (the
   default) the crash is atomic with recovery from the modelled
   coordinator log — the begin/prepared/decision records force-written
   by the machine — re-driving a logged decision and presuming abort
   otherwise. With [termination] off the coordinator stays dead (the
   pre-durability behaviour): its timers die, deliveries to it are
   discarded, and I5 rediscovers the forever-blocking counterexample.

   With a replicated commit protocol ([commit_proto] other than 2PC) the
   decision register's acceptor machines join the global state, and the
   [replica_kills] budget enables *permanent* kills of a transaction's
   leader (its coordinator) or of individual acceptors — the Paxos
   Commit failure model, where non-blocking holds for up to F permanent
   failures. I5 is then the quorum-aware formulation: an in-doubt
   participant is blocked forever only when no reachable replica knows
   the decision AND no read/recovery quorum of live acceptors remains
   (or nothing is armed to ask them). Budgeting [replica_kills] at F
   must exhaust clean; at F+1 it must rediscover blocking — the
   checker's form of the Paxos Commit availability claim. Acceptor
   durability (crash + replay from the force-written acceptor log) is
   deliberately *not* modelled here — kills are permanent; log replay
   is covered by unit tests of the acceptor adapter.

   Scope note: replicated scenarios that also *fire* inquiry timers
   ([inquiries] > 0) do not exhaust at useful sizes — a recovery ballot
   in flight (~a dozen distinct messages) cross-interleaves with the
   ballot-0 proposal at every kill/fire placement, and the space runs
   past 10^7 states even at one transaction on one site. The CI gates
   therefore budget kills (and optionally retransmissions) with zero
   inquiry *fires*; the inquiry-driven recovery path itself is covered
   by the simulator's crash-train runs and by the unit and property
   tests of [Paxos_coordinator_sm]. *)

open Hermes_kernel
module A = Agent_sm
module C = Coordinator_sm
module P = Paxos_coordinator_sm

type budgets = {
  drops : int;  (* messages the network may lose *)
  dups : int;  (* messages the network may deliver twice *)
  crashes : int;  (* site crash+recover events *)
  uaborts : int;  (* unilateral aborts of live local transactions *)
  alive_fires : int;  (* periodic alive-check timer firings (they re-arm) *)
  commit_retries : int;  (* commit-certification retry firings *)
  exec_timeouts : int;  (* coordinator command-reply timeouts *)
  retransmits : int;  (* decision/PREPARE retransmission firings *)
  coord_crashes : int;  (* coordinator-site crash (+recovery) events *)
  inquiries : int;  (* decision-inquiry timer firings (they re-arm) *)
  replica_kills : int;
      (* permanent leader/acceptor kills (replicated protocols only) *)
  reconfigures : int;
      (* online shard moves: each installs a new placement epoch and
         (with [handover]) transfers the losing site's prepared
         certification state to the gainer *)
}

let no_faults =
  {
    drops = 0;
    dups = 0;
    crashes = 0;
    uaborts = 0;
    alive_fires = 0;
    commit_retries = 0;
    exec_timeouts = 0;
    retransmits = 0;
    coord_crashes = 0;
    inquiries = 0;
    replica_kills = 0;
    reconfigures = 0;
  }

type scenario = {
  n_sites : int;
  n_txns : int;  (* every transaction runs one command at every site *)
  config : Config.t;
  quorum : C.quorum;
  budgets : budgets;
  termination : bool;
      (* the coordinator durability + in-doubt termination protocol: off,
         a crashed coordinator stays dead and I5 finds the blocking *)
  handover : bool;
      (* shard moves transfer the loser's prepared certification state to
         the gainer before the new epoch serves traffic. Off, I6 finds
         the gainer certifying against an empty table (the ablation) *)
  txn_shards : int;
      (* shards per transaction: 0 (default) = all of them, the
         historical every-txn-touches-every-site shape. A proper subset
         (e.g. 2 of 3) leaves non-participant sites that can GAIN a
         moved shard — the only way the I6 handover obligation bites,
         since a native participant certifies through its own prepare *)
  max_states : int;  (* exploration cap; exceeding it sets [truncated] *)
}

let default =
  {
    n_sites = 2;
    n_txns = 2;
    config = { Config.full with Config.bind_data = false };
    quorum = C.Dedup;
    budgets = { no_faults with uaborts = 1; commit_retries = 2; alive_fires = 1 };
    termination = true;
    handover = true;
    txn_shards = 0;
    max_states = 2_000_000;
  }

(* ------------------------------------------------------------------ *)
(* Pure models of the adapters' imperative surroundings                 *)
(* ------------------------------------------------------------------ *)

(* One local transaction inside a modelled LTM. Aliveness is the
   paper's: active, and every submitted command completely executed. *)
type ltxn = {
  l_gid : int;
  l_inc : int;  (* incarnation the record belongs to *)
  l_status : [ `Active | `Aborted | `Committed ];
  l_in_flight : int;  (* submitted commands not yet executed *)
  l_held : bool;  (* held open past its last command (simulated prepared) *)
  l_watch : int option;  (* incarnation subscribed to the UAN *)
  l_last : int;  (* logical time of the last completed operation *)
}

(* One stable Agent-log entry (survives crashes). *)
type entry = {
  e_gid : int;
  e_coord : Wire.address;
  e_cmds : Command.t list;  (* oldest first *)
  e_inc : int;
  e_sn : Sn.t option;
  e_prepared : bool;
  e_committed : bool;  (* decision record forced *)
  e_lcommitted : bool;
  e_rolled : bool;
}

(* One stable Coordinator-log entry (survives coordinator crashes):
   what {!Hermes_core.Coordinator_log} would hold for the round. *)
type centry = {
  c_participants : Site.t list;
  c_sn : Sn.t option;
  c_decision : bool option;
}

(* An asynchronous LTM completion still in flight. *)
type cb =
  | Cb_exec of { site : int; gid : int; inc : int; purpose : A.purpose }
  | Cb_commit of { site : int; gid : int; inc : int }
  | Cb_uan of { site : int; gid : int; inc : int }

type tmr = T_agent of int * A.timer | T_coord of int * C.timer

type g = {
  clock : int;  (* logical; advances on timers and faults only *)
  sn_seq : int;
  coords : (int * C.state) list;  (* by gid *)
  clogs : (int * centry) list;  (* stable coordinator-log entries, by gid *)
  cstaged : (int * (int * C.record * C.effect list) list) list;
      (* group commit: per coordinating site, the staged-but-unforced
         coordinator records (gid, record, withheld rest-of-step
         effects), oldest first — the model of the adapters' shared
         per-site batcher. Volatile: a coordinator crash drops its gid's
         entries *)
  dead : int list;  (* dead-for-good coordinators: [termination]-off crashes and leader kills *)
  accs : ((int * int) * P.state) list;
      (* decision-register acceptor machines, by (gid, idx); present only
         under a replicated commit protocol. The machine's promised/
         accepted/decided fields double as its force-written log (every
         change to them is forced in the same step) *)
  dead_accs : (int * int) list;  (* permanently killed acceptors *)
  agents : (int * A.state) list;  (* by site id *)
  logs : (int * entry list) list;  (* by site id *)
  max_csn : (int * Sn.t) list;  (* per site: biggest committed SN in the log *)
  ltms : (int * ltxn list) list;  (* by site id *)
  msgs : Wire.t list;  (* the network: an unordered multiset *)
  cbs : cb list;
  timers : tmr list;
  unstarted : int list;
  outcomes : (int * Types.outcome) list;
  ready : (int * int) list;  (* (gid, site): READY was sent *)
  epoch : int;  (* the installed placement epoch, shared by every agent *)
  owner : (int * int) list;  (* shard -> owning site, under the current epoch *)
  tepoch : (int * int) list;  (* gid -> the epoch the transaction started under *)
  required : (int * int) list;
      (* (site, gid): handover obligations — gids prepared at a shard's
         losing site when it moved, which the gaining [site] must know
         about (I6) until the global decision lands *)
  b : budgets;  (* remaining budgets *)
}

type action =
  | Start of int
  | Deliver of Wire.t
  | Duplicate of Wire.t  (* deliver one copy, leave the original in flight *)
  | Drop of Wire.t
  | Ltm_complete of cb
  | Fire of tmr
  | Unilateral_abort of { site : int; gid : int }
  | Crash_recover of int
  | Coord_crash of int  (* by gid; recovery is atomic iff [termination] *)
  | Kill_leader of int  (* by gid: the leader dies for good (replicated protocols) *)
  | Kill_acceptor of int * int  (* (gid, idx): the acceptor dies for good *)
  | Reconfigure of { shard : int; to_ : int }
      (* online reconfiguration: move [shard] to site [to_], installing
         epoch + 1; with [scenario.handover] the loser's prepared
         certification state is adopted by the gainer first *)
  | Coord_flush of int
      (* by site: force the site's staged coordinator records (one batch
         I/O) and release their withheld effects; free, like the real
         batcher's window timer *)

exception Violation of string

let site_of = Site.of_int
let upd k v l = (k, v) :: List.remove_assoc k l
let assoc_or k l ~default = match List.assoc_opt k l with Some v -> v | None -> default

let remove_one x l =
  let rec go = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: go rest
  in
  go l

let find_entry g s gid = List.find_opt (fun e -> e.e_gid = gid) (assoc_or s g.logs ~default:[])

let put_entry g s e =
  let entries = assoc_or s g.logs ~default:[] in
  { g with logs = upd s (e :: List.filter (fun x -> x.e_gid <> e.e_gid) entries) g.logs }

let find_ltxn g s gid = List.find_opt (fun l -> l.l_gid = gid) (assoc_or s g.ltms ~default:[])

let put_ltxn g s l =
  let txns = assoc_or s g.ltms ~default:[] in
  { g with ltms = upd s (l :: List.filter (fun x -> x.l_gid <> l.l_gid) txns) g.ltms }

(* The [env] snapshot an adapter would sample for a site right now. *)
let env_of scenario g s =
  {
    (* Mirrors the adapter: the inquiry is armed whenever coordinator
       failures are on the table for the run — crash+recover or
       permanent kills — not only on lossy networks. *)
    A.inquiry =
      scenario.termination
      && (scenario.budgets.coord_crashes > 0 || scenario.budgets.replica_kills > 0);
    now = Time.of_int g.clock;
    views =
      List.map
        (fun l ->
          ( l.l_gid,
            {
              A.alive = (l.l_status = `Active && l.l_in_flight = 0);
              last_op_done = Time.of_int l.l_last;
            } ))
        (assoc_or s g.ltms ~default:[]);
    max_committed_sn = List.assoc_opt s g.max_csn;
    epoch = g.epoch;
  }

let log_view_of g s gid =
  match find_entry g s gid with
  | None ->
      { A.known = false; prepared = false; committed = false; locally_committed = false;
        rolled_back = false; sn = None }
  | Some e ->
      {
        A.known = true;
        prepared = e.e_prepared;
        committed = e.e_committed;
        locally_committed = e.e_lcommitted;
        rolled_back = e.e_rolled;
        sn = e.e_sn;
      }

(* ------------------------------------------------------------------ *)
(* Effect interpretation (pure: every handler returns the next [g])     *)
(* ------------------------------------------------------------------ *)

(* I1, checked at the log writes where a local decision lands. *)
let log_write g s (r : A.record) =
  match r with
  | A.R_entry { gid; coordinator } -> (
      match find_entry g s gid with
      | Some _ -> g
      | None ->
          put_entry g s
            {
              e_gid = gid;
              e_coord = coordinator;
              e_cmds = [];
              e_inc = 0;
              e_sn = None;
              e_prepared = false;
              e_committed = false;
              e_lcommitted = false;
              e_rolled = false;
            })
  | A.R_command { gid; cmd } -> (
      match find_entry g s gid with
      | Some e -> put_entry g s { e with e_cmds = e.e_cmds @ [ cmd ] }
      | None -> g)
  | A.R_incarnation { gid; inc } -> (
      match find_entry g s gid with
      | Some e -> put_entry g s { e with e_inc = max e.e_inc inc }
      | None -> g)
  | A.R_prepare { gid; sn } -> (
      match find_entry g s gid with
      | Some e -> put_entry g s { e with e_prepared = true; e_sn = Some sn }
      | None -> g)
  | A.R_commit { gid } -> (
      match find_entry g s gid with
      | Some e -> (
          let g = put_entry g s { e with e_committed = true } in
          match e.e_sn with
          | Some sn ->
              let mx =
                match List.assoc_opt s g.max_csn with Some m when Sn.(m > sn) -> m | _ -> sn
              in
              { g with max_csn = upd s mx g.max_csn }
          | None -> g)
      | None -> g)
  | A.R_local_commit { gid } -> (
      match find_entry g s gid with
      | Some e ->
          if e.e_rolled then
            raise
              (Violation
                 (Fmt.str "I1: site %a both rolled back and locally committed T%d" Site.pp (site_of s) gid));
          (match List.assoc_opt gid g.outcomes with
          | Some (Types.Aborted _) ->
              raise
                (Violation
                   (Fmt.str "I1: site %a locally committed T%d, which globally aborted" Site.pp
                      (site_of s) gid))
          | Some Types.Committed | None -> ());
          put_entry g s { e with e_lcommitted = true }
      | None -> g)
  | A.R_rollback { gid } -> (
      match find_entry g s gid with
      | Some e ->
          if e.e_lcommitted then
            raise
              (Violation
                 (Fmt.str "I1: site %a rolled back T%d after committing it locally" Site.pp (site_of s)
                    gid));
          (match List.assoc_opt gid g.outcomes with
          | Some Types.Committed ->
              raise
                (Violation
                   (Fmt.str "I1: site %a rolled back T%d, which globally committed" Site.pp (site_of s)
                      gid))
          | Some (Types.Aborted _) | None -> ());
          put_entry g s { e with e_rolled = true }
      | None -> g)

let rec ltm_call scenario g s (c : A.call) =
  match c with
  | A.L_begin { gid; inc } ->
      put_ltxn g s
        {
          l_gid = gid;
          l_inc = inc;
          l_status = `Active;
          l_in_flight = 0;
          l_held = false;
          l_watch = None;
          l_last = g.clock;
        }
  | A.L_exec { gid; inc; purpose; cmd = _ } ->
      let g =
        match find_ltxn g s gid with
        | Some l when l.l_inc = inc -> put_ltxn g s { l with l_in_flight = l.l_in_flight + 1 }
        | Some _ | None -> g
      in
      { g with cbs = Cb_exec { site = s; gid; inc; purpose } :: g.cbs }
  | A.L_commit { gid; inc } ->
      (* I3: the machine may only release a local commit while it holds
         the smallest prepared serial number at the site (Appendix C).
         Under group commit the rule is the vectorized one the machine
         implements: a smaller-SN entry whose own decision is already
         staged ([committing] — its release sits earlier in the same
         batch) does not block, because commits apply in staging = SN
         order. *)
      (if scenario.config.Config.commit_certification then
         let ast = List.assoc s g.agents in
         match Alive_table.find ast.A.table ~gid with
         | Some e ->
             let released_in_order =
               Alive_table.min_sn_holds ast.A.table ~gid ~sn:e.Alive_table.sn
               || Config.group_commit scenario.config
                  && List.for_all
                       (fun (e' : Alive_table.entry) ->
                         e'.Alive_table.gid = gid
                         || Sn.(e'.Alive_table.sn > e.Alive_table.sn)
                         ||
                         match A.Int_map.find_opt e'.Alive_table.gid ast.A.subs with
                         | Some sub -> sub.A.committing
                         | None -> true)
                       (Alive_table.entries ast.A.table)
             in
             if not released_in_order then
               raise
                 (Violation
                    (Fmt.str
                       "I3: site %a releases the local commit of T%d with a smaller-SN prepared \
                        subtransaction present"
                       Site.pp (site_of s) gid));
             (* The completed-commit side of the same rule: releasing below
                a serial number the site has already finished committing is
                the §5.3 global-view distortion — the already-committed
                entry is gone from the alive table, so [min_sn_holds] above
                cannot see it. Reachable only with the certification
                extension off (which would have refused this PREPARE), e.g.
                under a stale-clock serial-number adversary. *)
             List.iter
               (fun e' ->
                 match e'.e_sn with
                 | Some sn' when e'.e_gid <> gid && e'.e_lcommitted && Sn.(sn' > e.Alive_table.sn) ->
                     raise
                       (Violation
                          (Fmt.str
                             "I3: site %a releases the local commit of T%d below the \
                              already-committed bigger-SN T%d — commits released out of \
                              serial-number order"
                             Site.pp (site_of s) gid e'.e_gid))
                 | _ -> ())
               (assoc_or s g.logs ~default:[])
         | None -> ());
      { g with cbs = Cb_commit { site = s; gid; inc } :: g.cbs }
  | A.L_abort { gid } -> (
      match find_ltxn g s gid with
      | Some l when l.l_status = `Active -> put_ltxn g s { l with l_status = `Aborted }
      | Some _ | None -> g)
  | A.L_abort_all_live ->
      let txns =
        List.map
          (fun l -> if l.l_status = `Active then { l with l_status = `Aborted } else l)
          (assoc_or s g.ltms ~default:[])
      in
      { g with ltms = upd s txns g.ltms }
  | A.L_hold_open { gid } -> (
      match find_ltxn g s gid with Some l -> put_ltxn g s { l with l_held = true } | None -> g)
  | A.L_hold_open_batch { gids } ->
      List.fold_left (fun g gid -> ltm_call scenario g s (A.L_hold_open { gid })) g gids
  | A.L_commit_batch { txns } ->
      (* each released commit gets the per-gid I3 check of [L_commit] *)
      List.fold_left (fun g (gid, inc) -> ltm_call scenario g s (A.L_commit { gid; inc })) g txns
  | A.L_watch_uan { gid; inc } -> (
      match find_ltxn g s gid with
      | Some l -> put_ltxn g s { l with l_watch = Some inc }
      | None -> g)
  | A.L_bind _ | A.L_rebind _ | A.L_unbind _ -> g (* data binding is not modelled *)
  | A.L_forget _ -> g (* adapter bookkeeping only *)

let feed_agent scenario g s input =
  let old = List.assoc s g.agents in
  let st, effs =
    try A.step scenario.config old input with
    | Failure m -> raise (Violation m)
    | Invalid_argument m -> raise (Violation ("machine exception: " ^ m))
  in
  let g = { g with agents = upd s st g.agents } in
  (* A handover obligation on [s] was being met by native participation
     (the gid sat in [subs]); if this step abandoned the subtransaction
     without preparing it — wrong-epoch refusal, local abort — the site
     can never vote READY, the gid can never commit, and the obligation
     is moot. *)
  let abandoned gid =
    A.Int_map.mem gid old.A.subs
    && (not (A.Int_map.mem gid st.A.subs))
    && not (Alive_table.mem st.A.table ~gid)
  in
  let g =
    if g.required = [] then g
    else
      { g with required = List.filter (fun (s', gid) -> not (s' = s && abandoned gid)) g.required }
  in
  List.fold_left
    (fun g (eff : A.effect) ->
      match eff with
      | Types.Send { dst; gid; payload } ->
          (* [g.ready] records *genuine* READYs only: votes backed by a
             durable prepare record (forced earlier in this same effect
             list). A lying agent's READY has no prepare behind it, so it
             never registers and I2 exposes the fake quorum. *)
          let genuine =
            match find_entry g s gid with Some e -> e.e_prepared | None -> false
          in
          let g =
            match payload with
            | (Wire.Ready | Wire.Ready_certified _) when genuine && not (List.mem (gid, s) g.ready)
              ->
                { g with ready = (gid, s) :: g.ready }
            | _ -> g
          in
          { g with msgs = { Wire.src = Wire.Agent (site_of s); dst; gid; payload } :: g.msgs }
      | Types.Arm_timer { timer; delay = _ } -> { g with timers = T_agent (s, timer) :: g.timers }
      | Types.Cancel_timer timer -> { g with timers = remove_one (T_agent (s, timer)) g.timers }
      | Types.Force_log r -> log_write g s r
      | Types.Force_batch rs ->
          (* one force I/O for the whole batch; every record still gets
             its own I1 check *)
          List.fold_left (fun g r -> log_write g s r) g rs
      | Types.Stage_log _ -> assert false (* the agent batches internally (Force_batch) *)
      | Types.Ltm_call c -> ltm_call scenario g s c
      | Types.Record _ | Types.Emit _ -> g
      | Types.Invoke_gate | Types.Decide _ -> assert false (* coordinator-only effects *))
    g effs

let clog_write g gid (r : C.record) =
  let e = assoc_or gid g.clogs ~default:{ c_participants = []; c_sn = None; c_decision = None } in
  let e, decided_now =
    match r with
    | C.R_begin { participants } -> ({ e with c_participants = participants }, false)
    | C.R_prepared { participants; sn } ->
        ({ e with c_participants = participants; c_sn = Some sn }, false)
    | C.R_decision { committed } -> (
        (* idempotent, like the real log: the first decision wins *)
        match e.c_decision with
        | None -> ({ e with c_decision = Some committed }, true)
        | Some _ -> (e, false))
  in
  let g = { g with clogs = upd gid e g.clogs } in
  if decided_now then
    (* The forced decision fixes the gid's fate: certification of new
       work no longer depends on the gainer holding its handed-over
       interval, so any outstanding handover obligation is discharged. *)
    { g with required = List.filter (fun (_, gid') -> gid' <> gid) g.required }
  else g

let rec feed_coord scenario g gid input =
  let st = List.assoc gid g.coords in
  (* The round is stamped with the epoch it STARTED under ([tepoch]), not
     the currently installed one — exactly what the real coordinator
     does: it resolved placement once, at submission. An agent holding a
     newer map answers WRONG-EPOCH. *)
  let cfg =
    {
      C.certifier = scenario.config;
      quorum = scenario.quorum;
      epoch = assoc_or gid g.tepoch ~default:0;
    }
  in
  let st, effs =
    try C.step cfg st input with
    | Failure m -> raise (Violation m)
    | Invalid_argument m -> raise (Violation ("machine exception: " ^ m))
  in
  let g = { g with coords = upd gid st g.coords } in
  run_coord_effs scenario gid g effs

(* Walk a coordinator step's effects in order. A [Stage_log] parks the
   record and the *rest of the step* in the coordinating site's batch —
   the real adapter withholds them until the batcher forces — so a
   coordinator crash before the flush loses both, exactly like an
   unforced record should. *)
and run_coord_effs scenario gid g = function
  | [] -> g
  | (Types.Stage_log r : C.effect) :: rest ->
      let s = Site.to_int (List.assoc gid g.coords).C.site in
      let q = assoc_or s g.cstaged ~default:[] in
      { g with cstaged = upd s (q @ [ (gid, r, rest) ]) g.cstaged }
  | eff :: rest -> run_coord_effs scenario gid (coord_eff scenario gid g eff) rest

and coord_eff scenario gid g (eff : C.effect) =
  match eff with
  | Types.Send { dst; gid = mgid; payload } ->
      { g with msgs = { Wire.src = Wire.Coordinator gid; dst; gid = mgid; payload } :: g.msgs }
  | Types.Arm_timer { timer; delay = _ } -> { g with timers = T_coord (gid, timer) :: g.timers }
  | Types.Cancel_timer timer -> { g with timers = remove_one (T_coord (gid, timer)) g.timers }
  | Types.Force_log r -> clog_write g gid r
  | Types.Stage_log _ -> assert false (* consumed by [run_coord_effs] *)
  | Types.Force_batch _ -> assert false (* agent-only effect *)
  | Types.Ltm_call _ -> .
  | Types.Record _ | Types.Emit _ -> g
  | Types.Invoke_gate ->
      (* The default gate proceeds immediately; the serial number is
         drawn from the logical clock and a global sequence. A stale-
         clock adversary ([sn_drift] > 0) makes even-gid coordinators
         draw from [sn_drift] ticks in the past — logical time may go
         negative, which is exactly the point: the drawn serial number
         sorts below every honest one. *)
      let st = List.assoc gid g.coords in
      let drift = scenario.config.Config.adversary.Config.sn_drift in
      let ts = if drift > 0 && gid mod 2 = 0 then g.clock - drift else g.clock in
      let sn = Sn.make ~ts:(Time.of_int ts) ~site:st.C.site ~seq:g.sn_seq in
      let g = { g with sn_seq = g.sn_seq + 1 } in
      feed_coord scenario g gid
        (C.Gate_opened { sn = Some sn; lossy = scenario.budgets.retransmits > 0 })
  | Types.Decide outcome ->
      (* I2: a commit decision requires a READY from every participant. *)
      (match outcome with
      | Types.Committed ->
          let st = List.assoc gid g.coords in
          let missing =
            List.filter (fun s -> not (List.mem (gid, Site.to_int s) g.ready)) st.C.participants
          in
          if missing <> [] then
            raise
              (Violation
                 (Fmt.str "I2: T%d globally committed without READY from %a" gid
                    Fmt.(list ~sep:comma Site.pp)
                    missing))
      | Types.Aborted _ -> ());
      (* The decision discharges the gid's handover obligations, and the
         gaining sites release the foreign alive-table entries that were
         conservatively gating their certification (native entries are
         untouched: [drop_foreign] skips gids the agent still tracks). *)
      {
        g with
        outcomes = (gid, outcome) :: g.outcomes;
        required = List.filter (fun (_, gid') -> gid' <> gid) g.required;
        agents = List.map (fun (s, ast) -> (s, A.drop_foreign ast ~gid)) g.agents;
      }

(* One acceptor machine step. Acceptors only send, force and emit —
   their sends never feed another machine directly, so no recursion. The
   force-written records need no separate model: the machine's promised/
   accepted/decided fields change exactly when the log would, so the
   machine state *is* the log. *)
let feed_acceptor scenario g (gid, idx) input =
  let st = List.assoc (gid, idx) g.accs in
  let pcfg = P.config scenario.config in
  let st, effs =
    try P.step pcfg st input with
    | Failure m -> raise (Violation m)
    | Invalid_argument m -> raise (Violation ("machine exception: " ^ m))
  in
  let g = { g with accs = upd (gid, idx) st g.accs } in
  List.fold_left
    (fun g (eff : P.effect) ->
      match eff with
      | Types.Send { dst; gid = mgid; payload } ->
          {
            g with
            msgs = { Wire.src = Wire.Acceptor { gid; idx }; dst; gid = mgid; payload } :: g.msgs;
          }
      | Types.Force_log _ | Types.Emit _ -> g
      | Types.Arm_timer _ | Types.Cancel_timer _ | Types.Ltm_call _ -> .
      | Types.Stage_log _ | Types.Force_batch _ | Types.Record _ | Types.Invoke_gate
      | Types.Decide _ ->
          assert false)
    g effs

(* ------------------------------------------------------------------ *)
(* Actions                                                              *)
(* ------------------------------------------------------------------ *)

let start_txn scenario g gid =
  (* Each transaction touches [txn_shards] consecutive shards starting
     at its own gid (0 = all of them); each shard resolves through the
     CURRENT owner map. At epoch 0 the map is the identity, so the
     default reproduces the historical one-command-per-site shape byte
     for byte; after a move two shards may resolve to one site (the
     coordinator's step numbering and [Program]-style duplicate
     participants handle that). *)
  let n_shards = scenario.n_sites in
  let shards =
    if scenario.txn_shards <= 0 || scenario.txn_shards >= n_shards then List.init n_shards Fun.id
    else List.init scenario.txn_shards (fun i -> (gid - 1 + i) mod n_shards)
  in
  let steps =
    List.map
      (fun shard ->
        ( site_of (assoc_or shard g.owner ~default:shard),
          Command.Assign { table = "t"; key = gid; value = shard } ))
      shards
  in
  let participants = List.sort_uniq Site.compare (List.map fst steps) in
  let site = site_of ((gid - 1) mod scenario.n_sites) in
  let sn, g =
    if scenario.config.Config.sn_at_begin then
      ( Some (Sn.make ~ts:(Time.of_int g.clock) ~site ~seq:g.sn_seq),
        { g with sn_seq = g.sn_seq + 1 } )
    else (None, g)
  in
  let st = C.init ~gid ~site ~participants ~steps ~sn in
  (* Under a replicated protocol the transaction's decision register
     comes up with it: 2F+1 acceptor machines (one for backup-TM). *)
  let accs =
    List.init (Config.n_acceptors scenario.config) (fun idx -> ((gid, idx), P.init ~gid ~idx))
  in
  let g =
    {
      g with
      coords = (gid, st) :: g.coords;
      accs = accs @ g.accs;
      unstarted = List.filter (fun x -> x <> gid) g.unstarted;
      tepoch = (gid, g.epoch) :: g.tepoch;
    }
  in
  feed_coord scenario g gid C.Start

let deliver scenario g (m : Wire.t) =
  match m.Wire.dst with
  | Wire.Coordinator gid when List.mem gid g.dead ->
      g (* the coordinating site is down for good: the delivery is lost *)
  | Wire.Coordinator gid -> (
      match m.Wire.src with
      | Wire.Agent s -> feed_coord scenario g gid (C.From_agent { src = s; payload = m.Wire.payload })
      | Wire.Acceptor { idx; _ } ->
          feed_coord scenario g gid (C.From_acceptor { idx; payload = m.Wire.payload })
      | Wire.Coordinator _ -> assert false)
  | Wire.Acceptor { gid; idx } when List.mem (gid, idx) g.dead_accs ->
      g (* the acceptor is dead for good: the delivery is lost *)
  | Wire.Acceptor { gid; idx } ->
      feed_acceptor scenario g (gid, idx)
        (P.Deliver { src = m.Wire.src; payload = m.Wire.payload })
  | Wire.Agent site ->
      let s = Site.to_int site in
      feed_agent scenario g s
        (A.Deliver
           {
             env = env_of scenario g s;
             src = m.Wire.src;
             gid = m.Wire.gid;
             payload = m.Wire.payload;
             log = log_view_of g s m.Wire.gid;
           })

let run_cb scenario g (c : cb) =
  match c with
  | Cb_exec { site = s; gid; inc; purpose } ->
      let result, g =
        match find_ltxn g s gid with
        | Some l when l.l_inc = inc ->
            let l = { l with l_in_flight = l.l_in_flight - 1 } in
            if l.l_status = `Active then (A.Done (Command.Count 1), put_ltxn g s { l with l_last = g.clock })
            else (A.Failed "unilaterally aborted", put_ltxn g s l)
        | Some _ | None -> (A.Failed "superseded incarnation", g)
      in
      feed_agent scenario g s (A.Exec_done { env = env_of scenario g s; gid; inc; purpose; result })
  | Cb_commit { site = s; gid; inc } ->
      let committed, g =
        match find_ltxn g s gid with
        | Some l when l.l_inc = inc && l.l_status = `Active ->
            (true, put_ltxn g s { l with l_status = `Committed; l_last = g.clock })
        | Some _ | None -> (false, g)
      in
      feed_agent scenario g s (A.Commit_done { env = env_of scenario g s; gid; inc; committed })
  | Cb_uan { site = s; gid; inc } -> feed_agent scenario g s (A.Uan { env = env_of scenario g s; gid; inc })

let charge (b : budgets) = function
  | T_agent (_, A.T_alive _) -> { b with alive_fires = b.alive_fires - 1 }
  | T_agent (_, A.T_commit_retry _) -> { b with commit_retries = b.commit_retries - 1 }
  | T_agent (_, A.T_inquiry _) -> { b with inquiries = b.inquiries - 1 }
  | T_agent (_, A.T_backoff _) -> b (* one-shot; bounded by the abort budgets *)
  | T_agent (_, A.T_flush) -> b (* free: staged records must always be able to flush *)
  | T_coord (_, C.Exec_timeout) -> { b with exec_timeouts = b.exec_timeouts - 1 }
  | T_coord (_, (C.Retransmit | C.Prepare_retransmit)) ->
      { b with retransmits = b.retransmits - 1 }

let fire scenario g t =
  (* Only the alive check advances the logical clock: it is the one
     timer whose effect observes the current time (the interval
     extension). Retries, backoffs and retransmissions fire "quickly" —
     a sound subset of the schedules, and far fewer distinct states. *)
  let clock = match t with T_agent (_, A.T_alive _) -> g.clock + 1 | _ -> g.clock in
  let g = { g with timers = remove_one t g.timers; clock; b = charge g.b t } in
  match t with
  | T_agent (s, A.T_alive gid) -> feed_agent scenario g s (A.Alive_fired { env = env_of scenario g s; gid })
  | T_agent (s, A.T_commit_retry gid) ->
      feed_agent scenario g s (A.Retry_fired { env = env_of scenario g s; gid })
  | T_agent (s, A.T_inquiry gid) ->
      feed_agent scenario g s (A.Inquiry_fired { env = env_of scenario g s; gid })
  | T_agent (s, A.T_backoff { gid; inc }) ->
      feed_agent scenario g s (A.Backoff_fired { env = env_of scenario g s; gid; inc })
  | T_agent (s, A.T_flush) -> feed_agent scenario g s (A.Flush_fired { env = env_of scenario g s })
  | T_coord (gid, C.Exec_timeout) -> feed_coord scenario g gid C.Exec_timeout_fired
  | T_coord (gid, C.Retransmit) -> feed_coord scenario g gid C.Retransmit_fired
  | T_coord (gid, C.Prepare_retransmit) -> feed_coord scenario g gid C.Prepare_retransmit_fired

let unilateral_abort g s gid =
  let g = { g with clock = g.clock + 1; b = { g.b with uaborts = g.b.uaborts - 1 } } in
  match find_ltxn g s gid with
  | Some l when l.l_status = `Active ->
      let g = put_ltxn g s { l with l_status = `Aborted } in
      (* The LTM notifies the subscribed incarnation, if any. *)
      (match l.l_watch with
      | Some w -> { g with cbs = Cb_uan { site = s; gid; inc = w } :: g.cbs }
      | None -> g)
  | Some _ | None -> g

let in_doubt g s =
  assoc_or s g.logs ~default:[]
  |> List.filter (fun e -> e.e_prepared && (not e.e_lcommitted) && not e.e_rolled)
  |> List.sort (fun a b -> compare a.e_gid b.e_gid)
  |> List.map (fun e ->
         {
           A.r_gid = e.e_gid;
           r_coordinator = e.e_coord;
           r_inc = e.e_inc;
           r_sn = e.e_sn;
           r_commands = e.e_cmds;
           r_committed = e.e_committed;
         })

let crash_recover scenario g s =
  let g = { g with clock = g.clock + 1; b = { g.b with crashes = g.b.crashes - 1 } } in
  let live =
    List.length (List.filter (fun l -> l.l_status = `Active) (assoc_or s g.ltms ~default:[]))
  in
  let g = feed_agent scenario g s (A.Crash { live }) in
  (* The crash also takes the LTM's volatile transactions, the pending
     local completions and any leftover armed timers down with it. *)
  let g =
    {
      g with
      ltms = upd s [] g.ltms;
      cbs =
        List.filter
          (function
            | Cb_exec { site; _ } | Cb_commit { site; _ } | Cb_uan { site; _ } -> site <> s)
          g.cbs;
      timers = List.filter (function T_agent (s', _) -> s' <> s | T_coord _ -> true) g.timers;
      (* Handed-over certification state is volatile at the gainer, so
         the crash wipes it with everything else. The native prepared
         entries reinstall from the site's own log below; the foreign
         gids' outcomes are driven to every participant by the decision
         machinery regardless, so the obligation is discharged by the
         crash rather than spuriously flagged by I6. *)
      required = List.filter (fun (s', _) -> s' <> s) g.required;
    }
  in
  feed_agent scenario g s (A.Recover { env = env_of scenario g s; entries = in_doubt g s })

(* The coordinating site of [gid] crashes: the round's volatile 2PC
   state is lost, its armed timers die. With [termination] the reboot is
   atomic — a fresh machine replays the stable coordinator-log entry
   (re-driving a logged decision, presuming abort otherwise). Without it
   the coordinator is simply gone, the pre-durability behaviour. *)
let coord_crash scenario g gid =
  let g = { g with clock = g.clock + 1; b = { g.b with coord_crashes = g.b.coord_crashes - 1 } } in
  let g =
    {
      g with
      timers = List.filter (function T_coord (gid', _) -> gid' <> gid | T_agent _ -> true) g.timers;
    }
  in
  (* Staged-but-unforced records of this round (and the withheld effects
     behind them) are volatile: the crash takes them. *)
  let g =
    {
      g with
      cstaged =
        List.map (fun (s, q) -> (s, List.filter (fun (gid', _, _) -> gid' <> gid) q)) g.cstaged;
    }
  in
  if not scenario.termination then { g with dead = gid :: g.dead }
  else
    match List.assoc_opt gid g.clogs with
    | None -> g (* nothing was ever promised anywhere *)
    | Some e ->
        let st = List.assoc gid g.coords in
        let fresh = C.init ~gid ~site:st.C.site ~participants:[] ~steps:[] ~sn:None in
        let g = { g with coords = upd gid fresh g.coords } in
        feed_coord scenario g gid
          (C.Recover { participants = e.c_participants; sn = e.c_sn; decision = e.c_decision })

(* A permanent leader kill: the coordinating site dies for good (the
   Paxos Commit failure model). Same bookkeeping as a [termination]-off
   coordinator crash — timers die, staged records vanish, deliveries to
   it will be lost — but charged to the [replica_kills] budget, because
   under a replicated protocol the register is meant to survive it. *)
let kill_leader g gid =
  {
    g with
    clock = g.clock + 1;
    b = { g.b with replica_kills = g.b.replica_kills - 1 };
    timers = List.filter (function T_coord (gid', _) -> gid' <> gid | T_agent _ -> true) g.timers;
    cstaged =
      List.map (fun (s, q) -> (s, List.filter (fun (gid', _, _) -> gid' <> gid) q)) g.cstaged;
    dead = gid :: g.dead;
  }

(* A permanent acceptor kill: the machine keeps its state (irrelevant —
   it will never step again) and every future delivery to it is lost. *)
let kill_acceptor g gid idx =
  {
    g with
    clock = g.clock + 1;
    b = { g.b with replica_kills = g.b.replica_kills - 1 };
    dead_accs = (gid, idx) :: g.dead_accs;
  }

(* Online reconfiguration: install epoch + 1 with [shard] moved to
   [to_]. The loser's prepared-but-undecided gids become handover
   obligations of the gainer (the I6 proof obligation); with
   [scenario.handover] the gainer adopts the loser's alive-table entries
   (serial number + current interval) for exactly those gids BEFORE any
   new-epoch traffic can reach it — without it, the obligations go
   unmet and I6 reports the unsound window. In-flight messages stamped
   with the old epoch will bounce off the agents' WRONG-EPOCH check. *)
let reconfigure scenario g ~shard ~to_ =
  let g = { g with clock = g.clock + 1; b = { g.b with reconfigures = g.b.reconfigures - 1 } } in
  let loser = assoc_or shard g.owner ~default:shard in
  let g = { g with epoch = g.epoch + 1; owner = upd shard to_ g.owner } in
  let lst = List.assoc loser g.agents in
  (* Decided means the coordinator forced its decision record (the 2PC
     decision point) or the round already completed — both strictly
     before the participants may clean their table entries, so neither
     creates a handover obligation. *)
  let decided gid =
    List.mem_assoc gid g.outcomes
    || match List.assoc_opt gid g.clogs with Some e -> e.c_decision <> None | None -> false
  in
  let prepared_gids =
    Alive_table.entries lst.A.table
    |> List.map (fun (e : Alive_table.entry) -> e.Alive_table.gid)
    |> List.filter (fun gid -> not (decided gid))
    |> List.sort compare
  in
  let fresh =
    List.filter
      (fun ob -> not (List.mem ob g.required))
      (List.map (fun gid -> (to_, gid)) prepared_gids)
  in
  let g = { g with required = fresh @ g.required } in
  if scenario.handover then
    let entries = A.export_handover lst ~gids:prepared_gids in
    let gst = List.assoc to_ g.agents in
    { g with agents = upd to_ (A.adopt_handover gst entries) g.agents }
  else g

(* Force the site's staged coordinator records — one batch I/O, oldest
   first — then release the withheld effects in staging order. *)
let coord_flush scenario g s =
  let q = assoc_or s g.cstaged ~default:[] in
  let g = { g with cstaged = upd s [] g.cstaged } in
  let g = List.fold_left (fun g (gid, r, _) -> clog_write g gid r) g q in
  List.fold_left (fun g (gid, _, effs) -> run_coord_effs scenario gid g effs) g q

let apply scenario g = function
  | Start gid -> start_txn scenario g gid
  | Deliver m -> deliver scenario { g with msgs = remove_one m g.msgs } m
  | Duplicate m -> deliver scenario { g with b = { g.b with dups = g.b.dups - 1 } } m
  | Drop m -> { g with msgs = remove_one m g.msgs; b = { g.b with drops = g.b.drops - 1 } }
  | Ltm_complete c -> run_cb scenario { g with cbs = remove_one c g.cbs } c
  | Fire t -> fire scenario g t
  | Unilateral_abort { site; gid } -> unilateral_abort g site gid
  | Crash_recover s -> crash_recover scenario g s
  | Coord_crash gid -> coord_crash scenario g gid
  | Kill_leader gid -> kill_leader g gid
  | Kill_acceptor (gid, idx) -> kill_acceptor g gid idx
  | Reconfigure { shard; to_ } -> reconfigure scenario g ~shard ~to_
  | Coord_flush s -> coord_flush scenario g s

let enabled scenario g =
  let distinct l = List.sort_uniq compare l in
  let starts = List.map (fun gid -> Start gid) g.unstarted in
  let msgs = distinct g.msgs in
  let delivers = List.map (fun m -> Deliver m) msgs in
  let dups = if g.b.dups > 0 then List.map (fun m -> Duplicate m) msgs else [] in
  let drops = if g.b.drops > 0 then List.map (fun m -> Drop m) msgs else [] in
  let cbs = List.map (fun c -> Ltm_complete c) (distinct g.cbs) in
  let fires =
    List.filter_map
      (fun t ->
        let affordable =
          match t with
          | T_agent (_, A.T_alive _) -> g.b.alive_fires > 0
          | T_agent (_, A.T_commit_retry _) -> g.b.commit_retries > 0
          | T_agent (_, A.T_inquiry _) -> g.b.inquiries > 0
          | T_agent (_, A.T_backoff _) -> true
          | T_agent (_, A.T_flush) -> true
          | T_coord (_, C.Exec_timeout) -> g.b.exec_timeouts > 0
          | T_coord (_, (C.Retransmit | C.Prepare_retransmit)) -> g.b.retransmits > 0
        in
        if affordable then Some (Fire t) else None)
      (distinct g.timers)
  in
  let uaborts =
    if g.b.uaborts > 0 then
      List.concat_map
        (fun (s, txns) ->
          List.filter_map
            (fun l ->
              if l.l_status = `Active then Some (Unilateral_abort { site = s; gid = l.l_gid })
              else None)
            txns)
        g.ltms
    else []
  in
  let crashes =
    if g.b.crashes > 0 then List.map (fun (s, _) -> Crash_recover s) g.agents else []
  in
  let coord_crashes =
    (* crashing a finished (all-acked) or already-dead coordinator only
       pads the space: nothing observable changes *)
    if g.b.coord_crashes > 0 then
      List.filter_map
        (fun (gid, (st : C.state)) ->
          if st.C.finished || List.mem gid g.dead then None else Some (Coord_crash gid))
        g.coords
    else []
  in
  let kills =
    (* permanent kills, replicated protocols only: the leader or any
       live acceptor of an unfinished round may die for good *)
    let n_acc = Config.n_acceptors scenario.config in
    if g.b.replica_kills > 0 && n_acc > 0 then
      List.concat_map
        (fun (gid, (st : C.state)) ->
          if st.C.finished || List.mem gid g.dead then []
          else
            Kill_leader gid
            :: List.filter_map
                 (fun idx ->
                   if List.mem (gid, idx) g.dead_accs then None else Some (Kill_acceptor (gid, idx)))
                 (List.init n_acc Fun.id))
        g.coords
    else []
  in
  let reconfigs =
    (* every (shard, non-owner site) pair is a distinct move — offered
       only while some transaction can still observe the new epoch
       (moves after full quiescence only bump a number nothing reads) *)
    if g.b.reconfigures > 0 && List.length g.outcomes < scenario.n_txns then
      List.concat_map
        (fun (shard, owner_site) ->
          List.filter_map
            (fun to_ -> if to_ <> owner_site then Some (Reconfigure { shard; to_ }) else None)
            (List.init scenario.n_sites Fun.id))
        g.owner
    else []
  in
  let cflushes =
    (* free, like the agent flush timer: a non-empty batch can always
       force, so staged work never blocks quiescence *)
    List.filter_map (fun (s, q) -> if q <> [] then Some (Coord_flush s) else None) g.cstaged
  in
  starts @ delivers @ dups @ drops @ cbs @ fires @ uaborts @ crashes @ coord_crashes @ kills
  @ reconfigs @ cflushes

(* ------------------------------------------------------------------ *)
(* Invariants checked outside the transition function                   *)
(* ------------------------------------------------------------------ *)

(* Timer hygiene: every armed alive-check / commit-retry timer belongs
   to a subtransaction the agent still tracks. *)
let hygiene_violation g =
  List.find_map
    (function
      | T_agent (s, (A.T_alive gid | A.T_commit_retry gid | A.T_inquiry gid)) ->
          let ast = List.assoc s g.agents in
          if A.Int_map.mem gid ast.A.subs then None
          else
            Some
              (Fmt.str "timer hygiene: site %a holds an armed timer for the finished T%d" Site.pp
                 (site_of s) gid)
      | T_agent (s, A.T_flush) ->
          (* the flush timer is armed iff work is staged for it *)
          let ast = List.assoc s g.agents in
          if A.flush_pending ast then None
          else
            Some
              (Fmt.str "timer hygiene: site %a holds an armed flush timer with nothing staged"
                 Site.pp (site_of s))
      | T_agent (_, A.T_backoff _) | T_coord _ -> None)
    g.timers

(* Group commit, at terminal states: a quiesced agent must hold no
   staged-but-unforced records and no buffered PREPAREs — staged work
   with no armed flush timer left would be withheld forever. (The
   coordinator batcher cannot violate this: a non-empty [cstaged] queue
   keeps a [Coord_flush] action enabled, so the state is not terminal.) *)
let flush_violations g =
  List.filter_map
    (fun (s, (ast : A.state)) ->
      if A.flush_pending ast then
        Some
          (Fmt.str "group commit: site %a is quiescent with staged-but-unforced records" Site.pp
             (site_of s))
      else None)
    g.agents

(* I5, at terminal states of coordinator-failure scenarios: the
   termination property. A prepared-but-undecided agent-log entry is a
   participant still in doubt; it is *blocked forever* when no armed
   mechanism can still resolve it. (An armed timer whose budget ran out
   is exempt: real time would fire it, the exploration merely stopped
   counting.) Gated on the budgets so pre-existing scenarios keep their
   exact semantics.

   Plain 2PC: resolvable iff a decision/PREPARE retransmission is armed
   at the coordinator or an inquiry is armed at the participant.

   Replicated protocols (the quorum-aware formulation): let "askable"
   mean some armed mechanism can still interrogate the register — an
   inquiry at the participant, or the live leader's retransmission
   (which either re-drives a known decision or re-asks its acceptors).
   The entry is resolvable iff
   - the leader is alive pre-prepare-point with PREPARE retransmission
     armed (an abort needs no register), or
   - some reachable replica already knows the decision (the live leader
     past its decision, or a live acceptor with a decided register) and
     askable, or
   - no one knows it yet but a recovery quorum of acceptors is still
     alive and askable — a recovery ballot can finish the round.
   At F kills the last disjunct always holds (2F+1 - F >= F+1), so the
   space exhausts clean; at F+1 it fails and I5 finds the blocking. *)
let in_doubt_violations scenario g =
  if scenario.budgets.coord_crashes = 0 && scenario.budgets.replica_kills = 0 then []
  else
    let n_acc = Config.n_acceptors scenario.config in
    let quorum = Config.replica_quorum scenario.config in
    let timer_armed f = List.exists f g.timers in
    let resolvable s (e : entry) =
      let gid = e.e_gid in
      let inquiry_armed =
        timer_armed (function T_agent (s', A.T_inquiry g') -> s' = s && g' = gid | _ -> false)
      in
      if n_acc = 0 then
        inquiry_armed
        || timer_armed (function
             | T_coord (g', (C.Retransmit | C.Prepare_retransmit)) -> g' = gid
             | _ -> false)
      else
        let leader_alive = not (List.mem gid g.dead) in
        let lst = List.assoc gid g.coords in
        let leader_decided =
          leader_alive
          && match lst.C.phase with C.Committing | C.Aborting _ -> true | _ -> false
        in
        let leader_retx =
          leader_alive
          && timer_armed (function T_coord (g', C.Retransmit) -> g' = gid | _ -> false)
        in
        let leader_pretx =
          leader_alive
          && timer_armed (function T_coord (g', C.Prepare_retransmit) -> g' = gid | _ -> false)
        in
        let askable = inquiry_armed || leader_retx in
        let alive_accs =
          List.filter
            (fun idx -> not (List.mem (gid, idx) g.dead_accs))
            (List.init n_acc Fun.id)
        in
        let decided_exists =
          leader_decided
          || List.exists
               (fun idx -> (List.assoc (gid, idx) g.accs).P.decided <> None)
               alive_accs
        in
        leader_pretx
        || (decided_exists && askable)
        || (List.length alive_accs >= quorum && askable)
    in
    let decision_known s gid =
      (* A prepared entry whose agent sub already holds the decision
         ([decision_commit], possibly [committing]) is not in doubt —
         only the rigorous release order is delaying the local commit,
         and the armed commit-retry timer drives that in real time. *)
      match List.assoc_opt s g.agents with
      | Some ast -> (
          match A.Int_map.find_opt gid ast.A.subs with
          | Some sub -> sub.A.decision_commit || sub.A.committing
          | None -> false)
      | None -> false
    in
    List.concat_map
      (fun (s, entries) ->
        List.filter_map
          (fun e ->
            if
              e.e_prepared
              && (not e.e_lcommitted)
              && (not e.e_rolled)
              && (not (decision_known s e.e_gid))
              && not (resolvable s e)
            then
              Some
                (Fmt.str
                   "I5: T%d is in doubt at site %a at quiescence with no retransmission or inquiry \
                    armed that can still reach a decision — blocked forever"
                   e.e_gid Site.pp (site_of s))
            else None)
          entries)
      g.logs

(* I6, on every transition: after a shard move, the gaining site must
   hold the handed-over certification state (serial number + alive
   interval) of every still-undecided gid that was prepared at the
   losing site — otherwise the gainer certifies new PREPAREs against an
   incomplete table and can admit an order the loser already ruled out.
   (I6(a) — one owner per shard per epoch — holds by construction of the
   [owner] map; this is I6(b), the handover obligation.) *)
let i6_violation g =
  List.find_map
    (fun (s, gid) ->
      match List.assoc_opt s g.agents with
      (* satisfied by the handed-over entry, or by native participation:
         a gainer that runs the gid's subtransaction itself certifies it
         through its own prepare path *)
      | Some ast when Alive_table.mem ast.A.table ~gid || A.Int_map.mem gid ast.A.subs -> None
      | Some _ | None ->
          Some
            (Fmt.str
               "I6: site %a gained a shard but holds no certification state for the prepared, \
                undecided T%d — the handover was skipped, so new PREPAREs certify against an \
                incomplete alive table"
               Site.pp (site_of s) gid))
    g.required

(* I4, at terminal states only (in-flight schedules may be half-done).
   Only the gid's participants are obliged to hold log entries — with
   [txn_shards] set, a transaction touches a proper subset of sites.
   An undelivered commit is exempt while an armed mechanism can still
   drive it home — an inquiry timer at the participant or a decision
   retransmission at the coordinator whose *budget* ran out: real time
   would fire it, the exploration merely stopped counting (the same
   exemption I5 makes). A participant with NOTHING armed stays a
   violation — that is the lying agent's silently-dropped local commit. *)
let terminal_violations g =
  List.concat_map
    (fun (gid, outcome) ->
      let participants =
        match List.assoc_opt gid g.coords with
        | Some (st : C.state) -> st.C.participants
        | None -> []
      in
      let still_driven s =
        List.exists
          (function
            | T_agent (s', A.T_inquiry g') -> s' = s && g' = gid
            | T_coord (g', C.Retransmit) -> g' = gid
            | _ -> false)
          g.timers
      in
      List.filter_map
        (fun (s, entries) ->
          if not (List.mem (site_of s) participants) then None
          else
          let e = List.find_opt (fun e -> e.e_gid = gid) entries in
          match (outcome, e) with
          | Types.Committed, Some e when (not e.e_lcommitted) && not (still_driven s) ->
              Some
                (Fmt.str "I4: T%d decided commit but site %a never committed locally" gid Site.pp
                   (site_of s))
          | Types.Committed, None ->
              Some (Fmt.str "I4: T%d decided commit but site %a has no log entry" gid Site.pp (site_of s))
          | Types.Aborted _, Some e when e.e_lcommitted ->
              Some
                (Fmt.str "I4: T%d decided abort but site %a committed locally" gid Site.pp (site_of s))
          | _ -> None)
        g.logs)
    g.outcomes

(* ------------------------------------------------------------------ *)
(* State fingerprinting and the DFS                                     *)
(* ------------------------------------------------------------------ *)

(* A canonical, Marshal-stable projection: maps and sets become sorted
   lists, multisets are sorted, assoc lists are keyed in order. *)
let fingerprint g =
  let sorted_assoc l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let canon_coord (gid, (st : C.state)) =
    ( gid,
      st.C.phase,
      st.C.remaining_steps,
      st.C.outstanding,
      st.C.sn,
      Site.Set.elements st.C.voters,
      st.C.votes,
      st.C.refusal,
      Site.Set.elements st.C.acked,
      List.sort compare st.C.replica_acks,
      st.C.retransmissions,
      (st.C.exec_armed, st.C.retransmit_armed, st.C.prepare_retransmit_armed, st.C.finished) )
  in
  let canon_agent (s, (st : A.state)) =
    ( s,
      A.Int_map.bindings st.A.subs,
      List.sort compare
        (List.map
           (fun (e : Alive_table.entry) ->
             (e.Alive_table.gid, e.Alive_table.sn, e.Alive_table.intervals))
           (Alive_table.entries st.A.table)),
      (st.A.pending, st.A.batch, st.A.flush_armed) )
  in
  let canon =
    ( (g.clock, g.sn_seq),
      List.map canon_coord (sorted_assoc g.coords),
      (sorted_assoc g.clogs, List.sort compare g.dead, sorted_assoc g.cstaged),
      (sorted_assoc g.accs, List.sort compare g.dead_accs),
      List.map canon_agent (sorted_assoc g.agents),
      List.map (fun (s, es) -> (s, List.sort compare es)) (sorted_assoc g.logs),
      sorted_assoc g.max_csn,
      List.map (fun (s, ls) -> (s, List.sort compare ls)) (sorted_assoc g.ltms),
      (List.sort compare g.msgs, List.sort compare g.cbs, List.sort compare g.timers),
      (g.unstarted, List.sort compare g.outcomes, List.sort compare g.ready, g.b),
      (g.epoch, sorted_assoc g.owner, sorted_assoc g.tepoch, List.sort compare g.required) )
  in
  Digest.string (Marshal.to_string canon [])

let init scenario =
  let sites = List.init scenario.n_sites Fun.id in
  let gids = List.init scenario.n_txns (fun i -> i + 1) in
  let g0 =
    {
      clock = 0;
      sn_seq = 0;
      coords = [];
      clogs = [];
      cstaged = [];
      dead = [];
      accs = [];
      dead_accs = [];
      agents = List.map (fun s -> (s, A.init ~site:(site_of s))) sites;
      logs = List.map (fun s -> (s, [])) sites;
      max_csn = [];
      ltms = List.map (fun s -> (s, [])) sites;
      msgs = [];
      cbs = [];
      timers = [];
      unstarted = gids;
      outcomes = [];
      ready = [];
      epoch = 0;
      owner = List.map (fun s -> (s, s)) sites;  (* the static identity map *)
      tepoch = [];
      required = [];
      b = scenario.budgets;
    }
  in
  (* Start every coordinator up front: delaying a start is subsumed by
     delaying the delivery of its messages, so exploring start
     interleavings only pads the space. The exception is the ticket
     baseline ([sn_at_begin]), where the begin order assigns the serial
     numbers — there the starts stay explorable actions. *)
  if scenario.config.Config.sn_at_begin then g0
  else List.fold_left (fun g gid -> start_txn scenario g gid) g0 gids

type stats = {
  states : int;
  transitions : int;
  deduped : int;  (* transitions that reconverged to a visited state *)
  terminals : int;
  n_violations : int;
  violations : (string * action list) list;  (* first few, trail oldest-first *)
  truncated : bool;  (* [max_states] hit: the space was NOT exhausted *)
}

let pp_action ppf = function
  | Start gid -> Fmt.pf ppf "start T%d" gid
  | Deliver m -> Fmt.pf ppf "deliver %a" Wire.pp m
  | Duplicate m -> Fmt.pf ppf "deliver a duplicate of %a" Wire.pp m
  | Drop m -> Fmt.pf ppf "drop %a" Wire.pp m
  | Ltm_complete (Cb_exec { site; gid; inc; _ }) ->
      Fmt.pf ppf "LTM at %a finishes a command of T%d (inc %d)" Site.pp (site_of site) gid inc
  | Ltm_complete (Cb_commit { site; gid; _ }) ->
      Fmt.pf ppf "LTM at %a finishes the local commit of T%d" Site.pp (site_of site) gid
  | Ltm_complete (Cb_uan { site; gid; inc }) ->
      Fmt.pf ppf "UAN for T%d (inc %d) reaches the agent at %a" gid inc Site.pp (site_of site)
  | Fire (T_agent (s, A.T_alive gid)) ->
      Fmt.pf ppf "alive-check timer fires for T%d at %a" gid Site.pp (site_of s)
  | Fire (T_agent (s, A.T_commit_retry gid)) ->
      Fmt.pf ppf "commit-retry timer fires for T%d at %a" gid Site.pp (site_of s)
  | Fire (T_agent (s, A.T_inquiry gid)) ->
      Fmt.pf ppf "decision-inquiry timer fires for T%d at %a" gid Site.pp (site_of s)
  | Fire (T_agent (s, A.T_backoff { gid; inc })) ->
      Fmt.pf ppf "resubmission backoff fires for T%d (inc %d) at %a" gid inc Site.pp (site_of s)
  | Fire (T_agent (s, A.T_flush)) ->
      Fmt.pf ppf "group-commit flush timer fires at %a" Site.pp (site_of s)
  | Fire (T_coord (gid, C.Exec_timeout)) -> Fmt.pf ppf "T%d's command reply times out" gid
  | Fire (T_coord (gid, C.Retransmit)) -> Fmt.pf ppf "T%d retransmits its decision" gid
  | Fire (T_coord (gid, C.Prepare_retransmit)) -> Fmt.pf ppf "T%d retransmits PREPARE" gid
  | Unilateral_abort { site; gid } ->
      Fmt.pf ppf "LTM at %a unilaterally aborts T%d" Site.pp (site_of site) gid
  | Crash_recover s -> Fmt.pf ppf "site %a crashes and recovers" Site.pp (site_of s)
  | Coord_crash gid -> Fmt.pf ppf "T%d's coordinating site crashes" gid
  | Kill_leader gid -> Fmt.pf ppf "T%d's leader dies for good" gid
  | Kill_acceptor (gid, idx) -> Fmt.pf ppf "acceptor %d of T%d's register dies for good" idx gid
  | Reconfigure { shard; to_ } ->
      Fmt.pf ppf "shard %d moves to site %a (new placement epoch)" shard Site.pp (site_of to_)
  | Coord_flush s -> Fmt.pf ppf "the coordinator batch at %a force-writes" Site.pp (site_of s)

let max_reported = 5

let run scenario =
  let visited = Hashtbl.create (1 lsl 16) in
  let states = ref 0
  and transitions = ref 0
  and deduped = ref 0
  and terminals = ref 0
  and n_violations = ref 0
  and violations = ref []
  and truncated = ref false in
  let record msg trail =
    incr n_violations;
    if List.length !violations < max_reported then violations := (msg, List.rev trail) :: !violations
  in
  let rec go g trail =
    if !states >= scenario.max_states then truncated := true
    else begin
      incr states;
      match enabled scenario g with
      | [] ->
          incr terminals;
          List.iter (fun m -> record m trail)
            (terminal_violations g @ flush_violations g @ in_doubt_violations scenario g)
      | acts ->
          List.iter
            (fun a ->
              incr transitions;
              match apply scenario g a with
              | exception Violation m -> record m (a :: trail)
              | g' -> (
                  match
                    (match hygiene_violation g' with None -> i6_violation g' | some -> some)
                  with
                  | Some m -> record m (a :: trail)
                  | None ->
                      let fp = fingerprint g' in
                      if Hashtbl.mem visited fp then incr deduped
                      else begin
                        Hashtbl.add visited fp ();
                        go g' (a :: trail)
                      end))
            acts
    end
  in
  let g0 = init scenario in
  Hashtbl.add visited (fingerprint g0) ();
  go g0 [];
  {
    states = !states;
    transitions = !transitions;
    deduped = !deduped;
    terminals = !terminals;
    n_violations = !n_violations;
    violations = List.rev !violations;
    truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                      *)
(* ------------------------------------------------------------------ *)

let pp_stats ppf st =
  Fmt.pf ppf "%d states, %d transitions (%d reconverged), %d terminal states, %d violation(s)%s"
    st.states st.transitions st.deduped st.terminals st.n_violations
    (if st.truncated then " [TRUNCATED: state cap hit]" else "")

let pp_violation ppf (msg, trail) =
  Fmt.pf ppf "@[<v2>%s@,@[<v2>schedule:@,%a@]@]" msg (Fmt.list ~sep:Fmt.cut pp_action) trail

(* Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"):
   the commit/abort decision as a write-once Paxos-replicated register.

   One instance of this machine is acceptor [idx] of transaction [gid]'s
   decision register; the register has [Config.n_acceptors] instances
   spread over sites and a read = write quorum of
   [Config.replica_quorum].  The coordinator ([Coordinator_sm]) is the
   instance's ballot-0 leader: once every participant has voted READY it
   proposes [commit] at ballot 0 and announces COMMIT only after a write
   quorum of acceptors has accepted — so the decision survives F
   acceptor-or-leader failures.  A fast ABORT is never replicated: a
   recovery ballot that finds no accepted value is free to choose abort
   (presumed abort, replicated edition), so commit is the only value that
   must be visible in the register before it is announced.

   Recovery: any acceptor prodded with DECISION-REQ while undecided
   becomes a recovery leader and runs a full ballot — phase 1
   ([Px_query]/[Px_promise]) over a read quorum, then phase 2
   ([Px_accept]/[Px_accepted]) of the highest accepted value (or abort if
   none) over a write quorum — before answering its askers.  Acceptors
   lead over disjoint ballot spaces (ballot = round * n + idx + 1, ballot
   0 reserved for the coordinator) so two recovery leaders can never
   collide on a ballot; a nacked leader abandons and re-runs a higher
   ballot at the *next* DECISION-REQ, so duelling leaders are paced by
   the askers' inquiry timers.

   The machine is deliberately timerless (the ['timer] vocabulary is
   [never]): all liveness is driven by in-doubt participants re-firing
   their inquiry timers and by the leader's retransmission timer.  A
   leading acceptor applies its own phase-1a/2a to itself locally rather
   than sending to itself, which both matches the TLA model and keeps
   the model checker's state space small.

   [promised], [accepted] and [decided] are force-written before any
   message that depends on them leaves (the classic Paxos durability
   rule); [askers], [round] and leadership are volatile and rebuilt by
   re-asking. *)

open Hermes_kernel
open Types

type config = { n : int; quorum : int; certificates : bool }

let config certifier =
  {
    n = Config.n_acceptors certifier;
    quorum = Config.replica_quorum certifier;
    certificates = certifier.Config.decision_certificates;
  }

(* Stable acceptor-log writes, all forced. *)
type record =
  | R_promised of { ballot : int }
  | R_accepted of { ballot : int; committed : bool }
  | R_decided of { committed : bool }

type event =
  | Recovery_ballot of { ballot : int }  (* this acceptor starts leading a full ballot *)
  | Chosen of { ballot : int; committed : bool }  (* its ballot reached a write quorum *)
  | Nacked of { ballot : int; promised : int }  (* abandoned: a higher ballot is promised *)

(* Leadership of one recovery ballot: collecting promises (phase 1),
   then acceptances (phase 2) of [l_value]. [l_heard] always contains
   this acceptor itself. *)
type led = {
  l_ballot : int;
  l_phase : [ `Promises | `Acks ];
  l_heard : int list;
  l_best : (int * bool) option;  (* highest accepted value among the promises *)
  l_value : bool;  (* the value being proposed in phase 2 *)
}

type state = {
  gid : int;
  idx : int;
  promised : int;  (* highest ballot promised (0 = only the implicit ballot-0 promise) *)
  accepted : (int * bool) option;  (* highest (ballot, decision) accepted *)
  decided : bool option;
  askers : Wire.address list;  (* who sent DECISION-REQ while undecided; kept sorted *)
  round : int;  (* next recovery round to lead *)
  leading : led option;
}

type input =
  | Deliver of { src : Wire.address; payload : Wire.payload }
  | Recover of { promised : int; accepted : (int * bool) option; decided : bool option }
      (* rebuild from the force-written acceptor log after a site reboot
         (fed to a fresh [init]); askers and leadership are volatile and
         come back through re-asking *)

type effect = (never, record, never, event) Types.effect

let init ~gid ~idx =
  { gid; idx; promised = 0; accepted = None; decided = None; askers = []; round = 0; leading = None }

let send st ~dst payload = Send { dst; gid = st.gid; payload }

let peers config st =
  List.filter_map
    (fun k -> if k = st.idx then None else Some (Wire.Acceptor { gid = st.gid; idx = k }))
    (List.init config.n Fun.id)

(* The smallest own-space ballot above both our promise and [floor]. *)
let bump_round config st floor =
  let rec go round = if (round * config.n) + st.idx + 1 > floor then round else go (round + 1) in
  go st.round

(* The register decided: persist, tell the askers (in address order —
   the list is kept sorted so arrival order does not leak into state). *)
let learn st committed =
  if st.decided <> None then (st, [])
  else
    let answers =
      List.map (fun dst -> send st ~dst (Wire.Decision_resp { committed })) st.askers
    in
    ( { st with decided = Some committed; askers = []; leading = None },
      Force_log (R_decided { committed }) :: answers )

(* Our own ballot reached a write quorum: the value is chosen. Spread it
   to the peers so a later recovery ballot short-circuits. *)
let choose config st ballot committed =
  let broadcast = List.map (fun dst -> send st ~dst (Wire.Px_decision { committed })) (peers config st) in
  let st, effs = learn st committed in
  (st, (Emit (Chosen { ballot; committed }) :: broadcast) @ effs)

(* Phase 2 of an own ballot: self-accept the value, then solicit a write
   quorum of acceptances (immediate when the quorum is just us —
   backup-TM's single replica). *)
let start_phase2 config st ballot value =
  let st = { st with promised = ballot; accepted = Some (ballot, value); leading = None } in
  let accept = Force_log (R_accepted { ballot; committed = value }) in
  if config.quorum <= 1 then
    let st, effs = choose config st ballot value in
    (st, accept :: effs)
  else
    let st =
      { st with
        leading = Some { l_ballot = ballot; l_phase = `Acks; l_heard = [ st.idx ]; l_best = None; l_value = value }
      }
    in
    ( st,
      accept
      :: List.map (fun dst -> send st ~dst (Wire.Px_accept { ballot; committed = value })) (peers config st)
    )

(* Become the recovery leader of a fresh ballot: self-promise, then
   solicit a read quorum of promises. *)
let start_recovery config st =
  let round = bump_round config st st.promised in
  let ballot = (round * config.n) + st.idx + 1 in
  let st = { st with round = round + 1; promised = ballot } in
  let emit = Emit (Recovery_ballot { ballot }) in
  let promise = Force_log (R_promised { ballot }) in
  if config.quorum <= 1 then
    (* The read quorum is just us: free choice unless we hold a value. *)
    let value = match st.accepted with Some (_, v) -> v | None -> false in
    let st, effs = start_phase2 config st ballot value in
    (st, emit :: promise :: effs)
  else
    let st =
      { st with
        leading =
          Some { l_ballot = ballot; l_phase = `Promises; l_heard = [ st.idx ]; l_best = st.accepted; l_value = false }
      }
    in
    ( st,
      emit :: promise
      :: List.map (fun dst -> send st ~dst (Wire.Px_query { ballot })) (peers config st) )

let handle_deliver config st src payload =
  match payload with
  | Wire.Decision_req -> (
      (* A rebooted leader or an in-doubt participant asks for the
         outcome. Decided: answer. Undecided: remember the asker and
         (unless a ballot of ours is already in flight) lead recovery. *)
      match st.decided with
      | Some committed -> (st, [ send st ~dst:src (Wire.Decision_resp { committed }) ])
      | None ->
          let st =
            if List.exists (Wire.equal_address src) st.askers then st
            else { st with askers = List.sort compare (src :: st.askers) }
          in
          if st.leading <> None then (st, []) else start_recovery config st)
  | Wire.Px_accept { ballot; committed } -> (
      match st.decided with
      | Some d -> (st, [ send st ~dst:src (Wire.Decision_resp { committed = d }) ])
      | None ->
          if ballot < st.promised then (st, [])  (* stale proposer: silence, let it be nacked *)
          else if config.certificates && ballot = 0 && not committed then
            (* Decision certificates, register edition: a fast abort is
               never replicated, so a ballot-0 abort proposal cannot come
               from the honest leader — it is a forgery; drop it. *)
            (st, [])
          else if st.accepted = Some (ballot, committed) then
            (* duplicate 2a (a retransmission): re-ack without re-forcing *)
            (st, [ send st ~dst:src (Wire.Px_accepted { ballot; idx = st.idx }) ])
          else if
            config.certificates
            && match st.accepted with Some (b, v) -> b = ballot && v <> committed | None -> false
          then
            (* Conflicting value at the ballot we already accepted: the
               register is write-once per ballot, so an honest proposer
               never re-proposes differently — drop the forgery instead
               of overwriting the accepted value. *)
            (st, [])
          else
            (* accepting implies promising; any lower-ballot leadership of
               ours can no longer reach a quorum, so abandon it *)
            let st = { st with promised = ballot; accepted = Some (ballot, committed); leading = None } in
            ( st,
              [
                Force_log (R_accepted { ballot; committed });
                send st ~dst:src (Wire.Px_accepted { ballot; idx = st.idx });
              ] ))
  | Wire.Px_query { ballot } -> (
      match st.decided with
      | Some d -> (st, [ send st ~dst:src (Wire.Decision_resp { committed = d }) ])
      | None ->
          if ballot <= st.promised then
            (* [promised > ballot] is a nack; [promised = ballot] re-sends
               the promise a duplicated query asked for — idempotent *)
            ( st,
              [
                send st ~dst:src
                  (Wire.Px_promise { ballot; promised = st.promised; accepted = st.accepted; idx = st.idx });
              ] )
          else
            let st = { st with promised = ballot; leading = None } in
            ( st,
              [
                Force_log (R_promised { ballot });
                send st ~dst:src
                  (Wire.Px_promise { ballot; promised = ballot; accepted = st.accepted; idx = st.idx });
              ] ))
  | Wire.Px_promise { ballot; promised; accepted; idx } -> (
      match st.leading with
      | Some l when l.l_phase = `Promises && l.l_ballot = ballot ->
          if promised > ballot then
            (* nacked: abandon; the next DECISION-REQ re-runs past it *)
            ( { st with leading = None; round = bump_round config st promised },
              [ Emit (Nacked { ballot; promised }) ] )
          else if List.mem idx l.l_heard then (st, [])
          else
            let l_best =
              match (accepted, l.l_best) with
              | Some (b, _), Some (b', _) when b <= b' -> l.l_best
              | Some _, _ -> accepted
              | None, _ -> l.l_best
            in
            let l = { l with l_heard = List.sort compare (idx :: l.l_heard); l_best } in
            if List.length l.l_heard >= config.quorum then
              (* read quorum: re-propose the highest accepted value, or
                 abort if the quorum never saw one (presumed abort) *)
              let value = match l.l_best with Some (_, v) -> v | None -> false in
              start_phase2 config { st with leading = None } ballot value
            else ({ st with leading = Some l }, [])
      | _ -> (st, []) (* stale promise for an abandoned or finished ballot *))
  | Wire.Px_accepted { ballot; idx } -> (
      match st.leading with
      | Some l when l.l_phase = `Acks && l.l_ballot = ballot ->
          if List.mem idx l.l_heard then (st, [])
          else
            let l = { l with l_heard = List.sort compare (idx :: l.l_heard) } in
            if List.length l.l_heard >= config.quorum then
              choose config { st with leading = None } ballot l.l_value
            else ({ st with leading = Some l }, [])
      | _ -> (st, []))
  | Wire.Px_decision { committed } -> learn st committed
  | Wire.Commit_ack | Wire.Rollback_ack | Wire.Decision_resp _ ->
      (* an agent that learned the decision from our DECISION-RESP
         acknowledges to its [src] — nothing for the register to do *)
      (st, [])
  | payload ->
      Fmt.failwith "acceptor T%d.%d: unexpected %a" st.gid st.idx Wire.pp_payload payload

let step config st input : state * effect list =
  match input with
  | Deliver { src; payload } -> handle_deliver config st src payload
  | Recover { promised; accepted; decided } -> ({ st with promised; accepted; decided }, [])

(* The shared vocabulary of the pure protocol machines.

   A machine step never performs an effect: it returns an ordered
   [effect list] that an adapter (or the model checker) interprets. The
   order within the list is part of the contract — the effectful shell
   replays it verbatim, which is what keeps a refactored run
   byte-identical to the historical imperative implementation (engine
   event sequence numbers, RNG draw order and trace append order all
   follow effect order). *)

open Hermes_kernel

(* An empty type, for machines that never use a given effect payload
   (e.g. the coordinator has no LTM). *)
type never = |

let absurd : never -> 'a = function _ -> .

(* Why a coordinator aborted a global transaction. *)
type reason =
  | Exec_failed of Site.t * string
  | Refused of Site.t * Wire.refusal
  | Gate_refused of string  (* a baseline scheduler (e.g. CGM) rejected the commit *)
  | Presumed_abort
      (* coordinator crash recovery: the stable log holds no decision
         record (or the logged decision was an abort — the log keeps only
         the decision bit, not its reason), so 2PC's presumed-abort rule
         applies *)
  | Register_abort
      (* replicated commit (Paxos / backup-TM): a recovery ballot of the
         decision register chose abort — the replicated flavour of
         presumed abort — and the leader adopted it *)

let pp_reason ppf = function
  | Exec_failed (s, why) -> Fmt.pf ppf "execution failed at %a: %s" Site.pp s why
  | Refused (s, r) -> Fmt.pf ppf "refused by %a: %a" Site.pp s Wire.pp_refusal r
  | Gate_refused why -> Fmt.pf ppf "commit gate refused: %s" why
  | Presumed_abort -> Fmt.string ppf "presumed abort after coordinator crash recovery"
  | Register_abort -> Fmt.string ppf "the replicated decision register chose abort"

type outcome = Committed | Aborted of reason

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted (%a)" pp_reason r

(* Entries of the global history trace (interpreted against
   [Hermes_ltm.Trace] / [Hermes_history.Op] by the adapters). *)
type history_event =
  | H_prepare of { gid : int; sn : Sn.t }
  | H_global_commit of { gid : int }
  | H_global_abort of { gid : int }

(* One effect, ordered. ['timer] is the machine's timer vocabulary,
   ['record] its stable-log record vocabulary, ['call] its LTM call
   vocabulary and ['event] its observability event vocabulary. *)
type ('timer, 'record, 'call, 'event) effect =
  | Send of { dst : Wire.address; gid : int; payload : Wire.payload }
  | Arm_timer of { timer : 'timer; delay : int }
  | Cancel_timer of 'timer
  | Force_log of 'record
  | Stage_log of 'record
      (* group commit: the record must be durable before any *later*
         effect of this step is acted on, but the force may be coalesced
         with other machines' staged records — the adapter appends the
         record to the site's batch and withholds the remainder of the
         step until the batch is force-written *)
  | Force_batch of 'record list
      (* group commit: durably write every record of the batch, oldest
         first, with a single force I/O *)
  | Ltm_call of 'call
  | Record of history_event
  | Emit of 'event
  | Invoke_gate
      (* hand control to the commit gate; by construction always the last
         effect of its step, so a synchronous gate may immediately feed
         the answer back into the machine *)
  | Decide of outcome
      (* terminal: report the global outcome to the submitter; always the
         last effect of its step *)

(** The shared vocabulary of the pure protocol machines.

    A machine step never performs an effect: it returns an ordered
    {!effect} list that an adapter (or the {!Explore} model checker)
    interprets.  The order within the list is part of the contract — the
    effectful shell replays it verbatim, which is what keeps a refactored
    run byte-identical to the historical imperative implementation
    (engine event sequence numbers, RNG draw order and trace append order
    all follow effect order). *)

open Hermes_kernel

type never = |
(** An empty type, for machines that never use a given effect payload
    (e.g. the coordinator has no LTM). *)

val absurd : never -> 'a

(** Why a coordinator aborted a global transaction. *)
type reason =
  | Exec_failed of Site.t * string
  | Refused of Site.t * Wire.refusal
  | Gate_refused of string
      (** A baseline scheduler (e.g. CGM) rejected the commit. *)
  | Presumed_abort
      (** Coordinator crash recovery: the stable log holds no decision
          record (or the logged decision was an abort), so 2PC's
          presumed-abort rule applies. *)
  | Register_abort
      (** Replicated commit (Paxos / backup-TM): a recovery ballot of the
          decision register chose abort and the leader adopted it. *)

val pp_reason : reason Fmt.t

type outcome = Committed | Aborted of reason

val pp_outcome : outcome Fmt.t

(** Entries of the global history trace (interpreted against
    [Hermes_ltm.Trace] / [Hermes_history.Op] by the adapters). *)
type history_event =
  | H_prepare of { gid : int; sn : Sn.t }
  | H_global_commit of { gid : int }
  | H_global_abort of { gid : int }

(** One effect, ordered.  ['timer] is the machine's timer vocabulary,
    ['record] its stable-log record vocabulary, ['call] its LTM call
    vocabulary and ['event] its observability event vocabulary.

    {2 The force contract}

    Three constructors write the stable log, with increasing batching:

    - [Force_log r] — write [r] and force it with its own I/O before the
      next effect of the step is acted on.  This is the only log effect
      the machines emit when {!Config.group_commit} is off, and the only
      one the golden-digest suite ever sees.
    - [Stage_log r] — group commit, cross-machine: [r] must be durable
      before any {e later} effect of this step is acted on, but the force
      may be coalesced with records staged by other machines at the same
      site.  The adapter appends [r] to the site's batch and withholds
      the remainder of the step until the batch is force-written (one
      I/O for the whole batch).  A crash before the batch is forced
      loses [r] and the withheld effects — exactly the durability the
      protocol expects of an unforced record.
    - [Force_batch rs] — group commit, machine-internal: durably write
      every record of [rs], oldest first, with a single force I/O.  The
      agent machine stages records (and their dependent effects) in its
      own state and emits the whole batch at its flush point, so the
      effects that follow [Force_batch] in the same step are already
      correctly ordered after the force. *)
type ('timer, 'record, 'call, 'event) effect =
  | Send of { dst : Wire.address; gid : int; payload : Wire.payload }
  | Arm_timer of { timer : 'timer; delay : int }
  | Cancel_timer of 'timer
  | Force_log of 'record
  | Stage_log of 'record
  | Force_batch of 'record list
  | Ltm_call of 'call
  | Record of history_event
  | Emit of 'event
  | Invoke_gate
      (** Hand control to the commit gate; by construction always the
          last effect of its step, so a synchronous gate may immediately
          feed the answer back into the machine. *)
  | Decide of outcome
      (** Terminal: report the global outcome to the submitter; always
          the last effect of its step. *)

(* The discrete-event engine.

   Components (coordinators, agents, LTMs, clients, the failure injector)
   are callback state machines: they schedule events, and an event firing
   runs a callback at a virtual instant. Determinism: events fire in
   (time, sequence-number) order, where the sequence number is assigned at
   scheduling time, so two runs with the same seed interleave identically.

   Timers are cancellable — the certifier's alive-check timers and
   commit-certification retry timers (Appendix A and C of the paper) need
   cancellation when a subtransaction leaves the prepared state. *)

open Hermes_kernel

type timer = { mutable cancelled : bool; fire_at : Time.t }

type event = { at : Time.t; seq : int; timer : timer; run : unit -> unit }

module Eq = Pqueue.Make (struct
  type t = event

  let compare a b =
    match Time.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
end)

type t = {
  mutable now : Time.t;
  mutable queue : Eq.t;
  mutable seq : int;
  mutable executed : int;
  mutable halted : bool;
  mutable last_fired : Time.t;  (* time of the last non-cancelled event *)
  mutable live : int;  (* events scheduled, not yet popped *)
  mutable max_pending : int;  (* queue-depth high-water mark *)
  mutable cancelled_fired : int;  (* popped events whose timer was cancelled *)
}

exception Stuck of string

let create () =
  {
    now = Time.zero;
    queue = Eq.empty;
    seq = 0;
    executed = 0;
    halted = false;
    last_fired = Time.zero;
    live = 0;
    max_pending = 0;
    cancelled_fired = 0;
  }

let now t = t.now
let last_event_at t = t.last_fired

let schedule t ~delay run =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let at = Time.add t.now delay in
  let timer = { cancelled = false; fire_at = at } in
  t.queue <- Eq.insert t.queue { at; seq = t.seq; timer; run };
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  if t.live > t.max_pending then t.max_pending <- t.live;
  timer

let schedule_unit t ~delay run = ignore (schedule t ~delay run)

let cancel timer = timer.cancelled <- true
let fire_at timer = timer.fire_at

let halt t = t.halted <- true

let step t =
  match Eq.pop t.queue with
  | None -> false
  | Some (ev, rest) ->
      t.queue <- rest;
      t.live <- t.live - 1;
      if Time.(ev.at < t.now) then invalid_arg "Engine.step: time went backwards";
      t.now <- ev.at;
      if ev.timer.cancelled then t.cancelled_fired <- t.cancelled_fired + 1
      else begin
        t.executed <- t.executed + 1;
        t.last_fired <- ev.at;
        ev.run ()
      end;
      true

let next_at t = Option.map (fun ev -> ev.at) (Eq.min t.queue)

type stats = { events : int; max_pending : int; cancelled : int; live : int }

let stats t =
  { events = t.executed; max_pending = t.max_pending; cancelled = t.cancelled_fired; live = t.live }

let run ?until ?(max_events = 50_000_000) t =
  let continue () =
    (not t.halted)
    && t.executed < max_events
    &&
    match until with
    | None -> true
    | Some limit -> ( match Eq.min t.queue with Some ev -> Time.(ev.at <= limit) | None -> true)
  in
  while continue () && step t do
    ()
  done;
  if t.executed >= max_events then raise (Stuck "Engine.run: event budget exhausted (livelock?)");
  match until with Some limit when not t.halted -> t.now <- Time.max t.now limit | _ -> ()

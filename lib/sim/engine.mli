(** The discrete-event engine. Components are callback state machines;
    events fire in (time, sequence) order, so runs are deterministic given
    a seed. Timers are cancellable, as the certifier's alive-check and
    commit-retry timers require. *)

open Hermes_kernel

type t
type timer

exception Stuck of string
(** Raised by {!run} when the event budget is exhausted — a livelock guard. *)

val create : unit -> t
val now : t -> Time.t

val last_event_at : t -> Time.t
(** Fire time of the last non-cancelled event — unlike {!now}, not
    inflated by a [run ~until] that outlived the workload. *)

(** Aggregate engine statistics: non-cancelled events executed, the
    queue-depth high-water mark, popped events whose timer had been
    cancelled, and [live] — events scheduled and not yet popped
    (cancelled timers included). A quiesced run (queue drained) must
    report [live = 0]; a non-zero value means a component leaked an
    armed timer past its terminal transition. *)
type stats = { events : int; max_pending : int; cancelled : int; live : int }

val stats : t -> stats

val schedule : t -> delay:int -> (unit -> unit) -> timer
(** Schedule a callback [delay] ticks from now (0 is allowed: it fires after
    all already-scheduled events at the current instant). *)

val schedule_unit : t -> delay:int -> (unit -> unit) -> unit
val cancel : timer -> unit
val fire_at : timer -> Time.t

val halt : t -> unit
(** Stop {!run} after the current event. *)

val step : t -> bool
(** Execute the next event; [false] if the queue is empty. *)

val next_at : t -> Time.t option
(** Fire time of the earliest pending event (cancelled timers included),
    [None] when the queue is empty. The conservative parallel scheduler
    uses this to compute the next safe window bound. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run until the queue drains, [until] is passed, or {!halt}. If [until] is
    given and not halted, the clock is advanced to it. *)

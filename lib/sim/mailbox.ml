(* Lock-free multi-producer single-consumer inbox for cross-shard
   messages in the parallel execution engine.

   Producers (any domain) [push] with a CAS loop on an immutable list — a
   Treiber stack; the consumer [drain]s with a single exchange. The
   conservative scheduler only drains at a window barrier, when every
   producer of the previous window has quiesced, so the consumer never
   spins against concurrent pushes it must wait for.

   Determinism: the drained batch comes back in an arbitrary (push-race)
   order, so the consumer sorts it by the deterministic key attached to
   each entry — (delivery time, sender shard, sender sequence number) —
   before scheduling. Two runs with the same virtual-time behaviour then
   schedule identical delivery sequences regardless of how the domains
   interleaved in wall time. *)

type 'a entry = { at : int; src_shard : int; src_seq : int; payload : 'a }

type 'a t = 'a entry list Atomic.t

let create () = Atomic.make []

let push t ~at ~src_shard ~src_seq payload =
  let entry = { at; src_shard; src_seq; payload } in
  let rec loop () =
    let old = Atomic.get t in
    if not (Atomic.compare_and_set t old (entry :: old)) then loop ()
  in
  loop ()

let is_empty t = Atomic.get t = []

let compare_entry a b =
  match Int.compare a.at b.at with
  | 0 -> (
      match Int.compare a.src_shard b.src_shard with
      | 0 -> Int.compare a.src_seq b.src_seq
      | c -> c)
  | c -> c

(* Take everything, sorted by (at, src_shard, src_seq). Single consumer:
   only the owning shard's domain (or the barrier coordinator) calls
   this. *)
let drain t =
  let batch = Atomic.exchange t [] in
  List.sort compare_entry batch

let length t = List.length (Atomic.get t)

(** Lock-free multi-producer single-consumer inbox for cross-shard
    messages in the parallel execution engine. Producers on any domain
    {!push}; the owning shard {!drain}s at a window barrier and gets the
    batch back in deterministic (delivery time, sender shard, sender
    sequence) order, so delivery schedules do not depend on wall-clock
    interleaving. *)

type 'a entry = { at : int; src_shard : int; src_seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val push : 'a t -> at:int -> src_shard:int -> src_seq:int -> 'a -> unit
(** Lock-free (CAS loop); safe from any domain. [at] is the virtual
    delivery time, [src_seq] a per-sender monotone counter — together
    with [src_shard] they form the deterministic drain key. *)

val is_empty : 'a t -> bool

val drain : 'a t -> 'a entry list
(** Remove and return everything, sorted by (at, src_shard, src_seq).
    Single consumer only — call it when producers of the previous window
    have quiesced (i.e. at a barrier). *)

val length : 'a t -> int

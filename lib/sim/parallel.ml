(* Conservative parallel discrete-event execution.

   Each shard owns one {!Engine} (a site's whole component stack
   schedules only on it) plus an inbox of cross-shard messages. Domains
   execute shards through bounded virtual-time windows:

     1. serial phase (coordinator only): drain every shard's inbox into
        its engine, find the globally earliest pending event m, and set
        the window bound to m + lookahead - 1;
     2. parallel phase: every domain runs its shards' engines up to the
        bound, pushing any cross-shard sends into the destination inbox;
     3. barrier, repeat.

   Safety argument: the lookahead is the minimum cross-shard latency, so
   an event executing at time t >= m can only cause a remote event at
   t + lookahead > m + lookahead - 1 — strictly after the current
   window. Every remote event is therefore enqueued before the barrier
   preceding the window that executes it, and each engine still fires
   its own events in (time, seq) order; virtual time stays coherent
   without any global event ordering.

   Determinism: the serial phase drains inboxes in deterministic
   (arrival, sender, sender-seq) order (see {!Mailbox}), shards share no
   mutable state within a window, and window bounds are a function of
   virtual time only — so results are independent of the domain count
   and of wall-clock interleaving. [run ~domains:1] executes the same
   windowed schedule on the calling domain alone. *)

open Hermes_kernel

type shard = {
  engine : Engine.t;
  drain : unit -> unit;
      (* move the shard's inbox into its engine; called only in the
         serial phase, when every producer has quiesced *)
  inbox_empty : unit -> bool;
}

(* Sense-reversing barrier. *)
module Barrier = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable count : int;
    mutable sense : bool;
  }

  let create parties =
    { mutex = Mutex.create (); cond = Condition.create (); parties; count = 0; sense = false }

  let wait b =
    Mutex.lock b.mutex;
    let s = b.sense in
    b.count <- b.count + 1;
    if b.count = b.parties then begin
      b.count <- 0;
      b.sense <- not s;
      Condition.broadcast b.cond
    end
    else
      while b.sense = s do
        Condition.wait b.cond b.mutex
      done;
    Mutex.unlock b.mutex
end

type stats = { windows : int; domains : int }

(* The serial phase: drain, then the earliest pending event anywhere. *)
let global_min shards =
  Array.iter (fun s -> s.drain ()) shards;
  Array.fold_left
    (fun acc s ->
      match (Engine.next_at s.engine, acc) with
      | None, acc -> acc
      | Some t, None -> Some t
      | Some t, Some m -> Some (Time.min t m))
    None shards

let run ?(max_events = 50_000_000) ~domains ~lookahead ~until shards =
  if lookahead < 1 then invalid_arg "Parallel.run: lookahead must be >= 1";
  let n = Array.length shards in
  let domains = max 1 (min domains n) in
  let windows = ref 0 in
  let run_mine d ~w_end =
    for i = 0 to n - 1 do
      if i mod domains = d then Engine.run ~until:w_end ~max_events shards.(i).engine
    done
  in
  (* One round of the serial phase: [Some w_end] to execute, [None] when
     the system has quiesced or passed the cap. *)
  let next_window () =
    match global_min shards with
    | None -> None
    | Some m when Time.(m > until) -> None
    | Some m ->
        incr windows;
        Some (Time.min (Time.add m (lookahead - 1)) until)
  in
  if domains = 1 then begin
    let rec loop () =
      match next_window () with
      | None -> ()
      | Some w_end ->
          run_mine 0 ~w_end;
          loop ()
    in
    loop ()
  end
  else begin
    let start_b = Barrier.create domains and end_b = Barrier.create domains in
    let stop = Atomic.make false in
    let w_end = ref Time.zero in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let worker d () =
      let rec loop () =
        Barrier.wait start_b;
        if not (Atomic.get stop) then begin
          (try run_mine d ~w_end:!w_end
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          Barrier.wait end_b;
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    let rec loop () =
      match if Atomic.get error <> None then None else next_window () with
      | None ->
          Atomic.set stop true;
          Barrier.wait start_b (* release workers into their exit branch *)
      | Some w ->
          w_end := w;
          Barrier.wait start_b;
          (try run_mine 0 ~w_end:w
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          Barrier.wait end_b;
          loop ()
    in
    loop ();
    List.iter Domain.join others;
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  { windows = !windows; domains }

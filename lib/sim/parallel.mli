(** Conservative parallel discrete-event execution: shards (one
    {!Engine} plus a cross-shard inbox each) run on OCaml domains
    through bounded virtual-time windows, with a barrier between
    windows. The window bound is the earliest pending event plus the
    lookahead (the minimum cross-shard latency), so no event can cause
    a remote event inside its own window and virtual time stays
    coherent without global event ordering. Results are deterministic
    and independent of the domain count. *)

open Hermes_kernel

type shard = {
  engine : Engine.t;
  drain : unit -> unit;
      (** move the shard's inbox into its engine; called only in the
          serial (single-threaded) phase between windows *)
  inbox_empty : unit -> bool;
}

type stats = { windows : int; domains : int (** after clamping to the shard count *) }

val run :
  ?max_events:int -> domains:int -> lookahead:int -> until:Time.t -> shard array -> stats
(** Run every shard until global quiescence (all engines and inboxes
    empty) or past [until]. [lookahead] must be at least 1 and no larger
    than the minimum cross-shard delivery latency; [domains] is clamped
    to [1 .. Array.length shards]. [max_events] is the per-engine
    livelock budget ({!Engine.Stuck}). A worker exception aborts the
    run after the current window and is re-raised here. *)

(* The workload driver: global transactions enter by the spec's arrival
   discipline — a closed loop of clients working off a quota (retrying
   aborted ones), or an open loop of Poisson arrivals queueing past the
   in-service cap — while local clients at every site run purely local
   transactions against their LTMs; when the global quota is done, local
   clients stop and the simulation drains. One [run] produces one
   measured data point. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Mailbox = Hermes_sim.Mailbox
module Parallel = Hermes_sim.Parallel
module Ltm = Hermes_ltm.Ltm
module Ltm_config = Hermes_ltm.Ltm_config
module Failure = Hermes_ltm.Failure
module Trace = Hermes_ltm.Trace
module Network = Hermes_net.Network
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module Shard_map = Hermes_placement.Shard_map
module Cgm = Hermes_baselines.Cgm
module History = Hermes_history.History
module Obs = Hermes_obs.Obs
module Registry = Hermes_obs.Registry

type protocol =
  | Two_pca of Config.t  (* the paper's DTM, or its ablations/naive/ticket variants *)
  | Cgm_baseline of Cgm.config

let protocol_name = function
  | Two_pca c ->
      if c = Config.full then "2CM"
      else if c = Config.naive then "naive"
      else if c = Config.ticket then "ticket"
      else "2CM-variant"
  | Cgm_baseline c -> (
      match c.Cgm.granularity with Cgm.Site_level -> "CGM-site" | Cgm.Table_level -> "CGM-table")

type setup = {
  spec : Spec.t;
  protocol : protocol;
  failure : Failure.config;
  net : Network.config;
  ltm : Ltm_config.t;
  clock_of_site : int -> Clock.t;
  seed : int;
  time_limit : int;  (* simulated-tick cap: unsound ablations can livelock *)
  site_override : (int -> Dtm.site_spec option) option;
      (* heterogeneity hook: a per-site spec replacing the uniform
         failure/ltm/clock fields where it returns [Some] *)
  crash_schedule : (int * int) list;
      (* (tick, site index) full site crashes *)
  reboot_delay : int;
      (* ticks a crashed site stays down before recovery; 0 = the paper's
         instantaneous reboot *)
  crash_coordinators : bool;
      (* scheduled crashes also take down the site's coordinators, which
         reboot from the coordinator log; agents run the in-doubt
         termination protocol (2PCA only — the CGM baseline ignores it) *)
  obs : Obs.t option;
      (* observability context threaded into every component; end-of-run
         counters are exported into its registry *)
  moves : int;
      (* online reconfigurations: this many shard moves are scheduled
         during the run (2PCA, sequential engine only); each installs a
         new placement epoch after handing the moved shard's prepared
         certification state over to the gaining site *)
  reconfigure_at : int;
      (* tick of the first scheduled move; move [m] fires at
         [m * reconfigure_at] *)
  leave_schedule : (int * int) list;
      (* (tick, site index): the site leaves the serving set — its shards
         redistribute over the survivors with a prepared-state handover
         ({!Dtm.leave}). 2PCA, sequential engine only *)
  join_schedule : (int * int) list;
      (* (tick, site index): the site (re)joins the serving set, owning
         nothing until a later move ({!Dtm.join}) *)
  domains : int;
      (* OCaml domains for the run. 1 (default) = the legacy sequential
         engine, byte-identical to earlier revisions; > 1 = the sharded
         conservative-window engine (one engine per site), which is
         deterministic and domain-count-invariant but a different
         schedule from the sequential engine *)
}

let default_setup =
  {
    spec = Spec.default;
    protocol = Two_pca Config.full;
    failure = Failure.disabled;
    net = Network.default_config;
    ltm = Ltm_config.default;
    clock_of_site = (fun _ -> Clock.perfect);
    seed = 1;
    time_limit = 120_000_000;
    site_override = None;
    crash_schedule = [];
    reboot_delay = 0;
    crash_coordinators = false;
    obs = None;
    moves = 0;
    reconfigure_at = 0;
    leave_schedule = [];
    join_schedule = [];
    domains = 1;
  }

type result = {
  stats : Stats.t;
  totals : Dtm.totals;
  cgm : Cgm.stats option;
  history : History.t;
  sim_ticks : int;
  events : int;
  throughput : float;  (* committed global txns per simulated second *)
  wall_s : float;  (* wall-clock seconds of the execution phase *)
  stuck : int;  (* global transactions unfinished at the time cap (livelock) *)
}

let run_single setup =
  let spec = setup.spec in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:setup.seed in
  let trace = Trace.create () in
  let site_specs =
    Array.init spec.Spec.n_sites (fun i ->
        let uniform =
          { Dtm.ltm_config = setup.ltm; clock = setup.clock_of_site i; failure = setup.failure }
        in
        match setup.site_override with
        | Some f -> Option.value ~default:uniform (f i)
        | None -> uniform)
  in
  let dtm, submit, cgm_stats =
    match setup.protocol with
    | Two_pca certifier ->
        let dtm =
          Dtm.create ~engine ~rng ~trace ~net_config:setup.net ~certifier ?obs:setup.obs
            ~crash_coordinators:setup.crash_coordinators ~n_shards:(Spec.shards spec)
            ~site_specs ()
        in
        (dtm, (fun ?shards program ~on_done -> ignore (Dtm.submit dtm ?shards program ~on_done)), None)
    | Cgm_baseline config ->
        let cgm =
          Cgm.create ~engine ~rng ~trace ~net_config:setup.net ~config ?obs:setup.obs ~site_specs ()
        in
        (Cgm.dtm cgm, (fun ?shards:_ program ~on_done -> Cgm.submit cgm program ~on_done),
         Some (Cgm.stats cgm))
  in
  let partitioned = match setup.protocol with Cgm_baseline _ -> true | Two_pca _ -> false in
  (* Populate every site (plus CGM's locally-updateable partition). *)
  List.iter
    (fun site ->
      List.iter
        (fun table ->
          for k = 0 to spec.Spec.keys_per_site - 1 do
            Dtm.load dtm site ~table ~key:k ~value:spec.Spec.initial_value
          done)
        (Generator.local_partition_table :: Spec.tables spec))
    (Dtm.site_ids dtm);
  let stats = Stats.create () in
  let gen = Generator.create ~spec ~rng:(Rng.split rng ~label:"generator") in
  let think_rng = Rng.split rng ~label:"think" in
  let remaining = ref spec.Spec.n_global in
  let in_flight = ref 0 in
  let queued = ref 0 in
  let locals_active = ref true in
  let think k = Engine.schedule_unit engine ~delay:(Rng.exponential think_rng ~mean:(Spec.think_time spec)) k in
  (* Per-attempt placement resolution: the generator's steps are in shard
     space; every submission (first try and each resubmission) routes
     them through the placement map current at that moment. A shard move
     between two attempts re-routes the retry — the paper's resubmission
     machinery doubling as the reconfiguration client. At the static map
     this is the identity. *)
  let resolve steps =
    let map = Dtm.placement dtm in
    Program.make (List.map (fun (shard, c) -> (Shard_map.owner map ~shard, c)) steps)
  in
  let shards_of steps = List.sort_uniq compare (List.map fst steps) in
  (* Global traffic, by arrival discipline. The closed loop is the
     historical code path, draw for draw. *)
  let start_globals () =
    match spec.Spec.arrival with
    | Spec.Closed { mpl; think_time_mean = _ } ->
        (* Closed loop: a fixed population works off the quota. *)
        let rec global_client () =
          if !remaining > 0 then begin
            decr remaining;
            incr in_flight;
            let steps = Generator.shard_steps gen in
            let started = Engine.now engine in
            let rec attempt tries =
              Stats.note_attempt stats;
              submit ~shards:(shards_of steps) (resolve steps) ~on_done:(fun outcome ->
                  match outcome with
                  | Coordinator.Committed ->
                      Stats.note_committed stats;
                      Stats.record_latency stats ~started ~finished:(Engine.now engine);
                      finish_one ()
                  | Coordinator.Aborted (Coordinator.Refused (_, Wire.Wrong_epoch)) ->
                      (* reconfiguration noise, not contention: re-resolve
                         through the new map without consuming the budget *)
                      Stats.note_retry stats;
                      think (fun () -> attempt tries)
                  | Coordinator.Aborted _ when tries < spec.Spec.max_retries ->
                      Stats.note_retry stats;
                      think (fun () -> attempt (tries + 1))
                  | Coordinator.Aborted _ ->
                      Stats.note_final_abort stats;
                      finish_one ())
            and finish_one () =
              decr in_flight;
              if !remaining = 0 && !in_flight = 0 then locals_active := false;
              think global_client
            in
            attempt 0
          end
        in
        for _ = 1 to min mpl spec.Spec.n_global do
          global_client ()
        done
    | Spec.Open { rate; max_in_flight } ->
        (* Open loop: Poisson arrivals at [rate] txns per simulated second
           (ticks are microseconds). Arrivals beyond the in-service cap
           queue; latency runs from arrival, so queueing delay under
           saturation lands in the percentiles. The arrival process gets
           its own rng stream, split only on this branch. *)
        let arr_rng = Rng.split rng ~label:"arrivals" in
        let mean_gap = int_of_float (Float.max 1.0 (1_000_000.0 /. rate)) in
        let cap = max 1 max_in_flight in
        let completed = ref 0 in
        let queue = Queue.create () in
        let rec maybe_start () =
          if !in_flight < cap && not (Queue.is_empty queue) then begin
            let arrived, steps = Queue.pop queue in
            decr queued;
            incr in_flight;
            let rec attempt tries =
              Stats.note_attempt stats;
              submit ~shards:(shards_of steps) (resolve steps) ~on_done:(fun outcome ->
                  match outcome with
                  | Coordinator.Committed ->
                      Stats.note_committed stats;
                      Stats.record_latency stats ~started:arrived ~finished:(Engine.now engine);
                      finish_one ()
                  | Coordinator.Aborted (Coordinator.Refused (_, Wire.Wrong_epoch)) ->
                      (* reconfiguration noise, not contention: re-resolve
                         through the new map without consuming the budget *)
                      Stats.note_retry stats;
                      think (fun () -> attempt tries)
                  | Coordinator.Aborted _ when tries < spec.Spec.max_retries ->
                      Stats.note_retry stats;
                      think (fun () -> attempt (tries + 1))
                  | Coordinator.Aborted _ ->
                      Stats.note_final_abort stats;
                      finish_one ())
            and finish_one () =
              decr in_flight;
              incr completed;
              if !completed = spec.Spec.n_global then locals_active := false;
              maybe_start ()
            in
            attempt 0;
            maybe_start ()
          end
        in
        let rec arrival_loop () =
          if !remaining > 0 then
            Engine.schedule_unit engine ~delay:(Rng.exponential arr_rng ~mean:mean_gap)
              (fun () ->
                decr remaining;
                incr queued;
                Queue.push (Engine.now engine, Generator.shard_steps gen) queue;
                maybe_start ();
                arrival_loop ())
        in
        arrival_loop ()
  in
  (* Local clients: one loop per (site, slot), stopping when the global
     quota is done or the per-run local cap is reached. *)
  let local_counters = Array.make spec.Spec.n_sites 0 in
  let total_locals = ref 0 in
  let local_client site =
    let ltm = Dtm.ltm dtm site in
    let rec loop () =
      if !locals_active && !total_locals < spec.Spec.local_txn_cap then
        think (fun () ->
            if !locals_active && !total_locals < spec.Spec.local_txn_cap then begin
              incr total_locals;
              let i = Site.to_int site in
              local_counters.(i) <- local_counters.(i) + 1;
              let owner =
                Txn.Incarnation.make ~txn:(Txn.local ~site ~n:local_counters.(i)) ~site ~inc:0
              in
              let txn = Ltm.begin_txn ltm ~owner in
              let rec step = function
                | [] ->
                    Ltm.commit ltm txn ~on_done:(fun r ->
                        (match r with
                        | Ltm.Committed -> Stats.note_local_committed stats
                        | Ltm.Commit_refused _ -> Stats.note_local_aborted stats);
                        loop ())
                | cmd :: rest ->
                    Ltm.exec ltm txn cmd ~on_done:(function
                      | Ltm.Done _ -> step rest
                      | Ltm.Failed _ ->
                          Stats.note_local_aborted stats;
                          loop ())
              in
              step (Generator.local_commands ~partitioned gen)
            end)
    in
    loop ()
  in
  (* Scheduled full site crashes. With a non-zero reboot delay, sites will
     be marked down mid-run — coordinators must arm their loss-recovery
     retransmissions from the first transaction on, so declare the network
     lossy up front. Coordinator crashes imply the same even with
     instantaneous reboots: a recovered decision may need retransmitting.
     (The agents' inquiry timers are NOT lossiness-gated — they arm
     whenever coordinator crashes are enabled — so this flag is purely
     about the coordinators' retransmission machinery.) *)
  if (setup.reboot_delay > 0 || setup.crash_coordinators) && setup.crash_schedule <> [] then
    Network.assume_lossy (Dtm.network dtm);
  List.iter
    (fun (at, site_idx) ->
      if site_idx >= 0 && site_idx < spec.Spec.n_sites then
        Engine.schedule_unit engine ~delay:at (fun () ->
            Dtm.crash_site ~reboot_delay:setup.reboot_delay dtm (Site.of_int site_idx)))
    setup.crash_schedule;
  (* Online reconfiguration: [moves] shard moves at [m * reconfigure_at],
     targets drawn up front from a dedicated stream (split only when the
     feature is on, so unreconfigured runs replay byte-identically).
     Moving a shard onto its current owner is a deliberate possibility:
     it exercises the no-op path. *)
  if setup.moves > 0 then begin
    (match setup.protocol with
    | Cgm_baseline _ -> invalid_arg "Driver: reconfiguration requires the 2PCA protocol"
    | Two_pca _ -> ());
    let rrng = Rng.split rng ~label:"reconfigure" in
    let n_shards = Spec.shards spec in
    let gap = max 1 setup.reconfigure_at in
    for m = 1 to setup.moves do
      let shard = Rng.int rrng ~bound:n_shards in
      let to_ = Site.of_int (Rng.int rrng ~bound:spec.Spec.n_sites) in
      Engine.schedule_unit engine ~delay:(m * gap) (fun () -> Dtm.reconfigure dtm ~shard ~to_)
    done
  end;
  (* Site churn: scheduled leaves hand the leaver's shards (and prepared
     certification state) to the survivors; scheduled joins re-admit a
     site to the serving set. Each installs a new placement epoch, so
     in-flight rounds re-resolve exactly as under a shard move. *)
  if setup.leave_schedule <> [] || setup.join_schedule <> [] then begin
    (match setup.protocol with
    | Cgm_baseline _ -> invalid_arg "Driver: site churn requires the 2PCA protocol"
    | Two_pca _ -> ());
    List.iter
      (fun (at, site_idx) ->
        if site_idx >= 0 && site_idx < spec.Spec.n_sites then
          Engine.schedule_unit engine ~delay:at (fun () -> Dtm.leave dtm ~site:(Site.of_int site_idx)))
      setup.leave_schedule;
    List.iter
      (fun (at, site_idx) ->
        if site_idx >= 0 && site_idx < spec.Spec.n_sites then
          Engine.schedule_unit engine ~delay:at (fun () -> Dtm.join dtm ~site:(Site.of_int site_idx)))
      setup.join_schedule
  end;
  start_globals ();
  List.iter
    (fun site ->
      for _ = 1 to spec.Spec.local_mpl_per_site do
        local_client site
      done)
    (Dtm.site_ids dtm);
  let wall_start = Unix.gettimeofday () in
  Engine.run ~until:(Time.of_int setup.time_limit) engine;
  let wall_s = Unix.gettimeofday () -. wall_start in
  Engine.halt engine;
  let sim_ticks = Time.to_int (Engine.last_event_at engine) in
  let engine_stats = Engine.stats engine in
  (* End-of-run export: the component counters (agents, LTMs, DLU, net),
     the client-side statistics and the engine totals all land in the
     run's registry, joining the histograms recorded live. *)
  (match setup.obs with
  | Some o ->
      let reg = Obs.metrics o in
      Dtm.export_metrics dtm reg;
      Stats.export stats reg;
      Registry.Counter.add (Registry.counter reg "sim.events") engine_stats.Engine.events;
      Registry.Counter.add (Registry.counter reg "sim.cancelled") engine_stats.Engine.cancelled;
      Registry.Gauge.set (Registry.gauge reg "sim.max_pending") engine_stats.Engine.max_pending
  | None -> ());
  {
    stats;
    totals = Dtm.totals dtm;
    cgm = cgm_stats;
    history = Trace.history trace;
    sim_ticks;
    events = engine_stats.Engine.events;
    throughput =
      (if sim_ticks = 0 then 0.0
       else float_of_int (Stats.committed stats) *. 1_000_000.0 /. float_of_int sim_ticks);
    wall_s;
    stuck = !in_flight + !queued + !remaining;
  }

(* ------------------------------------------------------------------ *)
(* The sharded conservative-window runner: one engine, network instance
   and trace per site, sites spread over OCaml domains, cross-site
   messages through lock-free inboxes, execution in bounded virtual-time
   windows (see {!Hermes_sim.Parallel}).

   The workload is sharded with the system: each site gets its own
   generator (programs rooted at that site, so its coordinators run on
   its shard), its own share of the global quota, client population and
   local-transaction budget, and its own [Stats] — merged after
   quiescence. The run is deterministic and independent of the domain
   count, but it is a *different* schedule from the sequential engine:
   per-shard RNG streams replace the shared ones, so [domains = 1]
   through [run] keeps the legacy path and its byte-identical replays. *)

let run_windowed ?(domains = 0) setup =
  let spec = setup.spec in
  let n = spec.Spec.n_sites in
  let domains = if domains > 0 then domains else setup.domains in
  let certifier =
    match setup.protocol with
    | Two_pca c -> c
    | Cgm_baseline _ ->
        invalid_arg "Driver.run_windowed: the CGM baseline is single-domain only"
  in
  if setup.moves > 0 then
    invalid_arg "Driver.run_windowed: online reconfiguration runs on the sequential engine only";
  if setup.leave_schedule <> [] || setup.join_schedule <> [] then
    invalid_arg "Driver.run_windowed: site churn runs on the sequential engine only";
  if setup.net.Network.base_delay < 1 then
    invalid_arg "Driver.run_windowed: base_delay must be >= 1 (it is the lookahead)";
  let lookahead = setup.net.Network.base_delay in
  let rng = Rng.create ~seed:setup.seed in
  let engines = Array.init n (fun _ -> Engine.create ()) in
  let mailboxes : Hermes_net.Message.t Mailbox.t array =
    Array.init n (fun _ -> Mailbox.create ())
  in
  let send_seq = Array.make n 0 in
  let fabric_of i =
    {
      Network.here = i;
      locate = (fun addr -> Dtm.locate ~n_sites:n addr);
      forward =
        (fun ~shard ~arrival msg ->
          let s = send_seq.(i) in
          send_seq.(i) <- s + 1;
          Mailbox.push mailboxes.(shard) ~at:(Time.to_int arrival) ~src_shard:i ~src_seq:s msg);
    }
  in
  (* Per-site observability contexts (registries and tracers are not
     domain-safe); merged into [setup.obs] after quiescence. *)
  let site_obs =
    match setup.obs with
    | None -> Array.make n None
    | Some _ -> Array.init n (fun _ -> Some (Obs.create ()))
  in
  let site_specs =
    Array.init n (fun i ->
        let uniform =
          { Dtm.ltm_config = setup.ltm; clock = setup.clock_of_site i; failure = setup.failure }
        in
        match setup.site_override with
        | Some f -> Option.value ~default:uniform (f i)
        | None -> uniform)
  in
  let dtm =
    Dtm.create_sharded ~engines ~rng ~net_config:setup.net ~certifier
      ~obs_of:(fun i -> site_obs.(i))
      ~crash_coordinators:setup.crash_coordinators ~fabric_of ~site_specs ()
  in
  List.iter
    (fun site ->
      List.iter
        (fun table ->
          for k = 0 to spec.Spec.keys_per_site - 1 do
            Dtm.load dtm site ~table ~key:k ~value:spec.Spec.initial_value
          done)
        (Generator.local_partition_table :: Spec.tables spec))
    (Dtm.site_ids dtm);
  (* Integer partition of [total] over the shards: shard [i] gets the
     [i]th share, shares differ by at most one. *)
  let share total i = (total / n) + if i < total mod n then 1 else 0 in
  let shard_stats = Array.init n (fun _ -> Stats.create ()) in
  let shard_stuck = Array.make n 0 in
  (* Per-shard client populations — everything below closes over shard-
     local state only and schedules only on the shard's engine. *)
  let setup_shard i =
    let engine = engines.(i) in
    let site = Site.of_int i in
    let stats = shard_stats.(i) in
    let gen = Generator.create ~spec ~rng:(Rng.split rng ~label:(Fmt.str "generator-%d" i)) in
    let think_rng = Rng.split rng ~label:(Fmt.str "think-%d" i) in
    let quota = share spec.Spec.n_global i in
    let remaining = ref quota in
    let in_flight = ref 0 in
    let queued = ref 0 in
    let locals_active = ref true in
    let submit program ~on_done = ignore (Dtm.submit dtm program ~on_done) in
    let think k =
      Engine.schedule_unit engine ~delay:(Rng.exponential think_rng ~mean:(Spec.think_time spec)) k
    in
    (match spec.Spec.arrival with
    | Spec.Closed { mpl; think_time_mean = _ } ->
        let mpl_here = if quota = 0 then 0 else max 1 (share mpl i) in
        let rec global_client () =
          if !remaining > 0 then begin
            decr remaining;
            incr in_flight;
            let program = Generator.global_program_rooted gen ~site in
            let started = Engine.now engine in
            let rec attempt tries =
              Stats.note_attempt stats;
              submit program ~on_done:(fun outcome ->
                  match outcome with
                  | Coordinator.Committed ->
                      Stats.note_committed stats;
                      Stats.record_latency stats ~started ~finished:(Engine.now engine);
                      finish_one ()
                  | Coordinator.Aborted (Coordinator.Refused (_, Wire.Wrong_epoch)) ->
                      (* reconfiguration noise, not contention: re-resolve
                         through the new map without consuming the budget *)
                      Stats.note_retry stats;
                      think (fun () -> attempt tries)
                  | Coordinator.Aborted _ when tries < spec.Spec.max_retries ->
                      Stats.note_retry stats;
                      think (fun () -> attempt (tries + 1))
                  | Coordinator.Aborted _ ->
                      Stats.note_final_abort stats;
                      finish_one ())
            and finish_one () =
              decr in_flight;
              if !remaining = 0 && !in_flight = 0 then locals_active := false;
              think global_client
            in
            attempt 0
          end
        in
        for _ = 1 to min mpl_here quota do
          global_client ()
        done
    | Spec.Open { rate; max_in_flight } ->
        (* Poisson superposition: the global rate splits evenly over the
           shards; each shard runs an independent arrival process. *)
        let arr_rng = Rng.split rng ~label:(Fmt.str "arrivals-%d" i) in
        let rate_here = rate /. float_of_int n in
        let mean_gap = int_of_float (Float.max 1.0 (1_000_000.0 /. Float.max 1e-9 rate_here)) in
        let cap = if quota = 0 then 1 else max 1 (share (max 1 max_in_flight) i) in
        let completed = ref 0 in
        let queue = Queue.create () in
        let rec maybe_start () =
          if !in_flight < cap && not (Queue.is_empty queue) then begin
            let arrived, program = Queue.pop queue in
            decr queued;
            incr in_flight;
            let rec attempt tries =
              Stats.note_attempt stats;
              submit program ~on_done:(fun outcome ->
                  match outcome with
                  | Coordinator.Committed ->
                      Stats.note_committed stats;
                      Stats.record_latency stats ~started:arrived ~finished:(Engine.now engine);
                      finish_one ()
                  | Coordinator.Aborted (Coordinator.Refused (_, Wire.Wrong_epoch)) ->
                      (* reconfiguration noise, not contention: re-resolve
                         through the new map without consuming the budget *)
                      Stats.note_retry stats;
                      think (fun () -> attempt tries)
                  | Coordinator.Aborted _ when tries < spec.Spec.max_retries ->
                      Stats.note_retry stats;
                      think (fun () -> attempt (tries + 1))
                  | Coordinator.Aborted _ ->
                      Stats.note_final_abort stats;
                      finish_one ())
            and finish_one () =
              decr in_flight;
              incr completed;
              if !completed = quota then locals_active := false;
              maybe_start ()
            in
            attempt 0;
            maybe_start ()
          end
        in
        let rec arrival_loop () =
          if !remaining > 0 then
            Engine.schedule_unit engine ~delay:(Rng.exponential arr_rng ~mean:mean_gap) (fun () ->
                decr remaining;
                incr queued;
                Queue.push (Engine.now engine, Generator.global_program_rooted gen ~site) queue;
                maybe_start ();
                arrival_loop ())
        in
        if quota > 0 then arrival_loop () else locals_active := false);
    (* Local clients at this site, against its shard-local budget. *)
    let local_cap = share spec.Spec.local_txn_cap i in
    let local_count = ref 0 in
    let local_seq = ref 0 in
    let local_client () =
      let ltm = Dtm.ltm dtm site in
      let rec loop () =
        if !locals_active && !local_count < local_cap then
          think (fun () ->
              if !locals_active && !local_count < local_cap then begin
                incr local_count;
                incr local_seq;
                let owner =
                  Txn.Incarnation.make ~txn:(Txn.local ~site ~n:!local_seq) ~site ~inc:0
                in
                let txn = Ltm.begin_txn ltm ~owner in
                let rec step = function
                  | [] ->
                      Ltm.commit ltm txn ~on_done:(fun r ->
                          (match r with
                          | Ltm.Committed -> Stats.note_local_committed stats
                          | Ltm.Commit_refused _ -> Stats.note_local_aborted stats);
                          loop ())
                  | cmd :: rest ->
                      Ltm.exec ltm txn cmd ~on_done:(function
                        | Ltm.Done _ -> step rest
                        | Ltm.Failed _ ->
                            Stats.note_local_aborted stats;
                            loop ())
                in
                step (Generator.local_commands gen)
              end)
      in
      loop ()
    in
    for _ = 1 to spec.Spec.local_mpl_per_site do
      local_client ()
    done;
    fun () -> shard_stuck.(i) <- !in_flight + !queued + !remaining
  in
  let finishers = List.init n setup_shard in
  (* Scheduled site crashes land on the crashed site's own shard. *)
  if (setup.reboot_delay > 0 || setup.crash_coordinators) && setup.crash_schedule <> [] then
    List.iter Network.assume_lossy (Dtm.networks dtm);
  List.iter
    (fun (at, site_idx) ->
      if site_idx >= 0 && site_idx < n then
        Engine.schedule_unit engines.(site_idx) ~delay:at (fun () ->
            Dtm.crash_site ~reboot_delay:setup.reboot_delay dtm (Site.of_int site_idx)))
    setup.crash_schedule;
  let nets = Array.of_list (Dtm.networks dtm) in
  let shards =
    Array.init n (fun i ->
        {
          Parallel.engine = engines.(i);
          drain =
            (fun () ->
              List.iter
                (fun (e : _ Mailbox.entry) ->
                  Network.deliver_remote nets.(i) ~arrival:(Time.of_int e.Mailbox.at)
                    e.Mailbox.payload)
                (Mailbox.drain mailboxes.(i)));
          inbox_empty = (fun () -> Mailbox.is_empty mailboxes.(i));
        })
  in
  let wall_start = Unix.gettimeofday () in
  ignore
    (Parallel.run ~domains ~lookahead ~until:(Time.of_int setup.time_limit) shards);
  let wall_s = Unix.gettimeofday () -. wall_start in
  Array.iter Engine.halt engines;
  List.iter (fun f -> f ()) finishers;
  let stats = Array.fold_left (fun acc s -> Stats.merge acc s) (Stats.create ()) shard_stats in
  let sim_ticks =
    Array.fold_left (fun acc e -> max acc (Time.to_int (Engine.last_event_at e))) 0 engines
  in
  let events =
    Array.fold_left (fun acc e -> acc + (Engine.stats e).Engine.events) 0 engines
  in
  (* Fold the per-shard observability contexts into the caller's: metric
     registries absorb exactly; trace events merge by (time, shard) —
     stable sort keeps each shard's emission order. *)
  (match setup.obs with
  | Some o ->
      let reg = Obs.metrics o in
      Array.iter
        (function Some so -> Registry.absorb reg (Obs.metrics so) | None -> ())
        site_obs;
      let trace_events =
        List.concat
          (Array.to_list
             (Array.map
                (function
                  | Some so -> Hermes_obs.Tracer.events (Obs.trace so) | None -> [])
                site_obs))
      in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> Time.compare a b) trace_events in
      List.iter (fun (at, ev) -> Hermes_obs.Tracer.emit (Obs.trace o) ~at ev) sorted;
      Dtm.export_metrics dtm reg;
      Stats.export stats reg;
      Registry.Counter.add (Registry.counter reg "sim.events") events;
      let cancelled =
        Array.fold_left (fun acc e -> acc + (Engine.stats e).Engine.cancelled) 0 engines
      in
      Registry.Counter.add (Registry.counter reg "sim.cancelled") cancelled;
      let max_pending =
        Array.fold_left (fun acc e -> max acc (Engine.stats e).Engine.max_pending) 0 engines
      in
      Registry.Gauge.set (Registry.gauge reg "sim.max_pending") max_pending
  | None -> ());
  {
    stats;
    totals = Dtm.totals dtm;
    cgm = None;
    history = Dtm.history dtm;
    sim_ticks;
    events;
    throughput =
      (if sim_ticks = 0 then 0.0
       else float_of_int (Stats.committed stats) *. 1_000_000.0 /. float_of_int sim_ticks);
    wall_s;
    stuck = Array.fold_left ( + ) 0 shard_stuck;
  }

let run setup = if setup.domains > 1 then run_windowed setup else run_single setup

(** The workload driver: global traffic enters by the spec's arrival
    discipline — a {!Spec.Closed} client population working off the quota,
    or {!Spec.Open} Poisson arrivals with queueing past the in-service
    cap — while local clients run at every site; one [run] produces one
    measured, deterministic data point. *)

open Hermes_kernel

type protocol =
  | Two_pca of Hermes_core.Config.t
      (** the paper's DTM, or an ablation/naive/ticket variant of it *)
  | Cgm_baseline of Hermes_baselines.Cgm.config

val protocol_name : protocol -> string

type setup = {
  spec : Spec.t;
  protocol : protocol;
  failure : Hermes_ltm.Failure.config;
  net : Hermes_net.Network.config;
  ltm : Hermes_ltm.Ltm_config.t;
  clock_of_site : int -> Clock.t;
  seed : int;
  time_limit : int;  (** simulated-tick cap; unsound ablations can livelock *)
  site_override : (int -> Hermes_core.Dtm.site_spec option) option;
      (** heterogeneity hook: per-site specs replacing the uniform fields
          where it returns [Some] *)
  crash_schedule : (int * int) list;
      (** (tick, site index): full site crashes *)
  reboot_delay : int;
      (** ticks a crashed site stays genuinely down (deliveries to it are
          counted drops) before recovery runs; [0] is the paper's
          instantaneous reboot. Non-zero with a crash schedule marks the
          network lossy up front, arming PREPARE retransmission. *)
  crash_coordinators : bool;
      (** scheduled crashes also take down the coordinators hosted at the
          site, which reboot from the site's
          {!Hermes_core.Coordinator_log}; the agents run the in-doubt
          termination protocol (DECISION-REQ inquiries and in-doubt
          metrics). 2PCA only — the CGM baseline ignores it. Also marks
          the network lossy up front when a crash schedule exists. *)
  obs : Hermes_obs.Obs.t option;
      (** observability context threaded into every component; at the end
          of the run the engine/agent/LTM/network/client counters are
          exported into its registry *)
  moves : int;
      (** online reconfigurations: this many shard moves are scheduled
          during the run, each installing a new placement epoch after the
          losing agent hands the moved shard's prepared certification
          state to the gaining site. [0] (default) keeps the static
          epoch-0 map and the byte-identical legacy replay. 2PCA,
          sequential engine only. *)
  reconfigure_at : int;
      (** tick of the first scheduled move; move [m] fires at
          [m * reconfigure_at] *)
  leave_schedule : (int * int) list;
      (** [(tick, site)] site departures: the site leaves the serving set,
          its shards redistributing over the survivors after a prepared-
          state handover ({!Hermes_core.Dtm.leave}). Empty (default) =
          no churn. 2PCA, sequential engine only. *)
  join_schedule : (int * int) list;
      (** [(tick, site)] site (re)admissions ({!Hermes_core.Dtm.join});
          the joiner owns nothing until a later move rebalances onto it.
          A join of a site already serving raises, so pair it with an
          earlier leave. 2PCA, sequential engine only. *)
  domains : int;
      (** OCaml domains executing the run. [1] (the default) is the
          legacy sequential engine — byte-identical to earlier revisions
          at the same seed. [> 1] is the sharded conservative-window
          engine: one engine/network/trace per site spread over this many
          domains. That mode is deterministic and domain-count-invariant,
          but it is a different (per-shard RNG) schedule from the
          sequential engine, so its numbers are comparable across domain
          counts, not with [domains = 1]. 2PCA only. *)
}

val default_setup : setup

type result = {
  stats : Stats.t;
  totals : Hermes_core.Dtm.totals;
  cgm : Hermes_baselines.Cgm.stats option;
  history : Hermes_history.History.t;
  sim_ticks : int;  (** time of the last event (not inflated by the cap) *)
  events : int;
  throughput : float;  (** committed global txns per simulated second *)
  wall_s : float;  (** wall-clock seconds of the execution phase *)
  stuck : int;  (** global transactions unfinished at the cap *)
}

val run : setup -> result
(** Dispatches on [setup.domains]: [<= 1] runs the sequential engine,
    [> 1] runs {!run_windowed}. *)

val run_windowed : ?domains:int -> setup -> result
(** The sharded conservative-window engine regardless of [setup.domains]
    (overridden by [?domains] when given, e.g. [~domains:1] to execute
    the windowed schedule on the calling domain alone — it produces the
    same result as any other domain count). Requires a {!Two_pca}
    protocol and [net.base_delay >= 1] (the lookahead); raises
    [Invalid_argument] otherwise. *)

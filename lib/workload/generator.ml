(* Program generation.

   Global programs pick distinct participating shards and, per shard, a
   mix of single-row selects and updates over Zipf-distributed keys.
   Shards — not sites: the generator emits placement-free [shard_steps]
   and the driver resolves each shard to its current owner site through
   the placement map at submission time, so a shard move between two
   attempts re-routes the resubmission. At the default static map (one
   shard per site) resolution is the identity and the draw sequence is
   unchanged from the site-space generator.

   Within one subtransaction a key is never first selected and then
   updated — that S->X upgrade pattern mass-produces upgrade deadlocks
   under strict FIFO queues and real applications lock-for-update up
   front; updates go straight to exclusive locks instead. *)

open Hermes_kernel

(* The key sampler, one per generator, compiled from the spec's key
   distribution. The legacy Zipf path keeps its exact draw sequence (one
   float per key) so old specs replay byte-identically. *)
type sampler =
  | Zipfian of Zipf.t
  | Uniform_keys of int
  | Hot of { n : int; hot : int; weight : float }

let sampler_of_spec spec =
  match spec.Spec.key_dist with
  | Spec.Zipf { theta } -> Zipfian (Zipf.create ~n:spec.Spec.keys_per_site ~theta)
  | Spec.Uniform -> Uniform_keys spec.Spec.keys_per_site
  | Spec.Hotspot { fraction; weight } ->
      let n = spec.Spec.keys_per_site in
      let hot = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
      Hot { n; hot; weight }

type t = { spec : Spec.t; sampler : sampler; rng : Rng.t }

let create ~spec ~rng = { spec; sampler = sampler_of_spec spec; rng }

let sample_key t =
  match t.sampler with
  | Zipfian z -> Zipf.sample z t.rng
  | Uniform_keys n -> Rng.int t.rng ~bound:n
  | Hot { n; hot; weight } ->
      if Rng.bool t.rng ~p:weight then Rng.int t.rng ~bound:hot
      else if n = hot then Rng.int t.rng ~bound:n
      else hot + Rng.int t.rng ~bound:(n - hot)

let distinct_shards t =
  let n_shards = Spec.shards t.spec in
  let n = min t.spec.Spec.mix.Spec.sites_per_txn n_shards in
  let all = Rng.shuffle t.rng (Array.init n_shards Fun.id) in
  Array.to_list (Array.sub all 0 n)

let pick_table t = Spec.table_name (Rng.int t.rng ~bound:t.spec.Spec.n_tables)

(* Per-shard command list: distinct (table, key) targets, each either
   selected or updated. *)
let shard_commands t =
  let rec pick_targets acc n =
    if n = 0 then acc
    else
      let target = (pick_table t, sample_key t) in
      if List.mem target acc then pick_targets acc n else pick_targets (target :: acc) (n - 1)
  in
  let mix = t.spec.Spec.mix in
  let n_keys = min mix.Spec.ops_per_site (t.spec.Spec.keys_per_site * t.spec.Spec.n_tables) in
  let targets = pick_targets [] n_keys in
  List.map
    (fun (table, key) ->
      if Rng.bool t.rng ~p:mix.Spec.write_ratio then
        Command.Update { table; key; delta = Rng.int_in t.rng ~lo:(-5) ~hi:5 }
      else
        let hi = min (t.spec.Spec.keys_per_site - 1) (key + 2) in
        let overlaps_other_target =
          List.exists (fun (tb, k) -> tb = table && k <> key && key <= k && k <= hi) targets
        in
        if Rng.bool t.rng ~p:0.15 && not overlaps_other_target then
          (* An occasional small range scan: its decomposition is
             state-dependent over several rows at once. Never emitted when
             it would cover another target of the same subtransaction —
             scanning a key the transaction later updates is the S->X
             upgrade trap again. *)
          Command.Select_range { table; lo = key; hi }
        else Command.Select { table; keys = [ key ] })
    targets

let shard_steps t =
  List.concat_map (fun shard -> List.map (fun c -> (shard, c)) (shard_commands t)) (distinct_shards t)

(* Identity resolution for callers without a placement map (the CGM
   baseline, direct tests): shard [s] lives at site [s mod n_sites],
   matching the static map. *)
let static_site t shard = Site.of_int (shard mod t.spec.Spec.n_sites)

let global_program t =
  let steps = List.map (fun (shard, c) -> (static_site t shard, c)) (shard_steps t) in
  Hermes_core.Program.make steps

(* Rooted variant for sharded execution: the program's first participant
   (its coordinating site) is forced to [site], the rest drawn from the
   other sites — so a per-site generator only ever starts coordinators on
   its own shard. The windowed engine runs the static placement map only
   (reconfiguration is sequential-engine-gated), so this stays in site
   space. *)
let distinct_sites_rooted t ~site =
  let n = min t.spec.Spec.mix.Spec.sites_per_txn t.spec.Spec.n_sites in
  let others =
    Array.of_list
      (List.filter
         (fun s -> not (Site.equal s site))
         (List.init t.spec.Spec.n_sites Site.of_int))
  in
  let others = Rng.shuffle t.rng others in
  site :: Array.to_list (Array.sub others 0 (n - 1))

let global_program_rooted t ~site =
  let steps =
    List.concat_map
      (fun s -> List.map (fun c -> (s, c)) (shard_commands t))
      (distinct_sites_rooted t ~site)
  in
  Hermes_core.Program.make steps

(* The locally-updateable partition of the CGM baseline: a dedicated
   per-site table local writes are confined to (paper §6: CGM partitions
   items into locally- and globally-updateable sets; global updaters may
   not read the locally-updateable set — our globals never touch it). *)
let local_partition_table = "LOCAL"

(* A local transaction's commands at one site. Under [partitioned]
   (CGM), writes go to the locally-updateable table only; reads may still
   look at global data. Without it (2CM), locals write global data too —
   DLU merely keeps them off *bound* items. *)
let local_commands ?(partitioned = false) t =
  (* Long-tail locals: a [local_long_tail] fraction of local transactions
     run 8x the ops — fat readers/writers that keep LTM queues occupied.
     The extra draw happens only when the feature is on, so legacy specs
     (long_tail = 0) replay byte-identically. *)
  let n_ops =
    if t.spec.Spec.local_long_tail > 0.0 && Rng.bool t.rng ~p:t.spec.Spec.local_long_tail then
      t.spec.Spec.local_ops * 8
    else t.spec.Spec.local_ops
  in
  List.init n_ops (fun _ ->
      let key = sample_key t in
      if Rng.bool t.rng ~p:t.spec.Spec.local_write_ratio then
        let table = if partitioned then local_partition_table else pick_table t in
        Command.Update { table; key; delta = Rng.int_in t.rng ~lo:(-3) ~hi:3 }
      else Command.Select { table = pick_table t; keys = [ key ] })

(** Program generation: global programs over distinct participating
    shards with Zipf-distributed keys (never select-then-update the same
    key — the upgrade-deadlock trap), and local transaction command
    lists. *)

open Hermes_kernel

type t

val create : spec:Spec.t -> rng:Rng.t -> t

val shard_steps : t -> (int * Command.t) list
(** One global transaction's steps in shard space: distinct participating
    shards, each with its command list, in coordinator-first order. The
    driver resolves each shard through the current placement map at every
    submission attempt. *)

val global_program : t -> Hermes_core.Program.t
(** {!shard_steps} resolved through the static identity map (shard [s] at
    site [s mod n_sites]) — for callers without a placement map. Same
    draws as {!shard_steps}. *)

val global_program_rooted : t -> site:Site.t -> Hermes_core.Program.t
(** Like {!global_program} but the coordinating (first) site is forced to
    [site]; the remaining participants are drawn from the other sites.
    Used by the windowed sharded driver, which runs the static placement
    map only (each site's clients submit only to their own shard). *)

val local_partition_table : string
(** The locally-updateable table of the CGM data partition (paper §6). *)

val local_commands : ?partitioned:bool -> t -> Command.t list
(** Commands of one local transaction. With [partitioned] (CGM), writes
    are confined to {!local_partition_table}; without it (2CM), locals
    write global data and only DLU keeps them off bound items. *)

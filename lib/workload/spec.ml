(* Workload parameters for the experiment harness. One spec describes the
   database population, the global-transaction traffic (arrival
   discipline, shape, skew) and the purely local traffic at each site.

   Construction: {!make} with the first-class variants ({!arrival},
   {!key_dist}, {!mix}). The flat-field back-fill shim of the previous
   release is gone — [arrival], [key_dist] and [mix] are authoritative
   and non-optional. *)

type arrival =
  | Closed of { mpl : int; think_time_mean : int }
      (* a fixed population of clients, each thinking between txns *)
  | Open of { rate : float; max_in_flight : int }
      (* Poisson arrivals at [rate] global txns per simulated second;
         arrivals beyond [max_in_flight] in-service clients queue, and
         latency is measured from arrival (queueing delay included) *)

type key_dist =
  | Uniform
  | Zipf of { theta : float }  (* item i+1 has weight 1/(i+1)^theta *)
  | Hotspot of { fraction : float; weight : float }
      (* the first [fraction] of the key space draws [weight] of accesses *)

type mix = { sites_per_txn : int; ops_per_site : int; write_ratio : float }

type t = {
  n_sites : int;
  n_shards : int option;
      (* data shards resolved through the placement map; [None] = one
         shard per site (the static identity map, the legacy behavior) *)
  keys_per_site : int;  (* keys per table *)
  n_tables : int;  (* tables per site (named "T0", "T1", ...) *)
  initial_value : int;
  (* Global transactions. *)
  n_global : int;  (* run this many global transactions to completion *)
  arrival : arrival;
  mix : mix;
  key_dist : key_dist;
  (* Local transactions (run while the global quota is being worked off). *)
  local_mpl_per_site : int;
  local_ops : int;
  local_write_ratio : float;
  local_txn_cap : int;  (* total local txns per run: bounds analysis cost when a protocol livelocks *)
  local_long_tail : float;  (* fraction of local txns running 8x the ops; 0 = off *)
  max_retries : int;  (* how often a client retries an aborted global txn *)
}

let default_think_time = 2_000

let make ?(n_sites = 3) ?n_shards ?(keys_per_site = 40) ?(n_tables = 4) ?(initial_value = 100)
    ?(n_global = 100) ?(arrival = Closed { mpl = 4; think_time_mean = default_think_time })
    ?(mix = { sites_per_txn = 2; ops_per_site = 2; write_ratio = 0.5 })
    ?(key_dist = Zipf { theta = 0.6 }) ?(local_mpl_per_site = 1) ?(local_ops = 2)
    ?(local_write_ratio = 0.5) ?(local_txn_cap = 2_000) ?(local_long_tail = 0.0)
    ?(max_retries = 10) () =
  {
    n_sites;
    n_shards;
    keys_per_site;
    n_tables;
    initial_value;
    n_global;
    arrival;
    mix;
    key_dist;
    local_mpl_per_site;
    local_ops;
    local_write_ratio;
    local_txn_cap;
    local_long_tail;
    max_retries;
  }

let default = make ()

let shards t = match t.n_shards with Some n -> n | None -> t.n_sites

let think_time t =
  match t.arrival with
  | Closed { think_time_mean; _ } -> think_time_mean
  | Open _ -> default_think_time

let table_name i = "T" ^ string_of_int i
let tables t = List.init t.n_tables table_name

let pp_arrival ppf = function
  | Closed { mpl; think_time_mean } -> Fmt.pf ppf "closed (MPL %d, think %d)" mpl think_time_mean
  | Open { rate; max_in_flight } -> Fmt.pf ppf "open (%.1f txn/s, cap %d)" rate max_in_flight

let pp_key_dist ppf = function
  | Uniform -> Fmt.string ppf "uniform"
  | Zipf { theta } -> Fmt.pf ppf "zipf(%.2f)" theta
  | Hotspot { fraction; weight } -> Fmt.pf ppf "hotspot(%.2f->%.2f)" fraction weight

let pp ppf t =
  Fmt.pf ppf
    "%d sites x %d tables x %d keys, %d globals (%a, %d sites/txn, %d ops/site, w=%.2f), locals MPL %d/site, keys %a"
    t.n_sites t.n_tables t.keys_per_site t.n_global pp_arrival t.arrival t.mix.sites_per_txn
    t.mix.ops_per_site t.mix.write_ratio t.local_mpl_per_site pp_key_dist t.key_dist

(* Workload parameters for the experiment harness. One spec describes the
   database population, the global-transaction traffic (arrival
   discipline, shape, skew) and the purely local traffic at each site.

   Construction: {!make} with the first-class variants ({!arrival},
   {!key_dist}, {!mix}) is the API; the flat record fields are kept one
   more release as a deprecated shim so [{ default with ... }] updates
   still compile — {!make} back-fills them, and the [effective_*]
   resolvers fall back to them when the variant field is [None]. *)

type arrival =
  | Closed of { mpl : int; think_time_mean : int }
      (* a fixed population of clients, each thinking between txns *)
  | Open of { rate : float; max_in_flight : int }
      (* Poisson arrivals at [rate] global txns per simulated second;
         arrivals beyond [max_in_flight] in-service clients queue, and
         latency is measured from arrival (queueing delay included) *)

type key_dist =
  | Uniform
  | Zipf of { theta : float }  (* item i+1 has weight 1/(i+1)^theta *)
  | Hotspot of { fraction : float; weight : float }
      (* the first [fraction] of the key space draws [weight] of accesses *)

type mix = { sites_per_txn : int; ops_per_site : int; write_ratio : float }

type t = {
  n_sites : int;
  keys_per_site : int;  (* keys per table *)
  n_tables : int;  (* tables per site (named "T0", "T1", ...) *)
  initial_value : int;
  (* Global transactions. *)
  n_global : int;  (* run this many global transactions to completion *)
  global_mpl : int;  (* deprecated shim: prefer [arrival] *)
  sites_per_txn : int;  (* deprecated shim: prefer [mix] *)
  ops_per_site : int;  (* deprecated shim: prefer [mix] *)
  global_write_ratio : float;  (* deprecated shim: prefer [mix] *)
  (* Local transactions (run while the global quota is being worked off). *)
  local_mpl_per_site : int;
  local_ops : int;
  local_write_ratio : float;
  local_txn_cap : int;  (* total local txns per run: bounds analysis cost when a protocol livelocks *)
  local_long_tail : float;  (* fraction of local txns running 8x the ops; 0 = off *)
  (* Access skew and pacing. *)
  zipf_theta : float;  (* deprecated shim: prefer [key_dist] *)
  think_time_mean : int;  (* deprecated shim: prefer [arrival] *)
  max_retries : int;  (* how often a client retries an aborted global txn *)
  (* First-class variants ([None] = resolve from the shim fields above). *)
  arrival : arrival option;
  key_dist : key_dist option;
}

let default =
  {
    n_sites = 3;
    keys_per_site = 40;
    n_tables = 4;
    initial_value = 100;
    n_global = 100;
    global_mpl = 4;
    sites_per_txn = 2;
    ops_per_site = 2;
    global_write_ratio = 0.5;
    local_mpl_per_site = 1;
    local_ops = 2;
    local_write_ratio = 0.5;
    local_txn_cap = 2_000;
    local_long_tail = 0.0;
    zipf_theta = 0.6;
    think_time_mean = 2_000;
    max_retries = 10;
    arrival = None;
    key_dist = None;
  }

(* The builder. Variant arguments are authoritative; the legacy flat
   fields are back-filled from them so old readers keep working. *)
let make ?(n_sites = default.n_sites) ?(keys_per_site = default.keys_per_site)
    ?(n_tables = default.n_tables) ?(initial_value = default.initial_value)
    ?(n_global = default.n_global)
    ?(arrival = Closed { mpl = default.global_mpl; think_time_mean = default.think_time_mean })
    ?(mix =
      {
        sites_per_txn = default.sites_per_txn;
        ops_per_site = default.ops_per_site;
        write_ratio = default.global_write_ratio;
      }) ?(key_dist = Zipf { theta = default.zipf_theta })
    ?(local_mpl_per_site = default.local_mpl_per_site) ?(local_ops = default.local_ops)
    ?(local_write_ratio = default.local_write_ratio) ?(local_txn_cap = default.local_txn_cap)
    ?(local_long_tail = default.local_long_tail) ?(max_retries = default.max_retries) () =
  let global_mpl, think_time_mean =
    match arrival with
    | Closed { mpl; think_time_mean } -> (mpl, think_time_mean)
    | Open { rate = _; max_in_flight } -> (max_in_flight, default.think_time_mean)
  in
  let zipf_theta =
    match key_dist with
    | Zipf { theta } -> theta
    | Uniform -> 0.0
    | Hotspot _ -> default.zipf_theta
  in
  {
    n_sites;
    keys_per_site;
    n_tables;
    initial_value;
    n_global;
    global_mpl;
    sites_per_txn = mix.sites_per_txn;
    ops_per_site = mix.ops_per_site;
    global_write_ratio = mix.write_ratio;
    local_mpl_per_site;
    local_ops;
    local_write_ratio;
    local_txn_cap;
    local_long_tail;
    zipf_theta;
    think_time_mean;
    max_retries;
    arrival = Some arrival;
    key_dist = Some key_dist;
  }

let effective_arrival t =
  match t.arrival with
  | Some a -> a
  | None -> Closed { mpl = t.global_mpl; think_time_mean = t.think_time_mean }

let effective_key_dist t =
  match t.key_dist with Some d -> d | None -> Zipf { theta = t.zipf_theta }

let effective_mix t =
  {
    sites_per_txn = t.sites_per_txn;
    ops_per_site = t.ops_per_site;
    write_ratio = t.global_write_ratio;
  }

let table_name i = "T" ^ string_of_int i
let tables t = List.init t.n_tables table_name

let pp_arrival ppf = function
  | Closed { mpl; think_time_mean } -> Fmt.pf ppf "closed (MPL %d, think %d)" mpl think_time_mean
  | Open { rate; max_in_flight } -> Fmt.pf ppf "open (%.1f txn/s, cap %d)" rate max_in_flight

let pp_key_dist ppf = function
  | Uniform -> Fmt.string ppf "uniform"
  | Zipf { theta } -> Fmt.pf ppf "zipf(%.2f)" theta
  | Hotspot { fraction; weight } -> Fmt.pf ppf "hotspot(%.2f->%.2f)" fraction weight

let pp ppf t =
  Fmt.pf ppf
    "%d sites x %d tables x %d keys, %d globals (%a, %d sites/txn, %d ops/site, w=%.2f), locals MPL %d/site, keys %a"
    t.n_sites t.n_tables t.keys_per_site t.n_global pp_arrival (effective_arrival t)
    t.sites_per_txn t.ops_per_site t.global_write_ratio t.local_mpl_per_site pp_key_dist
    (effective_key_dist t)

(** Workload parameters: database population, global-transaction traffic
    and local traffic per site. One spec + one seed = one deterministic
    measured run.

    Build specs with {!make} and the first-class variants below —
    [arrival], [key_dist] and [mix] are authoritative and non-optional.
    (The deprecated flat-field back-fill shim of the previous release is
    gone.) *)

(** How global transactions enter the system. *)
type arrival =
  | Closed of { mpl : int; think_time_mean : int }
      (** a fixed client population, each thinking between transactions —
          the classic benchmark loop *)
  | Open of { rate : float; max_in_flight : int }
      (** Poisson arrivals at [rate] global transactions per simulated
          second (ticks are microseconds); arrivals beyond
          [max_in_flight] in-service clients queue, and latency is
          measured from {e arrival}, so queueing delay under saturation
          shows up in the percentiles *)

(** How keys are drawn within a table. *)
type key_dist =
  | Uniform
  | Zipf of { theta : float }  (** item [i+1] has weight [1/(i+1)^theta] *)
  | Hotspot of { fraction : float; weight : float }
      (** the first [fraction] of the key space draws [weight] of all
          accesses, the rest is uniform *)

(** The global-transaction shape. *)
type mix = { sites_per_txn : int; ops_per_site : int; write_ratio : float }

type t = {
  n_sites : int;
  n_shards : int option;
      (** data shards resolved through the placement map; [None] = one
          shard per site (the static identity map, the legacy behavior) *)
  keys_per_site : int;  (** keys per table *)
  n_tables : int;  (** tables per site, named ["T0"], ["T1"], ... *)
  initial_value : int;
  n_global : int;  (** global transactions to run to completion *)
  arrival : arrival;
  mix : mix;
  key_dist : key_dist;
  local_mpl_per_site : int;
  local_ops : int;
  local_write_ratio : float;
  local_txn_cap : int;  (** bound on total local transactions per run *)
  local_long_tail : float;
      (** fraction of local transactions running 8x [local_ops] — a
          long-tail of fat local readers/writers; [0.] (default) draws no
          randomness and leaves earlier runs byte-identical *)
  max_retries : int;  (** retries of an aborted global transaction *)
}

val default : t
(** Closed loop, MPL 4, Zipf 0.6 — the PR 1-era parameters. *)

val make :
  ?n_sites:int ->
  ?n_shards:int ->
  ?keys_per_site:int ->
  ?n_tables:int ->
  ?initial_value:int ->
  ?n_global:int ->
  ?arrival:arrival ->
  ?mix:mix ->
  ?key_dist:key_dist ->
  ?local_mpl_per_site:int ->
  ?local_ops:int ->
  ?local_write_ratio:float ->
  ?local_txn_cap:int ->
  ?local_long_tail:float ->
  ?max_retries:int ->
  unit ->
  t

val shards : t -> int
(** Number of data shards: [n_shards], defaulting to one per site. *)

val think_time : t -> int
(** The client think-time mean: the closed loop's [think_time_mean], or
    the default (2000 ticks) for open-loop specs — used to pace retries
    and local clients. *)

val table_name : int -> string
val tables : t -> string list
val pp_arrival : arrival Fmt.t
val pp_key_dist : key_dist Fmt.t
val pp : t Fmt.t

(* Client-side statistics: outcomes, retries and commit latencies.

   Latencies live in a log2 histogram instead of a sample list: O(1)
   recording, constant memory, exact merging — the right trade for seed
   sweeps that aggregate thousands of runs. *)

open Hermes_kernel
module Histogram = Hermes_obs.Histogram
module Registry = Hermes_obs.Registry

type t = {
  mutable committed : int;
  mutable aborted_final : int;  (* gave up after max_retries *)
  mutable attempts : int;
  mutable retries : int;
  mutable local_committed : int;
  mutable local_aborted : int;
  latencies : Histogram.t;  (* commit latencies of committed globals *)
}

let create () =
  {
    committed = 0;
    aborted_final = 0;
    attempts = 0;
    retries = 0;
    local_committed = 0;
    local_aborted = 0;
    latencies = Histogram.create ();
  }

let note_attempt t = t.attempts <- t.attempts + 1
let note_committed t = t.committed <- t.committed + 1
let note_retry t = t.retries <- t.retries + 1
let note_final_abort t = t.aborted_final <- t.aborted_final + 1
let note_local_committed t = t.local_committed <- t.local_committed + 1
let note_local_aborted t = t.local_aborted <- t.local_aborted + 1
let record_latency t ~started ~finished = Histogram.record t.latencies (Time.diff finished started)

let committed t = t.committed
let aborted_final t = t.aborted_final
let attempts t = t.attempts
let retries t = t.retries
let local_committed t = t.local_committed
let local_aborted t = t.local_aborted
let latency_histogram t = Histogram.copy t.latencies

type latency_summary = { mean : float; p50 : int; p95 : int; p99 : int; max : int }

let latency_summary t =
  let h = t.latencies in
  if Histogram.count h = 0 then { mean = 0.0; p50 = 0; p95 = 0; p99 = 0; max = 0 }
  else
    {
      mean = Histogram.mean h;
      p50 = Histogram.percentile h 50;
      p95 = Histogram.percentile h 95;
      p99 = Histogram.percentile h 99;
      max = Histogram.max_value h;
    }

let abort_rate t =
  if t.attempts = 0 then 0.0 else float_of_int (t.attempts - t.committed) /. float_of_int t.attempts

let merge a b =
  {
    committed = a.committed + b.committed;
    aborted_final = a.aborted_final + b.aborted_final;
    attempts = a.attempts + b.attempts;
    retries = a.retries + b.retries;
    local_committed = a.local_committed + b.local_committed;
    local_aborted = a.local_aborted + b.local_aborted;
    latencies = Histogram.merge a.latencies b.latencies;
  }

let export t reg =
  let c name v = if v <> 0 then Registry.Counter.add (Registry.counter reg name) v in
  c "workload.committed" t.committed;
  c "workload.aborted_final" t.aborted_final;
  c "workload.attempts" t.attempts;
  c "workload.retries" t.retries;
  c "workload.local_committed" t.local_committed;
  c "workload.local_aborted" t.local_aborted;
  Histogram.absorb (Registry.histogram reg "workload.commit_latency") t.latencies

(** Client-side statistics: outcomes, retries, commit latencies.

    The type is abstract; commit latencies are held in an
    {!Hermes_obs.Histogram} rather than a sample list, so recording is
    O(1), memory is constant, and the statistics of independent runs
    {!merge} exactly (up to histogram bucket interiors). *)

open Hermes_kernel

type t

val create : unit -> t

(** {1 Recording} *)

val note_attempt : t -> unit
(** A global submission (first try or retry). *)

val note_committed : t -> unit
val note_retry : t -> unit

val note_final_abort : t -> unit
(** Gave up after max_retries. *)

val note_local_committed : t -> unit
val note_local_aborted : t -> unit
val record_latency : t -> started:Time.t -> finished:Time.t -> unit

(** {1 Reading} *)

val committed : t -> int
val aborted_final : t -> int
val attempts : t -> int
val retries : t -> int
val local_committed : t -> int
val local_aborted : t -> int

val latency_histogram : t -> Hermes_obs.Histogram.t
(** The commit latencies of committed globals (a copy). *)

type latency_summary = { mean : float; p50 : int; p95 : int; p99 : int; max : int }

val latency_summary : t -> latency_summary
(** Mean and max are exact; p50/p95 are histogram-bucket upper bounds
    clamped to the exact extrema. *)

val abort_rate : t -> float
(** Failed attempts / attempts. *)

val merge : t -> t -> t
(** Combine the statistics of two independent runs. Associative and
    commutative. *)

val export : t -> Hermes_obs.Registry.t -> unit
(** Add the counters as [workload.*] series and the latencies as a
    [workload.commit_latency] histogram. Accumulates on repeated
    export. *)

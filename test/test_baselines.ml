(* Tests for hermes.baselines: the CGM commit graph and the CGM DTM
   end-to-end. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Trace = Hermes_ltm.Trace
module Failure = Hermes_ltm.Failure
module Program = Hermes_core.Program
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module Commit_graph = Hermes_baselines.Commit_graph
module Cgm = Hermes_baselines.Cgm
module Report = Hermes_history.Report

let a = Site.of_int 0
let b = Site.of_int 1
let c = Site.of_int 2

(* ------------------------------------------------------------------ *)
(* Commit graph                                                        *)
(* ------------------------------------------------------------------ *)

let test_cg_no_loop_single () =
  let g = Commit_graph.create () in
  Alcotest.(check bool) "first txn" false (Commit_graph.would_loop g ~gid:1 ~sites:[ a; b ]);
  Commit_graph.enter g ~gid:1 ~sites:[ a; b ];
  (* A second transaction sharing ONE site attaches without a loop. *)
  Alcotest.(check bool) "shares one site" false (Commit_graph.would_loop g ~gid:2 ~sites:[ a; c ])

let test_cg_loop_two_sites () =
  let g = Commit_graph.create () in
  Commit_graph.enter g ~gid:1 ~sites:[ a; b ];
  (* Sharing TWO sites closes a loop T1-a-T2-b-T1. *)
  Alcotest.(check bool) "shares two sites" true (Commit_graph.would_loop g ~gid:2 ~sites:[ a; b ])

let test_cg_leave_clears () =
  let g = Commit_graph.create () in
  Commit_graph.enter g ~gid:1 ~sites:[ a; b ];
  Commit_graph.leave g ~gid:1;
  Alcotest.(check bool) "free again" false (Commit_graph.would_loop g ~gid:2 ~sites:[ a; b ])

let test_cg_indirect_loop () =
  let g = Commit_graph.create () in
  Commit_graph.enter g ~gid:1 ~sites:[ a; b ];
  Commit_graph.enter g ~gid:2 ~sites:[ b; c ];
  (* T3 over {a, c} closes the loop a-T1-b-T2-c-T3-a. *)
  Alcotest.(check bool) "three-party loop" true (Commit_graph.would_loop g ~gid:3 ~sites:[ a; c ])

(* ------------------------------------------------------------------ *)
(* CGM end-to-end                                                      *)
(* ------------------------------------------------------------------ *)

type world = { engine : Engine.t; cgm : Cgm.t }

let make_world ?(config = Cgm.default_config) ?(failure = Failure.disabled) ?(seed = 3) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let trace = Trace.create () in
  let cgm =
    Cgm.create ~engine ~rng ~trace ~net_config:Hermes_net.Network.default_config ~config
      ~site_specs:(Array.make 2 { Dtm.default_site_spec with Dtm.failure }) ()
  in
  List.iter
    (fun site ->
      List.iter (fun k -> Dtm.load (Cgm.dtm cgm) site ~table:"X" ~key:k ~value:100) (List.init 10 Fun.id))
    (Dtm.site_ids (Cgm.dtm cgm));
  { engine; cgm }

let update site key delta = (site, Command.Update { table = "X"; key; delta })

let test_cgm_commits () =
  let w = make_world () in
  let committed = ref 0 in
  for i = 0 to 4 do
    Cgm.submit w.cgm
      (Program.make [ update a i 1; update b i 1 ])
      ~on_done:(fun o -> if o = Coordinator.Committed then incr committed)
  done;
  Engine.run w.engine;
  Alcotest.(check int) "all five" 5 !committed;
  Alcotest.(check bool) "clean history" true (Report.ok (Report.analyze (Dtm.history (Cgm.dtm w.cgm))))

let test_cgm_gate_delays () =
  (* Concurrent two-site transactions share both sites: the commit graph
     must delay some commits, but all eventually pass. *)
  let w = make_world () in
  let committed = ref 0 in
  for i = 0 to 5 do
    Cgm.submit w.cgm
      (Program.make [ update a i 1; update b i 1 ])
      ~on_done:(fun o -> if o = Coordinator.Committed then incr committed)
  done;
  Engine.run w.engine;
  Alcotest.(check int) "all committed" 6 !committed;
  (* With site-level X locks they serialize at acquisition, so delays may
     be zero; with shared (read-only) global locks they overlap. Verify at
     least that the counter is consistent. *)
  Alcotest.(check bool) "stats consistent" true ((Cgm.stats w.cgm).Cgm.gate_delays >= 0)

let test_cgm_readonly_overlap_delays () =
  (* Read-only transactions hold shared global locks, reach the gate
     concurrently, and loop in the commit graph: the Delay policy must
     hold some back and release them on completion. *)
  let w = make_world () in
  let committed = ref 0 in
  let sel site keys = (site, Command.Select { table = "X"; keys }) in
  for i = 0 to 3 do
    Cgm.submit w.cgm
      (Program.make [ sel a [ i ]; sel b [ i ] ])
      ~on_done:(fun o -> if o = Coordinator.Committed then incr committed)
  done;
  Engine.run w.engine;
  Alcotest.(check int) "all committed" 4 !committed;
  Alcotest.(check bool) "delays happened" true ((Cgm.stats w.cgm).Cgm.gate_delays > 0)

let test_cgm_abort_policy () =
  let w = make_world ~config:{ Cgm.default_config with Cgm.loop_policy = Cgm.Abort_txn } () in
  let committed = ref 0 and aborted = ref 0 in
  let sel site keys = (site, Command.Select { table = "X"; keys }) in
  for i = 0 to 3 do
    Cgm.submit w.cgm
      (Program.make [ sel a [ i ]; sel b [ i ] ])
      ~on_done:(fun o -> if o = Coordinator.Committed then incr committed else incr aborted)
  done;
  Engine.run w.engine;
  Alcotest.(check int) "all finished" 4 (!committed + !aborted);
  Alcotest.(check bool) "some gate aborts" true ((Cgm.stats w.cgm).Cgm.gate_aborts > 0);
  Alcotest.(check int) "aborts match" !aborted (Cgm.stats w.cgm).Cgm.gate_aborts

let test_cgm_under_failures () =
  (* Resubmission without certification, protected by global locks and the
     commit graph: the history must still verify (the paper's claim that
     CGM achieves the same goals, more restrictively). Global-only
     workload; locals restricted by the partition are exercised in the
     driver tests. *)
  let w = make_world ~failure:(Failure.prepared_rate 0.4) ~seed:11 () in
  let finished = ref 0 in
  let rec submit n =
    if n > 0 then
      Cgm.submit w.cgm
        (Program.make [ update a (n mod 5) 1; update b (n mod 5) (-1) ])
        ~on_done:(fun _ ->
          incr finished;
          submit (n - 1))
  in
  submit 12;
  Engine.run w.engine;
  Alcotest.(check int) "all finished" 12 !finished;
  let rep = Report.analyze (Dtm.history (Cgm.dtm w.cgm)) in
  Alcotest.(check bool) "no distortions" true (rep.Report.global_distortions = []);
  Alcotest.(check bool) "CG acyclic" true (rep.Report.cg_cycle = None)

let test_cgm_table_granularity_allows_disjoint () =
  (* At table granularity, transactions on different tables at the same
     sites proceed with no global-lock conflict. *)
  let w = make_world ~config:{ Cgm.default_config with Cgm.granularity = Cgm.Table_level } () in
  List.iter
    (fun site ->
      List.iter (fun k -> Dtm.load (Cgm.dtm w.cgm) site ~table:"Y" ~key:k ~value:50) (List.init 10 Fun.id))
    (Dtm.site_ids (Cgm.dtm w.cgm));
  let committed = ref 0 in
  let upd table site key = (site, Command.Update { table; key; delta = 1 }) in
  Cgm.submit w.cgm
    (Program.make [ upd "X" a 0; upd "X" b 0 ])
    ~on_done:(fun o -> if o = Coordinator.Committed then incr committed);
  Cgm.submit w.cgm
    (Program.make [ upd "Y" a 0; upd "Y" b 0 ])
    ~on_done:(fun o -> if o = Coordinator.Committed then incr committed);
  Engine.run w.engine;
  Alcotest.(check int) "both committed" 2 !committed

let () =
  Alcotest.run "baselines"
    [
      ( "commit-graph",
        [
          Alcotest.test_case "single txn" `Quick test_cg_no_loop_single;
          Alcotest.test_case "two shared sites loop" `Quick test_cg_loop_two_sites;
          Alcotest.test_case "leave clears" `Quick test_cg_leave_clears;
          Alcotest.test_case "indirect loop" `Quick test_cg_indirect_loop;
        ] );
      ( "cgm",
        [
          Alcotest.test_case "commits" `Quick test_cgm_commits;
          Alcotest.test_case "gate consistency" `Quick test_cgm_gate_delays;
          Alcotest.test_case "read-only overlap delays" `Quick test_cgm_readonly_overlap_delays;
          Alcotest.test_case "abort policy" `Quick test_cgm_abort_policy;
          Alcotest.test_case "under failures" `Quick test_cgm_under_failures;
          Alcotest.test_case "table granularity" `Quick test_cgm_table_granularity_allows_disjoint;
        ] );
    ]
